// han_tunedb — the persistent tuning database service CLI
// (docs/TUNING_SERVICE.md).
//
//   han_tunedb query      --db FILE [--json]
//   han_tunedb tune       --db FILE [machine opts] [--sizes 64K,1M]
//                         [--jobs N] [--json] [--quiet]
//   han_tunedb ingest     --db FILE --table FILE [machine opts]
//   han_tunedb invalidate --db FILE --key TOPO [--kind bcast]
//   han_tunedb gc         --db FILE --keep N
//
// machine opts: --machine aries|opath (default aries), --nodes N (8),
//   --ppn P (4), --numa D (1), --perturb-eff F@BYTES (scale the P2P
//   efficiency-curve knots at or above BYTES by F — models a firmware or
//   driver change so staleness detection can be exercised).
//
// `tune` is the fleet workflow: fingerprint the machine, reuse every
// fresh bucket from the DB, re-tune only collectives with stale or
// missing buckets, write the DB back. A fully-warm pass costs zero
// simulated benchmark seconds and leaves the DB byte-identical.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "autotune/tunedb.hpp"
#include "coll/module.hpp"
#include "coll/runtime.hpp"
#include "han/han.hpp"
#include "parallel/pool.hpp"

namespace {

using namespace han;

struct MachineArgs {
  std::string family = "aries";
  int nodes = 8;
  int ppn = 4;
  int numa = 1;
  double perturb_factor = 1.0;
  std::uint64_t perturb_min_bytes = 0;
  bool perturbed = false;
};

bool parse_sizes(const char* arg, std::vector<std::size_t>* out) {
  out->clear();
  std::size_t v = 0;
  bool any = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<std::size_t>(*p - '0');
      any = true;
    } else if (*p == 'K' || *p == 'k') {
      v <<= 10;
    } else if (*p == 'M' || *p == 'm') {
      v <<= 20;
    } else if (*p == ',' || *p == '\0') {
      if (!any || v == 0) return false;
      out->push_back(v);
      v = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  return !out->empty();
}

/// "F@BYTES", e.g. "0.8@2M": scale factor F applied from BYTES upward.
bool parse_perturb(const char* arg, MachineArgs* m) {
  const char* at = std::strchr(arg, '@');
  if (at == nullptr || at == arg || at[1] == '\0') return false;
  char* end = nullptr;
  m->perturb_factor = std::strtod(arg, &end);
  if (end != at || m->perturb_factor <= 0.0) return false;
  std::vector<std::size_t> sizes;
  if (!parse_sizes(at + 1, &sizes) || sizes.size() != 1) return false;
  m->perturb_min_bytes = sizes[0];
  m->perturbed = true;
  return true;
}

std::optional<machine::MachineProfile> build_profile(const MachineArgs& m) {
  machine::MachineProfile profile;
  if (m.family == "aries") {
    profile = machine::make_aries(m.nodes, m.ppn);
  } else if (m.family == "opath") {
    profile = machine::make_opath(m.nodes, m.ppn);
  } else {
    std::fprintf(stderr, "han_tunedb: unknown --machine '%s'\n",
                 m.family.c_str());
    return std::nullopt;
  }
  if (m.numa > 1) profile = machine::with_numa(std::move(profile), m.numa);
  if (m.perturbed) {
    machine::scale_net_efficiency(profile, m.perturb_factor,
                                  m.perturb_min_bytes);
  }
  return profile;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

int usage(bool ok) {
  std::fprintf(
      ok ? stdout : stderr,
      "usage: han_tunedb <query|tune|ingest|invalidate|gc> --db FILE\n"
      "  query      [--json]\n"
      "  tune       [--machine aries|opath] [--nodes N] [--ppn P]\n"
      "             [--numa D] [--perturb-eff F@BYTES] [--sizes 64K,1M]\n"
      "             [--jobs N] [--json] [--quiet]\n"
      "  ingest     --table FILE [machine opts]\n"
      "  invalidate --key TOPO [--kind bcast]\n"
      "  gc         --keep N\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(false);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") return usage(true);

  std::string db_path, table_path, key, kind_name;
  MachineArgs m;
  std::vector<std::size_t> sizes;
  int jobs = 1;
  long keep = -1;
  bool json = false;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    const bool has_val = i + 1 < argc;
    if (std::strcmp(a, "--db") == 0 && has_val) {
      db_path = argv[++i];
    } else if (std::strcmp(a, "--table") == 0 && has_val) {
      table_path = argv[++i];
    } else if (std::strcmp(a, "--key") == 0 && has_val) {
      key = argv[++i];
    } else if (std::strcmp(a, "--kind") == 0 && has_val) {
      kind_name = argv[++i];
    } else if (std::strcmp(a, "--machine") == 0 && has_val) {
      m.family = argv[++i];
    } else if (std::strcmp(a, "--nodes") == 0 && has_val) {
      m.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--ppn") == 0 && has_val) {
      m.ppn = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--numa") == 0 && has_val) {
      m.numa = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--perturb-eff") == 0 && has_val) {
      if (!parse_perturb(argv[++i], &m)) {
        std::fprintf(stderr, "han_tunedb: bad --perturb-eff '%s' "
                     "(want F@BYTES, e.g. 0.8@2M)\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--sizes") == 0 && has_val) {
      if (!parse_sizes(argv[++i], &sizes)) {
        std::fprintf(stderr, "han_tunedb: bad --sizes list '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--jobs") == 0 && has_val) {
      jobs = par::parse_jobs(argv[++i]);
      if (jobs < 0) {
        std::fprintf(stderr, "han_tunedb: bad --jobs value '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--keep") == 0 && has_val) {
      keep = std::atol(argv[++i]);
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(std::strcmp(a, "--help") == 0);
    }
  }
  if (db_path.empty()) {
    std::fprintf(stderr, "han_tunedb: --db is required\n");
    return 1;
  }
  if (m.nodes < 2 || m.ppn < 1) {
    std::fprintf(stderr, "han_tunedb: need --nodes >= 2 and --ppn >= 1\n");
    return 1;
  }

  // A missing DB file is an empty fleet; a malformed one is an error
  // (load() already printed why).
  tune::TuneDb db;
  {
    std::FILE* f = std::fopen(db_path.c_str(), "r");
    if (f != nullptr) {
      std::fclose(f);
      std::optional<tune::TuneDb> loaded = tune::TuneDb::load(db_path);
      if (!loaded.has_value()) return 1;
      db = std::move(*loaded);
    }
  }

  if (cmd == "query") {
    std::fputs(db.report_json().c_str(), stdout);
    return 0;
  }

  if (cmd == "tune") {
    std::optional<machine::MachineProfile> profile = build_profile(m);
    if (!profile.has_value()) return 1;
    mpi::SimWorld world(std::move(*profile));
    coll::CollRuntime rt(world);
    coll::ModuleSet mods(world, rt);
    core::HanModule han_mod(world, rt, mods);
    tune::Tuner tuner(world, han_mod, world.world_comm());
    tune::TunerOptions opts;
    if (!sizes.empty()) opts.message_sizes = sizes;
    opts.jobs = jobs;
    const tune::WarmStartReport rep = tune::warm_tune(db, tuner, opts);
    if (!db.save(db_path)) return 1;
    if (json) {
      std::string j = "{\n  \"machine\": \"" +
                      tune::signature_of(world.profile()).key() +
                      "\",\n  \"cold\": " + (rep.cold ? "true" : "false") +
                      ",\n  \"reused\": " + std::to_string(rep.reused) +
                      ",\n  \"retuned\": " + std::to_string(rep.retuned) +
                      ",\n  \"tuning_cost\": " + fmt_double(rep.tuning_cost) +
                      ",\n  \"retuned_kinds\": [";
      for (std::size_t i = 0; i < rep.retuned_kinds.size(); ++i) {
        if (i > 0) j += ", ";
        j += "\"" + rep.retuned_kinds[i] + "\"";
      }
      j += "]\n}\n";
      std::fputs(j.c_str(), stdout);
    } else if (!quiet) {
      std::printf("han_tunedb: %s %s: reused %d, retuned %d, cost %s s\n",
                  rep.cold ? "cold-tuned" : "warm-tuned",
                  tune::signature_of(world.profile()).key().c_str(),
                  rep.reused, rep.retuned, fmt_double(rep.tuning_cost).c_str());
    }
    return 0;
  }

  if (cmd == "ingest") {
    if (table_path.empty()) {
      std::fprintf(stderr, "han_tunedb ingest: --table is required\n");
      return 1;
    }
    std::optional<tune::LookupTable> table =
        tune::LookupTable::load(table_path);
    if (!table.has_value()) {
      std::fprintf(stderr, "han_tunedb: cannot load lookup table '%s'\n",
                   table_path.c_str());
      return 1;
    }
    std::optional<machine::MachineProfile> profile = build_profile(m);
    if (!profile.has_value()) return 1;
    db.ingest(tune::signature_of(*profile), *table);
    if (!db.save(db_path)) return 1;
    if (!quiet) {
      std::printf("han_tunedb: ingested %zu entries for %s\n",
                  table->size(),
                  tune::signature_of(*profile).key().c_str());
    }
    return 0;
  }

  if (cmd == "invalidate") {
    if (key.empty()) {
      std::fprintf(stderr, "han_tunedb invalidate: --key is required\n");
      return 1;
    }
    std::optional<coll::CollKind> kind;
    if (!kind_name.empty()) {
      bool found = false;
      for (coll::CollKind k :
           {coll::CollKind::Bcast, coll::CollKind::Reduce,
            coll::CollKind::Allreduce, coll::CollKind::Gather,
            coll::CollKind::Scatter, coll::CollKind::Allgather,
            coll::CollKind::Barrier, coll::CollKind::ReduceScatter}) {
        if (kind_name == coll::coll_kind_name(k)) {
          kind = k;
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "han_tunedb: unknown --kind '%s'\n",
                     kind_name.c_str());
        return 1;
      }
    }
    const int removed = db.invalidate(key, kind);
    if (!db.save(db_path)) return 1;
    if (!quiet) {
      std::printf("han_tunedb: invalidated %d entries of '%s'\n", removed,
                  key.c_str());
    }
    return 0;
  }

  if (cmd == "gc") {
    if (keep < 0) {
      std::fprintf(stderr, "han_tunedb gc: --keep N is required\n");
      return 1;
    }
    const int dropped = db.gc(static_cast<std::size_t>(keep));
    if (!db.save(db_path)) return 1;
    if (!quiet) {
      std::printf("han_tunedb: dropped %d records, kept %zu\n", dropped,
                  db.record_count());
    }
    return 0;
  }

  return usage(false);
}

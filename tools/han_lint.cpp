// han_lint — the performance-guideline gate for the autotuner.
//
//   han_lint [--smoke] [--machine <name>]... [--sizes 65536,1048576]
//            [--no-model] [--no-sim] [--no-perturb] [--jobs N]
//            [--mutate <name>] [--audit-lookup <path>] [--audit-db <path>]
//            [--json <path>] [--quiet]
//
// Runs the han::lint sweep (docs/LINT.md): Hunold-style cross-kind and
// monotonicity guidelines plus HAN-specific invariants (zcs continuity,
// stripe regression, decision hysteresis) over every stock machine, and a
// PICO-style perturbation pass certifying tuned winners under degraded
// links, straggler nodes, and noisy bandwidths.
//
// --jobs N runs the independent lint cases on N threads (0 = one per
// hardware thread); reports are byte-identical for every N.
//
// --mutate <name> seeds one corpus defect into every cost the analyzer
// consumes — CI smoke-asserts the gate then exits non-zero.
//
// --audit-lookup / --audit-db lint saved LookupTable / TuneDb records
// instead of running the sweep. Exit status: 0 = clean, 2 = errors.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "autotune/lookup.hpp"
#include "autotune/tunedb.hpp"
#include "han/lint/lint.hpp"
#include "parallel/pool.hpp"

namespace {

bool parse_sizes(const char* arg, std::vector<std::size_t>* out) {
  out->clear();
  std::size_t v = 0;
  bool any = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<std::size_t>(*p - '0');
      any = true;
    } else if (*p == ',' || *p == '\0') {
      if (!any || v < 1) return false;
      out->push_back(v);
      v = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace han;
  lint::LintOptions opts;
  bool quiet = false;
  std::string json_path;
  std::string lookup_path;
  std::string db_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      const int jobs = opts.jobs;
      const lint::CostHook hook = opts.cost_hook;
      opts = lint::LintOptions::smoke();
      opts.jobs = jobs;
      opts.cost_hook = hook;
    } else if (std::strcmp(a, "--no-model") == 0) {
      opts.model = false;
    } else if (std::strcmp(a, "--no-sim") == 0) {
      opts.sim = false;
    } else if (std::strcmp(a, "--no-perturb") == 0) {
      opts.perturb = false;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--machine") == 0 && i + 1 < argc) {
      opts.machines.push_back(argv[++i]);
    } else if (std::strcmp(a, "--sizes") == 0 && i + 1 < argc) {
      if (!parse_sizes(argv[++i], &opts.sizes)) {
        std::fprintf(stderr, "han_lint: bad --sizes list '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = han::par::parse_jobs(argv[++i]);
      if (opts.jobs < 0) {
        std::fprintf(stderr, "han_lint: bad --jobs value '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--mutate") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (lint::find_mutation(name) == nullptr) {
        std::fprintf(stderr, "han_lint: unknown mutation '%s'\n", name);
        return 1;
      }
      opts.cost_hook = lint::mutation_hook(name);
    } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(a, "--audit-lookup") == 0 && i + 1 < argc) {
      lookup_path = argv[++i];
    } else if (std::strcmp(a, "--audit-db") == 0 && i + 1 < argc) {
      db_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: han_lint [--smoke] [--machine <name>]... "
          "[--sizes N,N,...] [--no-model] [--no-sim] [--no-perturb] "
          "[--jobs N] [--mutate <name>] [--audit-lookup <path>] "
          "[--audit-db <path>] [--json <path>] [--quiet]\n");
      return std::strcmp(a, "--help") == 0 ? 0 : 1;
    }
  }

  lint::LintResult result;
  if (!lookup_path.empty() || !db_path.empty()) {
    if (!lookup_path.empty()) {
      const std::optional<tune::LookupTable> table =
          tune::LookupTable::load(lookup_path);
      if (!table.has_value()) {
        std::fprintf(stderr, "han_lint: cannot load lookup table '%s'\n",
                     lookup_path.c_str());
        return 1;
      }
      lint::lint_lookup(*table, result);
    }
    if (!db_path.empty()) {
      const std::optional<tune::TuneDb> db = tune::TuneDb::load(db_path);
      if (!db.has_value()) {
        std::fprintf(stderr, "han_lint: cannot load tuning db '%s'\n",
                     db_path.c_str());
        return 1;
      }
      lint::lint_tunedb(*db, result);
    }
    std::sort(result.entries.begin(), result.entries.end(),
              [](const lint::LintEntry& a, const lint::LintEntry& b) {
                return a.name < b.name;
              });
  } else {
    result = lint::run_lint(opts);
  }

  if (!json_path.empty()) {
    const std::string j = result.to_json();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "han_lint: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
  }
  if (!quiet) {
    std::fputs(result.summary().c_str(), stdout);
  }
  return result.total_errors() == 0 ? 0 : 2;
}

// han_verify — the static verification gate for collective schedules.
//
//   han_verify [--smoke] [--no-plans] [--no-graphs] [--no-exec]
//              [--windows 1,2,3] [--jobs N] [--from-lookup <path>]
//              [--json <path>] [--quiet]
//
// --jobs N runs the sweep's independent cases on N threads (0 = one per
// hardware thread); reports are byte-identical for every N.
//
// --from-lookup <path> re-verifies every cached synthesized schedule
// (`sched=` entry) of a saved LookupTable instead of running the builder
// sweep — the gate for synthesis caches (docs/SYNTHESIS.md).
//
// Runs the han::verify sweep (every Plan/TaskGraph builder across the
// autotuner's SearchSpace; see docs/VERIFICATION.md) plus an execution
// matrix that drives real collectives through CollRuntime with the
// plan-checker hook recording an analysis of every Plan any submodule
// builds (sm/solo/libnbc/adapt/ring — the inline-built plans the static
// sweep cannot enumerate). Exit status: 0 = clean, 2 = findings.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "autotune/lookup.hpp"
#include "han/han.hpp"
#include "han/verify/sweep.hpp"
#include "han/verify/verify.hpp"
#include "parallel/pool.hpp"

namespace {

using namespace han;

/// Shared recorder: the CollRuntime plan-checker appends one SweepEntry
/// per built Plan under the current case label, never aborting (the CLI
/// reports at the end instead).
struct ExecRecorder {
  verify::SweepResult* out = nullptr;
  std::string label;
  int plan_index = 0;

  void arm(coll::CollRuntime& rt) {
    rt.set_plan_checker([this](const coll::Plan& plan, int comm_size) {
      const verify::Report rep = verify::analyze_plan(plan, comm_size);
      verify::SweepEntry e;
      e.name = label + ".plan" + std::to_string(plan_index++);
      e.actions = rep.actions;
      for (const verify::Finding& f : rep.findings) {
        if (f.severity == verify::Severity::Error) {
          ++e.errors;
        } else {
          ++e.warnings;
        }
        e.lines.push_back(
            std::string(f.severity == verify::Severity::Error
                            ? "error["
                            : "warning[") +
            verify::diag_name(f.code) + "]: " + f.message);
      }
      out->entries.push_back(std::move(e));
      return std::string();  // record, don't abort
    });
  }
};

/// Every rank issues `issue(me)` and awaits the request.
void run_all(mpi::SimWorld& world,
             const std::function<mpi::Request(int)>& issue) {
  world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](const std::function<mpi::Request(int)>& call,
              int me) -> sim::CoTask {
      mpi::Request r = call(me);
      co_await *r;
    }(issue, rank.world_rank);
  });
}

/// Execution matrix: drive HAN (and through it every submodule) on a
/// 2-node x 2-rank world, analyzing each Plan the runtime builds.
void run_exec(verify::SweepResult& out) {
  mpi::SimWorld world(machine::make_aries(/*nodes=*/2, /*ppn=*/2));
  coll::CollRuntime rt(world);
  coll::ModuleSet mods(world, rt);
  core::HanModule han(world, rt, mods);
  ExecRecorder rec;
  rec.out = &out;
  rec.arm(rt);

  const mpi::Comm& wc = world.world_comm();
  const std::size_t bytes = 64 << 10;
  const auto buf = [&](std::size_t b) {
    return mpi::BufView::timing_only(b, mpi::Datatype::Int32);
  };

  struct ConfigCase {
    const char* tag;
    core::HanConfig cfg;
  };
  std::vector<ConfigCase> cases;
  for (const char* smod : {"sm", "solo"}) {
    core::HanConfig libnbc;
    libnbc.fs = 16 << 10;
    libnbc.imod = "libnbc";
    libnbc.smod = smod;
    libnbc.ibalg = coll::Algorithm::Binomial;
    libnbc.iralg = coll::Algorithm::Binomial;
    cases.push_back({smod, libnbc});
    core::HanConfig adapt = libnbc;
    adapt.imod = "adapt";
    adapt.ibalg = coll::Algorithm::Chain;
    adapt.iralg = coll::Algorithm::Chain;
    adapt.ibs = 8 << 10;
    adapt.irs = 8 << 10;
    cases.push_back({smod, adapt});
  }

  for (const ConfigCase& c : cases) {
    const std::string prefix =
        std::string("exec.2x2.") + c.cfg.imod + "." + c.tag;
    rec.label = prefix + ".bcast";
    rec.plan_index = 0;
    run_all(world, [&](int me) {
      return han.ibcast_cfg(wc, me, 0, buf(bytes), mpi::Datatype::Int32,
                            c.cfg);
    });
    rec.label = prefix + ".reduce";
    rec.plan_index = 0;
    run_all(world, [&](int me) {
      return han.ireduce_cfg(wc, me, 0, buf(bytes), buf(bytes),
                             mpi::Datatype::Int32, mpi::ReduceOp::Sum,
                             c.cfg);
    });
    rec.label = prefix + ".allreduce";
    rec.plan_index = 0;
    run_all(world, [&](int me) {
      return han.iallreduce_cfg(wc, me, buf(bytes), buf(bytes),
                                mpi::Datatype::Int32, mpi::ReduceOp::Sum,
                                c.cfg);
    });
    rec.label = prefix + ".reduce_scatter";
    rec.plan_index = 0;
    run_all(world, [&](int me) {
      return han.ireduce_scatter_cfg(wc, me, buf(bytes),
                                     buf(bytes / wc.size()),
                                     mpi::Datatype::Int32,
                                     mpi::ReduceOp::Sum, c.cfg);
    });
  }

  // Ring inter module (reduce-scatter only).
  {
    core::HanConfig ring;
    ring.fs = 16 << 10;
    ring.imod = "ring";
    ring.smod = "sm";
    ring.ibalg = coll::Algorithm::Ring;
    ring.iralg = coll::Algorithm::Ring;
    rec.label = "exec.2x2.ring.sm.reduce_scatter";
    rec.plan_index = 0;
    run_all(world, [&](int me) {
      return han.ireduce_scatter_cfg(wc, me, buf(bytes),
                                     buf(bytes / wc.size()),
                                     mpi::Datatype::Int32,
                                     mpi::ReduceOp::Sum, ring);
    });
  }

  // The decider-driven entry points (gather/scatter/allgather/barrier).
  rec.label = "exec.2x2.default.gather";
  rec.plan_index = 0;
  run_all(world, [&](int me) {
    return han.igather(wc, me, 0, buf(bytes), buf(bytes * wc.size()),
                       coll::CollConfig{});
  });
  rec.label = "exec.2x2.default.scatter";
  rec.plan_index = 0;
  run_all(world, [&](int me) {
    return han.iscatter(wc, me, 0, buf(bytes * wc.size()), buf(bytes),
                        coll::CollConfig{});
  });
  rec.label = "exec.2x2.default.allgather";
  rec.plan_index = 0;
  run_all(world, [&](int me) {
    return han.iallgather(wc, me, buf(bytes), buf(bytes * wc.size()),
                          coll::CollConfig{});
  });
  rec.label = "exec.2x2.default.barrier";
  rec.plan_index = 0;
  run_all(world, [&](int me) { return han.ibarrier(wc, me); });

  rt.set_plan_checker(nullptr);
}

bool parse_windows(const char* arg, std::vector<int>* out) {
  out->clear();
  int v = 0;
  bool any = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      v = v * 10 + (*p - '0');
      any = true;
    } else if (*p == ',' || *p == '\0') {
      if (!any || v < 1) return false;
      out->push_back(v);
      v = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  verify::SweepOptions opts;
  bool exec = true;
  bool quiet = false;
  std::string json_path;
  std::string lookup_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--smoke") == 0) {
      opts.full_space = false;
    } else if (std::strcmp(a, "--no-plans") == 0) {
      opts.plans = false;
    } else if (std::strcmp(a, "--no-graphs") == 0) {
      opts.graphs = false;
    } else if (std::strcmp(a, "--no-exec") == 0) {
      exec = false;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--windows") == 0 && i + 1 < argc) {
      if (!parse_windows(argv[++i], &opts.windows)) {
        std::fprintf(stderr, "han_verify: bad --windows list '%s'\n",
                     argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = han::par::parse_jobs(argv[++i]);
      if (opts.jobs < 0) {
        std::fprintf(stderr, "han_verify: bad --jobs value '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(a, "--from-lookup") == 0 && i + 1 < argc) {
      lookup_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: han_verify [--smoke] [--no-plans] [--no-graphs] "
                   "[--no-exec] [--windows 1,2,3] [--jobs N] "
                   "[--from-lookup <path>] [--json <path>] [--quiet]\n");
      return std::strcmp(a, "--help") == 0 ? 0 : 1;
    }
  }

  verify::SweepResult result;
  if (!lookup_path.empty()) {
    const std::optional<tune::LookupTable> table =
        tune::LookupTable::load(lookup_path);
    if (!table.has_value()) {
      std::fprintf(stderr, "han_verify: cannot load lookup table '%s'\n",
                   lookup_path.c_str());
      return 1;
    }
    verify::verify_lookup(*table, result);
  } else {
    result = verify::run_sweep(opts);
    if (exec) run_exec(result);
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const verify::SweepEntry& a, const verify::SweepEntry& b) {
              return a.name < b.name;
            });

  if (!json_path.empty()) {
    const std::string j = result.to_json();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "han_verify: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
  }
  if (!quiet) {
    std::fputs(result.summary().c_str(), stdout);
  }
  return result.total_errors() == 0 ? 0 : 2;
}

// han_synth — bounded, verified schedule synthesis (docs/SYNTHESIS.md).
//
//   han_synth [--smoke] [--nodes N] [--ppn P] [--numa D] [--sizes 64K,1M]
//             [--seed S] [--rounds R] [--mutants M] [--finalists K]
//             [--jobs N] [--json <path>] [--save-lookup <path>] [--quiet]
//
// --numa D (D > 1) synthesizes on a NUMA machine: the three-level chain
// (mr/mb stages, docs/HIERARCHY.md) joins the enumeration and the
// baseline is the hand-written derived three-level ladder.
//
// --jobs N runs the independent (collective, size) cases on N threads
// (0 = one per hardware thread); results are byte-identical for every N.
//
// Runs han::synth::run_synthesis: enumerate the generator grammar, prune
// on the symbolic (lat, bw) pareto frontier, gate survivors through
// han::verify, score the finalists in the simulator, and pick a winner
// per (collective, size) case. --save-lookup persists the winners as a
// LookupTable file that HanModule dispatches like any tuned config.
// Exit status: 0 = every finalist verified clean and every case's winner
// matched or beat the hand-written baseline; 2 otherwise.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "han/synth/synth.hpp"
#include "parallel/pool.hpp"

namespace {

bool parse_sizes(const char* arg, std::vector<std::size_t>* out) {
  out->clear();
  std::size_t v = 0;
  bool any = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<std::size_t>(*p - '0');
      any = true;
    } else if (*p == 'K' || *p == 'k') {
      v <<= 10;
    } else if (*p == 'M' || *p == 'm') {
      v <<= 20;
    } else if (*p == ',' || *p == '\0') {
      if (!any || v == 0) return false;
      out->push_back(v);
      v = 0;
      any = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  han::synth::SynthOptions opts;
  bool quiet = false;
  std::string json_path;
  std::string lookup_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool has_val = i + 1 < argc;
    if (std::strcmp(a, "--smoke") == 0) {
      // Tiny-budget CI configuration: one size per kind, one base config
      // axis value each, a single short mutation round.
      opts.sizes = {64 << 10};
      opts.fs_sizes = {64 << 10};
      opts.windows = {2};
      opts.mutation_rounds = 1;
      opts.mutants_per_round = 8;
      opts.max_finalists = 4;
    } else if (std::strcmp(a, "--nodes") == 0 && has_val) {
      opts.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--ppn") == 0 && has_val) {
      opts.ppn = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--numa") == 0 && has_val) {
      opts.numa = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--sizes") == 0 && has_val) {
      if (!parse_sizes(argv[++i], &opts.sizes)) {
        std::fprintf(stderr, "han_synth: bad --sizes list '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--seed") == 0 && has_val) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--rounds") == 0 && has_val) {
      opts.mutation_rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--mutants") == 0 && has_val) {
      opts.mutants_per_round = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--finalists") == 0 && has_val) {
      opts.max_finalists = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--jobs") == 0 && has_val) {
      opts.jobs = han::par::parse_jobs(argv[++i]);
      if (opts.jobs < 0) {
        std::fprintf(stderr, "han_synth: bad --jobs value '%s'\n", argv[i]);
        return 1;
      }
    } else if (std::strcmp(a, "--json") == 0 && has_val) {
      json_path = argv[++i];
    } else if (std::strcmp(a, "--save-lookup") == 0 && has_val) {
      lookup_path = argv[++i];
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: han_synth [--smoke] [--nodes N] [--ppn P] "
                   "[--numa D] [--sizes 64K,1M] [--seed S] [--rounds R] "
                   "[--mutants M] [--finalists K] [--jobs N] "
                   "[--json <path>] [--save-lookup <path>] [--quiet]\n");
      return std::strcmp(a, "--help") == 0 ? 0 : 1;
    }
  }
  if (opts.nodes < 2 || opts.ppn < 1) {
    std::fprintf(stderr, "han_synth: need --nodes >= 2 and --ppn >= 1\n");
    return 1;
  }
  if (opts.numa < 1 || opts.ppn % opts.numa != 0) {
    std::fprintf(stderr,
                 "han_synth: --numa must be >= 1 and divide --ppn\n");
    return 1;
  }

  const han::synth::SynthResult result = han::synth::run_synthesis(opts);

  if (!json_path.empty()) {
    const std::string j = result.to_json();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "han_synth: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
  }
  if (!lookup_path.empty() && !result.winners().save(lookup_path)) {
    return 1;
  }

  const int findings = result.finalist_findings();
  const int wins = result.wins();
  const int cases = static_cast<int>(result.cases.size());
  if (!quiet) {
    for (const han::synth::SynthCase& c : result.cases) {
      const char* verdict = "NO WINNER";
      double ratio = 0.0;
      if (c.winner >= 0 && c.baseline > 0.0) {
        ratio = c.finalists[c.winner].time / c.baseline;
        verdict = ratio <= 1.0 + 1e-9 ? "ok" : "SLOWER";
      }
      std::printf("%-24s explored %4d  frontier %3d  finalists %2zu  "
                  "vs_baseline %.4f  %s\n",
                  c.name.c_str(), c.explored, c.frontier, c.finalists.size(),
                  ratio, verdict);
    }
    std::printf("han_synth: %d cases, %d findings among finalists, "
                "%d/%d wins\n",
                cases, findings, wins, cases);
  }
  return findings == 0 && wins == cases ? 0 : 2;
}

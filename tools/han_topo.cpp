// han_topo — print the hierarchy derived from a topology descriptor
// (docs/HIERARCHY.md) as obs-style JSON.
//
//   han_topo [--machine aries|opath] [--nodes N] [--ppn P] [--numa D]
//            [--stock NAME] [--topo DESC] [--out FILE]
//
// The default machine is aries 8x4 flat. --stock picks a registered stock
// machine by name (see `--stock list`). --topo overrides the derived
// descriptor (e.g. --topo node<cluster forces the flat 2-level split on a
// NUMA machine). Output goes to stdout unless --out is given.
//
// The JSON records, per level: the level key, the runtime label the
// scheduler observes ("intra"/"mid"/"inter"), the number of distinct
// communicator families, the family size, and whether any data crosses
// the level (live). Per rank it records the slot coordinates — rank(l,pr)
// at each level — and whether the rank sits on the leader chain.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "han/hierarchy.hpp"

namespace {

using namespace han;

int usage(bool ok) {
  std::fprintf(
      ok ? stdout : stderr,
      "usage: han_topo [--machine aries|opath] [--nodes N] [--ppn P]\n"
      "                [--numa D] [--stock NAME|list] [--topo DESC]\n"
      "                [--out FILE]\n");
  return ok ? 0 : 2;
}

std::string level_label(const core::Hierarchy& h, int l) {
  if (l == 0) return "intra";
  if (l == h.depth() - 1) return "inter";
  return "mid";
}

}  // namespace

int main(int argc, char** argv) {
  std::string family = "aries";
  int nodes = 8, ppn = 4, numa = 1;
  std::string stock, topo_text, out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--machine") {
      const char* v = next();
      if (v == nullptr) return usage(false);
      family = v;
    } else if (a == "--nodes" || a == "--ppn" || a == "--numa") {
      const char* v = next();
      if (v == nullptr) return usage(false);
      const int n = std::atoi(v);
      if (n <= 0) return usage(false);
      (a == "--nodes" ? nodes : a == "--ppn" ? ppn : numa) = n;
    } else if (a == "--stock") {
      const char* v = next();
      if (v == nullptr) return usage(false);
      stock = v;
    } else if (a == "--topo") {
      const char* v = next();
      if (v == nullptr) return usage(false);
      topo_text = v;
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(false);
      out_path = v;
    } else if (a == "--help" || a == "-h") {
      return usage(true);
    } else {
      std::fprintf(stderr, "han_topo: unknown argument '%s'\n", a.c_str());
      return usage(false);
    }
  }

  if (stock == "list") {
    for (const machine::StockMachine& sm : machine::stock_machines()) {
      std::printf("%s\n", sm.name);
    }
    return 0;
  }

  machine::MachineProfile profile;
  if (!stock.empty()) {
    bool found = false;
    for (const machine::StockMachine& sm : machine::stock_machines()) {
      if (stock == sm.name) {
        profile = sm.profile;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "han_topo: unknown --stock '%s' (try list)\n",
                   stock.c_str());
      return 2;
    }
  } else if (!machine::make_stock(family, nodes, ppn, numa, &profile)) {
    std::fprintf(stderr, "han_topo: unknown --machine '%s'\n",
                 family.c_str());
    return 2;
  }

  core::TopologyDescriptor topo =
      core::TopologyDescriptor::from_profile(profile);
  if (!topo_text.empty() &&
      !core::TopologyDescriptor::parse(topo_text, &topo)) {
    std::fprintf(stderr, "han_topo: malformed --topo '%s'\n",
                 topo_text.c_str());
    return 2;
  }

  mpi::SimWorld world(profile);
  core::Hierarchy h(world, world.world_comm(), topo);
  const int n = world.world_size();

  std::string j = "{\n";
  j += "  \"machine\": \"" + profile.name + "\",\n";
  j += "  \"nodes\": " + std::to_string(profile.nodes) + ",\n";
  j += "  \"ppn\": " + std::to_string(profile.procs_per_node) + ",\n";
  j += "  \"numa_per_node\": " + std::to_string(profile.numa_per_node) +
       ",\n";
  j += "  \"descriptor\": \"" + topo.to_string() + "\",\n";
  j += "  \"depth\": " + std::to_string(h.depth()) + ",\n";
  j += "  \"world_size\": " + std::to_string(n) + ",\n";
  j += "  \"node_count\": " + std::to_string(h.node_count()) + ",\n";
  j += "  \"max_ppn\": " + std::to_string(h.max_ppn()) + ",\n";
  j += "  \"levels\": [\n";
  for (int l = 0; l < h.depth(); ++l) {
    std::vector<int> contexts;
    int max_size = 0;
    bool live = false;
    for (int pr = 0; pr < n; ++pr) {
      const mpi::Comm* c = h.comm(l, pr);
      if (c == nullptr) continue;
      if (c->size() > max_size) max_size = c->size();
      if (c->size() > 1) live = true;
      bool seen = false;
      for (int ctx : contexts) seen = seen || ctx == c->context();
      if (!seen) contexts.push_back(c->context());
    }
    j += "    {\"index\": " + std::to_string(l) + ", \"name\": \"" +
         h.level_name(l) + "\", \"label\": \"" + level_label(h, l) +
         "\", \"families\": " + std::to_string(contexts.size()) +
         ", \"size\": " + std::to_string(max_size) + ", \"live\": " +
         (live ? "true" : "false") + "}" + (l + 1 < h.depth() ? "," : "") +
         "\n";
  }
  j += "  ],\n";
  j += "  \"ranks\": [\n";
  for (int pr = 0; pr < n; ++pr) {
    j += "    {\"rank\": " + std::to_string(pr) + ", \"slots\": [";
    for (int l = 0; l < h.depth(); ++l) {
      j += std::to_string(h.rank(l, pr));
      if (l + 1 < h.depth()) j += ", ";
    }
    j += "], \"leader\": ";
    j += h.leader_below(h.depth() - 1, pr) ? "true" : "false";
    j += std::string("}") + (pr + 1 < n ? "," : "") + "\n";
  }
  j += "  ]\n";
  j += "}\n";

  if (out_path.empty()) {
    std::fwrite(j.data(), 1, j.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "han_topo: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(j.data(), 1, j.size(), f);
  std::fclose(f);
  std::printf("topo json: %s\n", out_path.c_str());
  return 0;
}

#include "vendor/stack.hpp"

#include <cstring>

#include "coll/ring/ring_builders.hpp"

namespace han::vendor {

using coll::Algorithm;
using coll::CollConfig;
using mpi::BufView;
using mpi::Request;

namespace {

mpi::SimWorld::Options world_options(const machine::P2pParams* p2p,
                                     bool data_mode) {
  mpi::SimWorld::Options o;
  o.data_mode = data_mode;
  o.p2p_override = p2p;
  return o;
}

}  // namespace

MpiStack::MpiStack(std::string name, machine::MachineProfile profile,
                   const machine::P2pParams* p2p_override, bool data_mode)
    : name_(std::move(name)),
      world_(std::move(profile), world_options(p2p_override, data_mode)),
      rt_(world_),
      mods_(world_, rt_) {}

Request MpiStack::ireduce_scatter(int rank, BufView send, BufView recv,
                                  mpi::Datatype dtype, mpi::ReduceOp op) {
  // Fallback for stacks without a native reduce-scatter: allreduce the
  // whole vector and keep the local block, the coll/basic cost structure.
  // The final block copy is node-local and vanishes next to the
  // full-vector allreduce, so it is not charged to the clock.
  Request done = mpi::make_request(world_.engine());
  auto tmp = std::make_shared<std::vector<std::byte>>();
  BufView full = BufView::timing_only(send.bytes, dtype);
  if (world_.data_mode() && send.has_data() && recv.has_data()) {
    tmp->resize(send.bytes);
    full = BufView{tmp->data(), send.bytes, dtype};
  }
  const std::size_t off = static_cast<std::size_t>(rank) * recv.bytes;
  Request r = iallreduce(rank, send, full, dtype, op);
  r->on_complete([done, tmp, recv, off] {
    if (recv.has_data() && !tmp->empty()) {
      std::memcpy(recv.data, tmp->data() + off, recv.bytes);
    }
    done->complete();
  });
  return done;
}

Request MpiStack::iallgather(int rank, BufView send, BufView recv) {
  return mods_.tuned().iallgather(world_.world_comm(), rank, send, recv,
                                  CollConfig{});
}

// --- default Open MPI -------------------------------------------------------

OmpiStack::OmpiStack(machine::MachineProfile profile, bool data_mode)
    : MpiStack("ompi", std::move(profile), nullptr, data_mode) {}

Request OmpiStack::ibcast(int rank, int root, BufView buf,
                          mpi::Datatype dtype) {
  return mods_.tuned().ibcast(world_.world_comm(), rank, root, buf, dtype,
                              CollConfig{});
}

Request OmpiStack::iallreduce(int rank, BufView send, BufView recv,
                              mpi::Datatype dtype, mpi::ReduceOp op) {
  return mods_.tuned().iallreduce(world_.world_comm(), rank, send, recv,
                                  dtype, op, CollConfig{});
}

// --- HAN ---------------------------------------------------------------------

HanStack::HanStack(machine::MachineProfile profile, bool data_mode)
    : MpiStack("han", std::move(profile), nullptr, data_mode),
      han_(std::make_unique<core::HanModule>(world_, rt_, mods_)) {}

tune::TuneReport HanStack::autotune(const tune::TunerOptions& options) {
  tune::Tuner tuner(world_, *han_, world_.world_comm());
  tune::TuneReport report = tuner.tune(options);
  tuner.install(report.table);
  return report;
}

Request HanStack::ibcast(int rank, int root, BufView buf,
                         mpi::Datatype dtype) {
  return han_->ibcast(world_.world_comm(), rank, root, buf, dtype,
                      CollConfig{});
}

Request HanStack::iallreduce(int rank, BufView send, BufView recv,
                             mpi::Datatype dtype, mpi::ReduceOp op) {
  return han_->iallreduce(world_.world_comm(), rank, send, recv, dtype, op,
                          CollConfig{});
}

Request HanStack::ireduce_scatter(int rank, BufView send, BufView recv,
                                  mpi::Datatype dtype, mpi::ReduceOp op) {
  return han_->ireduce_scatter(world_.world_comm(), rank, send, recv, dtype,
                               op, CollConfig{});
}

Request HanStack::iallgather(int rank, BufView send, BufView recv) {
  return han_->iallgather(world_.world_comm(), rank, send, recv,
                          CollConfig{});
}

// --- SMP-aware vendor stacks --------------------------------------------------

SmpVendorStack::SmpVendorStack(std::string name,
                               machine::MachineProfile profile,
                               const machine::P2pParams& p2p,
                               VendorParams params, bool data_mode)
    : MpiStack(std::move(name), std::move(profile), &p2p, data_mode),
      params_(params) {
  hc_ = std::make_unique<core::Hierarchy>(world_, world_.world_comm(),
                                         core::TopologyDescriptor::flat());
}

coll::CollModule& SmpVendorStack::intra_module(std::size_t bytes) {
  // Vendors ship well-tuned shm collectives; model as an internal
  // SM-vs-SOLO size switch.
  if (bytes >= params_.intra_solo_threshold) return mods_.solo();
  return mods_.sm();
}

namespace {

/// Two-level blocking bcast: whole-message inter phase into node leaders,
/// then the intra phase — sequential levels, no overlap (the structural
/// reason HAN overtakes vendors on large messages, Fig. 10).
sim::CoTask smp_bcast(SmpVendorStack& stack, core::Hierarchy& hc,
                      coll::CollModule& intra, coll::CollModule& inter,
                      const SmpVendorStack::VendorParams& params, int me,
                      int root, BufView buf, mpi::Datatype dtype,
                      Request done) {
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;

  if (has_inter && me_low == root_low) {
    const bool large = buf.bytes >= params.large_bcast_threshold;
    const CollConfig icfg{
        large ? params.inter_bcast_alg_large : params.inter_bcast_alg,
        large ? params.inter_segment_large : params.inter_segment};
    co_await *inter.ibcast(*hc.up(me), hc.up_rank(me), hc.up_rank(root), buf,
                           dtype, icfg);
  }
  if (has_intra) {
    co_await *intra.ibcast(low, me_low, root_low, buf, dtype, CollConfig{});
  }
  (void)stack;
  done->complete();
}

/// Two-level blocking allreduce: intra reduce → inter allreduce among
/// leaders (recursive doubling, or SALaR-style ring for large messages) →
/// intra bcast.
sim::CoTask smp_allreduce(SmpVendorStack& stack, mpi::SimWorld& w,
                          core::Hierarchy& hc, coll::CollModule& intra,
                          coll::CollModule& inter,
                          const SmpVendorStack::VendorParams& params, int me,
                          BufView send, BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, Request done) {
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;

  if (!has_inter) {
    if (has_intra) {
      co_await *intra.iallreduce(low, me_low, send, recv, dtype, op,
                                 CollConfig{});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    done->complete();
    co_return;
  }

  const bool ring = params.ring_inter_allreduce &&
                    send.bytes >= params.ring_threshold &&
                    hc.up(me)->size() >= 4;
  const bool segmented = ring && has_intra && params.salar_segment > 0 &&
                         send.bytes > params.salar_segment;

  if (!segmented) {
    // Phase 1: intra-node reduction into the leader's recv buffer.
    if (has_intra) {
      co_await *intra.ireduce(low, me_low, /*root=*/0, send, recv, dtype, op,
                              CollConfig{});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    // Phase 2: leaders run the inter-node allreduce in place.
    if (me_low == 0) {
      const mpi::Comm& up = *hc.up(me);
      if (ring) {
        // SALaR-style bandwidth-optimal ring among leaders with
        // vectorized reductions (in place).
        co_await *stack.ring_allreduce(up, hc.up_rank(me), recv, dtype, op);
      } else {
        co_await *inter.iallreduce(up, hc.up_rank(me), recv, recv, dtype, op,
                                   CollConfig{});
      }
    }
    // Phase 3: intra-node broadcast of the final value.
    if (has_intra) {
      co_await *intra.ibcast(low, me_low, /*root=*/0, recv, dtype,
                             CollConfig{});
    }
    done->complete();
    co_return;
  }

  // SALaR proper (paper ref [2]): segment the message and pipeline the
  // three phases — intra reduce(i), leader ring(i-1), intra bcast(i-2) —
  // which is what keeps MVAPICH2 competitive with HAN at the top message
  // sizes (Fig. 14).
  const coll::Segmenter segs(send.bytes, params.salar_segment, dtype);
  const int u = segs.count();
  for (int t = 0; t <= u + 1; ++t) {
    std::vector<mpi::Request> task;
    if (has_intra && t <= u - 1) {
      task.push_back(intra.ireduce(
          low, me_low, 0, send.slice(segs.offset(t), segs.length(t)),
          recv.slice(segs.offset(t), segs.length(t)), dtype, op,
          CollConfig{}));
    }
    if (me_low == 0 && t >= 1 && t - 1 <= u - 1) {
      task.push_back(stack.ring_allreduce(
          *hc.up(me), hc.up_rank(me),
          recv.slice(segs.offset(t - 1), segs.length(t - 1)), dtype, op));
    }
    if (has_intra && t >= 2 && t - 2 <= u - 1) {
      task.push_back(intra.ibcast(
          low, me_low, 0, recv.slice(segs.offset(t - 2), segs.length(t - 2)),
          dtype, CollConfig{}));
    }
    if (!task.empty()) co_await mpi::wait_all(w.engine(), std::move(task));
  }
  done->complete();
}

}  // namespace

Request SmpVendorStack::ibcast(int rank, int root, BufView buf,
                               mpi::Datatype dtype) {
  Request done = mpi::make_request(world_.engine());
  if (!params_.hierarchical_bcast) {
    // MVAPICH2-like: hierarchy-unaware segmented binomial on the flat comm.
    const CollConfig cfg{Algorithm::Binomial, 8 << 10};
    mpi::Request r = mods_.tuned().ibcast(world_.world_comm(), rank, root,
                                          buf, dtype, cfg);
    r->on_complete([done] { done->complete(); });
    return done;
  }
  smp_bcast(*this, *hc_, intra_module(buf.bytes), mods_.tuned(), params_,
            rank, root, buf, dtype, done)
      .start();
  return done;
}

Request SmpVendorStack::ring_allreduce(const mpi::Comm& up, int me_up,
                                       BufView buf, mpi::Datatype dtype,
                                       mpi::ReduceOp op) {
  coll::BuildSpec spec;
  spec.bytes = buf.bytes;
  spec.dtype = dtype;
  spec.op = op;
  spec.avx = true;
  spec.op_setup = 0.5e-6;
  const int n = up.size();
  return rt_.start(
      up, me_up, [n, spec] { return coll::build_ring_allreduce(n, spec); },
      {buf, buf});
}

Request SmpVendorStack::iallreduce(int rank, BufView send, BufView recv,
                                   mpi::Datatype dtype, mpi::ReduceOp op) {
  Request done = mpi::make_request(world_.engine());
  smp_allreduce(*this, world_, *hc_, intra_module(send.bytes), mods_.tuned(),
                params_, rank, send, recv, dtype, op, done)
      .start();
  return done;
}

// --- parameter sets ------------------------------------------------------------

machine::P2pParams cray_p2p() {
  machine::P2pParams p;
  p.eager_limit = 8 << 10;
  p.send_overhead = 0.22e-6;
  p.recv_overhead = 0.22e-6;
  p.match_overhead = 0.12e-6;
  p.rndv_rtt_extra = 0.9e-6;
  p.net_efficiency = machine::vendor_net_efficiency();
  return p;
}

machine::P2pParams intel_p2p() {
  machine::P2pParams p;
  p.eager_limit = 8 << 10;
  p.send_overhead = 0.26e-6;
  p.recv_overhead = 0.26e-6;
  p.match_overhead = 0.16e-6;
  p.rndv_rtt_extra = 1.1e-6;
  p.net_efficiency = machine::vendor_net_efficiency();
  return p;
}

machine::P2pParams mvapich_p2p() {
  machine::P2pParams p;
  p.eager_limit = 8 << 10;
  p.send_overhead = 0.28e-6;
  p.recv_overhead = 0.28e-6;
  p.match_overhead = 0.18e-6;
  p.rndv_rtt_extra = 1.2e-6;
  p.net_efficiency = machine::vendor_net_efficiency();
  return p;
}

std::unique_ptr<MpiStack> make_stack(const std::string& name,
                                     machine::MachineProfile profile,
                                     bool data_mode) {
  if (name == "ompi") {
    return std::make_unique<OmpiStack>(std::move(profile), data_mode);
  }
  if (name == "han") {
    return std::make_unique<HanStack>(std::move(profile), data_mode);
  }
  if (name == "cray") {
    SmpVendorStack::VendorParams p;
    p.inter_bcast_alg = Algorithm::Binomial;
    p.inter_segment = 64 << 10;
    p.intra_solo_threshold = 128 << 10;
    p.ring_inter_allreduce = true;  // Cray's strong large-msg allreduce
    p.ring_threshold = 512 << 10;
    p.salar_segment = 8 << 20;      // shallow cross-phase pipelining
    return std::make_unique<SmpVendorStack>("cray", std::move(profile),
                                            cray_p2p(), p, data_mode);
  }
  if (name == "intel") {
    SmpVendorStack::VendorParams p;
    p.inter_bcast_alg = Algorithm::Binomial;
    p.inter_segment = 32 << 10;
    p.intra_solo_threshold = 256 << 10;
    p.ring_inter_allreduce = true;
    p.ring_threshold = 4 << 20;
    p.salar_segment = 0;
    return std::make_unique<SmpVendorStack>("intel", std::move(profile),
                                            intel_p2p(), p, data_mode);
  }
  if (name == "mvapich") {
    SmpVendorStack::VendorParams p;
    p.hierarchical_bcast = false;  // Fig. 12: MVAPICH2 bcast lags badly
    p.ring_inter_allreduce = true;  // Fig. 14: strong large-msg allreduce
    p.ring_threshold = 1 << 20;
    p.intra_solo_threshold = 256 << 10;
    return std::make_unique<SmpVendorStack>("mvapich", std::move(profile),
                                            mvapich_p2p(), p, data_mode);
  }
  HAN_ASSERT_MSG(false, "unknown MPI stack name");
  return nullptr;
}

}  // namespace han::vendor

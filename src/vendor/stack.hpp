// MpiStack: a complete simulated MPI installation — its own SimWorld (with
// stack-specific P2P parameters), collective machinery, and top-level
// Bcast/Allreduce entry points. The benchmark harnesses iterate over
// stacks to produce the paper's comparison figures.
//
// Available stacks (paper §IV):
//  * "ompi"    — default Open MPI: coll/tuned fixed decisions, flat trees.
//  * "han"     — Open MPI + HAN (this paper), optionally autotuned.
//  * "cray"    — Cray MPI 7.7.0 analogue (Shaheen II): excellent P2P,
//                SMP-aware two-level collectives, no inter/intra overlap.
//  * "intel"   — Intel MPI 18.0.2 analogue (Stampede2): good P2P,
//                SMP-aware collectives.
//  * "mvapich" — MVAPICH2 2.3.1 analogue (Stampede2): hierarchy-unaware
//                bcast, SALaR-style multi-level allreduce (strong at large
//                messages, Fig. 14).
#pragma once

#include <memory>
#include <string>

#include "autotune/tuner.hpp"
#include "han/han.hpp"

namespace han::vendor {

class MpiStack {
 public:
  MpiStack(std::string name, machine::MachineProfile profile,
           const machine::P2pParams* p2p_override, bool data_mode = false);
  virtual ~MpiStack() = default;
  MpiStack(const MpiStack&) = delete;
  MpiStack& operator=(const MpiStack&) = delete;

  const std::string& name() const { return name_; }
  mpi::SimWorld& world() { return world_; }
  coll::ModuleSet& modules() { return mods_; }
  /// The stack's collective runtime (tracing/observability hookup).
  coll::CollRuntime& runtime() { return rt_; }

  /// Collectives on the stack's world communicator. Every rank calls.
  virtual mpi::Request ibcast(int rank, int root, mpi::BufView buf,
                              mpi::Datatype dtype) = 0;
  virtual mpi::Request iallreduce(int rank, mpi::BufView send,
                                  mpi::BufView recv, mpi::Datatype dtype,
                                  mpi::ReduceOp op) = 0;

  /// Sharded-training collectives (the ZeRO/FSDP step). The base
  /// implementations model stacks without native support: reduce-scatter
  /// falls back to a full allreduce keeping the local block (coll/basic
  /// style), allgather goes through the flat tuned module. HAN overrides
  /// both with its hierarchical paths.
  virtual mpi::Request ireduce_scatter(int rank, mpi::BufView send,
                                       mpi::BufView recv,
                                       mpi::Datatype dtype, mpi::ReduceOp op);
  virtual mpi::Request iallgather(int rank, mpi::BufView send,
                                  mpi::BufView recv);

 protected:
  std::string name_;
  mpi::SimWorld world_;
  coll::CollRuntime rt_;
  coll::ModuleSet mods_;
};

/// Default Open MPI: everything through coll/tuned on the flat world comm.
class OmpiStack : public MpiStack {
 public:
  explicit OmpiStack(machine::MachineProfile profile, bool data_mode = false);
  mpi::Request ibcast(int rank, int root, mpi::BufView buf,
                      mpi::Datatype dtype) override;
  mpi::Request iallreduce(int rank, mpi::BufView send, mpi::BufView recv,
                          mpi::Datatype dtype, mpi::ReduceOp op) override;
};

/// Open MPI + HAN. Call autotune() once to replace the default decision
/// heuristic with a task-model-tuned lookup table.
class HanStack : public MpiStack {
 public:
  explicit HanStack(machine::MachineProfile profile, bool data_mode = false);

  /// Offline autotuning (charges only this stack's simulated clock).
  tune::TuneReport autotune(const tune::TunerOptions& options);

  core::HanModule& han() { return *han_; }

  mpi::Request ibcast(int rank, int root, mpi::BufView buf,
                      mpi::Datatype dtype) override;
  mpi::Request iallreduce(int rank, mpi::BufView send, mpi::BufView recv,
                          mpi::Datatype dtype, mpi::ReduceOp op) override;
  mpi::Request ireduce_scatter(int rank, mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype,
                               mpi::ReduceOp op) override;
  mpi::Request iallgather(int rank, mpi::BufView send,
                          mpi::BufView recv) override;

 private:
  std::unique_ptr<core::HanModule> han_;
};

/// SMP-aware vendor MPI: two-level collectives without cross-level
/// pipelining (whole-message inter phase, then intra phase). The
/// per-vendor differences are parameterized.
class SmpVendorStack : public MpiStack {
 public:
  struct VendorParams {
    coll::Algorithm inter_bcast_alg = coll::Algorithm::Binomial;
    std::size_t inter_segment = 0;       // inter-phase segmentation
    /// Large inter-node broadcasts switch to a pipelined chain (vendors
    /// ship bandwidth-optimal large-message paths).
    coll::Algorithm inter_bcast_alg_large = coll::Algorithm::Chain;
    std::size_t large_bcast_threshold = 256 << 10;
    std::size_t inter_segment_large = 64 << 10;
    bool hierarchical_bcast = true;      // false: flat tree (MVAPICH2-like)
    bool ring_inter_allreduce = false;   // SALaR-style large-message ring
    std::size_t ring_threshold = 1 << 20;
    /// SALaR pipelines its phases over large-message segments; 0 disables.
    std::size_t salar_segment = 4 << 20;
    std::size_t intra_solo_threshold = 256 << 10;  // sm below, solo above
  };

  SmpVendorStack(std::string name, machine::MachineProfile profile,
                 const machine::P2pParams& p2p, VendorParams params,
                 bool data_mode = false);

  mpi::Request ibcast(int rank, int root, mpi::BufView buf,
                      mpi::Datatype dtype) override;
  mpi::Request iallreduce(int rank, mpi::BufView send, mpi::BufView recv,
                          mpi::Datatype dtype, mpi::ReduceOp op) override;

  /// SALaR-style ring allreduce on the leader communicator, AVX
  /// reductions, in place.
  mpi::Request ring_allreduce(const mpi::Comm& up, int me_up,
                              mpi::BufView buf, mpi::Datatype dtype,
                              mpi::ReduceOp op);

 private:
  coll::CollModule& intra_module(std::size_t bytes);

  VendorParams params_;
  std::unique_ptr<core::Hierarchy> hc_;  // reused flat two-level ladder
};

/// Vendor P2P parameter sets.
machine::P2pParams cray_p2p();
machine::P2pParams intel_p2p();
machine::P2pParams mvapich_p2p();

/// Factory: build the named stack on a machine profile. Names: ompi, han,
/// cray, intel, mvapich.
std::unique_ptr<MpiStack> make_stack(const std::string& name,
                                     machine::MachineProfile profile,
                                     bool data_mode = false);

}  // namespace han::vendor

#include "machine/machine.hpp"

#include <algorithm>
#include <vector>

#include "simbase/assert.hpp"

namespace han::machine {

EffCurve ompi_net_efficiency() {
  // Shape of Fig. 11's Open MPI trace: full efficiency for eager-size
  // messages, a dip from 16KB to 512KB where the rendezvous pipeline is
  // shallow, recovering to peak by 4MB.
  return EffCurve({
      {1ull << 9, 0.90},    // 512B
      {1ull << 13, 0.85},   // 8KB — eager limit
      {1ull << 14, 0.55},   // 16KB — rendezvous kicks in
      {1ull << 17, 0.45},   // 128KB — bottom of the dip
      {1ull << 19, 0.60},   // 512KB
      {1ull << 21, 0.85},   // 2MB
      {1ull << 22, 0.97},   // 4MB — peak
  });
}

EffCurve vendor_net_efficiency() {
  return EffCurve({
      {1ull << 9, 0.92},
      {1ull << 13, 0.90},
      {1ull << 14, 0.82},
      {1ull << 17, 0.80},
      {1ull << 19, 0.88},
      {1ull << 21, 0.95},
      {1ull << 22, 0.97},
  });
}

MachineProfile make_aries(int nodes, int ppn) {
  MachineProfile m;
  m.name = "aries";
  m.nodes = nodes;
  m.procs_per_node = ppn;

  m.net_latency = 1.4e-6;
  m.nic_bandwidth = 10.0e9;   // ~10 GB/s per direction (Aries class)
  m.bisection_factor = 0.6;   // dragonfly global links oversubscription

  m.shm_latency = 0.25e-6;
  m.membus_bandwidth = 40.0e9;
  m.core_copy_bandwidth = 6.0e9;

  m.reduce_bandwidth_scalar = 2.5e9;
  m.reduce_bandwidth_avx = 12.0e9;

  m.ompi_p2p.eager_limit = 8 << 10;
  m.ompi_p2p.send_overhead = 0.35e-6;
  m.ompi_p2p.recv_overhead = 0.35e-6;
  m.ompi_p2p.match_overhead = 0.20e-6;
  m.ompi_p2p.rndv_rtt_extra = 1.6e-6;
  m.ompi_p2p.net_efficiency = ompi_net_efficiency();
  return m;
}

MachineProfile with_numa(MachineProfile profile, int domains) {
  HAN_ASSERT_MSG(domains >= 1, "need at least one NUMA domain");
  HAN_ASSERT_MSG(profile.procs_per_node % domains == 0,
                 "ppn must divide evenly into NUMA domains");
  profile.numa_per_node = domains;
  if (domains > 1) {
    // Each socket owns its share of the node's memory bandwidth; the
    // inter-socket link is far thinner than local memory (UPI class).
    profile.membus_bandwidth /= domains;
    profile.inter_numa_bandwidth = profile.membus_bandwidth * 0.45;
    profile.inter_numa_latency = 0.15e-6;
  }
  return profile;
}

MachineProfile with_rails(MachineProfile profile, int rails) {
  HAN_ASSERT_MSG(rails >= 1, "need at least one rail");
  profile.nics_per_node = rails;
  return profile;
}

MachineProfile make_opath(int nodes, int ppn) {
  MachineProfile m;
  m.name = "opath";
  m.nodes = nodes;
  m.procs_per_node = ppn;

  m.net_latency = 1.1e-6;
  m.nic_bandwidth = 12.3e9;   // Omni-Path 100 Gb/s class
  m.bisection_factor = 0.5;   // fat-tree with 2:1 taper

  m.shm_latency = 0.20e-6;
  m.membus_bandwidth = 64.0e9;
  m.core_copy_bandwidth = 7.0e9;

  m.reduce_bandwidth_scalar = 3.0e9;
  m.reduce_bandwidth_avx = 14.0e9;

  // Open MPI over PSM2 achieves vendor-class software overheads on
  // Omni-Path (paper Fig. 12: HAN beats Intel MPI even on small messages,
  // unlike on the Cray where uGNI overheads penalize it).
  m.ompi_p2p.eager_limit = 8 << 10;
  m.ompi_p2p.send_overhead = 0.25e-6;
  m.ompi_p2p.recv_overhead = 0.25e-6;
  m.ompi_p2p.match_overhead = 0.15e-6;
  m.ompi_p2p.rndv_rtt_extra = 1.1e-6;
  m.ompi_p2p.net_efficiency = ompi_net_efficiency();
  return m;
}

namespace {

/// Intra-node scaling for the stock multi-rail machines. Nodes with four
/// injection rails are fat GPU-class nodes (the CommBench/HiCCL
/// testbeds): their memory systems are provisioned to feed the aggregate
/// NIC bandwidth, or the extra rails would idle behind the memory bus.
/// The paper-era intra parameters stay untouched on every 1-rail profile.
MachineProfile fat_node(MachineProfile m) {
  m.membus_bandwidth *= 5.0;       // NVLink/HBM-class aggregate
  m.core_copy_bandwidth *= 7.0;    // copy-engine class
  m.reduce_bandwidth_scalar *= 6.0;
  m.reduce_bandwidth_avx *= 6.0;
  return m;
}

}  // namespace

const std::vector<StockMachine>& stock_machines() {
  static const std::vector<StockMachine> kStock = [] {
    std::vector<StockMachine> v;
    v.push_back({"aries2x8", make_aries(2, 8)});
    v.push_back({"opath2x8", make_opath(2, 8)});
    v.push_back({"aries_numa2x2x4", with_numa(make_aries(2, 8), 2)});
    v.push_back({"opath_numa2x2x4", with_numa(make_opath(2, 8), 2)});
    v.push_back({"aries_rail4", with_rails(fat_node(make_aries(2, 8)), 4)});
    v.push_back({"opath_numa2x2x4_rail4",
                 with_rails(with_numa(fat_node(make_opath(2, 8)), 2), 4)});
    return v;
  }();
  return kStock;
}

bool make_stock(const std::string& family, int nodes, int ppn, int numa,
                MachineProfile* out, int rails) {
  MachineProfile m;
  if (family == "aries") {
    m = make_aries(nodes, ppn);
  } else if (family == "opath") {
    m = make_opath(nodes, ppn);
  } else {
    return false;
  }
  *out = with_rails(with_numa(std::move(m), numa), rails);
  return true;
}

void scale_net_efficiency(MachineProfile& profile, double factor,
                          std::uint64_t min_bytes) {
  std::vector<EffCurve::Knot> knots = profile.ompi_p2p.net_efficiency.knots();
  for (EffCurve::Knot& k : knots) {
    if (k.bytes < min_bytes) continue;
    k.efficiency = std::min(1.0, std::max(1e-3, k.efficiency * factor));
  }
  profile.ompi_p2p.net_efficiency = EffCurve(std::move(knots));
}

}  // namespace han::machine

// Instantiates the FlowNet resources of a machine profile.
//
// Per node: one memory bus per NUMA domain (plus an inter-socket link when
// the profile has more than one domain), one NIC transmit lane, one NIC
// receive lane (full duplex — this is what lets HAN's `ir` and `ib`
// overlap in opposite directions, paper Fig. 6). Globally: one fabric
// resource at bisection bandwidth, which produces congestion when many
// node pairs communicate at once.
#pragma once

#include <vector>

#include "flownet/flownet.hpp"
#include "machine/machine.hpp"

namespace han::machine {

class ClusterFabric {
 public:
  ClusterFabric(net::FlowNet& net, const MachineProfile& profile);

  net::ResourceId membus(int node, int numa = 0) const {
    return membus_.at(static_cast<std::size_t>(node) * numa_per_node_ +
                      numa);
  }
  /// Inter-socket link of a node; only valid with numa_per_node > 1.
  net::ResourceId numa_link(int node) const { return numa_link_.at(node); }
  net::ResourceId nic_tx(int node) const { return nic_tx_.at(node); }
  net::ResourceId nic_rx(int node) const { return nic_rx_.at(node); }
  net::ResourceId fabric() const { return fabric_; }
  int numa_per_node() const { return numa_per_node_; }

  /// Resource set of an inter-node transfer src_node → dst_node: sender
  /// NIC tx, fabric, receiver NIC rx, and the NIC-attached (domain 0)
  /// memory buses (the DMA on each end consumes bus bandwidth, which is
  /// the physical cause of the imperfect ib/sb overlap the paper measures
  /// in Fig. 2).
  void inter_path(int src_node, int dst_node,
                  std::vector<net::ResourceId>& out) const;

  /// Resource set of an intra-node copy on `node`, domain `numa`.
  void intra_path(int node, int numa,
                  std::vector<net::ResourceId>& out) const;

  /// Resource set of a transfer between two domains of one node: both
  /// buses plus the inter-socket link when the domains differ.
  void pair_path(int node, int numa_a, int numa_b,
                 std::vector<net::ResourceId>& out) const;

  /// Wire the fabric into a metrics registry already attached to `net`:
  /// records the machine shape as report metadata and tracks the shared
  /// fabric resource's congestion (queue-depth distribution) under
  /// `net.fabric.queue_depth`.
  void register_observability(net::FlowNet& net, const MachineProfile& profile,
                              obs::MetricsRegistry& registry) const;

 private:
  int numa_per_node_ = 1;
  net::ResourceId fabric_ = 0;
  std::vector<net::ResourceId> membus_;     // node-major, numa-minor
  std::vector<net::ResourceId> numa_link_;  // per node (empty if 1 domain)
  std::vector<net::ResourceId> nic_tx_;
  std::vector<net::ResourceId> nic_rx_;
};

}  // namespace han::machine

// Instantiates the FlowNet resources of a machine profile.
//
// Per node: one memory bus per NUMA domain (plus an inter-socket link when
// the profile has more than one domain), and one NIC transmit lane plus
// one NIC receive lane *per rail* (full duplex — this is what lets HAN's
// `ir` and `ib` overlap in opposite directions, paper Fig. 6). Globally:
// one fabric resource per rail at bisection bandwidth, which produces
// congestion when many node pairs communicate at once. Rails are aligned:
// NIC r of every node attaches to fabric rail r and rails never mix, so a
// transfer's rail choice fixes its whole inter-node resource set
// (CommBench's rail-aligned pattern; docs/FABRIC.md). Single-NIC profiles
// (`nics_per_node == 1`, the paper's testbeds) degenerate to the original
// one-lane one-fabric model, with identical resource names and creation
// order.
#pragma once

#include <vector>

#include "flownet/flownet.hpp"
#include "machine/machine.hpp"

namespace han::machine {

class ClusterFabric {
 public:
  ClusterFabric(net::FlowNet& net, const MachineProfile& profile);

  net::ResourceId membus(int node, int numa = 0) const {
    return membus_.at(static_cast<std::size_t>(node) * numa_per_node_ +
                      numa);
  }
  /// Inter-socket link of a node; only valid with numa_per_node > 1.
  net::ResourceId numa_link(int node) const { return numa_link_.at(node); }
  net::ResourceId nic_tx(int node, int rail = 0) const {
    return nic_tx_.at(static_cast<std::size_t>(node) * rails_ + rail);
  }
  net::ResourceId nic_rx(int node, int rail = 0) const {
    return nic_rx_.at(static_cast<std::size_t>(node) * rails_ + rail);
  }
  net::ResourceId fabric(int rail = 0) const { return fabric_.at(rail); }
  int numa_per_node() const { return numa_per_node_; }
  int rails() const { return rails_; }

  /// Resource set of an inter-node transfer src_node → dst_node over
  /// `rail`: sender NIC tx, fabric rail, receiver NIC rx, and the
  /// NIC-attached (domain 0) memory buses (the DMA on each end consumes
  /// bus bandwidth, which is the physical cause of the imperfect ib/sb
  /// overlap the paper measures in Fig. 2).
  void inter_path(int src_node, int dst_node, int rail,
                  std::vector<net::ResourceId>& out) const;

  /// Rail-0 convenience overload (single-rail call sites).
  void inter_path(int src_node, int dst_node,
                  std::vector<net::ResourceId>& out) const {
    inter_path(src_node, dst_node, 0, out);
  }

  /// Resource set of an intra-node copy on `node`, domain `numa`.
  void intra_path(int node, int numa,
                  std::vector<net::ResourceId>& out) const;

  /// Resource set of a transfer between two domains of one node: both
  /// buses plus the inter-socket link when the domains differ.
  void pair_path(int node, int numa_a, int numa_b,
                 std::vector<net::ResourceId>& out) const;

  /// Wire the fabric into a metrics registry already attached to `net`:
  /// records the machine shape as report metadata and tracks each fabric
  /// rail's congestion (queue-depth distribution) — under
  /// `net.fabric.queue_depth` on single-rail machines (the original
  /// metric name) and `net.fabric.rail<r>.queue_depth` per rail on
  /// multi-rail ones. Per-rail byte counters come from the registry's
  /// standard per-resource `net.res.<name>.bytes` counters, since every
  /// rail is its own named resource.
  void register_observability(net::FlowNet& net, const MachineProfile& profile,
                              obs::MetricsRegistry& registry) const;

 private:
  int numa_per_node_ = 1;
  int rails_ = 1;
  std::vector<net::ResourceId> fabric_;     // per rail
  std::vector<net::ResourceId> membus_;     // node-major, numa-minor
  std::vector<net::ResourceId> numa_link_;  // per node (empty if 1 domain)
  std::vector<net::ResourceId> nic_tx_;     // node-major, rail-minor
  std::vector<net::ResourceId> nic_rx_;     // node-major, rail-minor
};

}  // namespace han::machine

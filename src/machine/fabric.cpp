#include "machine/fabric.hpp"

#include "simbase/assert.hpp"

namespace han::machine {

ClusterFabric::ClusterFabric(net::FlowNet& net,
                             const MachineProfile& profile)
    : numa_per_node_(profile.numa_per_node), rails_(profile.nics_per_node) {
  HAN_ASSERT(profile.nodes > 0 && profile.procs_per_node > 0);
  HAN_ASSERT(numa_per_node_ >= 1);
  HAN_ASSERT(rails_ >= 1);
  // Resource names and creation order at rails_ == 1 are frozen by the
  // seed goldens ("fabric", "nic_txN", "nic_rxN"); rail suffixes appear
  // only on multi-rail profiles.
  fabric_.reserve(rails_);
  for (int r = 0; r < rails_; ++r) {
    const std::string name =
        rails_ == 1 ? "fabric" : "fabric.r" + std::to_string(r);
    fabric_.push_back(net.add_resource(
        name, profile.bisection_factor * profile.nodes *
                  profile.nic_bandwidth));
  }
  membus_.reserve(static_cast<std::size_t>(profile.nodes) * numa_per_node_);
  nic_tx_.reserve(static_cast<std::size_t>(profile.nodes) * rails_);
  nic_rx_.reserve(static_cast<std::size_t>(profile.nodes) * rails_);
  for (int n = 0; n < profile.nodes; ++n) {
    const std::string suffix = std::to_string(n);
    for (int d = 0; d < numa_per_node_; ++d) {
      membus_.push_back(net.add_resource(
          "membus" + suffix + "." + std::to_string(d),
          profile.membus_bandwidth));
    }
    if (numa_per_node_ > 1) {
      HAN_ASSERT_MSG(profile.inter_numa_bandwidth > 0.0,
                     "NUMA profile needs an inter-socket link bandwidth");
      numa_link_.push_back(net.add_resource("numalink" + suffix,
                                            profile.inter_numa_bandwidth));
    }
    for (int r = 0; r < rails_; ++r) {
      const std::string rail =
          rails_ == 1 ? std::string() : ".r" + std::to_string(r);
      nic_tx_.push_back(net.add_resource("nic_tx" + suffix + rail,
                                         profile.nic_bandwidth));
      nic_rx_.push_back(net.add_resource("nic_rx" + suffix + rail,
                                         profile.nic_bandwidth));
    }
  }
}

void ClusterFabric::register_observability(net::FlowNet& net,
                                           const MachineProfile& profile,
                                           obs::MetricsRegistry& registry)
    const {
  registry.set_meta("machine.nodes", std::to_string(profile.nodes));
  registry.set_meta("machine.ppn", std::to_string(profile.procs_per_node));
  registry.set_meta("machine.numa_per_node",
                    std::to_string(profile.numa_per_node));
  if (rails_ == 1) {
    net.enable_queue_histogram(fabric_[0], "net.fabric.queue_depth");
    return;
  }
  registry.set_meta("machine.nics_per_node", std::to_string(rails_));
  for (int r = 0; r < rails_; ++r) {
    net.enable_queue_histogram(
        fabric_[r], "net.fabric.rail" + std::to_string(r) + ".queue_depth");
  }
}

void ClusterFabric::inter_path(int src_node, int dst_node, int rail,
                               std::vector<net::ResourceId>& out) const {
  HAN_ASSERT(src_node != dst_node);
  HAN_ASSERT(rail >= 0 && rail < rails_);
  out.clear();
  out.push_back(nic_tx(src_node, rail));
  out.push_back(fabric_[rail]);
  out.push_back(nic_rx(dst_node, rail));
  out.push_back(membus(src_node, 0));
  out.push_back(membus(dst_node, 0));
}

void ClusterFabric::intra_path(int node, int numa,
                               std::vector<net::ResourceId>& out) const {
  out.clear();
  out.push_back(membus(node, numa));
}

void ClusterFabric::pair_path(int node, int numa_a, int numa_b,
                              std::vector<net::ResourceId>& out) const {
  out.clear();
  out.push_back(membus(node, numa_a));
  if (numa_a != numa_b) {
    out.push_back(membus(node, numa_b));
    out.push_back(numa_link_.at(node));
  }
}

}  // namespace han::machine

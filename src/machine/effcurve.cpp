#include "machine/effcurve.hpp"

#include <cmath>

namespace han::machine {

EffCurve::EffCurve(std::vector<Knot> knots) : knots_(std::move(knots)) {
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    HAN_ASSERT_MSG(knots_[i].efficiency > 0.0 && knots_[i].efficiency <= 1.0,
                   "efficiency must be in (0, 1]");
    if (i > 0) {
      HAN_ASSERT_MSG(knots_[i].bytes > knots_[i - 1].bytes,
                     "knots must be strictly increasing in size");
    }
  }
}

double EffCurve::at(std::uint64_t bytes) const {
  if (knots_.empty()) return 1.0;
  if (bytes <= knots_.front().bytes) return knots_.front().efficiency;
  if (bytes >= knots_.back().bytes) return knots_.back().efficiency;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (bytes <= knots_[i].bytes) {
      const auto& lo = knots_[i - 1];
      const auto& hi = knots_[i];
      // Interpolate linearly in log(message size): bandwidth curves are
      // straight lines on the usual log-x plots.
      const double t = (std::log2(static_cast<double>(bytes)) -
                        std::log2(static_cast<double>(lo.bytes))) /
                       (std::log2(static_cast<double>(hi.bytes)) -
                        std::log2(static_cast<double>(lo.bytes)));
      return lo.efficiency + t * (hi.efficiency - lo.efficiency);
    }
  }
  return knots_.back().efficiency;
}

}  // namespace han::machine

// Piecewise message-size → efficiency curves.
//
// Real MPI stacks do not achieve nominal link bandwidth at every message
// size: protocol switches (eager→rendezvous), pipelining depth, and
// registration costs carve dips into the bandwidth curve. The HAN paper
// leans on exactly this (Fig. 11: Open MPI under Cray MPI between 16KB and
// 512KB, equal at peak) to explain why Cray MPI wins small-message Bcast.
// We model it as a per-implementation efficiency multiplier in (0, 1]
// applied to the NIC rate cap of each transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "simbase/assert.hpp"

namespace han::machine {

/// Monotone-size list of (message_bytes, efficiency) knots with
/// log-linear interpolation between knots and clamping outside.
class EffCurve {
 public:
  struct Knot {
    std::uint64_t bytes;
    double efficiency;  // fraction of nominal bandwidth, in (0, 1]
  };

  EffCurve() = default;
  explicit EffCurve(std::vector<Knot> knots);

  /// Efficiency at `bytes`; 1.0 for an empty curve.
  double at(std::uint64_t bytes) const;

  bool empty() const { return knots_.empty(); }
  const std::vector<Knot>& knots() const { return knots_; }

 private:
  std::vector<Knot> knots_;
};

}  // namespace han::machine

// Machine profiles: the synthetic stand-ins for the paper's two testbeds.
//
// "aries"  ≈ Shaheen II — Cray XC40, 32 cores/node, Aries dragonfly fabric.
// "opath"  ≈ Stampede2 — Skylake, 48 cores/node, Omni-Path fabric.
//
// Profiles carry the physical parameters the simulator needs (latencies,
// per-direction NIC bandwidth, memory-bus bandwidth, per-core copy and
// reduction throughput, protocol thresholds). Per-MPI-implementation P2P
// efficiency curves live here too because they are a property of how a
// stack drives the machine (Fig. 11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/effcurve.hpp"
#include "simbase/units.hpp"

namespace han::machine {

/// Point-to-point protocol parameters of an MPI stack on a machine.
struct P2pParams {
  std::uint64_t eager_limit = 8 << 10;  // eager→rendezvous switch, bytes
  sim::Time send_overhead = 0.0;        // CPU occupancy per message send
  sim::Time recv_overhead = 0.0;        // CPU occupancy per message receive
  sim::Time match_overhead = 0.0;       // CPU occupancy to match an RTS
  sim::Time rndv_rtt_extra = 0.0;       // extra handshake delay (RTS+CTS)
  EffCurve net_efficiency;              // inter-node bandwidth efficiency
};

/// How unstriped inter-node traffic picks its rail on a multi-NIC node
/// when the plan does not pin one explicitly (coll::CollConfig::rail < 0).
enum class RailPolicy {
  /// rail = sender's local rank mod rails. Single-leader plans put all
  /// traffic on rail 0 — CommBench's "fan" baseline — which is exactly
  /// what makes striping worth tuning.
  LeaderAffine,
  /// Deterministic per-sender round-robin across rails: spreads even a
  /// single sender's messages, balancing rails without plan cooperation.
  RoundRobin,
};

struct MachineProfile {
  std::string name;
  int nodes = 0;
  int procs_per_node = 0;

  // Inter-node network.
  sim::Time net_latency = 0.0;     // one-way wire+stack latency
  double nic_bandwidth = 0.0;      // per direction, bytes/sec (full duplex)
  double bisection_factor = 1.0;   // fabric capacity = factor*nodes*nic_bw

  // Multi-rail fabric (CommBench/HiCCL-class nodes). Each node has
  // `nics_per_node` NICs of `nic_bandwidth` each; NIC r of every node
  // attaches to fabric rail r, a disjoint network of the same
  // bisection_factor. 1 (default) is the paper's single-NIC testbeds.
  int nics_per_node = 1;
  RailPolicy rail_policy = RailPolicy::LeaderAffine;

  // Intra-node memory system.
  sim::Time shm_latency = 0.0;     // shared-memory signalling latency
  double membus_bandwidth = 0.0;   // per-node shared bus, bytes/sec
  double core_copy_bandwidth = 0.0;  // single-core memcpy, bytes/sec

  // Optional third hardware level (paper future work: "an increased
  // number of hardware levels"). With numa_per_node > 1 the node's memory
  // bus splits into per-domain buses joined by an inter-socket link; all
  // cross-domain traffic (shm pipes, one-sided reads) pays the link.
  int numa_per_node = 1;
  double inter_numa_bandwidth = 0.0;   // UPI/xGMI class link, bytes/sec
  sim::Time inter_numa_latency = 0.0;  // extra hop latency across domains

  // Reduction arithmetic throughput (bytes of input reduced per second).
  double reduce_bandwidth_scalar = 0.0;
  double reduce_bandwidth_avx = 0.0;

  /// Measurement noise: each CPU occupancy (protocol overheads, compute,
  /// reductions) is scaled by a deterministic pseudo-random factor in
  /// [1-jitter, 1+jitter]. 0 (default) = perfectly repeatable timings;
  /// small values make the task benchmark's iteration averaging
  /// meaningful, as on real machines.
  double jitter = 0.0;

  // P2P protocol parameters for the Open MPI-based stacks (HAN, tuned,
  // libnbc, adapt). Vendor comparators override these — see vendor/.
  P2pParams ompi_p2p;

  int total_procs() const { return nodes * procs_per_node; }
};

/// Shaheen II-like profile. `nodes`/`ppn` default to the paper's 4096-proc
/// configuration (128 x 32) but can be scaled down for tests.
MachineProfile make_aries(int nodes = 128, int ppn = 32);

/// Stampede2-like profile (paper: 32 x 48 = 1536 procs).
MachineProfile make_opath(int nodes = 32, int ppn = 48);

/// Split a profile's nodes into `domains` NUMA domains: per-domain buses
/// get an equal share of the node bus, joined by an inter-socket link.
/// `ppn` must divide evenly by `domains`.
MachineProfile with_numa(MachineProfile profile, int domains);

/// Give every node `rails` NICs, one per fabric rail. Per-NIC bandwidth
/// and the per-rail bisection factor are unchanged, so aggregate
/// inter-node capacity scales by `rails` — reachable only by schedules
/// that spread traffic across rails.
MachineProfile with_rails(MachineProfile profile, int rails);

/// A named stock machine shape. The registry is what han_verify sweeps
/// and what tools pick machines from by name; each family appears both
/// flat and NUMA-split so derived three-level hierarchies are exercised
/// by default.
struct StockMachine {
  const char* name;
  MachineProfile profile;
};

/// Registered stock machines, in deterministic registration order.
const std::vector<StockMachine>& stock_machines();

/// Resolve a stock family ("aries" | "opath") at an arbitrary shape,
/// NUMA-split into `numa` domains (1 = flat) with `rails` NICs per node
/// (1 = the paper's single-rail testbeds). Returns false and leaves
/// `out` untouched for unknown families.
bool make_stock(const std::string& family, int nodes, int ppn, int numa,
                MachineProfile* out, int rails = 1);

/// Open MPI efficiency curve used on both machines: dips between 16KB and
/// 512KB where the rendezvous pipeline is not yet saturated (Fig. 11).
EffCurve ompi_net_efficiency();

/// Scale the profile's P2P efficiency-curve knots at or above `min_bytes`
/// by `factor` (clamped into (0, 1]). Models a firmware or driver change
/// that shifts large-message behavior only — the knob the tuning DB's
/// staleness detection keys on.
void scale_net_efficiency(MachineProfile& profile, double factor,
                          std::uint64_t min_bytes);

/// Vendor-quality efficiency curve: the same peak, but a much flatter
/// mid-range (Cray/Intel tuned pipelines).
EffCurve vendor_net_efficiency();

}  // namespace han::machine

// Max-min fair fluid-flow network.
//
// Every bulk data movement in the simulated cluster — an inter-node
// rendezvous transfer, a shared-memory copy, a NIC DMA writing into host
// memory — is a *flow* over a set of *resources* (NIC tx/rx lanes, the
// inter-node fabric, per-node memory buses). Concurrent flows share each
// resource max-min fairly; rates are recomputed incrementally whenever a
// flow starts or finishes, scoped to the affected connected component.
//
// This is the mechanism that reproduces the effects the HAN paper's cost
// model is built around: congestion at a hot process, level-dependent
// bandwidth, and the imperfect overlap of inter-node and intra-node
// collectives caused by the shared memory bus.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "simbase/engine.hpp"
#include "simbase/units.hpp"

namespace han::net {

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;

class FlowNet {
 public:
  explicit FlowNet(sim::Engine& engine) : engine_(&engine) {}
  FlowNet(const FlowNet&) = delete;
  FlowNet& operator=(const FlowNet&) = delete;

  /// Register a shared resource with capacity in bytes/second.
  ResourceId add_resource(std::string name, double capacity_bps);

  /// Change a resource's capacity (used by failure-injection tests);
  /// triggers a rate recomputation for flows using it.
  void set_capacity(ResourceId id, double capacity_bps);

  double capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;

  /// Start a flow of `bytes` across `resources`. `rate_cap` bounds the
  /// flow's rate regardless of resource headroom (models per-message
  /// protocol efficiency); pass no_cap() for unbounded. `on_complete`
  /// fires once, at the simulated time the last byte arrives.
  FlowId start_flow(std::span<const ResourceId> resources, double bytes,
                    double rate_cap, std::function<void()> on_complete);

  static constexpr double no_cap() {
    return std::numeric_limits<double>::infinity();
  }

  /// Cancel a flow in flight (no completion callback fires). No-op if the
  /// flow already completed.
  void abort_flow(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }

  /// Current rate of an active flow (bytes/sec); 0 if unknown/finished.
  double flow_rate(FlowId id) const;

  /// Sum of active flow rates through a resource (for tests/invariants).
  double resource_usage(ResourceId id) const;

  std::size_t resource_count() const { return resources_.size(); }

  /// Attach a metrics registry: every resource gets a utilization gauge
  /// (`net.res.<name>.util`, fraction of capacity), an active-flow gauge
  /// (`net.res.<name>.queue`), and a bytes-moved counter
  /// (`net.res.<name>.bytes`), plus global flow lifecycle counters. Covers
  /// resources added before and after the call. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Additionally record `id`'s active-flow count as a time-weighted
  /// histogram under `metric_name` (congestion queue depth distribution).
  /// Requires an attached registry.
  void enable_queue_histogram(ResourceId id, const std::string& metric_name);

  /// Total bytes moved through a resource so far (settled to `now`).
  double resource_busy_bytes(ResourceId id) const;

 private:
  struct Resource {
    std::string name;
    double capacity = 0.0;
    std::vector<FlowId> flows;  // active flows through this resource
  };

  struct Flow {
    double remaining = 0.0;  // bytes left at `last_update`
    double rate = 0.0;       // bytes/sec under the current allocation
    double rate_cap = 0.0;
    sim::Time last_update = 0.0;
    std::vector<ResourceId> resources;
    std::function<void()> on_complete;
    std::uint64_t generation = 0;  // invalidates stale completion events
  };

  // Mark resources dirty and schedule one batched rebalance at the current
  // timestamp (after all same-time events). Batching keeps synchronized
  // arrivals/completions of F flows at O(F·R) total instead of O(F²·R).
  void mark_dirty(std::span<const ResourceId> seeds);

  // Recompute max-min rates for the connected component containing the
  // dirty set and reschedule completion events of affected flows.
  void rebalance();

  void collect_component(std::span<const ResourceId> seeds,
                         std::vector<ResourceId>& comp_resources,
                         std::vector<FlowId>& comp_flows);

  void settle(Flow& flow);  // account progress since last_update
  void schedule_completion(FlowId id, Flow& flow);
  void finish_flow(FlowId id);
  void detach_flow(FlowId id, const Flow& flow);

  // Per-resource observability accounting. `rate_sum` mirrors the rate
  // allocation in effect since `last_change`; account() integrates it (and
  // the active-flow count) up to `now` BEFORE any mutation of the
  // resource's flow list or rates.
  struct ResourceObs {
    double rate_sum = 0.0;
    sim::Time last_change = 0.0;
    double busy_bytes = 0.0;
    obs::Gauge* util = nullptr;
    obs::Gauge* queue = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* queue_hist = nullptr;
  };
  void account(ResourceId id);
  void refresh_gauges(ResourceId id);
  void register_resource_metrics(ResourceId id);

  sim::Engine* engine_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* flows_started_ = nullptr;
  obs::Counter* flows_completed_ = nullptr;
  obs::Counter* flows_aborted_ = nullptr;
  std::vector<ResourceObs> robs_;
  std::vector<Resource> resources_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  bool rebalance_pending_ = false;
  std::vector<ResourceId> dirty_;
  // Scratch buffers reused across rebalance() calls (indexed by ResourceId,
  // reset via the component list).
  std::vector<char> resource_mark_;
  std::vector<double> avail_;
  std::vector<int> pending_count_;
  std::vector<ResourceId> scratch_resources_;
  std::vector<FlowId> scratch_flows_;
};

}  // namespace han::net

// Max-min fair fluid-flow network.
//
// Every bulk data movement in the simulated cluster — an inter-node
// rendezvous transfer, a shared-memory copy, a NIC DMA writing into host
// memory — is a *flow* over a set of *resources* (NIC tx/rx lanes, the
// inter-node fabric, per-node memory buses). Concurrent flows share each
// resource max-min fairly; rates are recomputed incrementally whenever a
// flow starts or finishes, scoped to the affected connected component.
//
// This is the mechanism that reproduces the effects the HAN paper's cost
// model is built around: congestion at a hot process, level-dependent
// bandwidth, and the imperfect overlap of inter-node and intra-node
// collectives caused by the shared memory bus.
//
// Hot-path design (see docs/PERFORMANCE.md): flow records live in a
// generation-tagged slot map — a FlowId packs {generation, slot}, lookup
// is an index plus a tag compare, and slots recycle through a free list so
// steady-state churn never touches the allocator. The ≤4-resource path is
// stored inline (SmallVec) and completion callbacks use the engine's SBO
// callback type. Rate recomputation iterates component flows in creation
// order, which keeps results bit-identical to the original map-based
// implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simbase/engine.hpp"
#include "simbase/small_vec.hpp"
#include "simbase/units.hpp"

namespace han::net {

using ResourceId = std::uint32_t;
/// Packed {generation << 32 | slot}. A stale id (finished/aborted flow,
/// even after its slot was recycled) is recognized by its generation tag.
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;

class FlowNet {
 public:
  using Callback = sim::Engine::Callback;

  explicit FlowNet(sim::Engine& engine) : engine_(&engine) {}
  ~FlowNet();
  FlowNet(const FlowNet&) = delete;
  FlowNet& operator=(const FlowNet&) = delete;

  /// Register a shared resource with capacity in bytes/second.
  ResourceId add_resource(std::string name, double capacity_bps);

  /// Change a resource's capacity (used by failure-injection tests);
  /// triggers a rate recomputation for flows using it.
  void set_capacity(ResourceId id, double capacity_bps);

  double capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;

  /// Start a flow of `bytes` across `resources`. `rate_cap` bounds the
  /// flow's rate regardless of resource headroom (models per-message
  /// protocol efficiency); pass no_cap() for unbounded. `on_complete`
  /// fires once, at the simulated time the last byte arrives. Zero-byte
  /// flows complete via a 0-delay event and return kInvalidFlow.
  FlowId start_flow(std::span<const ResourceId> resources, double bytes,
                    double rate_cap, Callback on_complete);

  static constexpr double no_cap() {
    return std::numeric_limits<double>::infinity();
  }

  /// Cancel a flow in flight (no completion callback fires). No-op if the
  /// flow already completed (stale ids stay inert across slot reuse).
  void abort_flow(FlowId id);

  std::size_t active_flows() const { return live_flows_; }

  /// Current rate of an active flow (bytes/sec); 0 if unknown/finished.
  double flow_rate(FlowId id) const;

  /// Sum of active flow rates through a resource (for tests/invariants).
  double resource_usage(ResourceId id) const;

  std::size_t resource_count() const { return resources_.size(); }

  /// Slot-map diagnostics: slots allocated so far (tests assert the pool
  /// recycles instead of growing under churn).
  std::size_t flow_pool_capacity() const { return pool_size_; }

  /// Attach a metrics registry: every resource gets a utilization gauge
  /// (`net.res.<name>.util`, fraction of capacity), an active-flow gauge
  /// (`net.res.<name>.queue`), and a bytes-moved counter
  /// (`net.res.<name>.bytes`), plus global flow lifecycle counters. Covers
  /// resources added before and after the call. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Additionally record `id`'s active-flow count as a time-weighted
  /// histogram under `metric_name` (congestion queue depth distribution).
  /// Requires an attached registry.
  void enable_queue_histogram(ResourceId id, const std::string& metric_name);

  /// Total bytes moved through a resource so far (settled to `now`).
  double resource_busy_bytes(ResourceId id) const;

 private:
  struct Resource {
    std::string name;
    double capacity = 0.0;
    // Active flows through this resource. Queue depths stay single-digit
    // on the machine shapes we model; the spill path covers hot spots.
    sim::SmallVec<FlowId, 8> flows;
  };

  struct Flow {
    double remaining = 0.0;  // bytes left at `last_update`
    double rate = 0.0;       // bytes/sec under the current allocation
    double rate_cap = 0.0;
    sim::Time last_update = 0.0;
    std::uint64_t order = 0;  // creation order: deterministic iteration
    std::uint64_t completion_gen = 0;  // invalidates stale completion events
    sim::SmallVec<ResourceId, 4> resources;
    Callback on_complete;
  };

  struct FlowSlot {
    Flow flow;
    std::uint32_t generation = 0;  // bumped on allocation; 0 = never used
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  // 64 slots (~10 KB) per chunk: chunk addresses are stable, so growth
  // never relocates flow records, and records are placement-constructed on
  // first use (slots are handed out sequentially).
  static constexpr std::uint32_t kFlowChunkShift = 6;
  static constexpr std::uint32_t kFlowChunkSize = 1u << kFlowChunkShift;

  static std::uint32_t slot_of(FlowId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t gen_of(FlowId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static FlowId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<FlowId>(gen) << 32) | slot;
  }

  FlowSlot& slot_ref(std::uint32_t s) {
    auto* slots =
        reinterpret_cast<FlowSlot*>(chunks_[s >> kFlowChunkShift].get());
    return slots[s & (kFlowChunkSize - 1)];
  }
  const FlowSlot& slot_ref(std::uint32_t s) const {
    auto* slots =
        reinterpret_cast<const FlowSlot*>(chunks_[s >> kFlowChunkShift].get());
    return slots[s & (kFlowChunkSize - 1)];
  }

  Flow* lookup(FlowId id) {
    const std::uint32_t s = slot_of(id);
    if (s >= pool_size_) return nullptr;
    FlowSlot& fs = slot_ref(s);
    if (!fs.live || fs.generation != gen_of(id)) return nullptr;
    return &fs.flow;
  }
  const Flow* lookup(FlowId id) const {
    return const_cast<FlowNet*>(this)->lookup(id);
  }
  Flow& flow_ref(FlowId id) {
    Flow* f = lookup(id);
    HAN_ASSERT(f != nullptr);
    return *f;
  }

  FlowId acquire_flow();
  void release_flow(FlowId id);

  // Mark resources dirty and schedule one batched rebalance at the current
  // timestamp (after all same-time events). Batching keeps synchronized
  // arrivals/completions of F flows at O(F·R) total instead of O(F²·R).
  void mark_dirty(std::span<const ResourceId> seeds);

  // Recompute max-min rates for the connected component containing the
  // dirty set and reschedule completion events of affected flows.
  void rebalance();

  void collect_component(std::span<const ResourceId> seeds,
                         std::vector<ResourceId>& comp_resources,
                         std::vector<FlowId>& comp_flows);

  // Account progress since last_update (callers hoist `now` out of loops).
  void settle_at(Flow& flow, sim::Time now);
  void schedule_completion(FlowId id, Flow& flow);
  void finish_flow(FlowId id, Flow& flow);
  void detach_flow(FlowId id, const Flow& flow);

  // Per-resource observability accounting. `rate_sum` mirrors the rate
  // allocation in effect since `last_change`; account() integrates it (and
  // the active-flow count) up to `now` BEFORE any mutation of the
  // resource's flow list or rates.
  struct ResourceObs {
    double rate_sum = 0.0;
    sim::Time last_change = 0.0;
    double busy_bytes = 0.0;
    obs::Gauge* util = nullptr;
    obs::Gauge* queue = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Histogram* queue_hist = nullptr;
  };
  void account(ResourceId id);
  void refresh_gauges(ResourceId id);
  void register_resource_metrics(ResourceId id);

  sim::Engine* engine_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* flows_started_ = nullptr;
  obs::Counter* flows_completed_ = nullptr;
  obs::Counter* flows_aborted_ = nullptr;
  std::vector<ResourceObs> robs_;
  std::vector<Resource> resources_;
  // Flow slot map: chunked slab + free list.
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::uint32_t pool_size_ = 0;  // slots ever created
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_flows_ = 0;
  std::uint64_t next_order_ = 1;
  bool rebalance_pending_ = false;
  std::vector<ResourceId> dirty_;
  // Scratch buffers reused across rebalance() calls (indexed by ResourceId
  // or flow slot, reset via the component list).
  std::vector<char> resource_mark_;
  std::vector<char> flow_mark_;
  std::vector<double> avail_;
  std::vector<int> pending_count_;
  std::vector<ResourceId> scratch_resources_;
  std::vector<FlowId> scratch_flows_;
  std::vector<Flow*> comp_ptrs_;  // resolved once per rebalance
  std::vector<std::uint32_t> unfixed_;        // indices into comp_ptrs_
  std::vector<std::uint32_t> still_unfixed_;
  std::vector<ResourceId> seeds_;  // rebalance takes dirty_ through here
  std::vector<ResourceId> stack_;  // collect_component DFS stack
  std::vector<std::uint64_t> comp_keys_;  // packed {order, position} keys
  std::vector<FlowId> order_scratch_;     // pre-sort snapshot of comp_flows
};

}  // namespace han::net

#include "flownet/flownet.hpp"

#include <algorithm>
#include <cmath>

#include "simbase/assert.hpp"

namespace han::net {

namespace {
// A flow with fewer remaining bytes than this is considered done; absorbs
// floating-point residue from rate rebalancing.
constexpr double kByteEpsilon = 1e-6;
// Relative tolerance when matching resource shares to the bottleneck level.
constexpr double kShareTolerance = 1e-12;
}  // namespace

ResourceId FlowNet::add_resource(std::string name, double capacity_bps) {
  HAN_ASSERT_MSG(capacity_bps > 0.0, "resource capacity must be positive");
  if (resources_.empty()) {
    // Typical fabrics register a few dozen resources back to back.
    resources_.reserve(16);
    resource_mark_.reserve(16);
    avail_.reserve(16);
    pending_count_.reserve(16);
    robs_.reserve(16);
  }
  resources_.push_back(Resource{std::move(name), capacity_bps, {}});
  resource_mark_.push_back(0);
  avail_.push_back(0.0);
  pending_count_.push_back(0);
  ResourceObs obs;
  obs.last_change = engine_->now();
  robs_.push_back(obs);
  const auto id = static_cast<ResourceId>(resources_.size() - 1);
  if (metrics_ != nullptr) register_resource_metrics(id);
  return id;
}

void FlowNet::set_capacity(ResourceId id, double capacity_bps) {
  HAN_ASSERT(id < resources_.size());
  HAN_ASSERT_MSG(capacity_bps > 0.0, "resource capacity must be positive");
  account(id);
  resources_[id].capacity = capacity_bps;
  refresh_gauges(id);
  const ResourceId seeds[] = {id};
  mark_dirty(seeds);
}

double FlowNet::capacity(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FlowNet::resource_name(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  return resources_[id].name;
}

FlowNet::~FlowNet() {
  // Slots are placement-constructed in acquire_flow; only slots that were
  // ever handed out exist.
  for (std::uint32_t s = 0; s < pool_size_; ++s) slot_ref(s).~FlowSlot();
}

FlowId FlowNet::acquire_flow() {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
  } else {
    if ((pool_size_ & (kFlowChunkSize - 1)) == 0) {
      chunks_.emplace_back(new std::byte[sizeof(FlowSlot) * kFlowChunkSize]);
    }
    slot = pool_size_++;
    new (&slot_ref(slot)) FlowSlot();
    flow_mark_.push_back(0);
  }
  FlowSlot& fs = slot_ref(slot);
  ++fs.generation;  // >= 1 from the first use, so no live id is 0
  fs.live = true;
  ++live_flows_;
  return make_id(fs.generation, slot);
}

void FlowNet::release_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  FlowSlot& fs = slot_ref(slot);
  HAN_ASSERT(fs.live && fs.generation == gen_of(id));
  fs.live = false;
  fs.flow.on_complete = nullptr;  // destroy the capture eagerly
  fs.flow.resources.clear();
  fs.next_free = free_head_;
  free_head_ = slot;
  --live_flows_;
}

FlowId FlowNet::start_flow(std::span<const ResourceId> resources, double bytes,
                           double rate_cap, Callback on_complete) {
  HAN_ASSERT_MSG(rate_cap > 0.0, "rate cap must be positive");
  if (bytes <= kByteEpsilon) {
    engine_->schedule_after(0.0, std::move(on_complete));
    return kInvalidFlow;
  }

  const FlowId id = acquire_flow();
  Flow& flow = slot_ref(slot_of(id)).flow;
  flow.remaining = bytes;
  flow.rate = 0.0;  // assigned by the batched rebalance at this timestamp
  flow.rate_cap = rate_cap;
  flow.last_update = engine_->now();
  flow.order = next_order_++;
  flow.completion_gen = 0;
  flow.resources.assign(resources.begin(), resources.end());
  if (flow.resources.size() == 2) {
    // Point-to-point paths (tx lane + rx lane) dominate; skip the
    // generic sort/unique machinery for them.
    if (flow.resources[0] > flow.resources[1]) {
      std::swap(flow.resources[0], flow.resources[1]);
    } else if (flow.resources[0] == flow.resources[1]) {
      flow.resources.pop_back();
    }
  } else if (flow.resources.size() > 2) {
    std::sort(flow.resources.begin(), flow.resources.end());
    flow.resources.erase(
        std::unique(flow.resources.begin(), flow.resources.end()),
        flow.resources.end());
  }
  flow.on_complete = std::move(on_complete);

  if (flows_started_ != nullptr) flows_started_->add(1.0);
  for (ResourceId r : flow.resources) {
    HAN_ASSERT(r < resources_.size());
    account(r);  // close the interval at the old queue depth
    resources_[r].flows.push_back(id);
    refresh_gauges(r);
  }
  if (flow.resources.empty()) {
    // A resource-less flow is only limited by its rate cap.
    flow.rate = rate_cap;
    schedule_completion(id, flow);
  } else {
    mark_dirty(flow.resources);
  }
  return id;
}

void FlowNet::abort_flow(FlowId id) {
  Flow* flow = lookup(id);
  if (flow == nullptr) return;
  if (flows_aborted_ != nullptr) flows_aborted_->add(1.0);
  // Marking before detaching spares a copy of the path; it only records
  // dirty seeds (and schedules the one pending rebalance event).
  mark_dirty(flow->resources);
  detach_flow(id, *flow);
  release_flow(id);
}

double FlowNet::flow_rate(FlowId id) const {
  const Flow* flow = lookup(id);
  return flow == nullptr ? 0.0 : flow->rate;
}

double FlowNet::resource_usage(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  double usage = 0.0;
  for (FlowId f : resources_[id].flows) {
    usage += lookup(f)->rate;
  }
  return usage;
}

void FlowNet::mark_dirty(std::span<const ResourceId> seeds) {
  dirty_.insert(dirty_.end(), seeds.begin(), seeds.end());
  if (!rebalance_pending_) {
    rebalance_pending_ = true;
    // Scheduled at the current time: runs after all already-queued
    // same-time events, so a burst of flow starts/finishes coalesces into
    // one rate recomputation.
    engine_->schedule_after(0.0, [this] { rebalance(); });
  }
}

void FlowNet::collect_component(std::span<const ResourceId> seeds,
                                std::vector<ResourceId>& comp_resources,
                                std::vector<FlowId>& comp_flows) {
  comp_resources.clear();
  comp_flows.clear();
  auto& stack = stack_;
  stack.clear();
  for (ResourceId r : seeds) {
    if (resource_mark_[r] == 0) {
      resource_mark_[r] = 1;
      stack.push_back(r);
    }
  }

  comp_keys_.clear();
  while (!stack.empty()) {
    const ResourceId r = stack.back();
    stack.pop_back();
    comp_resources.push_back(r);
    for (FlowId fid : resources_[r].flows) {
      const std::uint32_t fs = slot_of(fid);
      if (flow_mark_[fs] != 0) continue;
      flow_mark_[fs] = 1;
      // Ids in resource lists are live by invariant: skip the full lookup.
      const Flow& flow = slot_ref(fs).flow;
      comp_keys_.push_back(flow.order);
      comp_flows.push_back(fid);
      for (ResourceId other : flow.resources) {
        if (resource_mark_[other] == 0) {
          resource_mark_[other] = 1;
          stack.push_back(other);
        }
      }
    }
  }
  for (ResourceId r : comp_resources) resource_mark_[r] = 0;
  // Creation order — the iteration order of the original map-based design
  // (monotonic ids), which the water-filling and completion-scheduling
  // loops depend on for bit-identical floating-point results. Orders are
  // allotted one per flow start, so packing {order << 16 | position} into
  // one word sorts keys half the size of (order, id) pairs; components
  // beyond 2^16 flows (or 2^48 starts) take the plain pair sort.
  const std::size_t n = comp_flows.size();
  if (n < (1u << 16) && next_order_ < (std::uint64_t{1} << 48)) {
    for (std::size_t i = 0; i < n; ++i) {
      comp_keys_[i] = (comp_keys_[i] << 16) | i;
    }
    std::sort(comp_keys_.begin(), comp_keys_.end());
    order_scratch_.assign(comp_flows.begin(), comp_flows.end());
    for (std::size_t i = 0; i < n; ++i) {
      comp_flows[i] = order_scratch_[comp_keys_[i] & 0xffffu];
    }
  } else {
    std::vector<std::pair<std::uint64_t, FlowId>> pairs;
    pairs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pairs.emplace_back(comp_keys_[i], comp_flows[i]);
    }
    std::sort(pairs.begin(), pairs.end());
    for (std::size_t i = 0; i < n; ++i) comp_flows[i] = pairs[i].second;
  }
  for (FlowId fid : comp_flows) flow_mark_[slot_of(fid)] = 0;
  std::sort(comp_resources.begin(), comp_resources.end());
}

void FlowNet::settle_at(Flow& flow, sim::Time now) {
  if (now > flow.last_update && flow.rate > 0.0) {
    flow.remaining -= flow.rate * (now - flow.last_update);
    if (flow.remaining < 0.0) flow.remaining = 0.0;
  }
  flow.last_update = now;
}

void FlowNet::schedule_completion(FlowId id, Flow& flow) {
  const std::uint64_t generation = ++flow.completion_gen;
  HAN_ASSERT_MSG(flow.rate > 0.0, "active flow starved (rate == 0)");
  const sim::Time eta = flow.remaining / flow.rate;
  engine_->schedule_after(eta, [this, id, generation] {
    Flow* f = lookup(id);
    if (f == nullptr || f->completion_gen != generation) return;
    finish_flow(id, *f);  // already resolved: skip the second lookup
  });
}

void FlowNet::finish_flow(FlowId id, Flow& flow) {
  if (flows_completed_ != nullptr) flows_completed_->add(1.0);
  settle_at(flow, engine_->now());
  mark_dirty(flow.resources);  // before detach: spares copying the path
  Callback on_complete = std::move(flow.on_complete);
  detach_flow(id, flow);
  release_flow(id);
  if (on_complete) on_complete();
}

void FlowNet::detach_flow(FlowId id, const Flow& flow) {
  for (ResourceId r : flow.resources) {
    account(r);  // integrate the allocation the flow was part of
    auto& list = resources_[r].flows;
    auto pos = std::find(list.begin(), list.end(), id);
    HAN_ASSERT(pos != list.end());
    *pos = list.back();
    list.pop_back();
    robs_[r].rate_sum = std::max(0.0, robs_[r].rate_sum - flow.rate);
    refresh_gauges(r);
  }
}

void FlowNet::rebalance() {
  rebalance_pending_ = false;
  // Swap dirty_ out through a member buffer: both vectors keep their
  // capacity across rebalances, so steady-state churn never reallocates.
  auto& seeds = seeds_;
  seeds.clear();
  seeds.swap(dirty_);

  auto& comp_resources = scratch_resources_;
  auto& comp_flows = scratch_flows_;
  collect_component(seeds, comp_resources, comp_flows);
  if (comp_flows.empty()) return;

  // Records never move (chunked slab), so resolve each component flow once
  // and run every loop below on raw pointers. Account progress under the
  // outgoing allocation before changing rates.
  const std::size_t n = comp_flows.size();
  const sim::Time now = engine_->now();
  comp_ptrs_.clear();
  for (FlowId fid : comp_flows) {
    Flow* flow = &slot_ref(slot_of(fid)).flow;
    comp_ptrs_.push_back(flow);
    settle_at(*flow, now);
  }

  // Progressive filling (water-filling): repeatedly find the lowest
  // bottleneck level (equal share on some resource, or a flow's own rate
  // cap) and fix the flows bound at it. avail_/pending_count_ are
  // pre-sized per resource and reset on exit.
  for (ResourceId r : comp_resources) {
    avail_[r] = resources_[r].capacity;
    pending_count_[r] = 0;
  }
  auto& unfixed = unfixed_;
  auto& still_unfixed = still_unfixed_;
  unfixed.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    unfixed.push_back(i);
    for (ResourceId r : comp_ptrs_[i]->resources) ++pending_count_[r];
  }

  while (!unfixed.empty()) {
    double level = std::numeric_limits<double>::infinity();
    for (ResourceId r : comp_resources) {
      if (pending_count_[r] > 0) {
        level = std::min(level, std::max(avail_[r], 0.0) /
                                    static_cast<double>(pending_count_[r]));
      }
    }
    bool cap_bound = false;
    for (std::uint32_t i : unfixed) {
      const double cap = comp_ptrs_[i]->rate_cap;
      if (cap < level) {
        level = cap;
        cap_bound = true;
      } else if (cap == level) {
        cap_bound = true;
      }
    }
    HAN_ASSERT(std::isfinite(level));

    still_unfixed.clear();
    // Loop-invariant: the bound test compares against the same scaled
    // level for every flow in this pass.
    const double thresh = level * (1.0 + kShareTolerance);
    for (std::uint32_t i : unfixed) {
      Flow& flow = *comp_ptrs_[i];
      bool bound = cap_bound && flow.rate_cap <= thresh;
      if (!bound) {
        for (ResourceId r : flow.resources) {
          const double share = std::max(avail_[r], 0.0) /
                               static_cast<double>(pending_count_[r]);
          if (share <= thresh) {
            bound = true;
            break;
          }
        }
      }
      if (bound) {
        // The 1e-3 B/s floor absorbs floating-point residue when a
        // resource is exactly saturated; it never matters physically.
        flow.rate = std::max(std::min(level, flow.rate_cap), 1e-3);
        for (ResourceId r : flow.resources) {
          avail_[r] -= flow.rate;
          --pending_count_[r];
        }
      } else {
        still_unfixed.push_back(i);
      }
    }
    HAN_ASSERT_MSG(still_unfixed.size() < unfixed.size(),
                   "max-min filling made no progress");
    unfixed.swap(still_unfixed);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    Flow& flow = *comp_ptrs_[i];
    if (flow.remaining <= kByteEpsilon) {
      // Finished within floating-point residue: complete now.
      flow.remaining = 0.0;
      flow.rate = std::max(flow.rate, 1.0);
    }
    schedule_completion(comp_flows[i], flow);
  }

  // New allocation is in force from `now`: close the old integration
  // interval and record the fresh per-resource rate sums.
  for (ResourceId r : comp_resources) {
    account(r);
    double sum = 0.0;
    for (FlowId fid : resources_[r].flows) {
      sum += slot_ref(slot_of(fid)).flow.rate;
    }
    robs_[r].rate_sum = sum;
    refresh_gauges(r);
  }
}

// ---- Observability --------------------------------------------------------

void FlowNet::account(ResourceId id) {
  ResourceObs& obs = robs_[id];
  const sim::Time now = engine_->now();
  const sim::Time dt = now - obs.last_change;
  // Same-timestamp mutation bursts (the common case: a batch of flow
  // starts/finishes at one simulated instant) leave without writing.
  if (dt <= 0.0) return;
  obs.last_change = now;
  const double moved = obs.rate_sum * dt;
  obs.busy_bytes += moved;
  if (obs.bytes != nullptr && moved > 0.0) obs.bytes->add(moved);
  if (obs.queue_hist != nullptr) {
    obs.queue_hist->observe(static_cast<double>(resources_[id].flows.size()),
                            dt);
  }
}

void FlowNet::refresh_gauges(ResourceId id) {
  ResourceObs& obs = robs_[id];
  if (obs.util == nullptr) return;
  const sim::Time now = engine_->now();
  obs.util->set(now, obs.rate_sum / resources_[id].capacity);
  obs.queue->set(now, static_cast<double>(resources_[id].flows.size()));
}

void FlowNet::register_resource_metrics(ResourceId id) {
  const std::string base = "net.res." + resources_[id].name;
  ResourceObs& obs = robs_[id];
  obs.util = &metrics_->gauge(base + ".util");
  obs.queue = &metrics_->gauge(base + ".queue");
  obs.bytes = &metrics_->counter(base + ".bytes");
  refresh_gauges(id);
}

void FlowNet::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    flows_started_ = flows_completed_ = flows_aborted_ = nullptr;
    for (ResourceObs& obs : robs_) {
      obs.util = obs.queue = nullptr;
      obs.bytes = nullptr;
      obs.queue_hist = nullptr;
    }
    return;
  }
  flows_started_ = &registry->counter("net.flows.started");
  flows_completed_ = &registry->counter("net.flows.completed");
  flows_aborted_ = &registry->counter("net.flows.aborted");
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    register_resource_metrics(r);
  }
}

void FlowNet::enable_queue_histogram(ResourceId id,
                                     const std::string& metric_name) {
  HAN_ASSERT(id < resources_.size());
  HAN_ASSERT_MSG(metrics_ != nullptr,
                 "attach a metrics registry before enabling queue histograms");
  account(id);
  robs_[id].queue_hist = &metrics_->histogram(metric_name, {});
}

double FlowNet::resource_busy_bytes(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  const ResourceObs& obs = robs_[id];
  const sim::Time dt = engine_->now() - obs.last_change;
  return obs.busy_bytes + (dt > 0.0 ? obs.rate_sum * dt : 0.0);
}

}  // namespace han::net

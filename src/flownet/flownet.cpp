#include "flownet/flownet.hpp"

#include <algorithm>
#include <cmath>

#include "simbase/assert.hpp"

namespace han::net {

namespace {
// A flow with fewer remaining bytes than this is considered done; absorbs
// floating-point residue from rate rebalancing.
constexpr double kByteEpsilon = 1e-6;
// Relative tolerance when matching resource shares to the bottleneck level.
constexpr double kShareTolerance = 1e-12;
}  // namespace

ResourceId FlowNet::add_resource(std::string name, double capacity_bps) {
  HAN_ASSERT_MSG(capacity_bps > 0.0, "resource capacity must be positive");
  resources_.push_back(Resource{std::move(name), capacity_bps, {}});
  resource_mark_.push_back(0);
  avail_.push_back(0.0);
  pending_count_.push_back(0);
  ResourceObs obs;
  obs.last_change = engine_->now();
  robs_.push_back(obs);
  const auto id = static_cast<ResourceId>(resources_.size() - 1);
  if (metrics_ != nullptr) register_resource_metrics(id);
  return id;
}

void FlowNet::set_capacity(ResourceId id, double capacity_bps) {
  HAN_ASSERT(id < resources_.size());
  HAN_ASSERT_MSG(capacity_bps > 0.0, "resource capacity must be positive");
  account(id);
  resources_[id].capacity = capacity_bps;
  refresh_gauges(id);
  const ResourceId seeds[] = {id};
  mark_dirty(seeds);
}

double FlowNet::capacity(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FlowNet::resource_name(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  return resources_[id].name;
}

FlowId FlowNet::start_flow(std::span<const ResourceId> resources, double bytes,
                           double rate_cap,
                           std::function<void()> on_complete) {
  HAN_ASSERT_MSG(rate_cap > 0.0, "rate cap must be positive");
  const FlowId id = next_flow_id_++;
  if (bytes <= kByteEpsilon) {
    engine_->schedule_after(0.0, std::move(on_complete));
    return id;
  }

  Flow flow;
  flow.remaining = bytes;
  flow.rate = 0.0;  // assigned by the batched rebalance at this timestamp
  flow.rate_cap = rate_cap;
  flow.last_update = engine_->now();
  flow.resources.assign(resources.begin(), resources.end());
  std::sort(flow.resources.begin(), flow.resources.end());
  flow.resources.erase(
      std::unique(flow.resources.begin(), flow.resources.end()),
      flow.resources.end());
  flow.on_complete = std::move(on_complete);

  if (flows_started_ != nullptr) flows_started_->add(1.0);
  for (ResourceId r : flow.resources) {
    HAN_ASSERT(r < resources_.size());
    account(r);  // close the interval at the old queue depth
    resources_[r].flows.push_back(id);
    refresh_gauges(r);
  }
  if (flow.resources.empty()) {
    // A resource-less flow is only limited by its rate cap.
    flow.rate = rate_cap;
    flows_.emplace(id, std::move(flow));
    schedule_completion(id, flows_.at(id));
  } else {
    const std::vector<ResourceId> seeds = flow.resources;
    flows_.emplace(id, std::move(flow));
    mark_dirty(seeds);
  }
  return id;
}

void FlowNet::abort_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  if (flows_aborted_ != nullptr) flows_aborted_->add(1.0);
  const std::vector<ResourceId> seeds = it->second.resources;
  detach_flow(id, it->second);
  flows_.erase(it);
  mark_dirty(seeds);
}

double FlowNet::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FlowNet::resource_usage(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  double usage = 0.0;
  for (FlowId f : resources_[id].flows) {
    usage += flows_.at(f).rate;
  }
  return usage;
}

void FlowNet::mark_dirty(std::span<const ResourceId> seeds) {
  dirty_.insert(dirty_.end(), seeds.begin(), seeds.end());
  if (!rebalance_pending_) {
    rebalance_pending_ = true;
    // Scheduled at the current time: runs after all already-queued
    // same-time events, so a burst of flow starts/finishes coalesces into
    // one rate recomputation.
    engine_->schedule_after(0.0, [this] { rebalance(); });
  }
}

void FlowNet::collect_component(std::span<const ResourceId> seeds,
                                std::vector<ResourceId>& comp_resources,
                                std::vector<FlowId>& comp_flows) {
  comp_resources.clear();
  comp_flows.clear();
  std::vector<ResourceId> stack;
  stack.reserve(seeds.size());
  for (ResourceId r : seeds) {
    if (resource_mark_[r] == 0) {
      resource_mark_[r] = 1;
      stack.push_back(r);
    }
  }

  // Flows are deduplicated with a sort afterwards; marking flows would need
  // a hash set, and the sort is cheap relative to the rate computation.
  while (!stack.empty()) {
    const ResourceId r = stack.back();
    stack.pop_back();
    comp_resources.push_back(r);
    for (FlowId fid : resources_[r].flows) {
      comp_flows.push_back(fid);
      for (ResourceId other : flows_.at(fid).resources) {
        if (resource_mark_[other] == 0) {
          resource_mark_[other] = 1;
          stack.push_back(other);
        }
      }
    }
  }
  for (ResourceId r : comp_resources) resource_mark_[r] = 0;
  std::sort(comp_flows.begin(), comp_flows.end());
  comp_flows.erase(std::unique(comp_flows.begin(), comp_flows.end()),
                   comp_flows.end());
  std::sort(comp_resources.begin(), comp_resources.end());
}

void FlowNet::settle(Flow& flow) {
  const sim::Time now = engine_->now();
  if (now > flow.last_update && flow.rate > 0.0) {
    flow.remaining -= flow.rate * (now - flow.last_update);
    if (flow.remaining < 0.0) flow.remaining = 0.0;
  }
  flow.last_update = now;
}

void FlowNet::schedule_completion(FlowId id, Flow& flow) {
  const std::uint64_t generation = ++flow.generation;
  HAN_ASSERT_MSG(flow.rate > 0.0, "active flow starved (rate == 0)");
  const sim::Time eta = flow.remaining / flow.rate;
  engine_->schedule_after(eta, [this, id, generation] {
    auto it = flows_.find(id);
    if (it == flows_.end() || it->second.generation != generation) return;
    finish_flow(id);
  });
}

void FlowNet::finish_flow(FlowId id) {
  auto it = flows_.find(id);
  HAN_ASSERT(it != flows_.end());
  if (flows_completed_ != nullptr) flows_completed_->add(1.0);
  settle(it->second);
  const std::vector<ResourceId> seeds = it->second.resources;
  std::function<void()> on_complete = std::move(it->second.on_complete);
  detach_flow(id, it->second);
  flows_.erase(it);
  mark_dirty(seeds);
  if (on_complete) on_complete();
}

void FlowNet::detach_flow(FlowId id, const Flow& flow) {
  for (ResourceId r : flow.resources) {
    account(r);  // integrate the allocation the flow was part of
    auto& list = resources_[r].flows;
    auto pos = std::find(list.begin(), list.end(), id);
    HAN_ASSERT(pos != list.end());
    *pos = list.back();
    list.pop_back();
    robs_[r].rate_sum = std::max(0.0, robs_[r].rate_sum - flow.rate);
    refresh_gauges(r);
  }
}

void FlowNet::rebalance() {
  rebalance_pending_ = false;
  std::vector<ResourceId> seeds;
  seeds.swap(dirty_);

  auto& comp_resources = scratch_resources_;
  auto& comp_flows = scratch_flows_;
  collect_component(seeds, comp_resources, comp_flows);
  if (comp_flows.empty()) return;

  // Account progress under the outgoing allocation before changing rates.
  for (FlowId fid : comp_flows) settle(flows_.at(fid));

  // Progressive filling (water-filling): repeatedly find the lowest
  // bottleneck level (equal share on some resource, or a flow's own rate
  // cap) and fix the flows bound at it. avail_/pending_count_ are
  // pre-sized per resource and reset on exit.
  for (ResourceId r : comp_resources) {
    avail_[r] = resources_[r].capacity;
    pending_count_[r] = 0;
  }
  std::vector<FlowId> unfixed = comp_flows;
  for (FlowId fid : unfixed) {
    for (ResourceId r : flows_.at(fid).resources) ++pending_count_[r];
  }

  while (!unfixed.empty()) {
    double level = std::numeric_limits<double>::infinity();
    for (ResourceId r : comp_resources) {
      if (pending_count_[r] > 0) {
        level = std::min(level, std::max(avail_[r], 0.0) /
                                    static_cast<double>(pending_count_[r]));
      }
    }
    bool cap_bound = false;
    for (FlowId fid : unfixed) {
      const double cap = flows_.at(fid).rate_cap;
      if (cap < level) {
        level = cap;
        cap_bound = true;
      } else if (cap == level) {
        cap_bound = true;
      }
    }
    HAN_ASSERT(std::isfinite(level));

    std::vector<FlowId> still_unfixed;
    still_unfixed.reserve(unfixed.size());
    for (FlowId fid : unfixed) {
      Flow& flow = flows_.at(fid);
      bool bound =
          cap_bound && flow.rate_cap <= level * (1.0 + kShareTolerance);
      if (!bound) {
        for (ResourceId r : flow.resources) {
          const double share = std::max(avail_[r], 0.0) /
                               static_cast<double>(pending_count_[r]);
          if (share <= level * (1.0 + kShareTolerance)) {
            bound = true;
            break;
          }
        }
      }
      if (bound) {
        // The 1e-3 B/s floor absorbs floating-point residue when a
        // resource is exactly saturated; it never matters physically.
        flow.rate = std::max(std::min(level, flow.rate_cap), 1e-3);
        for (ResourceId r : flow.resources) {
          avail_[r] -= flow.rate;
          --pending_count_[r];
        }
      } else {
        still_unfixed.push_back(fid);
      }
    }
    HAN_ASSERT_MSG(still_unfixed.size() < unfixed.size(),
                   "max-min filling made no progress");
    unfixed.swap(still_unfixed);
  }

  for (FlowId fid : comp_flows) {
    Flow& flow = flows_.at(fid);
    if (flow.remaining <= kByteEpsilon) {
      // Finished within floating-point residue: complete now.
      flow.remaining = 0.0;
      flow.rate = std::max(flow.rate, 1.0);
    }
    schedule_completion(fid, flow);
  }

  // New allocation is in force from `now`: close the old integration
  // interval and record the fresh per-resource rate sums.
  for (ResourceId r : comp_resources) {
    account(r);
    double sum = 0.0;
    for (FlowId fid : resources_[r].flows) sum += flows_.at(fid).rate;
    robs_[r].rate_sum = sum;
    refresh_gauges(r);
  }
}

// ---- Observability --------------------------------------------------------

void FlowNet::account(ResourceId id) {
  ResourceObs& obs = robs_[id];
  const sim::Time now = engine_->now();
  const sim::Time dt = now - obs.last_change;
  obs.last_change = now;
  if (dt <= 0.0) return;
  const double moved = obs.rate_sum * dt;
  obs.busy_bytes += moved;
  if (obs.bytes != nullptr && moved > 0.0) obs.bytes->add(moved);
  if (obs.queue_hist != nullptr) {
    obs.queue_hist->observe(static_cast<double>(resources_[id].flows.size()),
                            dt);
  }
}

void FlowNet::refresh_gauges(ResourceId id) {
  ResourceObs& obs = robs_[id];
  if (obs.util == nullptr) return;
  const sim::Time now = engine_->now();
  obs.util->set(now, obs.rate_sum / resources_[id].capacity);
  obs.queue->set(now, static_cast<double>(resources_[id].flows.size()));
}

void FlowNet::register_resource_metrics(ResourceId id) {
  const std::string base = "net.res." + resources_[id].name;
  ResourceObs& obs = robs_[id];
  obs.util = &metrics_->gauge(base + ".util");
  obs.queue = &metrics_->gauge(base + ".queue");
  obs.bytes = &metrics_->counter(base + ".bytes");
  refresh_gauges(id);
}

void FlowNet::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    flows_started_ = flows_completed_ = flows_aborted_ = nullptr;
    for (ResourceObs& obs : robs_) {
      obs.util = obs.queue = nullptr;
      obs.bytes = nullptr;
      obs.queue_hist = nullptr;
    }
    return;
  }
  flows_started_ = &registry->counter("net.flows.started");
  flows_completed_ = &registry->counter("net.flows.completed");
  flows_aborted_ = &registry->counter("net.flows.aborted");
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    register_resource_metrics(r);
  }
}

void FlowNet::enable_queue_histogram(ResourceId id,
                                     const std::string& metric_name) {
  HAN_ASSERT(id < resources_.size());
  HAN_ASSERT_MSG(metrics_ != nullptr,
                 "attach a metrics registry before enabling queue histograms");
  account(id);
  robs_[id].queue_hist = &metrics_->histogram(metric_name, {});
}

double FlowNet::resource_busy_bytes(ResourceId id) const {
  HAN_ASSERT(id < resources_.size());
  const ResourceObs& obs = robs_[id];
  const sim::Time dt = engine_->now() - obs.last_change;
  return obs.busy_bytes + (dt > 0.0 ? obs.rate_sum * dt : 0.0);
}

}  // namespace han::net

// OSU-microbenchmark-style P2P drivers (the paper cites the OSU suite
// alongside IMB as the standard measurement methodology): osu_latency
// (ping-pong), osu_bw (windowed unidirectional bandwidth), and
// osu_mbw_mr (multiple pairs: aggregate bandwidth + message rate).
#pragma once

#include <vector>

#include "simmpi/world.hpp"

namespace han::benchkit {

struct OsuLatencyPoint {
  std::size_t bytes = 0;
  double latency_sec = 0.0;  // one-way (half round trip), averaged
};

struct OsuBwPoint {
  std::size_t bytes = 0;
  double bandwidth_gbps = 0.0;  // windowed unidirectional
};

struct OsuMbwMrPoint {
  std::size_t bytes = 0;
  int pairs = 0;
  double aggregate_gbps = 0.0;
  double messages_per_sec = 0.0;
};

struct OsuOptions {
  std::vector<std::size_t> sizes;
  int iterations = 4;
  int window = 16;  // outstanding sends per window (osu_bw / osu_mbw_mr)
  int pairs = 4;    // osu_mbw_mr: sender i -> receiver i + pairs
};

/// Ping-pong between the first ranks of two nodes.
std::vector<OsuLatencyPoint> osu_latency(mpi::SimWorld& world,
                                         const OsuOptions& options);

/// Windowed unidirectional bandwidth between two nodes' first ranks:
/// `window` sends in flight, one ack per window.
std::vector<OsuBwPoint> osu_bw(mpi::SimWorld& world,
                               const OsuOptions& options);

/// Multiple concurrent pairs across two nodes (requires ppn >= pairs and
/// >= 2 nodes): aggregate bandwidth and message rate.
std::vector<OsuMbwMrPoint> osu_mbw_mr(mpi::SimWorld& world,
                                      const OsuOptions& options);

}  // namespace han::benchkit

#include "benchkit/netpipe.hpp"

#include <algorithm>

namespace han::benchkit {

using mpi::BufView;

std::vector<NetpipePoint> netpipe(mpi::SimWorld& world,
                                  const NetpipeOptions& options) {
  const int a = options.rank_a;
  const int b = options.rank_b >= 0 ? options.rank_b
                                    : world.profile().procs_per_node;
  HAN_ASSERT(a != b && b < world.world_size());

  std::vector<NetpipePoint> points;
  for (std::size_t bytes : options.sizes) {
    auto rtt = std::make_shared<double>(0.0);
    world.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w, std::shared_ptr<double> rtt2, int a2, int b2,
                std::size_t bytes2, int iters, int me) -> sim::CoTask {
        if (me == a2) {
          const double t0 = w.now();
          for (int i = 0; i < iters; ++i) {
            mpi::Request s = w.isend(w.world_comm(), a2, b2, i,
                                     BufView::timing_only(bytes2));
            co_await *s;
            mpi::Request r = w.irecv(w.world_comm(), a2, b2, 1000 + i,
                                     BufView::timing_only(bytes2));
            co_await *r;
          }
          *rtt2 = (w.now() - t0) / iters;
        } else if (me == b2) {
          for (int i = 0; i < iters; ++i) {
            mpi::Request r = w.irecv(w.world_comm(), b2, a2, i,
                                     BufView::timing_only(bytes2));
            co_await *r;
            mpi::Request s = w.isend(w.world_comm(), b2, a2, 1000 + i,
                                     BufView::timing_only(bytes2));
            co_await *s;
          }
        }
        co_return;
      }(world, rtt, a, b, bytes, options.iterations, rank.world_rank);
    });

    NetpipePoint p;
    p.bytes = bytes;
    p.one_way_sec = *rtt / 2.0;
    p.bandwidth_gbps =
        p.one_way_sec > 0.0
            ? static_cast<double>(bytes) / p.one_way_sec / 1e9
            : 0.0;
    points.push_back(p);
  }
  return points;
}

}  // namespace han::benchkit

// Netpipe-style P2P performance sweep (paper Fig. 11): ping-pong between
// two ranks, reporting one-way latency and achieved bandwidth per message
// size.
#pragma once

#include <vector>

#include "simmpi/world.hpp"

namespace han::benchkit {

struct NetpipePoint {
  std::size_t bytes = 0;
  double one_way_sec = 0.0;
  double bandwidth_gbps = 0.0;  // GB/s (1e9 bytes)
};

struct NetpipeOptions {
  std::vector<std::size_t> sizes;
  int iterations = 3;
  int rank_a = 0;
  int rank_b = -1;  // default: first rank of the second node
};

/// Runs in the supplied world (which carries the stack's P2P parameters).
std::vector<NetpipePoint> netpipe(mpi::SimWorld& world,
                                  const NetpipeOptions& options);

}  // namespace han::benchkit

// IMB-style collective benchmarking (paper §IV-A measures everything with
// the Intel MPI Benchmark): for each message size, run warmup + timed
// iterations separated by a global sync, report the maximum completion
// time across ranks averaged over iterations — the paper's cost
// definition.
#pragma once

#include <cstdint>
#include <vector>

#include "vendor/stack.hpp"

namespace han::benchkit {

struct ImbPoint {
  std::size_t bytes = 0;
  double avg_sec = 0.0;  // mean over iterations of max-across-ranks
  double min_sec = 0.0;
  double max_sec = 0.0;
  int iterations = 0;
};

struct ImbOptions {
  std::vector<std::size_t> sizes;
  int warmup = 1;
  int iterations = 2;
  /// IMB drops the iteration count for very large messages.
  std::size_t large_threshold = 4 << 20;
  int iterations_large = 1;
  int root = 0;  // bcast root
};

/// Power-of-two ladder [min_bytes, max_bytes], inclusive.
std::vector<std::size_t> size_ladder(std::size_t min_bytes,
                                     std::size_t max_bytes);

std::vector<ImbPoint> imb_bcast(vendor::MpiStack& stack,
                                const ImbOptions& options);
std::vector<ImbPoint> imb_allreduce(vendor::MpiStack& stack,
                                    const ImbOptions& options);

}  // namespace han::benchkit

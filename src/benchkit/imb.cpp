#include "benchkit/imb.hpp"

#include <algorithm>

namespace han::benchkit {

using mpi::BufView;

std::vector<std::size_t> size_ladder(std::size_t min_bytes,
                                     std::size_t max_bytes) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = min_bytes; s <= max_bytes; s *= 2) {
    sizes.push_back(s);
  }
  return sizes;
}

namespace {

enum class Op { Bcast, Allreduce };

std::vector<ImbPoint> imb_run(vendor::MpiStack& stack, Op op,
                              const ImbOptions& options) {
  std::vector<ImbPoint> points;
  mpi::SimWorld& w = stack.world();

  for (std::size_t bytes : options.sizes) {
    const int iters = bytes >= options.large_threshold
                          ? options.iterations_large
                          : options.iterations;
    const int rounds = options.warmup + iters;
    auto sync = std::make_shared<mpi::SyncDomain>(w.engine(),
                                                  w.world_size());
    auto worst = std::make_shared<std::vector<double>>(rounds, 0.0);

    w.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](vendor::MpiStack& stack2, mpi::SimWorld& w2, Op op2,
                std::shared_ptr<mpi::SyncDomain> sync2,
                std::shared_ptr<std::vector<double>> worst2,
                std::size_t bytes2, int rounds2, int root,
                int me) -> sim::CoTask {
        for (int r = 0; r < rounds2; ++r) {
          co_await *sync2->arrive();
          const double t0 = w2.now();
          mpi::Request req;
          if (op2 == Op::Bcast) {
            req = stack2.ibcast(me, root, BufView::timing_only(bytes2),
                               mpi::Datatype::Byte);
          } else {
            req = stack2.iallreduce(me, BufView::timing_only(bytes2),
                                   BufView::timing_only(bytes2),
                                   mpi::Datatype::Float, mpi::ReduceOp::Sum);
          }
          co_await *req;
          (*worst2)[r] = std::max((*worst2)[r], w2.now() - t0);
        }
      }(stack, w, op, sync, worst, bytes, rounds, options.root,
        rank.world_rank);
    });

    ImbPoint p;
    p.bytes = bytes;
    p.iterations = iters;
    p.min_sec = 1e300;
    double sum = 0.0;
    for (int r = options.warmup; r < rounds; ++r) {
      const double t = (*worst)[r];
      sum += t;
      p.min_sec = std::min(p.min_sec, t);
      p.max_sec = std::max(p.max_sec, t);
    }
    p.avg_sec = sum / iters;
    points.push_back(p);
  }
  return points;
}

}  // namespace

std::vector<ImbPoint> imb_bcast(vendor::MpiStack& stack,
                                const ImbOptions& options) {
  return imb_run(stack, Op::Bcast, options);
}

std::vector<ImbPoint> imb_allreduce(vendor::MpiStack& stack,
                                    const ImbOptions& options) {
  return imb_run(stack, Op::Allreduce, options);
}

}  // namespace han::benchkit

#include "benchkit/osu.hpp"

#include <algorithm>

namespace han::benchkit {

using mpi::BufView;

std::vector<OsuLatencyPoint> osu_latency(mpi::SimWorld& world,
                                         const OsuOptions& options) {
  const int a = 0;
  const int b = world.profile().procs_per_node;  // first rank of node 1
  HAN_ASSERT(world.profile().nodes >= 2);

  std::vector<OsuLatencyPoint> points;
  for (std::size_t bytes : options.sizes) {
    auto rtt = std::make_shared<double>(0.0);
    world.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w, std::shared_ptr<double> rtt2, int a3, int b3,
                std::size_t bytes4, int iters, int me) -> sim::CoTask {
        if (me == a3) {
          const double t0 = w.now();
          for (int i = 0; i < iters; ++i) {
            co_await *w.isend(w.world_comm(), a3, b3, i,
                              BufView::timing_only(bytes4));
            co_await *w.irecv(w.world_comm(), a3, b3, 1000 + i,
                              BufView::timing_only(bytes4));
          }
          *rtt2 = (w.now() - t0) / iters;
        } else if (me == b3) {
          for (int i = 0; i < iters; ++i) {
            co_await *w.irecv(w.world_comm(), b3, a3, i,
                              BufView::timing_only(bytes4));
            co_await *w.isend(w.world_comm(), b3, a3, 1000 + i,
                              BufView::timing_only(bytes4));
          }
        }
        co_return;
      }(world, rtt, a, b, bytes, options.iterations, rank.world_rank);
    });
    points.push_back(OsuLatencyPoint{bytes, *rtt / 2.0});
  }
  return points;
}

std::vector<OsuBwPoint> osu_bw(mpi::SimWorld& world,
                               const OsuOptions& options) {
  const int a = 0;
  const int b = world.profile().procs_per_node;
  HAN_ASSERT(world.profile().nodes >= 2);

  std::vector<OsuBwPoint> points;
  for (std::size_t bytes : options.sizes) {
    auto elapsed = std::make_shared<double>(0.0);
    world.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w, std::shared_ptr<double> elapsed2, int a2,
                int b2, std::size_t bytes3, int iters, int window,
                int me) -> sim::CoTask {
        if (me == a2) {
          const double t0 = w.now();
          for (int it = 0; it < iters; ++it) {
            std::vector<mpi::Request> sends;
            for (int i = 0; i < window; ++i) {
              sends.push_back(w.isend(w.world_comm(), a2, b2, it * 1000 + i,
                                      BufView::timing_only(bytes3)));
            }
            co_await mpi::wait_all(w.engine(), std::move(sends));
            // Window ack.
            co_await *w.irecv(w.world_comm(), a2, b2, 900000 + it,
                              BufView::timing_only(0));
          }
          *elapsed2 = w.now() - t0;
        } else if (me == b2) {
          for (int it = 0; it < iters; ++it) {
            std::vector<mpi::Request> recvs;
            for (int i = 0; i < window; ++i) {
              recvs.push_back(w.irecv(w.world_comm(), b2, a2, it * 1000 + i,
                                      BufView::timing_only(bytes3)));
            }
            co_await mpi::wait_all(w.engine(), std::move(recvs));
            co_await *w.isend(w.world_comm(), b2, a2, 900000 + it,
                              BufView::timing_only(0));
          }
        }
        co_return;
      }(world, elapsed, a, b, bytes, options.iterations, options.window,
        rank.world_rank);
    });
    const double total_bytes = static_cast<double>(bytes) *
                               options.window * options.iterations;
    points.push_back(OsuBwPoint{
        bytes, *elapsed > 0 ? total_bytes / *elapsed / 1e9 : 0.0});
  }
  return points;
}

std::vector<OsuMbwMrPoint> osu_mbw_mr(mpi::SimWorld& world,
                                      const OsuOptions& options) {
  const int ppn = world.profile().procs_per_node;
  const int pairs = std::min(options.pairs, ppn);
  HAN_ASSERT(world.profile().nodes >= 2);

  std::vector<OsuMbwMrPoint> points;
  for (std::size_t bytes : options.sizes) {
    auto done_at = std::make_shared<std::vector<double>>(pairs, 0.0);
    auto t_start = std::make_shared<double>(-1.0);
    world.run([&](mpi::Rank& rank) -> sim::CoTask {
      return [](mpi::SimWorld& w, std::shared_ptr<std::vector<double>> done,
                std::shared_ptr<double> t_start2, int pairs2, int ppn2,
                std::size_t bytes2, int iters, int window,
                int me) -> sim::CoTask {
        const bool sender = me < pairs2;
        const bool receiver = me >= ppn2 && me < ppn2 + pairs2;
        if (sender) {
          if (*t_start2 < 0) *t_start2 = w.now();
          const int peer = me + ppn2;
          for (int it = 0; it < iters; ++it) {
            std::vector<mpi::Request> sends;
            for (int i = 0; i < window; ++i) {
              sends.push_back(w.isend(w.world_comm(), me, peer,
                                      it * 1000 + i,
                                      BufView::timing_only(bytes2)));
            }
            co_await mpi::wait_all(w.engine(), std::move(sends));
            co_await *w.irecv(w.world_comm(), me, peer, 900000 + it,
                              BufView::timing_only(0));
          }
          (*done)[me] = w.now();
        } else if (receiver) {
          const int peer = me - ppn2;
          for (int it = 0; it < iters; ++it) {
            std::vector<mpi::Request> recvs;
            for (int i = 0; i < window; ++i) {
              recvs.push_back(w.irecv(w.world_comm(), me, peer,
                                      it * 1000 + i,
                                      BufView::timing_only(bytes2)));
            }
            co_await mpi::wait_all(w.engine(), std::move(recvs));
            co_await *w.isend(w.world_comm(), me, peer, 900000 + it,
                              BufView::timing_only(0));
          }
        }
        co_return;
      }(world, done_at, t_start, pairs, ppn, bytes, options.iterations,
        options.window, rank.world_rank);
    });
    const double elapsed =
        *std::max_element(done_at->begin(), done_at->end()) - *t_start;
    const double msgs = static_cast<double>(pairs) * options.window *
                        options.iterations;
    OsuMbwMrPoint p;
    p.bytes = bytes;
    p.pairs = pairs;
    p.aggregate_gbps =
        elapsed > 0 ? msgs * static_cast<double>(bytes) / elapsed / 1e9 : 0;
    p.messages_per_sec = elapsed > 0 ? msgs / elapsed : 0;
    points.push_back(p);
  }
  return points;
}

}  // namespace han::benchkit

#include "han/han.hpp"

#include <algorithm>

#include <cstring>

#include "coll/builders.hpp"

namespace han::core {

namespace {

using coll::CollConfig;
using coll::CollKind;
using coll::Segmenter;
using mpi::BufView;
using mpi::Request;

BufView seg_of(BufView buf, const Segmenter& segs, int i) {
  return buf.slice(segs.offset(i), segs.length(i));
}

/// Owning temp buffer usable as BufView slices; empty in timing-only mode.
struct TempBuf {
  std::vector<std::byte> storage;
  mpi::Datatype dtype = mpi::Datatype::Byte;

  TempBuf(bool data_mode, std::size_t bytes, mpi::Datatype t) : dtype(t) {
    if (data_mode) storage.resize(bytes);
  }
  BufView view(std::size_t off, std::size_t len) {
    if (storage.empty()) {
      BufView v = BufView::timing_only(len, dtype);
      return v;
    }
    return BufView{storage.data() + off, len, dtype};
  }
};

}  // namespace

HanModule::HanModule(mpi::SimWorld& world, coll::CollRuntime& rt,
                     coll::ModuleSet& mods)
    : coll::CollModule(world, rt), mods_(&mods) {}

HanConfig HanModule::default_config(CollKind kind, int /*nodes*/, int ppn,
                                    std::size_t bytes) {
  // Static heuristic in the spirit of the paper's §III-C discussion: small
  // operations want low-setup submodules (Libnbc + SM); large ones want
  // pipelining depth, ADAPT's segmentation, and SOLO's single-copy/AVX
  // path. The autotuner replaces this wholesale.
  HanConfig c;
  if (bytes <= (64u << 10)) {
    c.fs = std::max<std::size_t>(bytes, 1);
    c.imod = "libnbc";
    c.smod = "sm";
    c.ibalg = coll::Algorithm::Binomial;
    c.iralg = coll::Algorithm::Binomial;
    return c;
  }
  c.fs = bytes >= (32u << 20) ? (2u << 20) : (512u << 10);
  c.imod = "adapt";
  // Chain keeps the root's injection bandwidth at full rate; with enough
  // segments its fill time amortizes. Binary halves root bandwidth but
  // fills in log(n) — better when the pipeline is short.
  const bool deep_pipeline = bytes / c.fs >= 8;
  c.ibalg = deep_pipeline ? coll::Algorithm::Chain : coll::Algorithm::Binary;
  c.iralg = c.ibalg;
  c.ibs = 64 << 10;
  c.irs = 64 << 10;
  const bool reduces = kind == CollKind::Allreduce ||
                       kind == CollKind::Reduce ||
                       kind == CollKind::ReduceScatter;
  c.smod = (c.fs >= (512u << 10) && (reduces || ppn >= 8)) ? "solo" : "sm";
  if (kind == CollKind::ReduceScatter && bytes >= (64u << 10)) {
    // Large reduce-scatter: the bandwidth-optimal inter-node ring (each
    // leader moves ~m bytes total vs ~2m for reduce-to-root + scatter).
    // Measured crossover vs the trees is ~1-2KB on aries-class machines;
    // 64KB keeps a latency-safety margin for flatter topologies.
    c.imod = "ring";
    c.ibalg = coll::Algorithm::Ring;
    c.iralg = coll::Algorithm::Ring;
    c.ibs = 0;
    c.irs = 0;
  }
  return c;
}

HanConfig HanModule::decide(CollKind kind, const mpi::Comm& comm,
                            std::size_t bytes) {
  HanComm& hc = han_comm(comm);
  HanConfig cfg =
      decider_ ? decider_(kind, hc.node_count(), hc.max_ppn(), bytes)
               : default_config(kind, hc.node_count(), hc.max_ppn(), bytes);
  obs::MetricsRegistry& m = world().metrics();
  m.counter(std::string("han.decide.") + coll::coll_kind_name(kind)).add(1.0);
  m.counter("han.decide.bytes").add(static_cast<double>(bytes));
  m.counter("han.cfg.imod." + cfg.imod).add(1.0);
  m.counter("han.cfg.smod." + cfg.smod).add(1.0);
  return cfg;
}

HanComm& HanModule::han_comm(const mpi::Comm& comm) {
  auto it = comms_.find(comm.context());
  if (it == comms_.end()) {
    it = comms_
             .emplace(comm.context(),
                      std::make_unique<HanComm>(world(), comm))
             .first;
    // Label the new sub-communicators so runtime accounting separates the
    // hierarchy levels (coll.level.intra.* / coll.level.inter.*).
    const HanComm& hc = *it->second;
    for (int pr = 0; pr < comm.size(); ++pr) {
      rt().set_level_label(hc.low(pr).context(), "intra");
      if (hc.up(pr) != nullptr) {
        rt().set_level_label(hc.up(pr)->context(), "inter");
      }
    }
  }
  return *it->second;
}

coll::CollModule* HanModule::inter_module(const HanConfig& cfg) {
  coll::CollModule* m = mods_->find(cfg.imod);
  HAN_ASSERT_MSG(m != nullptr && m->nonblocking_capable(),
                 "imod must be a nonblocking-capable module");
  return m;
}

coll::CollModule* HanModule::intra_module(const HanConfig& cfg) {
  coll::CollModule* m = mods_->find(cfg.smod);
  HAN_ASSERT_MSG(m != nullptr && m->intra_node_only(),
                 "smod must be an intra-node module");
  return m;
}

// ---------------------------------------------------------------------------
// MPI_Bcast (paper Fig. 1)
// ---------------------------------------------------------------------------

namespace {

sim::CoTask bcast_program(HanModule& m, mpi::SimWorld& w,
                          const mpi::Comm& comm, int me, int root,
                          BufView buf, mpi::Datatype dtype, HanConfig cfg,
                          Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;

  coll::CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      co_await *smod->ibcast(low, me_low, root_low, buf, dtype, CollConfig{});
    }
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  // The up communicator carrying data is the one holding the root: every
  // rank whose local rank equals the root's local rank is a "leader" for
  // this operation (Open MPI HAN's root_low_rank trick — no relay hop).
  if (me_low == root_low) {
    const mpi::Comm& up = *hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);

    // Task ib(0).
    co_await *imod->ibcast(up, me_up, root_up, seg_of(buf, segs, 0), dtype,
                           icfg);
    // Tasks sbib(1) .. sbib(u-1): intra bcast of segment i-1 overlapped
    // with inter bcast of segment i.
    for (int i = 1; i < u; ++i) {
      std::vector<Request> task;
      if (has_intra) {
        task.push_back(smod->ibcast(low, me_low, root_low,
                                    seg_of(buf, segs, i - 1), dtype,
                                    CollConfig{}));
      }
      task.push_back(
          imod->ibcast(up, me_up, root_up, seg_of(buf, segs, i), dtype, icfg));
      co_await mpi::wait_all(w.engine(), std::move(task));
    }
    // Task sb(u-1).
    if (has_intra) {
      co_await *smod->ibcast(low, me_low, root_low, seg_of(buf, segs, u - 1),
                             dtype, CollConfig{});
    }
  } else {
    // Tasks sb(0) .. sb(u-1).
    for (int i = 0; i < u; ++i) {
      co_await *smod->ibcast(low, me_low, root_low, seg_of(buf, segs, i),
                             dtype, CollConfig{});
    }
  }
  done->complete();
}

}  // namespace

mpi::Request HanModule::ibcast_cfg(const mpi::Comm& comm, int me, int root,
                                   BufView buf, mpi::Datatype dtype,
                                   const HanConfig& cfg) {
  Request done = mpi::make_request(world().engine());
  bcast_program(*this, world(), comm, me, root, buf, dtype, cfg, done)
      .start();
  return done;
}

mpi::Request HanModule::ibcast(const mpi::Comm& comm, int me, int root,
                               BufView buf, mpi::Datatype dtype,
                               const CollConfig& /*cfg*/) {
  return ibcast_cfg(comm, me, root, buf, dtype,
                    decide(CollKind::Bcast, comm, buf.bytes));
}

// ---------------------------------------------------------------------------
// MPI_Reduce: sr → ir pipeline (the rooted prefix of Fig. 5)
// ---------------------------------------------------------------------------

namespace {

sim::CoTask reduce_program(HanModule& m, mpi::SimWorld& w,
                           const mpi::Comm& comm, int me, int root,
                           BufView send, BufView recv, mpi::Datatype dtype,
                           mpi::ReduceOp op, HanConfig cfg, Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;

  coll::CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      co_await *smod->ireduce(low, me_low, root_low, send, recv, dtype, op,
                              CollConfig{});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();

  if (me_low == root_low) {
    const mpi::Comm& up = *hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    // Per-node partial results; feeds the inter-node reduction.
    TempBuf partial(w.data_mode(), send.bytes, dtype);

    auto sr = [&](int i) {
      if (!has_intra) return Request();  // partial == own send segment
      return smod->ireduce(low, me_low, root_low, seg_of(send, segs, i),
                           partial.view(segs.offset(i), segs.length(i)),
                           dtype, op, CollConfig{});
    };
    auto ir = [&](int i) {
      BufView contrib = has_intra
                            ? partial.view(segs.offset(i), segs.length(i))
                            : seg_of(send, segs, i);
      return imod->ireduce(up, me_up, root_up, contrib,
                           seg_of(recv, segs, i), dtype, op, ircfg);
    };

    if (has_intra) {
      co_await *sr(0);  // task sr(0)
      for (int i = 1; i < u; ++i) {
        // Task irsr(i): inter reduce of segment i-1 + intra reduce of i.
        std::vector<Request> task{ir(i - 1), sr(i)};
        co_await mpi::wait_all(w.engine(), std::move(task));
      }
      co_await *ir(u - 1);
    } else {
      // No intra level: pipeline degenerates to sequential ir tasks.
      for (int i = 0; i < u; ++i) co_await *ir(i);
    }
  } else {
    for (int i = 0; i < u; ++i) {
      co_await *smod->ireduce(low, me_low, root_low, seg_of(send, segs, i),
                              BufView::timing_only(segs.length(i), dtype),
                              dtype, op, CollConfig{});
    }
  }
  done->complete();
}

}  // namespace

mpi::Request HanModule::ireduce_cfg(const mpi::Comm& comm, int me, int root,
                                    BufView send, BufView recv,
                                    mpi::Datatype dtype, mpi::ReduceOp op,
                                    const HanConfig& cfg) {
  Request done = mpi::make_request(world().engine());
  reduce_program(*this, world(), comm, me, root, send, recv, dtype, op, cfg,
                 done)
      .start();
  return done;
}

mpi::Request HanModule::ireduce(const mpi::Comm& comm, int me, int root,
                                BufView send, BufView recv,
                                mpi::Datatype dtype, mpi::ReduceOp op,
                                const CollConfig& /*cfg*/) {
  return ireduce_cfg(comm, me, root, send, recv, dtype, op,
                     decide(CollKind::Reduce, comm, send.bytes));
}

// ---------------------------------------------------------------------------
// MPI_Allreduce (paper Fig. 5): 4-stage sr → ir → ib → sb pipeline
// ---------------------------------------------------------------------------

namespace {

sim::CoTask allreduce_program(HanModule& m, mpi::SimWorld& w,
                              const mpi::Comm& comm, int me, BufView send,
                              BufView recv, mpi::Datatype dtype,
                              mpi::ReduceOp op, HanConfig cfg, Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;

  coll::CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      co_await *smod->iallreduce(low, me_low, send, recv, dtype, op,
                                 CollConfig{});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  // Paper §III-B: ir and ib use the same algorithm and the same root to
  // maximize the opposite-direction overlap on the full-duplex network.
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const bool leader = me_low == 0;  // no user root: node-local rank 0 leads

  if (leader) {
    const mpi::Comm& up = *hc.up(me);
    const int me_up = hc.up_rank(me);
    TempBuf partial(w.data_mode(), send.bytes, dtype);

    auto sr = [&](int i) {
      return smod->ireduce(low, me_low, /*root=*/0, seg_of(send, segs, i),
                           partial.view(segs.offset(i), segs.length(i)),
                           dtype, op, CollConfig{});
    };
    auto ir = [&](int i) {
      BufView contrib = has_intra
                            ? partial.view(segs.offset(i), segs.length(i))
                            : seg_of(send, segs, i);
      return imod->ireduce(up, me_up, /*root=*/0, contrib,
                           seg_of(recv, segs, i), dtype, op, ircfg);
    };
    auto ib = [&](int i) {
      return imod->ibcast(up, me_up, /*root=*/0, seg_of(recv, segs, i), dtype,
                          ibcfg);
    };
    auto sb = [&](int i) {
      return smod->ibcast(low, me_low, /*root=*/0, seg_of(recv, segs, i),
                          dtype, CollConfig{});
    };

    // Steps t = 0 .. u+2 generate exactly the paper's task sequence:
    // sr(0); irsr(1); ibirsr(2); sbibirsr(3..u-1); sbibir; sbib; sb.
    for (int t = 0; t <= u + 2; ++t) {
      std::vector<Request> task;
      if (has_intra && t <= u - 1) task.push_back(sr(t));
      if (t >= 1 && t - 1 <= u - 1) task.push_back(ir(t - 1));
      if (t >= 2 && t - 2 <= u - 1) task.push_back(ib(t - 2));
      if (has_intra && t >= 3 && t - 3 <= u - 1) task.push_back(sb(t - 3));
      if (!task.empty()) co_await mpi::wait_all(w.engine(), std::move(task));
    }
  } else {
    // Task sbsr(i): receive broadcast segment i-3 while contributing
    // segment i to the intra-node reduction.
    for (int t = 0; t <= u + 2; ++t) {
      std::vector<Request> task;
      if (t <= u - 1) {
        task.push_back(smod->ireduce(
            low, me_low, /*root=*/0, seg_of(send, segs, t),
            BufView::timing_only(segs.length(t), dtype), dtype, op,
            CollConfig{}));
      }
      if (t >= 3 && t - 3 <= u - 1) {
        task.push_back(smod->ibcast(low, me_low, /*root=*/0,
                                    seg_of(recv, segs, t - 3), dtype,
                                    CollConfig{}));
      }
      if (!task.empty()) co_await mpi::wait_all(w.engine(), std::move(task));
    }
  }
  done->complete();
}

}  // namespace

mpi::Request HanModule::iallreduce_cfg(const mpi::Comm& comm, int me,
                                       BufView send, BufView recv,
                                       mpi::Datatype dtype, mpi::ReduceOp op,
                                       const HanConfig& cfg) {
  Request done = mpi::make_request(world().engine());
  allreduce_program(*this, world(), comm, me, send, recv, dtype, op, cfg,
                    done)
      .start();
  return done;
}

mpi::Request HanModule::iallreduce(const mpi::Comm& comm, int me,
                                   BufView send, BufView recv,
                                   mpi::Datatype dtype, mpi::ReduceOp op,
                                   const CollConfig& /*cfg*/) {
  return iallreduce_cfg(comm, me, send, recv, dtype, op,
                        decide(CollKind::Allreduce, comm, send.bytes));
}

// ---------------------------------------------------------------------------
// Extension: multi-leader allreduce — stripe the segment pipeline across k
// node-local leaders, each driving its own up communicator.
// ---------------------------------------------------------------------------

namespace {

sim::CoTask multileader_allreduce_program(HanModule& m, mpi::SimWorld& w,
                                          const mpi::Comm& comm, int me,
                                          BufView send, BufView recv,
                                          mpi::Datatype dtype,
                                          mpi::ReduceOp op, HanConfig cfg,
                                          int k, Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  k = std::max(1, std::min(k, low.size()));

  if (!has_inter || !has_intra || k == 1) {
    // Degenerate shapes reuse the single-leader pipeline.
    mpi::Request inner = m.iallreduce_cfg(comm, me, send, recv, dtype, op,
                                          cfg);
    inner->on_complete([done] { done->complete(); });
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  coll::CollModule* smod = m.intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const int leader_idx = me_low < k ? me_low : -1;
  TempBuf partial(w.data_mode() && leader_idx >= 0, send.bytes, dtype);

  // Stripe j = segments with i % k == j, owned by leader j. Every rank
  // participates in all sr/sb (consistent low-comm call order); leader j
  // additionally drives ir/ib for its stripe on up comm j.
  for (int t = 0; t <= u + 2; ++t) {
    std::vector<Request> task;
    if (t <= u - 1) {
      const int owner = t % k;
      task.push_back(smod->ireduce(
          low, me_low, owner, seg_of(send, segs, t),
          me_low == owner
              ? partial.view(segs.offset(t), segs.length(t))
              : BufView::timing_only(segs.length(t), dtype),
          dtype, op, CollConfig{}));
    }
    if (leader_idx >= 0 && t >= 1 && t - 1 <= u - 1 &&
        (t - 1) % k == leader_idx) {
      const mpi::Comm& up = *hc.up(me);
      task.push_back(imod->ireduce(
          up, hc.up_rank(me), /*root=*/0,
          partial.view(segs.offset(t - 1), segs.length(t - 1)),
          seg_of(recv, segs, t - 1), dtype, op, ircfg));
    }
    if (leader_idx >= 0 && t >= 2 && t - 2 <= u - 1 &&
        (t - 2) % k == leader_idx) {
      const mpi::Comm& up = *hc.up(me);
      task.push_back(imod->ibcast(up, hc.up_rank(me), /*root=*/0,
                                  seg_of(recv, segs, t - 2), dtype, ibcfg));
    }
    if (t >= 3 && t - 3 <= u - 1) {
      const int owner = (t - 3) % k;
      task.push_back(smod->ibcast(low, me_low, owner,
                                  seg_of(recv, segs, t - 3), dtype,
                                  CollConfig{}));
    }
    if (!task.empty()) co_await mpi::wait_all(w.engine(), std::move(task));
  }
  done->complete();
}

}  // namespace

mpi::Request HanModule::iallreduce_multileader(const mpi::Comm& comm, int me,
                                               BufView send, BufView recv,
                                               mpi::Datatype dtype,
                                               mpi::ReduceOp op,
                                               const HanConfig& cfg,
                                               int leaders) {
  Request done = mpi::make_request(world().engine());
  multileader_allreduce_program(*this, world(), comm, me, send, recv, dtype,
                                op, cfg, leaders, done)
      .start();
  return done;
}

// ---------------------------------------------------------------------------
// Extensions: Gather / Scatter / Allgather / Barrier (paper §III: "similar
// designs can be extended to other collective operations")
// ---------------------------------------------------------------------------

namespace {

/// HAN's two-level data layout requires node-contiguous rank placement on
/// the parent communicator (true for the world communicator; Open MPI HAN
/// likewise disables itself otherwise).
bool node_contiguous(const HanComm& hc) {
  const mpi::Comm& parent = hc.parent();
  for (int pr = 1; pr < parent.size(); ++pr) {
    // Parent ranks on the same node must be consecutive.
    const bool same_low =
        &hc.low(pr) == &hc.low(pr - 1);
    if (same_low && hc.low_rank(pr) != hc.low_rank(pr - 1) + 1) return false;
    if (!same_low && hc.low_rank(pr) != 0) return false;
  }
  return true;
}

sim::CoTask gather_program(HanModule& m, mpi::SimWorld& w,
                           const mpi::Comm& comm, int me, int root,
                           BufView send, BufView recv, HanConfig cfg,
                           Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = send.bytes;

  if (!has_inter) {
    co_await *m.modules().libnbc().igather(low, me_low, root_low, send, recv,
                                           CollConfig{});
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  // Stage 1 (sg): node-local gather to this operation's leaders. P2P
  // gather over the shm pipe — Open MPI similarly falls back to a P2P
  // module for intra-node gather.
  TempBuf node_block(w.data_mode(), block * low.size(), mpi::Datatype::Byte);
  const bool leader = me_low == root_low;
  co_await *m.modules().libnbc().igather(
      low, me_low, root_low, send,
      leader ? node_block.view(0, block * low.size())
             : BufView::timing_only(block * low.size()),
      CollConfig{});

  // Stage 2 (ig): inter-node gather of node blocks to the root.
  if (leader) {
    const mpi::Comm& up = *hc.up(me);
    co_await *imod->igather(up, hc.up_rank(me), hc.up_rank(root),
                            node_block.view(0, block * low.size()),
                            me == root ? recv
                                       : BufView::timing_only(recv.bytes),
                            CollConfig{});
  }
  done->complete();
}

sim::CoTask scatter_program(HanModule& m, mpi::SimWorld& w,
                            const mpi::Comm& comm, int me, int root,
                            BufView send, BufView recv, HanConfig cfg,
                            Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = recv.bytes;

  if (!has_inter) {
    co_await *m.modules().libnbc().iscatter(low, me_low, root_low, send, recv,
                                            CollConfig{});
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  TempBuf node_block(w.data_mode(), block * low.size(), mpi::Datatype::Byte);
  const bool leader = me_low == root_low;
  if (leader) {
    const mpi::Comm& up = *hc.up(me);
    co_await *imod->iscatter(up, hc.up_rank(me), hc.up_rank(root),
                             me == root ? send
                                        : BufView::timing_only(send.bytes),
                             node_block.view(0, block * low.size()),
                             CollConfig{});
  }
  co_await *m.modules().libnbc().iscatter(
      low, me_low, root_low,
      leader ? node_block.view(0, block * low.size())
             : BufView::timing_only(block * low.size()),
      recv, CollConfig{});
  done->complete();
}

sim::CoTask allgather_program(HanModule& m, mpi::SimWorld& w,
                              const mpi::Comm& comm, int me, BufView send,
                              BufView recv, HanConfig cfg, Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = send.bytes;

  if (!has_inter) {
    co_await *m.modules().libnbc().iallgather(low, me_low, send, recv,
                                              CollConfig{});
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  coll::CollModule* smod = m.intra_module(cfg);
  const bool leader = me_low == 0;

  // sg: gather node block to the leader.
  TempBuf node_block(w.data_mode(), block * low.size(), mpi::Datatype::Byte);
  co_await *m.modules().libnbc().igather(
      low, me_low, /*root=*/0, send,
      leader ? node_block.view(0, block * low.size())
             : BufView::timing_only(block * low.size()),
      CollConfig{});

  // iag: inter-node allgather of node blocks (leaders only) straight into
  // the final layout (node-contiguous placement).
  if (leader) {
    const mpi::Comm& up = *hc.up(me);
    co_await *imod->iallgather(up, hc.up_rank(me),
                               node_block.view(0, block * low.size()), recv,
                               CollConfig{});
  }

  // sb: broadcast the assembled buffer within the node.
  co_await *smod->ibcast(low, me_low, /*root=*/0, recv, mpi::Datatype::Byte,
                         CollConfig{});
  done->complete();
}

// Hierarchical reduce-scatter (equal blocks, MPI_Reduce_scatter_block
// semantics). Three stages in the paper's task-composition style:
//   sr(i):  intra-node reduce of segment i to the leader (pipelined)
//   inter:  either a ring reduce-scatter over the leaders (imod == "ring",
//           each leader ends with its node's region — ~m bytes moved), or
//           the sr→ir reduce pipeline to up-root 0 followed by one inter
//           scatter of the node regions (~2m, but log-depth at small m)
//   ss:     intra-node scatter of the node's region into per-rank blocks
sim::CoTask reduce_scatter_program(HanModule& m, mpi::SimWorld& w,
                                   const mpi::Comm& comm, int me,
                                   BufView send, BufView recv,
                                   mpi::Datatype dtype, mpi::ReduceOp op,
                                   HanConfig cfg, Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t total = send.bytes;

  coll::CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      // Single node: reduce to the leader, then scatter the blocks back.
      TempBuf full(w.data_mode() && me_low == 0, total, dtype);
      co_await *smod->ireduce(low, me_low, /*root=*/0, send,
                              full.view(0, total), dtype, op, CollConfig{});
      co_await *m.modules().libnbc().iscatter(low, me_low, /*root=*/0,
                                              full.view(0, total), recv,
                                              CollConfig{});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    done->complete();
    co_return;
  }

  coll::CollModule* imod = m.inter_module(cfg);
  const std::size_t region = recv.bytes * low.size();  // this node's slice
  const Segmenter segs(total, cfg.fs, dtype);
  const int u = segs.count();
  const bool leader = me_low == 0;
  const bool ring = cfg.imod == "ring";

  if (leader) {
    const mpi::Comm& up = *hc.up(me);
    const int me_up = hc.up_rank(me);
    TempBuf partial(w.data_mode() && has_intra, total, dtype);  // node sums
    TempBuf node_region(w.data_mode() && has_intra, region, dtype);
    // Without an intra level the node's region is the caller's block.
    BufView region_buf = has_intra ? node_region.view(0, region) : recv;

    auto sr = [&](int i) {
      return smod->ireduce(low, me_low, /*root=*/0, seg_of(send, segs, i),
                           partial.view(segs.offset(i), segs.length(i)),
                           dtype, op, CollConfig{});
    };
    auto contrib = [&](int i) {
      return has_intra ? partial.view(segs.offset(i), segs.length(i))
                       : seg_of(send, segs, i);
    };

    if (ring) {
      const CollConfig ircfg{coll::Algorithm::Ring, cfg.irs};
      if (has_intra) {
        // Slice the node region and pipeline the two levels: while the
        // inter-node ring reduce-scatters slice k-1 (the strided chunk
        // set {j*region + slice k-1 : j}), the intra level reduces the
        // pieces of slice k. Mirrors the tree path's sr ⊕ ir overlap.
        const Segmenter sl(region, std::min(cfg.fs, region), dtype);
        const int nodes = hc.node_count();
        Request ring_prev;
        for (int k = 0; k < sl.count(); ++k) {
          for (int j = 0; j < nodes; ++j) {
            const std::size_t off = j * region + sl.offset(k);
            co_await *smod->ireduce(low, me_low, /*root=*/0,
                                    send.slice(off, sl.length(k)),
                                    partial.view(off, sl.length(k)), dtype,
                                    op, CollConfig{});
          }
          if (ring_prev) co_await *ring_prev;
          ring_prev = m.modules().ring().ireduce_scatter_strided(
              up, me_up, partial.view(sl.offset(k), total - sl.offset(k)),
              node_region.view(sl.offset(k), sl.length(k)), region, dtype,
              op, ircfg);
        }
        co_await *ring_prev;
      } else {
        // No intra level: one bandwidth-optimal ring reduce-scatter of
        // the whole vector — chunk j of the up comm is exactly node j's
        // region (node-contiguous placement).
        co_await *imod->ireduce_scatter(up, me_up, send, region_buf, dtype,
                                        op, ircfg);
      }
    } else {
      // Tree path: sr ⊕ ir pipeline reducing the whole vector to up-root
      // 0, then one inter scatter of the node regions.
      const CollConfig ircfg{cfg.iralg, cfg.irs};
      TempBuf full_red(w.data_mode() && me_up == 0, total, dtype);
      auto ir = [&](int i) {
        return imod->ireduce(up, me_up, /*root=*/0, contrib(i),
                             full_red.view(segs.offset(i), segs.length(i)),
                             dtype, op, ircfg);
      };
      if (has_intra) {
        co_await *sr(0);
        for (int i = 1; i < u; ++i) {
          std::vector<Request> task{ir(i - 1), sr(i)};
          co_await mpi::wait_all(w.engine(), std::move(task));
        }
        co_await *ir(u - 1);
      } else {
        for (int i = 0; i < u; ++i) co_await *ir(i);
      }
      co_await *imod->iscatter(up, me_up, /*root=*/0, full_red.view(0, total),
                               region_buf, CollConfig{});
    }

    // ss: scatter the node's reduced region into per-rank blocks.
    if (has_intra) {
      co_await *m.modules().libnbc().iscatter(low, me_low, /*root=*/0,
                                              node_region.view(0, region),
                                              recv, CollConfig{});
    }
  } else {
    // Non-leaders: contribute to every sr (in exactly the leader's issue
    // order — the low comm matches collectives by call order), then
    // receive their block.
    if (ring) {
      const Segmenter sl(region, std::min(cfg.fs, region), dtype);
      const int nodes = hc.node_count();
      for (int k = 0; k < sl.count(); ++k) {
        for (int j = 0; j < nodes; ++j) {
          const std::size_t off = j * region + sl.offset(k);
          co_await *smod->ireduce(low, me_low, /*root=*/0,
                                  send.slice(off, sl.length(k)),
                                  BufView::timing_only(sl.length(k), dtype),
                                  dtype, op, CollConfig{});
        }
      }
    } else {
      for (int i = 0; i < u; ++i) {
        co_await *smod->ireduce(low, me_low, /*root=*/0,
                                seg_of(send, segs, i),
                                BufView::timing_only(segs.length(i), dtype),
                                dtype, op, CollConfig{});
      }
    }
    co_await *m.modules().libnbc().iscatter(low, me_low, /*root=*/0,
                                            BufView::timing_only(region),
                                            recv, CollConfig{});
  }
  done->complete();
}

sim::CoTask barrier_program(HanModule& m, const mpi::Comm& comm, int me,
                            Request done) {
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm& low = hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;

  // Fan-in: node barrier; leaders: inter barrier; fan-out: node signal.
  if (has_intra) co_await *m.modules().sm().ibarrier(low, me_low);
  if (has_inter && me_low == 0) {
    co_await *m.modules().libnbc().ibarrier(*hc.up(me), hc.up_rank(me));
  }
  if (has_intra) {
    co_await *m.modules().sm().ibcast(low, me_low, /*root=*/0,
                                      BufView::timing_only(0),
                                      mpi::Datatype::Byte, CollConfig{});
  }
  done->complete();
}

}  // namespace

mpi::Request HanModule::igather(const mpi::Comm& comm, int me, int root,
                                BufView send, BufView recv,
                                const CollConfig& /*cfg*/) {
  HAN_ASSERT_MSG(node_contiguous(han_comm(comm)),
                 "HAN gather requires node-contiguous rank placement");
  Request done = mpi::make_request(world().engine());
  gather_program(*this, world(), comm, me, root, send, recv,
                 decide(CollKind::Gather, comm, send.bytes), done)
      .start();
  return done;
}

mpi::Request HanModule::iscatter(const mpi::Comm& comm, int me, int root,
                                 BufView send, BufView recv,
                                 const CollConfig& /*cfg*/) {
  HAN_ASSERT_MSG(node_contiguous(han_comm(comm)),
                 "HAN scatter requires node-contiguous rank placement");
  Request done = mpi::make_request(world().engine());
  scatter_program(*this, world(), comm, me, root, send, recv,
                  decide(CollKind::Scatter, comm, recv.bytes), done)
      .start();
  return done;
}

mpi::Request HanModule::iallgather(const mpi::Comm& comm, int me,
                                   BufView send, BufView recv,
                                   const CollConfig& /*cfg*/) {
  HAN_ASSERT_MSG(node_contiguous(han_comm(comm)),
                 "HAN allgather requires node-contiguous rank placement");
  Request done = mpi::make_request(world().engine());
  allgather_program(*this, world(), comm, me, send, recv,
                    decide(CollKind::Allgather, comm, send.bytes), done)
      .start();
  return done;
}

mpi::Request HanModule::ireduce_scatter_cfg(const mpi::Comm& comm, int me,
                                            BufView send, BufView recv,
                                            mpi::Datatype dtype,
                                            mpi::ReduceOp op,
                                            const HanConfig& cfg) {
  HanComm& hc = han_comm(comm);
  HAN_ASSERT_MSG(node_contiguous(hc),
                 "HAN reduce_scatter requires node-contiguous rank placement");
  HAN_ASSERT_MSG(
      send.bytes == recv.bytes * static_cast<std::size_t>(comm.size()),
      "reduce_scatter: send must be comm_size equal blocks of recv.bytes");
  HAN_ASSERT_MSG(hc.node_count() * hc.max_ppn() == comm.size(),
                 "HAN reduce_scatter requires a uniform ppn");
  Request done = mpi::make_request(world().engine());
  reduce_scatter_program(*this, world(), comm, me, send, recv, dtype, op, cfg,
                         done)
      .start();
  return done;
}

mpi::Request HanModule::ireduce_scatter(const mpi::Comm& comm, int me,
                                        BufView send, BufView recv,
                                        mpi::Datatype dtype, mpi::ReduceOp op,
                                        const CollConfig& /*cfg*/) {
  return ireduce_scatter_cfg(comm, me, send, recv, dtype, op,
                             decide(CollKind::ReduceScatter, comm,
                                    send.bytes));
}

mpi::Request HanModule::ibarrier(const mpi::Comm& comm, int me) {
  Request done = mpi::make_request(world().engine());
  barrier_program(*this, comm, me, done).start();
  return done;
}

}  // namespace han::core

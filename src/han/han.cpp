#include "han/han.hpp"

#include <algorithm>

#include "han/synth/schedule_builder.hpp"
#include "han/task/builders.hpp"
#include "han/task/scheduler.hpp"

namespace han::core {

namespace {

using coll::CollConfig;
using coll::CollKind;
using mpi::BufView;
using mpi::Request;

/// Resolve cfg.sched into a validated SynthSpec of the expected kind.
/// A config naming a schedule is either synthesizer output or a cached
/// table entry; a malformed or wrong-kind id there is corruption, not a
/// fallback situation.
synth::SynthSpec resolve_sched(const HanConfig& cfg, CollKind kind) {
  synth::SynthSpec spec;
  HAN_ASSERT_MSG(synth::SynthSpec::parse(cfg.sched, &spec),
                 "cfg.sched is not a valid synthesized-schedule id");
  HAN_ASSERT_MSG(spec.kind == kind,
                 "cfg.sched names a schedule for a different collective");
  return spec;
}

}  // namespace

HanModule::HanModule(mpi::SimWorld& world, coll::CollRuntime& rt,
                     coll::ModuleSet& mods)
    : coll::CollModule(world, rt), mods_(&mods) {
  // When a communicator dies, its cached ladders must die with it — the
  // context id is recycled, and a later comm reusing it would otherwise
  // inherit this comm's level splits. Freeing the splits re-enters
  // free_comm, which evicts the runtime's per-context state for them too.
  destroy_observer_ = world.add_comm_destroy_observer([this](int context) {
    auto it = comms_.find(context);
    if (it == comms_.end()) return;
    std::vector<std::unique_ptr<Hierarchy>> ladders = std::move(it->second);
    comms_.erase(it);
    for (const std::unique_ptr<Hierarchy>& h : ladders) {
      for (mpi::Comm* sub : h->sub_comms()) this->world().free_comm(sub);
    }
  });
}

HanModule::~HanModule() {
  world().remove_comm_destroy_observer(destroy_observer_);
}

HanConfig HanModule::default_config(CollKind kind, int /*nodes*/, int ppn,
                                    std::size_t bytes) {
  // Static heuristic in the spirit of the paper's §III-C discussion: small
  // operations want low-setup submodules (Libnbc + SM); large ones want
  // pipelining depth, ADAPT's segmentation, and SOLO's single-copy/AVX
  // path. The autotuner replaces this wholesale.
  HanConfig c;
  if (bytes <= (64u << 10)) {
    c.fs = std::max<std::size_t>(bytes, 1);
    c.imod = "libnbc";
    c.smod = "sm";
    c.ibalg = coll::Algorithm::Binomial;
    c.iralg = coll::Algorithm::Binomial;
    return c;
  }
  c.fs = bytes >= (32u << 20) ? (2u << 20) : (512u << 10);
  c.imod = "adapt";
  // Chain keeps the root's injection bandwidth at full rate; with enough
  // segments its fill time amortizes. Binary halves root bandwidth but
  // fills in log(n) — better when the pipeline is short.
  const bool deep_pipeline = bytes / c.fs >= 8;
  c.ibalg = deep_pipeline ? coll::Algorithm::Chain : coll::Algorithm::Binary;
  c.iralg = c.ibalg;
  c.ibs = 64 << 10;
  c.irs = 64 << 10;
  const bool reduces = kind == CollKind::Allreduce ||
                       kind == CollKind::Reduce ||
                       kind == CollKind::ReduceScatter;
  c.smod = (c.fs >= (512u << 10) && (reduces || ppn >= 8)) ? "solo" : "sm";
  if (kind == CollKind::ReduceScatter && bytes >= (64u << 10)) {
    // Large reduce-scatter: the bandwidth-optimal inter-node ring (each
    // leader moves ~m bytes total vs ~2m for reduce-to-root + scatter).
    // Measured crossover vs the trees is ~1-2KB on aries-class machines;
    // 64KB keeps a latency-safety margin for flatter topologies.
    c.imod = "ring";
    c.ibalg = coll::Algorithm::Ring;
    c.iralg = coll::Algorithm::Ring;
    c.ibs = 0;
    c.irs = 0;
  }
  return c;
}

HanConfig HanModule::decide(CollKind kind, const mpi::Comm& comm,
                            std::size_t bytes) {
  Hierarchy& hc = hierarchy(comm);
  HanConfig cfg =
      decider_ ? decider_(kind, hc.node_count(), hc.max_ppn(), bytes)
               : default_config(kind, hc.node_count(), hc.max_ppn(), bytes);
  obs::MetricsRegistry& m = world().metrics();
  m.counter(std::string("han.decide.") + coll::coll_kind_name(kind)).add(1.0);
  m.counter("han.decide.bytes").add(static_cast<double>(bytes));
  m.counter("han.cfg.imod." + cfg.imod).add(1.0);
  m.counter("han.cfg.smod." + cfg.smod).add(1.0);
  return cfg;
}

Hierarchy& HanModule::hierarchy(const mpi::Comm& comm,
                                const TopologyDescriptor& topo) {
  std::vector<std::unique_ptr<Hierarchy>>& ladders = comms_[comm.context()];
  for (const std::unique_ptr<Hierarchy>& h : ladders) {
    if (h->topo() == topo) return *h;
  }
  ladders.push_back(std::make_unique<Hierarchy>(world(), comm, topo));
  Hierarchy& h = *ladders.back();
  // Label the new sub-communicators so runtime accounting separates the
  // hierarchy levels (coll.level.intra.* / coll.level.mid.* /
  // coll.level.inter.*).
  const int top = h.depth() - 1;
  for (int l = 0; l <= top; ++l) {
    const char* label = l == 0 ? "intra" : l == top ? "inter" : "mid";
    for (int pr = 0; pr < comm.size(); ++pr) {
      if (h.comm(l, pr) != nullptr) {
        rt().set_level_label(h.comm(l, pr)->context(), label);
      }
    }
  }
  return h;
}

Hierarchy& HanModule::hierarchy(const mpi::Comm& comm) {
  return hierarchy(comm, TopologyDescriptor::from_profile(world().profile()));
}

Hierarchy& HanModule::flat_hierarchy(const mpi::Comm& comm) {
  return hierarchy(comm, TopologyDescriptor::flat());
}

Hierarchy& HanModule::ladder_for(const mpi::Comm& comm,
                                 const HanConfig& cfg) {
  return cfg.lvl == 2 ? flat_hierarchy(comm) : hierarchy(comm);
}

coll::CollModule* HanModule::inter_module(const HanConfig& cfg) {
  coll::CollModule* m = mods_->find(cfg.imod);
  HAN_ASSERT_MSG(m != nullptr && m->nonblocking_capable(),
                 "imod must be a nonblocking-capable module");
  return m;
}

coll::CollModule* HanModule::intra_module(const HanConfig& cfg) {
  coll::CollModule* m = mods_->find(cfg.smod);
  HAN_ASSERT_MSG(m != nullptr && m->intra_node_only(),
                 "smod must be an intra-node module");
  return m;
}

namespace {

/// HAN's two-level data layout requires node-contiguous rank placement on
/// the parent communicator (true for the world communicator; Open MPI HAN
/// likewise disables itself otherwise).
bool node_contiguous(const Hierarchy& hc) {
  const mpi::Comm& parent = hc.parent();
  for (int pr = 1; pr < parent.size(); ++pr) {
    // Parent ranks on the same node must be consecutive.
    const bool same_low =
        &hc.low(pr) == &hc.low(pr - 1);
    if (same_low && hc.low_rank(pr) != hc.low_rank(pr - 1) + 1) return false;
    if (!same_low && hc.low_rank(pr) != 0) return false;
  }
  return true;
}

}  // namespace

// Every collective below builds its per-rank TaskGraph declaratively
// (task/builders.cpp) and hands it to the TaskScheduler; cfg.window = 1
// reproduces the paper's lock-step wait-all pipelines.

mpi::Request HanModule::ibcast_cfg(const mpi::Comm& comm, int me, int root,
                                   BufView buf, mpi::Datatype dtype,
                                   const HanConfig& cfg) {
  if (!cfg.sched.empty()) {
    const synth::SynthSpec spec = resolve_sched(cfg, CollKind::Bcast);
    return task::TaskScheduler::run(
        rt(),
        synth::build_schedule_bcast(*this, comm, me, root, buf, dtype, cfg,
                                    spec),
        cfg.window, comm.world_rank(me));
  }
  return task::TaskScheduler::run(
      rt(), task::build_bcast(*this, comm, me, root, buf, dtype, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::ibcast(const mpi::Comm& comm, int me, int root,
                               BufView buf, mpi::Datatype dtype,
                               const CollConfig& /*cfg*/) {
  return ibcast_cfg(comm, me, root, buf, dtype,
                    decide(CollKind::Bcast, comm, buf.bytes));
}

mpi::Request HanModule::ireduce_cfg(const mpi::Comm& comm, int me, int root,
                                    BufView send, BufView recv,
                                    mpi::Datatype dtype, mpi::ReduceOp op,
                                    const HanConfig& cfg) {
  return task::TaskScheduler::run(
      rt(),
      task::build_reduce(*this, comm, me, root, send, recv, dtype, op, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::ireduce(const mpi::Comm& comm, int me, int root,
                                BufView send, BufView recv,
                                mpi::Datatype dtype, mpi::ReduceOp op,
                                const CollConfig& /*cfg*/) {
  return ireduce_cfg(comm, me, root, send, recv, dtype, op,
                     decide(CollKind::Reduce, comm, send.bytes));
}

mpi::Request HanModule::iallreduce_cfg(const mpi::Comm& comm, int me,
                                       BufView send, BufView recv,
                                       mpi::Datatype dtype, mpi::ReduceOp op,
                                       const HanConfig& cfg) {
  if (!cfg.sched.empty()) {
    const synth::SynthSpec spec = resolve_sched(cfg, CollKind::Allreduce);
    return task::TaskScheduler::run(
        rt(),
        synth::build_schedule_allreduce(*this, comm, me, send, recv, dtype,
                                        op, cfg, spec),
        cfg.window, comm.world_rank(me));
  }
  return task::TaskScheduler::run(
      rt(),
      task::build_allreduce(*this, comm, me, send, recv, dtype, op, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::iallreduce(const mpi::Comm& comm, int me,
                                   BufView send, BufView recv,
                                   mpi::Datatype dtype, mpi::ReduceOp op,
                                   const CollConfig& /*cfg*/) {
  return iallreduce_cfg(comm, me, send, recv, dtype, op,
                        decide(CollKind::Allreduce, comm, send.bytes));
}

mpi::Request HanModule::iallreduce_multileader(const mpi::Comm& comm, int me,
                                               BufView send, BufView recv,
                                               mpi::Datatype dtype,
                                               mpi::ReduceOp op,
                                               const HanConfig& cfg,
                                               int leaders) {
  Hierarchy& hc = flat_hierarchy(comm);
  const mpi::Comm& low = hc.low(me);
  const bool has_intra = low.size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  const int k = std::max(1, std::min(leaders, low.size()));
  if (!has_inter || !has_intra || k == 1) {
    // Degenerate shapes reuse the single-leader pipeline.
    return iallreduce_cfg(comm, me, send, recv, dtype, op, cfg);
  }
  return task::TaskScheduler::run(
      rt(),
      task::build_allreduce_multileader(*this, comm, me, send, recv, dtype,
                                        op, cfg, k),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::igather(const mpi::Comm& comm, int me, int root,
                                BufView send, BufView recv,
                                const CollConfig& /*cfg*/) {
  HAN_ASSERT_MSG(node_contiguous(flat_hierarchy(comm)),
                 "HAN gather requires node-contiguous rank placement");
  const HanConfig cfg = decide(CollKind::Gather, comm, send.bytes);
  return task::TaskScheduler::run(
      rt(), task::build_gather(*this, comm, me, root, send, recv, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::iscatter(const mpi::Comm& comm, int me, int root,
                                 BufView send, BufView recv,
                                 const CollConfig& /*cfg*/) {
  HAN_ASSERT_MSG(node_contiguous(flat_hierarchy(comm)),
                 "HAN scatter requires node-contiguous rank placement");
  const HanConfig cfg = decide(CollKind::Scatter, comm, recv.bytes);
  return task::TaskScheduler::run(
      rt(), task::build_scatter(*this, comm, me, root, send, recv, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::iallgather(const mpi::Comm& comm, int me,
                                   BufView send, BufView recv,
                                   const CollConfig& /*cfg*/) {
  HAN_ASSERT_MSG(node_contiguous(flat_hierarchy(comm)),
                 "HAN allgather requires node-contiguous rank placement");
  const HanConfig cfg = decide(CollKind::Allgather, comm, send.bytes);
  return task::TaskScheduler::run(
      rt(), task::build_allgather(*this, comm, me, send, recv, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::ireduce_scatter_cfg(const mpi::Comm& comm, int me,
                                            BufView send, BufView recv,
                                            mpi::Datatype dtype,
                                            mpi::ReduceOp op,
                                            const HanConfig& cfg) {
  Hierarchy& hc = flat_hierarchy(comm);
  HAN_ASSERT_MSG(node_contiguous(hc),
                 "HAN reduce_scatter requires node-contiguous rank placement");
  HAN_ASSERT_MSG(
      send.bytes == recv.bytes * static_cast<std::size_t>(comm.size()),
      "reduce_scatter: send must be comm_size equal blocks of recv.bytes");
  HAN_ASSERT_MSG(hc.node_count() * hc.max_ppn() == comm.size(),
                 "HAN reduce_scatter requires a uniform ppn");
  return task::TaskScheduler::run(
      rt(),
      task::build_reduce_scatter(*this, comm, me, send, recv, dtype, op,
                                 cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request HanModule::ireduce_scatter(const mpi::Comm& comm, int me,
                                        BufView send, BufView recv,
                                        mpi::Datatype dtype, mpi::ReduceOp op,
                                        const CollConfig& /*cfg*/) {
  return ireduce_scatter_cfg(comm, me, send, recv, dtype, op,
                             decide(CollKind::ReduceScatter, comm,
                                    send.bytes));
}

mpi::Request HanModule::ibarrier(const mpi::Comm& comm, int me) {
  return task::TaskScheduler::run(rt(), task::build_barrier(*this, comm, me),
                                  /*window=*/1, comm.world_rank(me));
}

}  // namespace han::core

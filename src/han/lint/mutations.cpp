// The mutation corpus: seeded cost-model defects, each a CostHook that
// bends the numbers exactly where a real regression would, paired with
// the diagnostic class the analyzer must catch it with. tests/test_lint
// runs every entry and asserts detection; CI smoke-runs one to prove the
// gate exits non-zero.
#include "han/lint/lint.hpp"

#include <cstring>

#include "simbase/assert.hpp"

namespace han::lint {

namespace {

using coll::CollKind;

double apply_mutation(const char* name, const CostContext& c, double t) {
  // -- cross-kind defects (caught by sim.* xk.* rules) --
  if (std::strcmp(name, "xk_allreduce_inflated") == 0) {
    // A scheduler regression quadruples allreduce alone.
    if (c.simulated && c.kind == CollKind::Allreduce &&
        c.scenario[0] == '\0') {
      return t * 4.0;
    }
  } else if (std::strcmp(name, "xk_scatter_pricey") == 0) {
    // Scatter degenerates to many times a broadcast.
    if (c.simulated && c.kind == CollKind::Scatter) return t * 6.0;
  } else if (std::strcmp(name, "xk_rsag_free") == 0) {
    // reduce_scatter/allgather priced near-free, so their sum undercuts
    // allreduce.
    if (c.simulated && (c.kind == CollKind::ReduceScatter ||
                        c.kind == CollKind::Allgather)) {
      return t * 0.05;
    }
  }
  // -- size/ppn monotonicity defects --
  else if (std::strcmp(name, "mono_inverted_size") == 0) {
    // Cost scales inversely with the message: bigger gets cheaper.
    return t * (static_cast<double>(32u << 20) /
                static_cast<double>(c.bytes > 0 ? c.bytes : 1));
  } else if (std::strcmp(name, "mono_lag_swap") == 0) {
    // Swapped lag tables: the large-message row is read where the
    // small-message row belongs, so big transfers price 5x too cheap.
    if (!c.simulated && c.bytes >= (4u << 20)) return t * 0.2;
  } else if (std::strcmp(name, "mono_ppn_inverted") == 0) {
    // Per-rank fan-out cost accounted inversely in ppn.
    if (c.simulated) return t * (16.0 / static_cast<double>(c.ppn > 0 ? c.ppn : 1));
  }
  // -- zcs-continuity defects (caught by model.*.zcs probes) --
  else if (std::strcmp(name, "zcs_leak") == 0) {
    // The raw zcs byte value leaks into the symbolic cost, so members of
    // one routing class no longer price identically.
    if (!c.simulated && c.cfg && c.cfg->zcs > 0) {
      return t * (1.0 + 0.01 * static_cast<double>((c.cfg->zcs / 1024) % 7));
    }
  } else if (std::strcmp(name, "zcs_cliff") == 0) {
    // Inverted zcs routing: the p2p fallback is priced off a cliff.
    if (!c.simulated && c.cfg && c.cfg->zcs > c.cfg->fs) return t * 50.0;
  } else if (std::strcmp(name, "zcs_free_copy") == 0) {
    // The copy-in-copy-out path forgets the copy cost entirely.
    if (!c.simulated && c.cfg && c.cfg->zcs > c.cfg->fs) return t * 0.01;
  }
  // -- striping defects (caught by model.*.stripe twins) --
  else if (std::strcmp(name, "sf_penalty_inverted") == 0) {
    // Striping charged as a multiplier instead of a divisor.
    if (!c.simulated && c.cfg && c.cfg->sf > 1) {
      return t * static_cast<double>(c.cfg->sf);
    }
  } else if (std::strcmp(name, "sf_clamp_broken") == 0) {
    // Broken effective_sf clamp: each extra rail adds overhead instead
    // of being capped at the NIC count.
    if (!c.simulated && c.cfg && c.cfg->sf > 1) {
      return t * (1.0 + 0.2 * static_cast<double>(c.cfg->sf - 1));
    }
  } else if (std::strcmp(name, "sf_rail_contention") == 0) {
    // Phantom rail contention doubles every striped estimate.
    if (!c.simulated && c.cfg && c.cfg->sf > 1) return t * 2.0;
  }
  // -- perturbation-regret defects (caught by perturb.* certification) --
  else if (std::strcmp(name, "regret_stale_winner") == 0) {
    // The tuned winner alone degrades badly under any perturbation.
    if (c.simulated && c.scenario[0] != '\0' && c.winner) return t * 3.0;
  } else if (std::strcmp(name, "regret_fragile_choice") == 0) {
    // The winner is fragile specifically to a degraded link.
    if (c.simulated && std::strcmp(c.scenario, "degraded_link") == 0 &&
        c.winner) {
      return t * 2.5;
    }
  } else if (std::strcmp(name, "regret_blind_spot") == 0) {
    // Runner-up candidates measure 4x too fast under perturbation, so
    // the winner's relative regret explodes.
    if (c.simulated && c.scenario[0] != '\0' && !c.winner && c.cfg) {
      return t * 0.25;
    }
  } else {
    HAN_ASSERT_MSG(false, "unknown mutation name");
  }
  return t;
}

}  // namespace

const std::vector<Mutation>& mutation_corpus() {
  static const std::vector<Mutation> kCorpus = {
      {"xk_allreduce_inflated", Diag::CrossKindViolation,
       "scheduler regression quadruples measured allreduce"},
      {"xk_scatter_pricey", Diag::CrossKindViolation,
       "scatter measures 6x a broadcast"},
      {"xk_rsag_free", Diag::CrossKindViolation,
       "reduce_scatter+allgather priced near-free, undercutting allreduce"},
      {"mono_inverted_size", Diag::SizeMonotonicity,
       "cost scales inversely with message size"},
      {"mono_lag_swap", Diag::SizeMonotonicity,
       "swapped lag tables make large messages price 5x too cheap"},
      {"mono_ppn_inverted", Diag::PpnMonotonicity,
       "per-rank fan-out cost accounted inversely in ppn"},
      {"zcs_leak", Diag::ZcsDiscontinuity,
       "raw zcs byte value leaks into the symbolic cost"},
      {"zcs_cliff", Diag::ZcsDiscontinuity,
       "inverted zcs routing prices the p2p fallback 50x"},
      {"zcs_free_copy", Diag::ZcsDiscontinuity,
       "copy-in-copy-out path forgets the copy cost"},
      {"sf_penalty_inverted", Diag::StripingRegression,
       "striping charged as a multiplier instead of a divisor"},
      {"sf_clamp_broken", Diag::StripingRegression,
       "broken effective_sf clamp adds per-rail overhead"},
      {"sf_rail_contention", Diag::StripingRegression,
       "phantom rail contention doubles striped estimates"},
      {"regret_stale_winner", Diag::PerturbationRegret,
       "tuned winner degrades 3x under every perturbation"},
      {"regret_fragile_choice", Diag::PerturbationRegret,
       "winner fragile specifically to a degraded link"},
      {"regret_blind_spot", Diag::PerturbationRegret,
       "runner-ups measure 4x too fast under perturbation"},
  };
  return kCorpus;
}

const Mutation* find_mutation(const std::string& name) {
  for (const Mutation& m : mutation_corpus()) {
    if (name == m.name) return &m;
  }
  return nullptr;
}

CostHook mutation_hook(const std::string& name) {
  const Mutation* m = find_mutation(name);
  HAN_ASSERT_MSG(m != nullptr, "unknown mutation name");
  const char* stable = m->name;  // corpus storage outlives every hook
  return [stable](const CostContext& c, double t) {
    return apply_mutation(stable, c, t);
  };
}

}  // namespace han::lint

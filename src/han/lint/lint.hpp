// han::lint — static performance-guideline analysis of the autotuner.
//
// The complement of han::verify: verify proves schedules *safe* (no
// races, no deadlocks), lint proves the tuned system's performance
// *self-consistent*. A declarative guideline table in the spirit of
// Hunold's "Tuning MPI Collectives by Verifying Performance Guidelines"
// (PAPERS.md) is evaluated two ways over every stock machine, the
// machine's SearchSpace, and a ladder of message-size bands:
//
//  * model.* — symbolically, through the cost model (autotune/costmodel):
//    per-configuration monotonicity in message size, symbolic-cost
//    continuity across the `zcs` zero-copy switchover (configs in the
//    same routing class must price identically; the class jump is
//    bounded), striped `sf>1` configurations never priced worse than
//    their `sf=1` twin on multi-rail machines, and decision-boundary
//    hysteresis (adjacent band winners must not flip on sub-margin cost
//    differences, and never A/B/A).
//
//  * sim.* — empirically, by measuring the collectives in the simulator:
//    cross-kind rules (allreduce <= reduce + bcast, scatter <= bcast,
//    allreduce <= reduce_scatter + allgather), measured monotonicity in
//    message size, and monotonicity in ppn.
//
//  * perturb.* — PICO-style (PAPERS.md) robustness certification: the
//    tuner's winner is re-measured under perturbed flow networks
//    (degraded link, straggler node, noisy per-resource bandwidths)
//    against a shortlist of runner-up candidates; the winner must stay
//    within a bounded regret of the per-scenario optimum.
//
//  * audit.* — lint existing LookupTable / TuneDb records without
//    re-tuning: band flip-flops and entries contradicting the search
//    heuristics.
//
// Every finding carries the guideline id, the witness configurations,
// and the measured margin; reports serialize as obs-style JSON. Results
// are deterministic and byte-identical for every --jobs value: jobs are
// independent (own worlds), fragments merge in input order, entries sort
// by name. docs/LINT.md has the full guideline table and a worked
// regression example.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "autotune/lookup.hpp"
#include "autotune/tunedb.hpp"

namespace han::lint {

/// Diagnostic classes. Every finding carries exactly one; the mutation
/// corpus asserts each seeded cost-model defect is caught with the
/// expected class.
enum class Diag {
  CrossKindViolation,   // a cross-kind guideline (xk.*) does not hold
  SizeMonotonicity,     // cost decreases as the message grows (mono.size)
  PpnMonotonicity,      // cost decreases as ppn grows (mono.ppn)
  ZcsDiscontinuity,     // zcs routing-class equality / jump bound (zcs.*)
  StripingRegression,   // sf>1 priced worse than its sf=1 twin (stripe.*)
  DecisionFlipFlop,     // band-boundary hysteresis violated (hyst.*)
  PerturbationRegret,   // tuned winner far from per-scenario optimum
  HeuristicContradiction,  // audited record contradicts §III-C heuristics
};

const char* diag_name(Diag d);

enum class Severity { Error, Warning };

/// One row of the declarative guideline table.
struct Guideline {
  const char* id;      // stable identifier, e.g. "xk.allreduce_le_red_bc"
  Diag diag;           // diagnostic class its violations carry
  Severity severity;   // violations gate (Error) or inform (Warning)
  const char* expr;    // human-readable statement of the rule
  double tolerance;    // relative slack the check grants (rule-specific)
};

/// The full table, in deterministic order (docs/LINT.md mirrors it).
const std::vector<Guideline>& guideline_table();

/// Look a guideline up by id; asserts the id exists.
const Guideline& guideline(const char* id);

struct Finding {
  std::string guideline;  // Guideline::id
  Diag code = Diag::CrossKindViolation;
  Severity severity = Severity::Error;
  std::string witness_a;  // violating config / probe point
  std::string witness_b;  // the bound it was compared against
  double lhs = 0.0;       // violating value (seconds)
  double rhs = 0.0;       // bound it exceeded (seconds)
  double margin = 0.0;    // relative excess, rule-specific (see message)
  std::string message;
};

struct LintEntry {
  std::string name;
  int checks = 0;  // guideline evaluations performed
  int errors = 0;
  int warnings = 0;
  std::vector<Finding> findings;
};

struct LintResult {
  std::vector<LintEntry> entries;  // sorted by name
  int total_checks() const;
  int total_errors() const;
  int total_warnings() const;
  /// obs-style report: totals first, the guideline table, then every
  /// case with its structured findings. Deterministic key order and
  /// float formatting.
  std::string to_json() const;
  /// Human summary: totals plus every entry with findings.
  std::string summary() const;
};

/// Mutation seam (test-only): every cost the analyzer consumes — model
/// estimates and simulated measurements alike — flows through the hook,
/// so a seeded defect can bend the numbers exactly where a real
/// cost-model bug would. Identity when unset.
struct CostContext {
  coll::CollKind kind = coll::CollKind::Bcast;
  std::size_t bytes = 0;
  /// Config being priced; nullptr for decider-driven measurements.
  const core::HanConfig* cfg = nullptr;
  bool simulated = false;      // false = symbolic cost-model estimate
  bool winner = false;         // perturb.*: the clean-tune winner
  const char* scenario = "";   // perturb.* scenario name, "" = clean
  int nodes = 0;
  int ppn = 0;
};
using CostHook = std::function<double(const CostContext&, double)>;

struct LintOptions {
  /// Stock machine names to lint (machine::stock_machines()); empty =
  /// every registered machine.
  std::vector<std::string> machines;
  /// Message-size bands (ascending).
  std::vector<std::size_t> sizes{64 << 10, 1 << 20, 8 << 20};
  bool model = true;    // model.* family
  bool sim = true;      // sim.* family
  bool perturb = true;  // perturb.* family
  /// Concurrent lint jobs (han::par); any value — including the serial
  /// default — produces byte-identical reports.
  int jobs = 1;
  /// Perturbation shortlist size: the winner is certified against the
  /// top_k best clean candidates re-measured per scenario.
  int top_k = 5;
  /// Winner regret bound per scenario: t(winner) <= bound * t(best).
  double regret_bound = 1.5;
  /// Band-boundary hysteresis: a winner flip on a relative cost margin
  /// below this is reported (warning).
  double hysteresis = 0.01;
  CostHook cost_hook;  // test-only seeded-defect injector

  /// The reduced sweep tests and the CI mutation smoke run: two
  /// machines (one flat, one multi-rail), two bands.
  static LintOptions smoke();
};

LintResult run_lint(const LintOptions& opts = {});

/// Audit mode: lint the records of an existing lookup table without
/// re-tuning (band flip-flops, heuristic contradictions). Entries are
/// named "<prefix>audit.<kind>.<n>x<p>"; appends to `out` (callers sort
/// at the end, like the CLI).
void lint_lookup(const tune::LookupTable& table, LintResult& out,
                 const std::string& prefix = "");

/// Audit every record of a tuning database (prefix "db.<signature>.").
void lint_tunedb(const tune::TuneDb& db, LintResult& out);

/// Apply a named perturbation scenario to a simulated world's flow
/// network (degraded_link | straggler_node | noisy_bw); asserts on
/// unknown names. Exposed for tests.
void apply_scenario(mpi::SimWorld& world, const std::string& scenario);
const std::vector<const char*>& scenario_names();

/// One seeded cost-model defect of the mutation corpus: its stable name,
/// the diagnostic class the analyzer must catch it with, and what it
/// emulates.
struct Mutation {
  const char* name;
  Diag expected;
  const char* description;
};

/// The corpus (>= 15 defects across cross-kind, monotonicity,
/// zcs-continuity, striping, and perturbation-regret rules).
const std::vector<Mutation>& mutation_corpus();

/// The CostHook implementing a named corpus defect; asserts the name
/// exists. `find_mutation` returns nullptr for unknown names (CLI-safe).
CostHook mutation_hook(const std::string& name);
const Mutation* find_mutation(const std::string& name);

}  // namespace han::lint

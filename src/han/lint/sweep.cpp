// The lint sweep driver: model.* / sim.* / perturb.* case families over
// the stock machines, plus the audit mode for saved tables. Deterministic
// by the same contract as han::verify — independent jobs (own worlds),
// fragments merged in input order, entries sorted by name.
#include "han/lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "autotune/search.hpp"
#include "coll/registry.hpp"
#include "han/han.hpp"
#include "machine/machine.hpp"
#include "parallel/pool.hpp"
#include "simbase/rng.hpp"

namespace han::lint {

namespace {

using coll::CollKind;
using core::HanConfig;

/// One simulated stack a lint job owns end to end (jobs share nothing).
struct LintWorld {
  explicit LintWorld(machine::MachineProfile profile)
      : world(std::move(profile)),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

double hooked(const LintOptions& opts, const CostContext& ctx, double t) {
  return opts.cost_hook ? opts.cost_hook(ctx, t) : t;
}

CostContext model_ctx(const machine::MachineProfile& p, CollKind kind,
                      std::size_t bytes, const HanConfig* cfg) {
  CostContext c;
  c.kind = kind;
  c.bytes = bytes;
  c.cfg = cfg;
  c.simulated = false;
  c.nodes = p.nodes;
  c.ppn = p.procs_per_node;
  return c;
}

CostContext sim_ctx(const machine::MachineProfile& p, CollKind kind,
                    std::size_t bytes, const HanConfig* cfg) {
  CostContext c = model_ctx(p, kind, bytes, cfg);
  c.simulated = true;
  return c;
}

std::string at_bytes(const std::string& what, std::size_t bytes) {
  return what + " @ " + std::to_string(bytes) + "B";
}

void add_finding(LintEntry& e, const char* gid, std::string witness_a,
                 std::string witness_b, double lhs, double rhs,
                 double margin, std::string message) {
  const Guideline& g = guideline(gid);
  Finding f;
  f.guideline = gid;
  f.code = g.diag;
  f.severity = g.severity;
  f.witness_a = std::move(witness_a);
  f.witness_b = std::move(witness_b);
  f.lhs = lhs;
  f.rhs = rhs;
  f.margin = margin;
  f.message = std::move(message);
  if (f.severity == Severity::Error) {
    ++e.errors;
  } else {
    ++e.warnings;
  }
  e.findings.push_back(std::move(f));
}

/// lhs <= rhs * (1 + tolerance), recorded against guideline `gid`.
void check_upper_bound(LintEntry& e, const char* gid,
                       const std::string& witness_a,
                       const std::string& witness_b, double lhs,
                       double rhs) {
  ++e.checks;
  const double tol = guideline(gid).tolerance;
  if (rhs <= 0.0 || lhs <= rhs * (1.0 + tol)) return;
  const double margin = lhs / rhs - 1.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f (tolerance %.3f)", margin, tol);
  add_finding(e, gid, witness_a, witness_b, lhs, rhs, margin,
              witness_a + " exceeds " + witness_b + " by " + buf);
}

// ---- model.* family -----------------------------------------------------

/// Model costs of every heuristic-allowed config at every band, plus the
/// cross-band guideline checks (monotonicity, hysteresis) and the
/// HAN-specific probes (zcs continuity, stripe regression).
void model_kind_job(LintResult& out, const machine::StockMachine& sm,
                    CollKind kind, const LintOptions& opts) {
  LintWorld lw(sm.profile);
  const mpi::Comm& wc = lw.world.world_comm();
  tune::SearchSpace space = tune::SearchSpace::for_profile(sm.profile);
  tune::Searcher searcher(lw.world, lw.han, wc, space);
  const std::string base =
      std::string("model.") + sm.name + "." + coll::coll_kind_name(kind);

  const auto eval = [&](std::size_t bytes, const HanConfig& cfg) {
    return hooked(opts, model_ctx(sm.profile, kind, bytes, &cfg),
                  searcher.estimate_config(kind, bytes, cfg));
  };

  // Cost grid: configs x bands; NaN where the heuristics prune.
  const std::vector<HanConfig> configs = space.enumerate(kind);
  const double kPruned = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> grid(
      configs.size(), std::vector<double>(opts.sizes.size(), kPruned));
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    for (std::size_t bi = 0; bi < opts.sizes.size(); ++bi) {
      const std::size_t m = opts.sizes[bi];
      const HanConfig& cfg = configs[ci];
      const int u = static_cast<int>(
          (m + cfg.fs - 1) / std::max<std::size_t>(cfg.fs, 1));
      if (!tune::heuristic_allows(cfg, kind, m, u)) continue;
      grid[ci][bi] = eval(m, cfg);
    }
  }

  LintEntry entry;
  entry.name = base;

  // mono.size.model: each config's cost curve is nondecreasing across
  // its allowed bands.
  const double mono_tol = guideline("mono.size.model").tolerance;
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    int prev = -1;
    for (std::size_t bi = 0; bi < opts.sizes.size(); ++bi) {
      if (std::isnan(grid[ci][bi])) continue;
      if (prev >= 0) {
        ++entry.checks;
        const double t1 = grid[ci][static_cast<std::size_t>(prev)];
        const double t2 = grid[ci][bi];
        if (t2 < t1 * (1.0 - mono_tol)) {
          const std::string cs = configs[ci].to_string();
          add_finding(
              entry, "mono.size.model", at_bytes(cs, opts.sizes[bi]),
              at_bytes(cs, opts.sizes[static_cast<std::size_t>(prev)]), t2,
              t1, t1 > 0.0 ? 1.0 - t2 / t1 : 0.0,
              "model cost drops from " + std::to_string(t1) + "s to " +
                  std::to_string(t2) + "s as '" + cs + "' grows " +
                  std::to_string(opts.sizes[static_cast<std::size_t>(prev)]) +
                  "B -> " + std::to_string(opts.sizes[bi]) + "B");
        }
      }
      prev = static_cast<int>(bi);
    }
  }

  // Band winners (first strictly-best in enumeration order — stable for
  // exact ties) feed the hysteresis checks.
  std::vector<int> winner(opts.sizes.size(), -1);
  for (std::size_t bi = 0; bi < opts.sizes.size(); ++bi) {
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      if (std::isnan(grid[ci][bi])) continue;
      if (winner[bi] < 0 ||
          grid[ci][bi] < grid[static_cast<std::size_t>(winner[bi])][bi]) {
        winner[bi] = static_cast<int>(ci);
      }
    }
  }

  // hyst.boundary: a winner flip between adjacent bands must carry the
  // hysteresis margin at the flipping band (the old winner being pruned
  // there justifies the flip outright).
  for (std::size_t bi = 1; bi < opts.sizes.size(); ++bi) {
    const int a = winner[bi - 1];
    const int b = winner[bi];
    if (a < 0 || b < 0 || a == b) continue;
    ++entry.checks;
    const double old_here = grid[static_cast<std::size_t>(a)][bi];
    const double new_here = grid[static_cast<std::size_t>(b)][bi];
    if (std::isnan(old_here) || new_here <= 0.0) continue;
    const double margin = old_here / new_here - 1.0;
    if (margin < opts.hysteresis) {
      add_finding(
          entry, "hyst.boundary",
          at_bytes(configs[static_cast<std::size_t>(b)].to_string(),
                   opts.sizes[bi]),
          at_bytes(configs[static_cast<std::size_t>(a)].to_string(),
                   opts.sizes[bi]),
          new_here, old_here, margin,
          "winner flips on a " + std::to_string(margin) +
              " relative margin (< hysteresis " +
              std::to_string(opts.hysteresis) + ")");
    }
  }

  // hyst.flipflop: A/B/A winner patterns across three adjacent bands.
  for (std::size_t bi = 2; bi < opts.sizes.size(); ++bi) {
    const int a = winner[bi - 2];
    const int b = winner[bi - 1];
    const int c = winner[bi];
    if (a < 0 || b < 0 || c < 0) continue;
    ++entry.checks;
    if (a == c && a != b) {
      add_finding(
          entry, "hyst.flipflop",
          at_bytes(configs[static_cast<std::size_t>(a)].to_string(),
                   opts.sizes[bi - 2]),
          at_bytes(configs[static_cast<std::size_t>(b)].to_string(),
                   opts.sizes[bi - 1]),
          grid[static_cast<std::size_t>(b)][bi - 1],
          grid[static_cast<std::size_t>(a)][bi - 2], 0.0,
          "band winners alternate A/B/A across " +
              std::to_string(opts.sizes[bi - 2]) + "/" +
              std::to_string(opts.sizes[bi - 1]) + "/" +
              std::to_string(opts.sizes[bi]) + "B");
    }
  }
  out.entries.push_back(std::move(entry));

  // zcs continuity probe. The cost model prices tasks at segment
  // granularity, so its routing classes split at zcs vs fs: zcs <= fs
  // keeps the zero-copy shared-memory intra stage, zcs > fs reroutes it
  // through the copy-in-copy-out p2p module. Within one class the knob
  // must not move the symbolic cost at all; across the switchover the
  // jump is bounded by the copy-vs-shm bandwidth ratio.
  if (kind != CollKind::ReduceScatter) {
    LintEntry ze;
    ze.name = base + ".zcs";
    HanConfig probe;
    probe.fs = 256 << 10;
    probe.imod = "adapt";
    probe.smod = "sm";
    probe.ibalg = coll::Algorithm::Binary;
    probe.iralg = coll::Algorithm::Binary;
    probe.ibs = 32 << 10;
    probe.irs = 32 << 10;
    const std::size_t m = 1 << 20;
    const std::size_t kZeroCopy[] = {0, 128 << 10, 256 << 10};
    const std::size_t kP2p[] = {512 << 10, 1 << 20};
    const auto probe_cost = [&](std::size_t zcs) {
      HanConfig c = probe;
      c.zcs = zcs;
      return eval(m, c);
    };
    const auto class_spread = [&](const std::size_t* zs, std::size_t n,
                                  const char* tag) {
      double lo = 0.0, hi = 0.0;
      std::size_t lo_z = 0, hi_z = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = probe_cost(zs[i]);
        if (i == 0 || t < lo) {
          lo = t;
          lo_z = zs[i];
        }
        if (i == 0 || t > hi) {
          hi = t;
          hi_z = zs[i];
        }
      }
      ++ze.checks;
      const double tol = guideline("zcs.class_equal").tolerance;
      if (lo > 0.0 && (hi - lo) / lo > tol) {
        add_finding(ze, "zcs.class_equal",
                    "zcs=" + std::to_string(hi_z) + " (" + tag + ")",
                    "zcs=" + std::to_string(lo_z) + " (" + tag + ")", hi,
                    lo, (hi - lo) / lo,
                    std::string("cost varies inside the ") + tag +
                        " routing class: " + std::to_string(lo) + "s to " +
                        std::to_string(hi) + "s");
      }
      return lo;
    };
    const double zero_copy = class_spread(kZeroCopy, 3, "zero-copy");
    const double p2p = class_spread(kP2p, 2, "p2p");
    ++ze.checks;
    const double bound = guideline("zcs.switch_jump").tolerance;
    if (zero_copy > 0.0 && p2p > 0.0) {
      const double ratio = p2p / zero_copy;
      if (ratio > bound || ratio < 1.0 / bound) {
        add_finding(ze, "zcs.switch_jump", "zcs>fs (p2p)",
                    "zcs<=fs (zero-copy)", p2p, zero_copy, ratio,
                    "cost jumps " + std::to_string(ratio) +
                        "x across the switchover (bound " +
                        std::to_string(bound) + "x)");
      }
    }
    out.entries.push_back(std::move(ze));
  }

  // stripe.no_regression: on multi-rail machines, every striped config
  // allowed at a striping-regime band must not be priced worse than its
  // sf=1 twin — more rails can only add bandwidth (docs/FABRIC.md).
  if (sm.profile.nics_per_node > 1 && kind != CollKind::ReduceScatter) {
    LintEntry se;
    se.name = base + ".stripe";
    for (std::size_t bi = 0; bi < opts.sizes.size(); ++bi) {
      const std::size_t m = opts.sizes[bi];
      if (m < (4u << 20)) continue;  // latency regime: striping optional
      for (std::size_t ci = 0; ci < configs.size(); ++ci) {
        if (configs[ci].sf <= 1 || std::isnan(grid[ci][bi])) continue;
        HanConfig twin = configs[ci];
        twin.sf = 1;
        const double t1 = eval(m, twin);
        check_upper_bound(se, "stripe.no_regression",
                          at_bytes(configs[ci].to_string(), m),
                          at_bytes(twin.to_string(), m), grid[ci][bi], t1);
      }
    }
    out.entries.push_back(std::move(se));
  }
}

// ---- sim.* family -------------------------------------------------------

/// Measured cross-kind guidelines and measured size monotonicity, at the
/// static default configuration (the uniform footing every kind shares;
/// the linear-phase kinds run their decider default path).
void sim_job(LintResult& out, const machine::StockMachine& sm,
             const LintOptions& opts) {
  LintWorld lw(sm.profile);
  const mpi::Comm& wc = lw.world.world_comm();
  tune::Searcher searcher(lw.world, lw.han, wc, tune::SearchSpace{});
  const HanConfig cfg;  // static default (Table II defaults)

  static const CollKind kKinds[] = {
      CollKind::Bcast,         CollKind::Reduce,  CollKind::Allreduce,
      CollKind::ReduceScatter, CollKind::Gather,  CollKind::Scatter,
      CollKind::Allgather,
  };
  LintEntry entry;
  entry.name = std::string("sim.") + sm.name;

  std::vector<std::vector<double>> t(
      std::size(kKinds), std::vector<double>(opts.sizes.size(), 0.0));
  for (std::size_t bi = 0; bi < opts.sizes.size(); ++bi) {
    for (std::size_t ki = 0; ki < std::size(kKinds); ++ki) {
      const CollKind kind = kKinds[ki];
      const bool configured = kind == CollKind::Bcast ||
                              kind == CollKind::Reduce ||
                              kind == CollKind::Allreduce ||
                              kind == CollKind::ReduceScatter;
      t[ki][bi] = hooked(
          opts,
          sim_ctx(sm.profile, kind, opts.sizes[bi],
                  configured ? &cfg : nullptr),
          searcher.measure_collective(kind, opts.sizes[bi], cfg));
    }
  }

  const auto tk = [&](CollKind kind, std::size_t bi) {
    for (std::size_t ki = 0; ki < std::size(kKinds); ++ki) {
      if (kKinds[ki] == kind) return t[ki][bi];
    }
    return 0.0;
  };
  for (std::size_t bi = 0; bi < opts.sizes.size(); ++bi) {
    const std::size_t m = opts.sizes[bi];
    check_upper_bound(entry, "xk.allreduce_le_red_bc",
                      at_bytes("allreduce", m), at_bytes("reduce+bcast", m),
                      tk(CollKind::Allreduce, bi),
                      tk(CollKind::Reduce, bi) + tk(CollKind::Bcast, bi));
    check_upper_bound(entry, "xk.scatter_le_bcast", at_bytes("scatter", m),
                      at_bytes("bcast", m), tk(CollKind::Scatter, bi),
                      tk(CollKind::Bcast, bi));
    check_upper_bound(
        entry, "xk.allreduce_le_rs_ag", at_bytes("allreduce", m),
        at_bytes("reduce_scatter+allgather", m), tk(CollKind::Allreduce, bi),
        tk(CollKind::ReduceScatter, bi) + tk(CollKind::Allgather, bi));
  }

  const double mono_tol = guideline("mono.size.sim").tolerance;
  for (std::size_t ki = 0; ki < std::size(kKinds); ++ki) {
    for (std::size_t bi = 1; bi < opts.sizes.size(); ++bi) {
      ++entry.checks;
      const double t1 = t[ki][bi - 1];
      const double t2 = t[ki][bi];
      if (t2 < t1 * (1.0 - mono_tol)) {
        const char* kn = coll::coll_kind_name(kKinds[ki]);
        add_finding(entry, "mono.size.sim", at_bytes(kn, opts.sizes[bi]),
                    at_bytes(kn, opts.sizes[bi - 1]), t2, t1,
                    t1 > 0.0 ? 1.0 - t2 / t1 : 0.0,
                    std::string("measured ") + kn + " time drops from " +
                        std::to_string(t1) + "s to " + std::to_string(t2) +
                        "s as the message grows " +
                        std::to_string(opts.sizes[bi - 1]) + "B -> " +
                        std::to_string(opts.sizes[bi]) + "B");
      }
    }
  }
  out.entries.push_back(std::move(entry));
}

/// mono.ppn: the same machine at half the processes per node must not be
/// slower — fewer ranks mean strictly less intra-node work.
void sim_ppn_job(LintResult& out, const machine::StockMachine& sm,
                 const LintOptions& opts) {
  const int ppn = sm.profile.procs_per_node;
  if (ppn < 2 || ppn % 2 != 0) return;
  if ((ppn / 2) % std::max(1, sm.profile.numa_per_node) != 0) return;
  machine::MachineProfile half = sm.profile;
  half.procs_per_node = ppn / 2;

  LintEntry entry;
  entry.name = std::string("sim.") + sm.name + ".ppn";
  const std::size_t m = opts.sizes.back();
  const HanConfig cfg;
  for (CollKind kind : {CollKind::Bcast, CollKind::Allreduce}) {
    double tfull = 0.0, thalf = 0.0;
    {
      LintWorld lw(sm.profile);
      tune::Searcher s(lw.world, lw.han, lw.world.world_comm(),
                       tune::SearchSpace{});
      tfull = hooked(opts, sim_ctx(sm.profile, kind, m, &cfg),
                     s.measure_collective(kind, m, cfg));
    }
    {
      LintWorld lw(half);
      tune::Searcher s(lw.world, lw.han, lw.world.world_comm(),
                       tune::SearchSpace{});
      thalf = hooked(opts, sim_ctx(half, kind, m, &cfg),
                     s.measure_collective(kind, m, cfg));
    }
    check_upper_bound(
        entry, "mono.ppn",
        std::string(coll::coll_kind_name(kind)) + " ppn=" +
            std::to_string(half.procs_per_node),
        std::string(coll::coll_kind_name(kind)) + " ppn=" +
            std::to_string(ppn),
        thalf, tfull);
  }
  out.entries.push_back(std::move(entry));
}

// ---- perturb.* family ---------------------------------------------------

/// Clean-tune a winner plus a runner-up shortlist by model estimate, then
/// certify the winner's regret against the shortlist's per-scenario
/// optimum under each perturbed flow network.
void perturb_kind_job(LintResult& out, const machine::StockMachine& sm,
                      CollKind kind, const LintOptions& opts) {
  const std::size_t m = opts.sizes.back();
  tune::SearchSpace space = tune::SearchSpace::for_profile(sm.profile);

  // Clean ranking (symbolic — the tuner's own lens).
  std::vector<std::pair<double, HanConfig>> ranked;
  {
    LintWorld lw(sm.profile);
    tune::Searcher searcher(lw.world, lw.han, lw.world.world_comm(), space);
    for (const HanConfig& cfg : space.enumerate(kind)) {
      const int u = static_cast<int>(
          (m + cfg.fs - 1) / std::max<std::size_t>(cfg.fs, 1));
      if (!tune::heuristic_allows(cfg, kind, m, u)) continue;
      ranked.emplace_back(
          hooked(opts, model_ctx(sm.profile, kind, m, &cfg),
                 searcher.estimate_config(kind, m, cfg)),
          cfg);
    }
  }
  if (ranked.empty()) return;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  const std::size_t shortlist = std::min<std::size_t>(
      ranked.size(), static_cast<std::size_t>(std::max(opts.top_k, 1)));

  for (const char* scenario : scenario_names()) {
    LintEntry entry;
    entry.name = std::string("perturb.") + sm.name + "." +
                 coll::coll_kind_name(kind) + "." + scenario;
    LintWorld pw(sm.profile);
    apply_scenario(pw.world, scenario);
    tune::Searcher measured(pw.world, pw.han, pw.world.world_comm(),
                            tune::SearchSpace{});
    double winner_t = 0.0;
    double best_t = 0.0;
    std::string best_cfg;
    for (std::size_t i = 0; i < shortlist; ++i) {
      CostContext ctx = sim_ctx(sm.profile, kind, m, &ranked[i].second);
      ctx.winner = i == 0;
      ctx.scenario = scenario;
      const double t = hooked(
          opts, ctx, measured.measure_collective(kind, m, ranked[i].second));
      if (i == 0) winner_t = t;
      if (i == 0 || t < best_t) {
        best_t = t;
        best_cfg = ranked[i].second.to_string();
      }
    }
    ++entry.checks;
    if (best_t > 0.0 && winner_t > best_t * opts.regret_bound) {
      const double regret = winner_t / best_t;
      add_finding(entry, "perturb.regret",
                  at_bytes(ranked[0].second.to_string(), m),
                  at_bytes(best_cfg, m), winner_t, best_t, regret - 1.0,
                  std::string("under '") + scenario +
                      "' the tuned winner runs " + std::to_string(regret) +
                      "x the shortlist optimum (bound " +
                      std::to_string(opts.regret_bound) + "x)");
    }
    out.entries.push_back(std::move(entry));
  }
}

}  // namespace

const std::vector<const char*>& scenario_names() {
  static const std::vector<const char*> kNames = {
      "degraded_link", "straggler_node", "noisy_bw"};
  return kNames;
}

void apply_scenario(mpi::SimWorld& world, const std::string& scenario) {
  net::FlowNet& net = world.flownet();
  machine::ClusterFabric& fab = world.fabric();
  const machine::MachineProfile& p = world.profile();
  const auto scale = [&](net::ResourceId id, double f) {
    net.set_capacity(id, net.capacity(id) * f);
  };
  if (scenario == "degraded_link") {
    // Rail 0 of the fabric plus one node's rail-0 NIC run at half speed
    // (a flapping link renegotiated down).
    scale(fab.fabric(0), 0.5);
    const int node = p.nodes > 1 ? 1 : 0;
    scale(fab.nic_tx(node, 0), 0.5);
    scale(fab.nic_rx(node, 0), 0.5);
  } else if (scenario == "straggler_node") {
    // The last node's entire memory system and NICs at 60% — a thermally
    // throttled or co-scheduled straggler.
    const int node = p.nodes - 1;
    for (int d = 0; d < std::max(1, p.numa_per_node); ++d) {
      scale(fab.membus(node, d), 0.6);
    }
    if (p.numa_per_node > 1) scale(fab.numa_link(node), 0.6);
    for (int r = 0; r < std::max(1, p.nics_per_node); ++r) {
      scale(fab.nic_tx(node, r), 0.6);
      scale(fab.nic_rx(node, r), 0.6);
    }
  } else if (scenario == "noisy_bw") {
    // Every resource derated by a deterministic pseudo-random factor in
    // [0.85, 1.0) — background daemons and cache contention.
    sim::Rng rng(0xC0FFEEull);
    for (net::ResourceId id = 0;
         id < static_cast<net::ResourceId>(net.resource_count()); ++id) {
      scale(id, rng.uniform(0.85, 1.0));
    }
  } else {
    HAN_ASSERT_MSG(false, "unknown perturbation scenario");
  }
}

LintOptions LintOptions::smoke() {
  LintOptions o;
  o.machines = {"aries2x8", "aries_rail4"};
  o.sizes = {1 << 20, 8 << 20};
  return o;
}

LintResult run_lint(const LintOptions& opts) {
  // A flat list of independent jobs, each filling a private fragment;
  // fragments concatenate in input order before the name sort, so the
  // report is byte-identical for every opts.jobs value.
  std::vector<std::function<void(LintResult&)>> jobs;
  for (const machine::StockMachine& sm : machine::stock_machines()) {
    if (!opts.machines.empty() &&
        std::find(opts.machines.begin(), opts.machines.end(),
                  std::string(sm.name)) == opts.machines.end()) {
      continue;
    }
    if (opts.model) {
      for (CollKind kind : {CollKind::Bcast, CollKind::Allreduce,
                            CollKind::ReduceScatter}) {
        jobs.push_back([&sm, kind, &opts](LintResult& frag) {
          model_kind_job(frag, sm, kind, opts);
        });
      }
    }
    if (opts.sim) {
      jobs.push_back(
          [&sm, &opts](LintResult& frag) { sim_job(frag, sm, opts); });
      jobs.push_back(
          [&sm, &opts](LintResult& frag) { sim_ppn_job(frag, sm, opts); });
    }
    if (opts.perturb) {
      for (CollKind kind : {CollKind::Bcast, CollKind::Allreduce}) {
        jobs.push_back([&sm, kind, &opts](LintResult& frag) {
          perturb_kind_job(frag, sm, kind, opts);
        });
      }
    }
  }

  std::vector<LintResult> frags = par::parallel_map(
      opts.jobs, static_cast<int>(jobs.size()), [&jobs](int i) {
        LintResult frag;
        jobs[static_cast<std::size_t>(i)](frag);
        return frag;
      });
  LintResult out;
  for (LintResult& frag : frags) {
    for (LintEntry& e : frag.entries) out.entries.push_back(std::move(e));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const LintEntry& a, const LintEntry& b) {
              return a.name < b.name;
            });
  return out;
}

// ---- audit mode ---------------------------------------------------------

void lint_lookup(const tune::LookupTable& table, LintResult& out,
                 const std::string& prefix) {
  // Slice the (kind, nodes, ppn)-major entry map into per-shape bands.
  struct Band {
    int log2 = 0;
    const HanConfig* cfg = nullptr;
  };
  auto it = table.entries().begin();
  while (it != table.entries().end()) {
    const tune::LookupTable::Key slice = it->first;
    std::vector<Band> bands;
    for (; it != table.entries().end() &&
           it->first.kind == slice.kind && it->first.nodes == slice.nodes &&
           it->first.ppn == slice.ppn;
         ++it) {
      bands.push_back({it->first.log2_bytes, &it->second});
    }
    LintEntry entry;
    entry.name = prefix + "audit." + coll::coll_kind_name(slice.kind) +
                 "." + std::to_string(slice.nodes) + "x" +
                 std::to_string(slice.ppn);
    for (const Band& b : bands) {
      ++entry.checks;
      const std::size_t bytes = std::size_t{1} << b.log2;
      const int u = static_cast<int>(
          (bytes + b.cfg->fs - 1) / std::max<std::size_t>(b.cfg->fs, 1));
      if (!tune::heuristic_allows(*b.cfg, slice.kind, bytes, u)) {
        add_finding(entry, "audit.heuristic",
                    at_bytes(b.cfg->to_string(), bytes), "Sec. III-C rules",
                    0.0, 0.0, 0.0,
                    "tuned entry '" + b.cfg->to_string() + "' at " +
                        std::to_string(bytes) +
                        "B contradicts the search heuristics");
      }
    }
    for (std::size_t i = 2; i < bands.size(); ++i) {
      // Only adjacent power-of-two bands form a boundary.
      if (bands[i - 2].log2 + 1 != bands[i - 1].log2 ||
          bands[i - 1].log2 + 1 != bands[i].log2) {
        continue;
      }
      ++entry.checks;
      const std::string a = bands[i - 2].cfg->to_string();
      const std::string b = bands[i - 1].cfg->to_string();
      const std::string c = bands[i].cfg->to_string();
      if (a == c && a != b) {
        add_finding(entry, "audit.flipflop",
                    at_bytes(a, std::size_t{1} << bands[i - 2].log2),
                    at_bytes(b, std::size_t{1} << bands[i - 1].log2), 0.0,
                    0.0, 0.0,
                    "bands 2^" + std::to_string(bands[i - 2].log2) + "/2^" +
                        std::to_string(bands[i - 1].log2) + "/2^" +
                        std::to_string(bands[i].log2) +
                        " flip-flop between two configurations");
      }
    }
    out.entries.push_back(std::move(entry));
  }
}

void lint_tunedb(const tune::TuneDb& db, LintResult& out) {
  for (const auto& [sig, record] : db.records()) {
    lint_lookup(record.table(), out, "db." + sig + ".");
  }
}

}  // namespace han::lint

// The declarative guideline table and the lint report (obs-style JSON).
#include "han/lint/lint.hpp"

#include <cstdio>
#include <cstring>

#include "simbase/assert.hpp"

namespace han::lint {

const char* diag_name(Diag d) {
  switch (d) {
    case Diag::CrossKindViolation: return "cross-kind-violation";
    case Diag::SizeMonotonicity: return "size-monotonicity";
    case Diag::PpnMonotonicity: return "ppn-monotonicity";
    case Diag::ZcsDiscontinuity: return "zcs-discontinuity";
    case Diag::StripingRegression: return "striping-regression";
    case Diag::DecisionFlipFlop: return "decision-flip-flop";
    case Diag::PerturbationRegret: return "perturbation-regret";
    case Diag::HeuristicContradiction: return "heuristic-contradiction";
  }
  return "?";
}

const std::vector<Guideline>& guideline_table() {
  // Tolerances are relative slack, except zcs.class_equal (relative
  // spread within a routing class) and zcs.switch_jump (max cost ratio
  // across the switchover). hyst.* / perturb.regret defaults can be
  // overridden per run via LintOptions.
  static const std::vector<Guideline> kTable = {
      {"xk.allreduce_le_red_bc", Diag::CrossKindViolation, Severity::Error,
       "t(allreduce) <= t(reduce) + t(bcast)", 0.10},
      {"xk.scatter_le_bcast", Diag::CrossKindViolation, Severity::Error,
       "t(scatter) <= t(bcast)", 0.50},
      {"xk.allreduce_le_rs_ag", Diag::CrossKindViolation, Severity::Error,
       "t(allreduce) <= t(reduce_scatter) + t(allgather)", 0.10},
      {"mono.size.model", Diag::SizeMonotonicity, Severity::Error,
       "model cost is nondecreasing in message size, per config", 0.01},
      {"mono.size.sim", Diag::SizeMonotonicity, Severity::Error,
       "measured time is nondecreasing in message size", 0.02},
      {"mono.ppn", Diag::PpnMonotonicity, Severity::Error,
       "measured time is nondecreasing in processes per node", 0.02},
      {"zcs.class_equal", Diag::ZcsDiscontinuity, Severity::Error,
       "configs in one zcs routing class price identically", 1e-6},
      {"zcs.switch_jump", Diag::ZcsDiscontinuity, Severity::Error,
       "cost jump across the zcs switchover stays bounded", 10.0},
      {"stripe.no_regression", Diag::StripingRegression, Severity::Error,
       "sf>1 is never priced worse than its sf=1 twin at striping sizes",
       0.10},
      {"hyst.boundary", Diag::DecisionFlipFlop, Severity::Warning,
       "adjacent-band winner flips carry at least the hysteresis margin",
       0.01},
      {"hyst.flipflop", Diag::DecisionFlipFlop, Severity::Warning,
       "band winners never alternate A/B/A across adjacent bands", 0.0},
      {"perturb.regret", Diag::PerturbationRegret, Severity::Error,
       "tuned winner stays within bounded regret of the per-scenario "
       "optimum",
       1.5},
      {"audit.heuristic", Diag::HeuristicContradiction, Severity::Warning,
       "tuned records respect the paper's Sec. III-C search heuristics",
       0.0},
      {"audit.flipflop", Diag::DecisionFlipFlop, Severity::Warning,
       "tuned bands never alternate A/B/A configurations", 0.0},
  };
  return kTable;
}

const Guideline& guideline(const char* id) {
  for (const Guideline& g : guideline_table()) {
    if (std::strcmp(g.id, id) == 0) return g;
  }
  HAN_ASSERT_MSG(false, "unknown guideline id");
  return guideline_table().front();
}

int LintResult::total_checks() const {
  int n = 0;
  for (const LintEntry& e : entries) n += e.checks;
  return n;
}

int LintResult::total_errors() const {
  int n = 0;
  for (const LintEntry& e : entries) n += e.errors;
  return n;
}

int LintResult::total_warnings() const {
  int n = 0;
  for (const LintEntry& e : entries) n += e.warnings;
  return n;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic float formatting — the byte-identity contract of --jobs
/// rests on identical doubles printing identically.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string finding_json(const Finding& f) {
  std::string j = "{\"guideline\": \"" + json_escape(f.guideline) +
                  "\", \"diag\": \"" + diag_name(f.code) +
                  "\", \"severity\": \"" +
                  (f.severity == Severity::Error ? "error" : "warning") +
                  "\", \"witness\": [\"" + json_escape(f.witness_a) +
                  "\", \"" + json_escape(f.witness_b) + "\"], \"lhs\": " +
                  fmt(f.lhs) + ", \"rhs\": " + fmt(f.rhs) +
                  ", \"margin\": " + fmt(f.margin) + ", \"message\": \"" +
                  json_escape(f.message) + "\"}";
  return j;
}

}  // namespace

std::string LintResult::to_json() const {
  std::string j = "{\n  \"totals\": {\"cases\": " +
                  std::to_string(entries.size()) +
                  ", \"checks\": " + std::to_string(total_checks()) +
                  ", \"errors\": " + std::to_string(total_errors()) +
                  ", \"warnings\": " + std::to_string(total_warnings()) +
                  "},\n  \"guidelines\": [\n";
  const std::vector<Guideline>& table = guideline_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Guideline& g = table[i];
    j += std::string("    {\"id\": \"") + g.id + "\", \"diag\": \"" +
         diag_name(g.diag) + "\", \"severity\": \"" +
         (g.severity == Severity::Error ? "error" : "warning") +
         "\", \"expr\": \"" + json_escape(g.expr) +
         "\", \"tolerance\": " + fmt(g.tolerance) + "}";
    j += i + 1 < table.size() ? ",\n" : "\n";
  }
  j += "  ],\n  \"cases\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const LintEntry& e = entries[i];
    j += "    \"" + json_escape(e.name) +
         "\": {\"checks\": " + std::to_string(e.checks) +
         ", \"errors\": " + std::to_string(e.errors) +
         ", \"warnings\": " + std::to_string(e.warnings) +
         ", \"findings\": [";
    for (std::size_t k = 0; k < e.findings.size(); ++k) {
      if (k > 0) j += ", ";
      j += finding_json(e.findings[k]);
    }
    j += "]}";
    j += i + 1 < entries.size() ? ",\n" : "\n";
  }
  j += "  }\n}\n";
  return j;
}

std::string LintResult::summary() const {
  std::string s = std::to_string(entries.size()) + " cases, " +
                  std::to_string(total_checks()) + " checks, " +
                  std::to_string(total_errors()) + " errors, " +
                  std::to_string(total_warnings()) + " warnings\n";
  for (const LintEntry& e : entries) {
    if (e.findings.empty()) continue;
    s += e.name + ":\n";
    for (const Finding& f : e.findings) {
      s += std::string("  ") +
           (f.severity == Severity::Error ? "error[" : "warning[") +
           f.guideline + "]: " + f.message + "\n";
    }
  }
  return s;
}

}  // namespace han::lint

// HanModule — the paper's contribution: a task-based hierarchical
// collective framework that composes per-level submodules and pipelines
// their fine-grained operations across HAN segments (paper §III).
//
// Bcast (Fig. 1): node leaders run ib(0), sbib(1..u-1), sb(u-1); other
// ranks run sb(0..u-1). Allreduce (Fig. 5): a 4-stage pipeline
// (sr → ir → ib → sb) per segment, with ir/ib sharing algorithm and root
// so they ride opposite directions of the full-duplex fabric. Reduce,
// Gather, Scatter, Allgather are the "similar design" extensions the
// paper sketches.
//
// Configuration (Table II: fs/imod/smod/ibalg/iralg/ibs/irs) comes from a
// pluggable Decider — a static default heuristic out of the box, or the
// autotuner's lookup table (autotune/).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "coll/registry.hpp"
#include "han/config.hpp"
#include "han/hierarchy.hpp"

namespace han::core {

class HanModule : public coll::CollModule {
 public:
  using Decider = std::function<HanConfig(coll::CollKind kind, int nodes,
                                          int ppn, std::size_t bytes)>;

  HanModule(mpi::SimWorld& world, coll::CollRuntime& rt,
            coll::ModuleSet& mods);
  ~HanModule();

  std::string_view name() const override { return "han"; }
  bool nonblocking_capable() const override { return true; }

  /// Install a configuration source (the autotuner's decision function).
  void set_decider(Decider decider) { decider_ = std::move(decider); }

  /// The static fallback heuristic used when no tuned table is installed.
  static HanConfig default_config(coll::CollKind kind, int nodes, int ppn,
                                  std::size_t bytes);

  /// Resolve the configuration for an operation (exposed for tests and
  /// the benches' reporting).
  HanConfig decide(coll::CollKind kind, const mpi::Comm& comm,
                   std::size_t bytes);

  mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                      mpi::BufView buf, mpi::Datatype dtype,
                      const coll::CollConfig& cfg) override;
  mpi::Request ireduce(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const coll::CollConfig& cfg) override;
  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op,
                          const coll::CollConfig& cfg) override;
  mpi::Request igather(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       const coll::CollConfig& cfg) override;
  mpi::Request iscatter(const mpi::Comm& comm, int me, int root,
                        mpi::BufView send, mpi::BufView recv,
                        const coll::CollConfig& cfg) override;
  mpi::Request iallgather(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv,
                          const coll::CollConfig& cfg) override;
  /// Hierarchical reduce-scatter (equal blocks): intra-node reduce →
  /// inter-node reduce-scatter over the leaders (ring or tree+scatter,
  /// per cfg.imod) → intra-node scatter of the node's region.
  mpi::Request ireduce_scatter(const mpi::Comm& comm, int me,
                               mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype, mpi::ReduceOp op,
                               const coll::CollConfig& cfg) override;
  mpi::Request ibarrier(const mpi::Comm& comm, int me) override;

  /// Explicit-config entry points (used by the autotuner's searches,
  /// which must pin every Table II parameter).
  mpi::Request ibcast_cfg(const mpi::Comm& comm, int me, int root,
                          mpi::BufView buf, mpi::Datatype dtype,
                          const HanConfig& cfg);
  mpi::Request ireduce_cfg(const mpi::Comm& comm, int me, int root,
                           mpi::BufView send, mpi::BufView recv,
                           mpi::Datatype dtype, mpi::ReduceOp op,
                           const HanConfig& cfg);
  mpi::Request iallreduce_cfg(const mpi::Comm& comm, int me, mpi::BufView send,
                              mpi::BufView recv, mpi::Datatype dtype,
                              mpi::ReduceOp op, const HanConfig& cfg);
  mpi::Request ireduce_scatter_cfg(const mpi::Comm& comm, int me,
                                   mpi::BufView send, mpi::BufView recv,
                                   mpi::Datatype dtype, mpi::ReduceOp op,
                                   const HanConfig& cfg);

  /// Extension (paper §II-A / future work): multi-leader allreduce.
  /// Segments are striped over `leaders` node-local leaders; stripe j
  /// pipelines through leader j's up communicator, parallelizing the
  /// leader-side protocol processing and reduction trees the way
  /// Bayatpour et al.'s multi-leader designs do. `leaders` is clamped to
  /// the node width; 1 degenerates to the paper's single-leader pipeline.
  mpi::Request iallreduce_multileader(const mpi::Comm& comm, int me,
                                      mpi::BufView send, mpi::BufView recv,
                                      mpi::Datatype dtype, mpi::ReduceOp op,
                                      const HanConfig& cfg, int leaders);

  /// The communicator ladder for `comm` under an explicit topology
  /// descriptor (built lazily, cached per (context, descriptor); freed
  /// with the communicator).
  Hierarchy& hierarchy(const mpi::Comm& comm, const TopologyDescriptor& topo);

  /// The ladder derived from the machine's topology descriptor (NUMA
  /// machines get numa < node < cluster, flat machines node < cluster).
  Hierarchy& hierarchy(const mpi::Comm& comm);

  /// The paper's flat 2-level ladder (node < cluster) — the layout the
  /// non-recursive collectives (gather/scatter/allgather/barrier,
  /// reduce-scatter, multi-leader) are defined on.
  Hierarchy& flat_hierarchy(const mpi::Comm& comm);

  /// The ladder cfg selects: lvl == 2 forces the flat 2-level split; 0
  /// (and any depth at or above the derived one) uses the derived ladder.
  Hierarchy& ladder_for(const mpi::Comm& comm, const HanConfig& cfg);

  /// Public world / runtime access for the task-graph builders.
  mpi::SimWorld& world_ref() { return world(); }
  coll::CollRuntime& rt_ref() { return rt(); }

  coll::CollModule* inter_module(const HanConfig& cfg);
  coll::CollModule* intra_module(const HanConfig& cfg);
  coll::ModuleSet& modules() { return *mods_; }

 private:
  coll::ModuleSet* mods_;
  Decider decider_;
  // Ladders cached by parent context; a context holds one ladder per
  // distinct descriptor (flat + derived, typically). Vector scan keeps
  // lookup deterministic and the descriptor set is tiny.
  std::unordered_map<int, std::vector<std::unique_ptr<Hierarchy>>> comms_;
  int destroy_observer_ = -1;  // SimWorld comm-destroy observer token
};

}  // namespace han::core

#include "han/han3.hpp"

#include <cstring>

#include "coll/builders.hpp"

namespace han::core {

namespace {

using coll::CollConfig;
using coll::Segmenter;
using mpi::BufView;
using mpi::Request;

BufView seg_of(BufView buf, const Segmenter& segs, int i) {
  return buf.slice(segs.offset(i), segs.length(i));
}

struct TempBuf {
  std::vector<std::byte> storage;
  mpi::Datatype dtype = mpi::Datatype::Byte;
  TempBuf(bool data_mode, std::size_t bytes, mpi::Datatype t) : dtype(t) {
    if (data_mode) storage.resize(bytes);
  }
  BufView view(std::size_t off, std::size_t len) {
    if (storage.empty()) return BufView::timing_only(len, dtype);
    return BufView{storage.data() + off, len, dtype};
  }
};

}  // namespace

Han3::Han3(HanModule& han) : han_(&han) {}

bool Han3::applicable() const {
  return han_->world_ref().profile().numa_per_node > 1;
}

Han3::Comm3& Han3::comm3(const mpi::Comm& comm) {
  auto it = comms_.find(comm.context());
  if (it != comms_.end()) return *it->second;

  mpi::SimWorld& w = han_->world_ref();
  auto c3 = std::make_unique<Comm3>();
  const int n = comm.size();

  // Leaf: one communicator per (node, NUMA domain).
  std::vector<int> color(n), key(n);
  const int domains = w.profile().numa_per_node;
  for (int pr = 0; pr < n; ++pr) {
    const mpi::Rank& rk = w.rank(comm.world_rank(pr));
    color[pr] = rk.node * domains + rk.numa;
    key[pr] = pr;
  }
  c3->leaf = w.comm_split(comm, color, key);
  c3->leaf_rank.resize(n);
  for (int pr = 0; pr < n; ++pr) {
    c3->leaf_rank[pr] =
        c3->leaf[pr]->comm_rank_of_world(comm.world_rank(pr));
  }

  // Mid: NUMA-domain leaders (leaf rank 0) within each node.
  for (int pr = 0; pr < n; ++pr) {
    color[pr] = c3->leaf_rank[pr] == 0
                    ? w.rank(comm.world_rank(pr)).node
                    : -1;
  }
  c3->mid = w.comm_split(comm, color, key);

  // Up: node leaders (mid rank 0 — the NUMA-0 leader) across nodes.
  for (int pr = 0; pr < n; ++pr) {
    const bool node_leader =
        c3->mid[pr] != nullptr &&
        c3->mid[pr]->comm_rank_of_world(comm.world_rank(pr)) == 0;
    color[pr] = node_leader ? 0 : -1;
  }
  c3->up = w.comm_split(comm, color, key);
  if (c3->up[0] != nullptr && c3->up[0]->size() <= 1) {
    std::fill(c3->up.begin(), c3->up.end(), nullptr);
  }

  Comm3& ref = *c3;
  comms_.emplace(comm.context(), std::move(c3));
  return ref;
}

// ---------------------------------------------------------------------------
// 3-level Bcast: ib(i) → nb(i-1) → sb(i-2)
// ---------------------------------------------------------------------------

namespace {

sim::CoTask bcast3_program(HanModule& m, Han3::Comm3& c3, mpi::SimWorld& w,
                           int me, BufView buf, mpi::Datatype dtype,
                           HanConfig cfg, Request done) {
  coll::CollModule* imod = m.inter_module(cfg);
  coll::CollModule* smod = m.intra_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  const mpi::Comm& leaf = *c3.leaf[me];
  const int me_leaf = c3.leaf_rank[me];
  const bool numa_leader = c3.numa_leader(me);
  const bool node_leader = c3.node_leader(me);
  const bool has_leaf = leaf.size() > 1;
  const bool has_mid = c3.mid[me] != nullptr && c3.mid[me]->size() > 1;
  const bool has_up = c3.up[me] != nullptr;

  for (int t = 0; t <= u + 1; ++t) {
    std::vector<Request> task;
    const int wr = leaf.world_rank(me_leaf);  // my world rank
    if (node_leader && has_up && t <= u - 1) {
      const mpi::Comm& up = *c3.up[me];
      task.push_back(imod->ibcast(up, up.comm_rank_of_world(wr), /*root=*/0,
                                  seg_of(buf, segs, t), dtype, icfg));
    }
    if (numa_leader && has_mid && t >= 1 && t - 1 <= u - 1) {
      const mpi::Comm& mid = *c3.mid[me];
      task.push_back(smod->ibcast(mid, mid.comm_rank_of_world(wr),
                                  /*root=*/0, seg_of(buf, segs, t - 1),
                                  dtype, CollConfig{}));
    }
    if (has_leaf && t >= 2 && t - 2 <= u - 1) {
      task.push_back(smod->ibcast(leaf, me_leaf, /*root=*/0,
                                  seg_of(buf, segs, t - 2), dtype,
                                  CollConfig{}));
    }
    if (!task.empty()) co_await mpi::wait_all(w.engine(), std::move(task));
  }
  done->complete();
}

}  // namespace

mpi::Request Han3::ibcast(const mpi::Comm& comm, int me, int root,
                          BufView buf, mpi::Datatype dtype,
                          const HanConfig& cfg) {
  Comm3& c3 = comm3(comm);
  HAN_ASSERT_MSG(c3.node_leader(root),
                 "Han3 prototype: the root must be a node leader");
  (void)root;
  Request done = mpi::make_request(han_->world_ref().engine());
  bcast3_program(*han_, c3, han_->world_ref(), me, buf, dtype, cfg, done)
      .start();
  return done;
}

// ---------------------------------------------------------------------------
// 3-level Allreduce: sr → mr → ir → ib → mb → sb (6-stage pipeline)
// ---------------------------------------------------------------------------

namespace {

sim::CoTask allreduce3_program(HanModule& m, Han3::Comm3& c3,
                               mpi::SimWorld& w, int me, BufView send,
                               BufView recv, mpi::Datatype dtype,
                               mpi::ReduceOp op, HanConfig cfg,
                               Request done) {
  coll::CollModule* imod = m.inter_module(cfg);
  coll::CollModule* smod = m.intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();

  const mpi::Comm& leaf = *c3.leaf[me];
  const int me_leaf = c3.leaf_rank[me];
  const bool numa_leader = c3.numa_leader(me);
  const bool node_leader = c3.node_leader(me);
  const bool has_leaf = leaf.size() > 1;
  const bool has_mid = c3.mid[me] != nullptr && c3.mid[me]->size() > 1;
  const bool has_up = c3.up[me] != nullptr;

  TempBuf leaf_part(w.data_mode() && numa_leader, send.bytes, dtype);
  TempBuf node_part(w.data_mode() && node_leader, send.bytes, dtype);

  auto leaf_contrib = [&](int i) {
    return has_leaf ? leaf_part.view(segs.offset(i), segs.length(i))
                    : seg_of(send, segs, i);
  };
  auto node_contrib = [&](int i) {
    return has_mid ? node_part.view(segs.offset(i), segs.length(i))
                   : leaf_contrib(i);
  };

  for (int t = 0; t <= u + 4; ++t) {
    std::vector<Request> task;
    // sr(t): leaf reduce to the NUMA leader.
    if (has_leaf && t <= u - 1) {
      task.push_back(smod->ireduce(
          leaf, me_leaf, /*root=*/0, seg_of(send, segs, t),
          numa_leader ? leaf_part.view(segs.offset(t), segs.length(t))
                      : BufView::timing_only(segs.length(t), dtype),
          dtype, op, CollConfig{}));
    }
    // mr(t-1): mid reduce (numa leaders) to the node leader.
    if (numa_leader && has_mid && t >= 1 && t - 1 <= u - 1) {
      const mpi::Comm& mid = *c3.mid[me];
      const int i = t - 1;
      task.push_back(smod->ireduce(
          mid, mid.comm_rank_of_world(leaf.world_rank(me_leaf)),
          /*root=*/0, leaf_contrib(i),
          node_leader ? node_part.view(segs.offset(i), segs.length(i))
                      : BufView::timing_only(segs.length(i), dtype),
          dtype, op, CollConfig{}));
    }
    // ir(t-2): inter-node reduce among node leaders.
    if (node_leader && has_up && t >= 2 && t - 2 <= u - 1) {
      const mpi::Comm& up = *c3.up[me];
      const int i = t - 2;
      task.push_back(imod->ireduce(
          up, up.comm_rank_of_world(leaf.world_rank(me_leaf)), /*root=*/0,
          node_contrib(i), seg_of(recv, segs, i), dtype, op, ircfg));
    }
    // ib(t-3): inter-node bcast of the total.
    if (node_leader && has_up && t >= 3 && t - 3 <= u - 1) {
      const mpi::Comm& up = *c3.up[me];
      task.push_back(imod->ibcast(
          up, up.comm_rank_of_world(leaf.world_rank(me_leaf)), /*root=*/0,
          seg_of(recv, segs, t - 3), dtype, ibcfg));
    }
    // mb(t-4): mid bcast to the numa leaders.
    if (numa_leader && has_mid && t >= 4 && t - 4 <= u - 1) {
      const mpi::Comm& mid = *c3.mid[me];
      task.push_back(smod->ibcast(
          mid, mid.comm_rank_of_world(leaf.world_rank(me_leaf)),
          /*root=*/0, seg_of(recv, segs, t - 4), dtype, CollConfig{}));
    }
    // sb(t-5): leaf bcast.
    if (has_leaf && t >= 5 && t - 5 <= u - 1) {
      task.push_back(smod->ibcast(leaf, me_leaf, /*root=*/0,
                                  seg_of(recv, segs, t - 5), dtype,
                                  CollConfig{}));
    }
    if (!task.empty()) co_await mpi::wait_all(w.engine(), std::move(task));
  }
  // Degenerate case: no stage wrote recv (single rank overall).
  if (!has_leaf && !has_mid && !has_up && w.data_mode() &&
      send.has_data() && recv.has_data()) {
    std::memcpy(recv.data, send.data, send.bytes);
  }
  done->complete();
}

}  // namespace

mpi::Request Han3::iallreduce(const mpi::Comm& comm, int me, BufView send,
                              BufView recv, mpi::Datatype dtype,
                              mpi::ReduceOp op, const HanConfig& cfg) {
  Comm3& c3 = comm3(comm);
  Request done = mpi::make_request(han_->world_ref().engine());
  allreduce3_program(*han_, c3, han_->world_ref(), me, send, recv, dtype,
                     op, cfg, done)
      .start();
  return done;
}

}  // namespace han::core

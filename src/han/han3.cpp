#include "han/han3.hpp"

#include <algorithm>

#include "han/task/builders.hpp"
#include "han/task/scheduler.hpp"

namespace han::core {

Han3::Han3(HanModule& han) : han_(&han) {
  // Mirror HanModule's eviction: a destroyed parent comm takes its cached
  // Comm3 (and the leaf/mid/up splits) with it before the context id is
  // recycled.
  destroy_observer_ =
      han_->world_ref().add_comm_destroy_observer([this](int context) {
        auto it = comms_.find(context);
        if (it == comms_.end()) return;
        std::unique_ptr<Comm3> c3 = std::move(it->second);
        comms_.erase(it);
        for (mpi::Comm* sub : c3->subs) han_->world_ref().free_comm(sub);
      });
}

Han3::~Han3() {
  han_->world_ref().remove_comm_destroy_observer(destroy_observer_);
}

bool Han3::applicable() const {
  return han_->world_ref().profile().numa_per_node > 1;
}

Han3::Comm3& Han3::comm3(const mpi::Comm& comm) {
  auto it = comms_.find(comm.context());
  if (it != comms_.end()) return *it->second;

  mpi::SimWorld& w = han_->world_ref();
  auto c3 = std::make_unique<Comm3>();
  const int n = comm.size();

  // Leaf: one communicator per (node, NUMA domain).
  std::vector<int> color(n), key(n);
  const int domains = w.profile().numa_per_node;
  for (int pr = 0; pr < n; ++pr) {
    const mpi::Rank& rk = w.rank(comm.world_rank(pr));
    color[pr] = rk.node * domains + rk.numa;
    key[pr] = pr;
  }
  c3->leaf = w.comm_split(comm, color, key);
  c3->leaf_rank.resize(n);
  for (int pr = 0; pr < n; ++pr) {
    c3->leaf_rank[pr] =
        c3->leaf[pr]->comm_rank_of_world(comm.world_rank(pr));
  }

  // Mid: NUMA-domain leaders (leaf rank 0) within each node.
  for (int pr = 0; pr < n; ++pr) {
    color[pr] = c3->leaf_rank[pr] == 0
                    ? w.rank(comm.world_rank(pr)).node
                    : -1;
  }
  c3->mid = w.comm_split(comm, color, key);

  // Up: node leaders (mid rank 0 — the NUMA-0 leader) across nodes.
  for (int pr = 0; pr < n; ++pr) {
    const bool node_leader =
        c3->mid[pr] != nullptr &&
        c3->mid[pr]->comm_rank_of_world(comm.world_rank(pr)) == 0;
    color[pr] = node_leader ? 0 : -1;
  }
  c3->up = w.comm_split(comm, color, key);

  for (const auto& vec : {c3->leaf, c3->mid, c3->up}) {
    for (mpi::Comm* c : vec) {
      if (c != nullptr && std::find(c3->subs.begin(), c3->subs.end(), c) ==
                              c3->subs.end()) {
        c3->subs.push_back(c);
      }
    }
  }

  if (c3->up[0] != nullptr && c3->up[0]->size() <= 1) {
    std::fill(c3->up.begin(), c3->up.end(), nullptr);
  }

  Comm3& ref = *c3;
  comms_.emplace(comm.context(), std::move(c3));
  return ref;
}

// Both 3-level pipelines (bcast3 ib → mb → sb, allreduce3
// sr → mr → ir → ib → mb → sb) are declarative TaskGraphs now
// (task/builders.cpp); the scheduler's window reproduces the lock-step
// wait-all semantics at cfg.window = 1.

mpi::Request Han3::ibcast(const mpi::Comm& comm, int me, int root,
                          mpi::BufView buf, mpi::Datatype dtype,
                          const HanConfig& cfg) {
  Comm3& c3 = comm3(comm);
  HAN_ASSERT_MSG(c3.node_leader(root),
                 "Han3 prototype: the root must be a node leader");
  (void)root;
  return task::TaskScheduler::run(
      han_->rt_ref(), task::build_bcast3(*han_, c3, me, buf, dtype, cfg),
      cfg.window, comm.world_rank(me));
}

mpi::Request Han3::iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                              mpi::BufView recv, mpi::Datatype dtype,
                              mpi::ReduceOp op, const HanConfig& cfg) {
  Comm3& c3 = comm3(comm);
  return task::TaskScheduler::run(
      han_->rt_ref(),
      task::build_allreduce3(*han_, c3, me, send, recv, dtype, op, cfg),
      cfg.window, comm.world_rank(me));
}

}  // namespace han::core

// Han3: three-hardware-level HAN — the paper's future-work direction
// ("explore approaches based on an increased number of hardware levels").
//
// On a NUMA machine profile (machine::with_numa), the hierarchy becomes
//   leaf  — processes sharing one NUMA domain      (smod, shm)
//   mid   — NUMA-domain leaders within a node      (smod, crosses the
//                                                   inter-socket link once)
//   up    — node leaders across nodes              (imod, network)
// and the task pipelines gain a stage: Bcast runs ib → nb → sb, Allreduce
// runs sr → mr → ir → ib → mb → sb, each stage one segment behind the
// previous — the natural generalization of paper Figs. 1 and 5.
//
// Prototype scope (documented in DESIGN.md): the root of rooted
// operations must be a node leader (leaf rank 0 of NUMA domain 0); the
// 2-level HanModule remains the general entry point.
#pragma once

#include "han/han.hpp"

namespace han::core {

class Han3 {
 public:
  explicit Han3(HanModule& han);
  ~Han3();

  /// True when the world profile actually has more than one NUMA domain
  /// per node (otherwise fall back to the 2-level HanModule).
  bool applicable() const;

  mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                      mpi::BufView buf, mpi::Datatype dtype,
                      const HanConfig& cfg);

  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, const HanConfig& cfg);

  /// The three-level communicator split (exposed for tests).
  struct Comm3 {
    std::vector<mpi::Comm*> leaf;  // per parent rank: NUMA-domain comm
    std::vector<mpi::Comm*> mid;   // per parent rank: node's numa leaders
                                   // (null for non-numa-leaders)
    std::vector<mpi::Comm*> up;    // per parent rank: node leaders comm
                                   // (null for non-node-leaders)
    std::vector<int> leaf_rank;    // rank within leaf comm
    std::vector<mpi::Comm*> subs;  // distinct splits, for free on destroy
    bool numa_leader(int pr) const { return leaf_rank[pr] == 0; }
    bool node_leader(int pr) const { return mid[pr] != nullptr && up[pr] != nullptr; }
  };
  Comm3& comm3(const mpi::Comm& comm);

 private:
  HanModule* han_;
  std::unordered_map<int, std::unique_ptr<Comm3>> comms_;
  int destroy_observer_ = -1;  // SimWorld comm-destroy observer token
};

}  // namespace han::core

// Hierarchy: the n-level communicator ladder derived from a topology
// descriptor (docs/HIERARCHY.md).
//
// A TopologyDescriptor is an ordered list of level keys, innermost first
// (e.g. numa < node < cluster), derived from the machine profile. The
// Hierarchy splits a parent communicator into one communicator family per
// level: two ranks share a level-l communicator iff they sit in the same
// level-l domain and occupy the same slot (communicator rank) at every
// lower level. This generalizes both of the seed's hand-written splits:
//
//  * depth 2 reproduces HanComm exactly — a shared-memory low split plus
//    the split-by-local-rank up families (Open MPI HAN's root_low_rank
//    trick: rooted operations ride the family holding the root, so any
//    rank can be the root without a relay hop);
//  * depth 3 subsumes the retired Han3::Comm3 — the slot-0 chain of
//    families is the leaf -> mid -> up leader ladder, and the remaining
//    families extend the root trick to every level.
//
// Degenerate outermost levels (a single domain with a single member)
// collapse: the top family is nulled exactly like HanComm's single-node
// up comms, and the task builders drop trailing inactive levels, so a
// flat machine behaves bit-identically to the 2-level seed.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "simmpi/world.hpp"

namespace han::core {

/// Ordered level keys, innermost first; the outermost must be "cluster".
/// Known keys: "numa" (processes sharing one NUMA domain), "node"
/// (processes sharing one node), "cluster" (everything).
struct TopologyDescriptor {
  std::vector<std::string> levels;

  int depth() const { return static_cast<int>(levels.size()); }

  /// The paper's flat 2-level split: node < cluster.
  static TopologyDescriptor flat();

  /// Derive from a machine profile: NUMA machines (numa_per_node > 1) get
  /// numa < node < cluster, flat machines get node < cluster.
  static TopologyDescriptor from_profile(const machine::MachineProfile& p);

  /// Grammar: '<'-joined level keys, innermost first ("numa<node<cluster").
  std::string to_string() const;

  /// Parse the to_string() form. Strict: unknown keys, duplicates, fewer
  /// than two levels, out-of-order keys, and a non-"cluster" outermost
  /// level all fail.
  static bool parse(const std::string& text, TopologyDescriptor* out);

  friend bool operator==(const TopologyDescriptor&,
                         const TopologyDescriptor&) = default;
};

class Hierarchy {
 public:
  Hierarchy(mpi::SimWorld& world, const mpi::Comm& parent,
            TopologyDescriptor topo);

  const mpi::Comm& parent() const { return *parent_; }
  const TopologyDescriptor& topo() const { return topo_; }
  int depth() const { return topo_.depth(); }
  const std::string& level_name(int l) const { return topo_.levels[l]; }

  /// Level-l communicator family member containing parent rank pr.
  /// Level 0 is never null; the top level is nulled (for every rank) when
  /// the leader chain's top family has a single member — no data can cross
  /// it, exactly HanComm's single-node rule.
  const mpi::Comm* comm(int l, int pr) const { return comms_[l][pr]; }

  /// Rank of parent rank pr within comm(l, pr); -1 when nulled.
  int rank(int l, int pr) const { return ranks_[l][pr]; }

  /// True when pr holds slot 0 at every level below l (the leader chain).
  bool leader_below(int l, int pr) const;

  /// True when a and b occupy the same slot at every level below l — i.e.
  /// they share the level-l communicator family of rank b (the n-level
  /// root trick: a participates in b's level-l operation iff true).
  bool same_slots_below(int l, int a, int b) const;

  // --- 2-level compatibility view (level 0 / top level) --------------------
  const mpi::Comm& low(int pr) const { return *comms_[0][pr]; }
  const mpi::Comm* up(int pr) const { return comms_[depth() - 1][pr]; }
  int low_rank(int pr) const { return ranks_[0][pr]; }
  int up_rank(int pr) const { return ranks_[depth() - 1][pr]; }

  /// Members of the leader chain's top family (1 on a single node) — the
  /// node count on flat descriptors.
  int node_count() const { return node_count_; }
  /// Largest per-node process count: the maximum over ranks of the product
  /// of their sub-top communicator sizes.
  int max_ppn() const { return max_ppn_; }

  /// The distinct communicators created by the splits (owners: SimWorld);
  /// exposed so the parent comm's destruction can free them.
  const std::vector<mpi::Comm*>& sub_comms() const { return sub_comms_; }

 private:
  const mpi::Comm* parent_;
  TopologyDescriptor topo_;
  std::vector<std::vector<mpi::Comm*>> comms_;  // [level][parent rank]
  std::vector<std::vector<int>> ranks_;         // [level][parent rank]
  std::vector<mpi::Comm*> sub_comms_;
  int node_count_ = 0;
  int max_ppn_ = 0;
};

}  // namespace han::core

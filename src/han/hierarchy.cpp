#include "han/hierarchy.hpp"

#include <algorithm>
#include <map>

#include "simbase/assert.hpp"

namespace han::core {

namespace {

constexpr const char* kKnownLevels[] = {"numa", "node", "cluster"};

/// Which level-`name` domain does world rank `wr` live in? Domains are
/// global ids: every rank is in exactly one domain per level, and domains
/// nest (numa ⊂ node ⊂ cluster).
int domain_id(mpi::SimWorld& world, const std::string& name, int wr) {
  const mpi::Rank& rk = world.rank(wr);
  if (name == "numa") {
    const int domains = std::max(1, world.profile().numa_per_node);
    return rk.node * domains + rk.numa;
  }
  if (name == "node") return rk.node;
  HAN_ASSERT_MSG(name == "cluster", "unknown hierarchy level key");
  return 0;
}

}  // namespace

TopologyDescriptor TopologyDescriptor::flat() {
  return TopologyDescriptor{{"node", "cluster"}};
}

TopologyDescriptor TopologyDescriptor::from_profile(
    const machine::MachineProfile& p) {
  if (p.numa_per_node > 1) {
    return TopologyDescriptor{{"numa", "node", "cluster"}};
  }
  return flat();
}

std::string TopologyDescriptor::to_string() const {
  std::string out;
  for (const std::string& l : levels) {
    if (!out.empty()) out += '<';
    out += l;
  }
  return out;
}

bool TopologyDescriptor::parse(const std::string& text,
                               TopologyDescriptor* out) {
  TopologyDescriptor t;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t sep = text.find('<', pos);
    const std::string key = text.substr(
        pos, sep == std::string::npos ? std::string::npos : sep - pos);
    if (std::find(std::begin(kKnownLevels), std::end(kKnownLevels), key) ==
        std::end(kKnownLevels)) {
      return false;
    }
    t.levels.push_back(key);
    if (sep == std::string::npos) break;
    pos = sep + 1;
  }
  if (t.depth() < 2) return false;
  if (t.levels.back() != "cluster") return false;
  // Keys must appear in canonical innermost-to-outermost order, once each.
  std::size_t cursor = 0;
  for (const std::string& l : t.levels) {
    while (cursor < std::size(kKnownLevels) && l != kKnownLevels[cursor]) {
      ++cursor;
    }
    if (cursor == std::size(kKnownLevels)) return false;
    ++cursor;
  }
  *out = std::move(t);
  return true;
}

Hierarchy::Hierarchy(mpi::SimWorld& world, const mpi::Comm& parent,
                     TopologyDescriptor topo)
    : parent_(&parent), topo_(std::move(topo)) {
  const int n = parent.size();
  const int d = topo_.depth();
  HAN_ASSERT_MSG(d >= 2, "a hierarchy needs at least two levels");
  comms_.resize(d);
  ranks_.assign(d, std::vector<int>(n, -1));

  // Level 0: the innermost split. A flat descriptor uses the shared-memory
  // split (the paper's low_comm, exactly); deeper descriptors split by the
  // innermost domain key.
  if (d == 2) {
    comms_[0] = world.comm_split_shared(parent);
  } else {
    std::vector<int> color(n), key(n);
    for (int pr = 0; pr < n; ++pr) {
      color[pr] = domain_id(world, topo_.levels[0], parent.world_rank(pr));
      key[pr] = pr;
    }
    comms_[0] = world.comm_split(parent, color, key);
  }
  for (int pr = 0; pr < n; ++pr) {
    ranks_[0][pr] = comms_[0][pr]->comm_rank_of_world(parent.world_rank(pr));
  }

  // Levels 1..d-1: the slot families. Two ranks share a level-l comm iff
  // they sit in the same level-l domain and hold the same slot at every
  // lower level. Colors are dense first-seen ids: with the usual contiguous
  // placement they ascend with the slot tuple, so comm_split's sorted-color
  // group order reproduces HanComm's split-by-local-rank creation order.
  std::vector<int> color(n), key(n);
  std::vector<std::vector<int>> family(n);  // (domain, slot tuple) per rank
  for (int l = 1; l < d; ++l) {
    std::map<std::vector<int>, int> family_color;
    for (int pr = 0; pr < n; ++pr) {
      family[pr].assign(1, domain_id(world, topo_.levels[l],
                                     parent.world_rank(pr)));
      for (int j = 0; j < l; ++j) family[pr].push_back(ranks_[j][pr]);
      family_color.emplace(family[pr], 0);
    }
    // Dense color ids in (domain, slot tuple) order: for the flat
    // descriptor this is exactly HanComm's color = low_rank creation order.
    int next = 0;
    for (auto& [f, c] : family_color) c = next++;
    for (int pr = 0; pr < n; ++pr) {
      color[pr] = family_color.at(family[pr]);
      key[pr] = pr;
    }
    comms_[l] = world.comm_split(parent, color, key);
    for (int pr = 0; pr < n; ++pr) {
      ranks_[l][pr] = comms_[l][pr]->comm_rank_of_world(parent.world_rank(pr));
    }
  }

  node_count_ = comms_[d - 1][0] != nullptr ? comms_[d - 1][0]->size() : 1;
  for (int pr = 0; pr < n; ++pr) {
    int below = 1;
    for (int l = 0; l + 1 < d; ++l) below *= comms_[l][pr]->size();
    max_ppn_ = std::max(max_ppn_, below);
  }

  // Record the distinct splits before degenerate top comms are forgotten
  // below — they exist in the world either way and must be freed with the
  // parent.
  for (const auto& vec : comms_) {
    for (mpi::Comm* c : vec) {
      if (c != nullptr && std::find(sub_comms_.begin(), sub_comms_.end(), c) ==
                              sub_comms_.end()) {
        sub_comms_.push_back(c);
      }
    }
  }

  if (node_count_ <= 1) {
    // The leader chain's top family has a single member: no data can cross
    // the top level, so the whole family layer collapses (the single-node
    // rule of the 2-level seed, applied to the outermost level).
    std::fill(comms_[d - 1].begin(), comms_[d - 1].end(), nullptr);
    std::fill(ranks_[d - 1].begin(), ranks_[d - 1].end(), -1);
  }
}

bool Hierarchy::leader_below(int l, int pr) const {
  for (int j = 0; j < l; ++j) {
    if (ranks_[j][pr] != 0) return false;
  }
  return true;
}

bool Hierarchy::same_slots_below(int l, int a, int b) const {
  for (int j = 0; j < l; ++j) {
    if (ranks_[j][a] != ranks_[j][b]) return false;
  }
  return true;
}

}  // namespace han::core

#include "han/synth/synth.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "autotune/search.hpp"
#include "coll/registry.hpp"
#include "han/han.hpp"
#include "han/synth/schedule_builder.hpp"
#include "han/verify/verify.hpp"
#include "machine/machine.hpp"
#include "parallel/pool.hpp"
#include "simbase/units.hpp"

namespace han::synth {

namespace {

using coll::CollKind;
using core::HanConfig;
using mpi::BufView;
using mpi::Datatype;

struct SynthWorld {
  explicit SynthWorld(machine::MachineProfile profile)
      : world(std::move(profile)),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

/// Per-rank graphs of one candidate, built by the same parametric builder
/// the dispatch path uses.
task::TaskGraph build_candidate(SynthWorld& sw, const mpi::Comm& wc, int me,
                                CollKind kind, std::size_t bytes,
                                const HanConfig& cfg, const SynthSpec& spec) {
  if (kind == CollKind::Bcast) {
    return build_schedule_bcast(sw.han, wc, me, /*root=*/0,
                                BufView::timing_only(bytes), Datatype::Byte,
                                cfg, spec);
  }
  return build_schedule_allreduce(sw.han, wc, me, BufView::timing_only(bytes),
                                  BufView::timing_only(bytes), Datatype::Byte,
                                  mpi::ReduceOp::Sum, cfg, spec);
}

/// The soundness gate: structural validation plus the cross-rank deadlock
/// analysis at the candidate's own scheduler window. ANY finding — error
/// or warning — disqualifies the candidate from execution.
void gate_candidate(SynthWorld& sw, CollKind kind, std::size_t bytes,
                    Candidate& cand) {
  const mpi::Comm& wc = sw.world.world_comm();
  std::vector<verify::GraphSummary> summaries;
  for (int me = 0; me < wc.size(); ++me) {
    task::TaskGraph g =
        build_candidate(sw, wc, me, kind, bytes, cand.cfg, cand.spec);
    if (!task::validate_graph(g).empty()) {
      cand.verify_errors += 1;
      return;
    }
    summaries.push_back(verify::summarize(g, me));
  }
  const verify::Report rep =
      verify::analyze_task_graphs(summaries, cand.cfg.window);
  for (const verify::Finding& f : rep.findings) {
    if (f.severity == verify::Severity::Error) {
      ++cand.verify_errors;
    } else {
      ++cand.verify_warnings;
    }
  }
  if (rep.truncated) ++cand.verify_errors;
  cand.verified = cand.verify_errors == 0 && cand.verify_warnings == 0;
}

std::vector<std::size_t> pareto_frontier(const std::vector<Candidate>& pool) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pool.size() && !dominated; ++j) {
      dominated = j != i && pool[j].cost.dominates(pool[i].cost);
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_candidate(const Candidate& c) {
  std::string j = "{\"cfg\": \"" + c.cfg.to_string() + "\"";
  j += ", \"lat\": " + fmt_double(c.cost.lat);
  j += ", \"bw\": " + fmt_double(c.cost.bw);
  j += std::string(", \"verified\": ") + (c.verified ? "true" : "false");
  j += ", \"errors\": " + std::to_string(c.verify_errors);
  j += ", \"warnings\": " + std::to_string(c.verify_warnings);
  if (c.time >= 0.0) j += ", \"time\": " + fmt_double(c.time);
  j += "}";
  return j;
}

}  // namespace

int SynthResult::finalist_findings() const {
  int n = 0;
  for (const SynthCase& c : cases) {
    for (const Candidate& f : c.finalists) {
      n += f.verify_errors + f.verify_warnings;
    }
  }
  return n;
}

int SynthResult::wins() const {
  int n = 0;
  for (const SynthCase& c : cases) {
    if (c.winner < 0 || c.baseline < 0.0) continue;
    n += c.finalists[c.winner].time <= c.baseline * (1.0 + 1e-9);
  }
  return n;
}

tune::LookupTable SynthResult::winners() const {
  tune::LookupTable table;
  for (const SynthCase& c : cases) {
    if (c.winner < 0) continue;
    table.insert(c.kind, opts.nodes, opts.ppn, c.bytes,
                 c.finalists[c.winner].cfg);
  }
  return table;
}

std::string SynthResult::to_json() const {
  int explored = 0, frontier = 0, finalists = 0;
  for (const SynthCase& c : cases) {
    explored += c.explored;
    frontier += c.frontier;
    finalists += static_cast<int>(c.finalists.size());
  }
  std::string j = "{\n  \"totals\": {\"cases\": " +
                  std::to_string(cases.size()) +
                  ", \"explored\": " + std::to_string(explored) +
                  ", \"frontier\": " + std::to_string(frontier) +
                  ", \"finalists\": " + std::to_string(finalists) +
                  ", \"finalist_findings\": " +
                  std::to_string(finalist_findings()) +
                  ", \"wins\": " + std::to_string(wins()) + "},\n";
  j += "  \"options\": {\"machine\": \"" + std::to_string(opts.nodes) + "x" +
       (opts.numa > 1 ? std::to_string(opts.numa) + "x" : "") +
       std::to_string(opts.ppn) + "\", \"seed\": " +
       std::to_string(opts.seed) +
       ", \"mutation_rounds\": " + std::to_string(opts.mutation_rounds) +
       ", \"mutants_per_round\": " + std::to_string(opts.mutants_per_round) +
       ", \"max_finalists\": " + std::to_string(opts.max_finalists) + "},\n";
  j += "  \"cases\": {\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SynthCase& c = cases[i];
    j += "    \"" + c.name + "\": {\"explored\": " +
         std::to_string(c.explored) +
         ", \"frontier\": " + std::to_string(c.frontier);
    if (c.baseline >= 0.0) {
      j += ", \"baseline\": {\"cfg\": \"" + c.baseline_cfg +
           "\", \"time\": " + fmt_double(c.baseline) + "}";
    }
    j += ", \"finalists\": [";
    for (std::size_t f = 0; f < c.finalists.size(); ++f) {
      if (f > 0) j += ", ";
      j += fmt_candidate(c.finalists[f]);
    }
    j += "]";
    if (c.winner >= 0) {
      const Candidate& w = c.finalists[c.winner];
      j += ", \"winner\": {\"cfg\": \"" + w.cfg.to_string() +
           "\", \"time\": " + fmt_double(w.time);
      if (c.baseline > 0.0) {
        j += ", \"vs_baseline\": " + fmt_double(w.time / c.baseline);
      }
      j += "}";
    }
    j += "}";
    j += i + 1 < cases.size() ? ",\n" : "\n";
  }
  j += "  }\n}\n";
  return j;
}

namespace {

/// One synthesis case, end to end: enumerate → prune/mutate → verify →
/// measure. Owns its world and rng stream; `case_ordinal` seeds the
/// mutation rng exactly as the serial loop always did, so the per-case
/// result is independent of how many cases run concurrently around it.
SynthCase run_case(const SynthOptions& opts, CollKind kind,
                   std::size_t bytes, std::uint64_t case_ordinal) {
  SynthCase c;
  c.kind = kind;
  c.bytes = bytes;
  // The numa segment appears only on NUMA machines, keeping flat-machine
  // reports byte-identical to before the knob existed.
  const std::string machine_tag =
      std::to_string(opts.nodes) +
      (opts.numa > 1 ? "x" + std::to_string(opts.numa) : "") + "x" +
      std::to_string(opts.ppn) +
      (opts.rails > 1 ? "r" + std::to_string(opts.rails) : "");
  c.name = std::string(coll::coll_kind_name(kind)) + "." + machine_tag +
           "." + sim::format_bytes(bytes);

  // Base Table II configs every spec is crossed with. ADAPT/Binary is
  // the workhorse inter module; fs and window are the axes that
  // interact with the schedule shape.
  std::vector<HanConfig> bases;
  for (std::size_t fs : opts.fs_sizes) {
    for (int w : opts.windows) {
      HanConfig base;
      base.fs = fs;
      base.imod = "adapt";
      base.smod = "sm";
      base.ibalg = coll::Algorithm::Binary;
      base.iralg = coll::Algorithm::Binary;
      base.ibs = 32 << 10;
      base.irs = 32 << 10;
      base.window = w;
      bases.push_back(std::move(base));
    }
  }

  // 1. Enumerate the grammar across the base configs and cost it.
  std::vector<Candidate> pool;
  std::set<std::string> seen;
  auto admit = [&](SynthSpec spec, const HanConfig& base) {
    if (!spec.validate().empty()) return;
    Candidate cand;
    cand.cfg = base;
    cand.cfg.sched = spec.id();
    if (!seen.insert(cand.cfg.to_string()).second) return;
    cand.spec = std::move(spec);
    cand.cost = symbolic_cost(cand.spec, cand.cfg, opts.nodes, opts.ppn,
                              bytes, opts.numa, opts.rails);
    pool.push_back(std::move(cand));
  };
  GeneratorOptions grammar = opts.grammar;
  grammar.rails = opts.rails;
  for (const SynthSpec& spec : enumerate_specs(kind, opts.ppn, grammar)) {
    for (const HanConfig& base : bases) admit(spec, base);
  }
  if (opts.numa > 1) {
    // NUMA machines additionally enumerate the three-level chain
    // (chain-order emission only; mutation explores order — generator.hpp).
    GeneratorOptions g3 = grammar;
    g3.three_level = true;
    for (const SynthSpec& spec : enumerate_specs(kind, opts.ppn, g3)) {
      for (const HanConfig& base : bases) admit(spec, base);
    }
  }

  // 2. Pareto prune, then mutate around the frontier.
  sim::Rng rng(opts.seed + 0x9e3779b97f4a7c15ull * (case_ordinal + 1));
  std::vector<std::size_t> frontier = pareto_frontier(pool);
  for (int round = 0; round < opts.mutation_rounds; ++round) {
    for (int mi = 0; mi < opts.mutants_per_round; ++mi) {
      const Candidate& parent =
          pool[frontier[rng.next_below(frontier.size())]];
      HanConfig base = parent.cfg;
      base.sched.clear();
      admit(mutate_spec(parent.spec, rng, opts.ppn, opts.rails), base);
    }
    frontier = pareto_frontier(pool);
  }
  c.explored = static_cast<int>(pool.size());
  c.frontier = static_cast<int>(frontier.size());

  // 3. Select finalists: the frontier's best by combined cost, plus
  // the canonical shape under every base config (so the winner can
  // never lose to the hand-written builders).
  std::vector<std::size_t> order = frontier;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              const double ca = pool[a].cost.lat + pool[a].cost.bw;
              const double cb = pool[b].cost.lat + pool[b].cost.bw;
              if (ca != cb) return ca < cb;
              return pool[a].cfg.to_string() < pool[b].cfg.to_string();
            });
  if (static_cast<int>(order.size()) > opts.max_finalists) {
    order.resize(static_cast<std::size_t>(opts.max_finalists));
  }
  std::vector<std::string> canonical_ids{SynthSpec::canonical(kind).id()};
  if (opts.numa > 1) {
    canonical_ids.push_back(SynthSpec::canonical3(kind).id());
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (std::find(canonical_ids.begin(), canonical_ids.end(),
                  pool[i].cfg.sched) == canonical_ids.end()) {
      continue;
    }
    if (std::find(order.begin(), order.end(), i) == order.end()) {
      order.push_back(i);
    }
  }
  for (std::size_t idx : order) c.finalists.push_back(pool[idx]);
  std::sort(c.finalists.begin(), c.finalists.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.cfg.to_string() < b.cfg.to_string();
            });

  // 4. Verify gate + simulator scoring on the real topology. On a NUMA
  // machine the hand-written baseline dispatches to the derived
  // three-level ladder — a win means beating it, not just the flat seed.
  machine::MachineProfile profile = machine::make_aries(opts.nodes, opts.ppn);
  if (opts.numa > 1) profile = machine::with_numa(profile, opts.numa);
  if (opts.rails > 1) profile = machine::with_rails(profile, opts.rails);
  SynthWorld sw(std::move(profile));
  const mpi::Comm& wc = sw.world.world_comm();
  for (Candidate& cand : c.finalists) {
    gate_candidate(sw, kind, bytes, cand);
  }
  tune::Searcher searcher(sw.world, sw.han, wc);
  for (const HanConfig& base : bases) {
    const double t = searcher.measure_collective(kind, bytes, base);
    if (c.baseline < 0.0 || t < c.baseline) {
      c.baseline = t;
      c.baseline_cfg = base.to_string();
    }
  }
  for (std::size_t f = 0; f < c.finalists.size(); ++f) {
    Candidate& cand = c.finalists[f];
    if (!cand.verified) continue;
    cand.time = searcher.measure_collective(kind, bytes, cand.cfg);
    if (c.winner < 0 || cand.time < c.finalists[c.winner].time) {
      c.winner = static_cast<int>(f);
    }
  }

  return c;
}

}  // namespace

SynthResult run_synthesis(const SynthOptions& opts) {
  SynthResult result;
  result.opts = opts;

  // Flatten the (kind, size) grid into independent case jobs. The flat
  // index doubles as the case ordinal the mutation rng is seeded with —
  // identical to the serial loop's running counter.
  struct CaseInput {
    CollKind kind;
    std::size_t bytes;
  };
  std::vector<CaseInput> inputs;
  for (CollKind kind : opts.kinds) {
    for (std::size_t bytes : opts.sizes) inputs.push_back({kind, bytes});
  }
  result.cases = par::parallel_map(
      opts.jobs, static_cast<int>(inputs.size()), [&](int i) {
        const CaseInput& in = inputs[static_cast<std::size_t>(i)];
        return run_case(opts, in.kind, in.bytes,
                        static_cast<std::uint64_t>(i));
      });
  std::sort(result.cases.begin(), result.cases.end(),
            [](const SynthCase& a, const SynthCase& b) {
              return a.name < b.name;
            });
  return result;
}

}  // namespace han::synth

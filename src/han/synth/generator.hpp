// The bounded generator grammar of the schedule synthesizer
// (docs/SYNTHESIS.md).
//
// Candidates are SynthSpecs: an emission order over the kind's shape
// primitives, per-stage pipeline lags, and a leader (stripe) count.
// enumerate_specs walks the whole bounded grammar — every emission-order
// permutation x every lag assignment with chain deltas in
// [0, max_extra_lag] x every leader count that fits the node — keeping
// only specs SynthSpec::validate accepts. mutate_spec applies one random
// edit (bump a lag, swap adjacent stages, halve/double leaders) driven by
// the deterministic sim::Rng, for the local-search pass around the pareto
// frontier.
#pragma once

#include <vector>

#include "han/synth/spec.hpp"
#include "simbase/rng.hpp"

namespace han::synth {

struct GeneratorOptions {
  /// Per-link lag slack above the dependency chain's minimum (0 = only
  /// specs whose consecutive stages share a step where allowed).
  int max_extra_lag = 2;
  /// Leader counts to try (clamped to ppn; duplicates removed).
  std::vector<int> leader_counts{1, 2, 4};
  /// Rail-stripe factors to try (clamped to `rails`; duplicates removed).
  /// Only {1} enumerates on single-rail machines regardless of contents.
  std::vector<int> stripe_factors{1, 2, 4};
  /// The target machine's NIC/rail count (MachineProfile::nics_per_node);
  /// bounds the stripe axis so single-rail grammars are unchanged.
  int rails = 1;
  /// Enumerate over the three-level ladder's chain (sr.mr.ir.ib.mb.sb /
  /// ib.mb.sb, docs/HIERARCHY.md) instead of the flat one. The six-stage
  /// permutation space explodes factorially, so three-level enumeration
  /// keeps the chain-order emission only — mutate_spec still explores
  /// order swaps locally around the frontier.
  bool three_level = false;
};

/// Every valid spec of the bounded grammar, deduplicated, sorted by id.
std::vector<SynthSpec> enumerate_specs(coll::CollKind kind, int ppn,
                                       const GeneratorOptions& opts = {});

/// One random edit of `base` (bump a lag, swap adjacent stages,
/// halve/double leaders, and on multi-rail machines halve/double the
/// rail stripe). The result may be invalid (validate() non-empty) or
/// equal to base — callers filter; determinism comes from the
/// caller-owned rng.
SynthSpec mutate_spec(const SynthSpec& base, sim::Rng& rng, int ppn,
                      int rails = 1);

}  // namespace han::synth

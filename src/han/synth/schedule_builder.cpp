#include "han/synth/schedule_builder.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "han/han_util.hpp"
#include "han/task/stripe.hpp"

namespace han::synth {

namespace {

using coll::CollConfig;
using coll::CollModule;
using coll::Segmenter;
using core::Hierarchy;
using core::HanConfig;
using core::TempBuf;
using core::seg_of;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using task::Level;
using task::Op;
using task::TaskGraph;
using task::effective_sf;
using task::striped_ibcast;
using task::striped_ireduce;

std::shared_ptr<TempBuf> make_temp(TaskGraph& g, bool data_mode,
                                   std::size_t bytes, Datatype t) {
  auto buf = std::make_shared<TempBuf>(data_mode, bytes, t);
  g.keepalive.push_back(buf);
  return buf;
}

/// The intra/mid module of a three-level spec: the copy-in-copy-out p2p
/// module under the zero-copy switchover, else the shared-memory module
/// (task/builders.cpp's ladder_module rule).
CollModule* low_module(core::HanModule& m, const HanConfig& cfg,
                       std::size_t msg_bytes) {
  if (cfg.zcs > 0 && msg_bytes < cfg.zcs) return &m.modules().libnbc();
  return m.intra_module(cfg);
}

// ---------------------------------------------------------------------------
// Three-level specs (mid roles "mr"/"mb", docs/HIERARCHY.md) build on the
// profile-derived ladder: level 0 is the numa domain, level 1 the node
// (the mid family = ranks of one node sharing a level-0 slot), the top the
// cluster. Striping stays node-local: segment i is owned by level-0 rank
// i % k; owners carry the mid stages, the mid slot-0 owners carry the
// inter stages. On a machine whose derived ladder is flat (depth 2, or a
// dead mid) the mid stages vanish and dependencies fall through to the
// nearest emitted stage — the degenerate graphs match the flat spec's.
// ---------------------------------------------------------------------------

TaskGraph build_allreduce_three_level(core::HanModule& m,
                                      const mpi::Comm& comm, int me,
                                      BufView send, BufView recv,
                                      Datatype dtype, ReduceOp op,
                                      const HanConfig& cfg,
                                      const SynthSpec& spec) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const mpi::Comm* midc = hc.depth() >= 3 ? hc.comm(1, me) : nullptr;
  const int me_mid = midc != nullptr ? hc.rank(1, me) : 0;
  const bool has_mid = midc != nullptr && midc->size() > 1;
  const mpi::Comm* up = hc.up(me);
  const int me_up = hc.up_rank(me);
  const bool has_inter = up != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter && !has_mid) {
    // Fully degenerate ladder: mirror the flat builder's single-node path.
    if (has_intra) {
      g.add({Op::Reduce, Level::Intra, low, 0, -1, send.bytes, {},
             [smod, low, me_low, send, recv, dtype, op] {
               return smod->iallreduce(*low, me_low, send, recv, dtype, op,
                                       CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  CollModule* lmod = low_module(m, cfg, send.bytes);
  sim::Engine* eng = &w.engine();
  // The schedule's own stripe axis composes with the tuned one: either can
  // ask for rail striping; effective_sf clamps to the machine's rails.
  const int sfax = std::max(cfg.sf, spec.sf);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const int k = has_intra
                    ? std::max(1, std::min(spec.leaders, low->size()))
                    : 1;
  const bool striped = me_low < k;  // owner of some stripe
  // Two temps keep src and dst disjoint along the ascent: partial holds
  // the level-0 reduction, mpartial the mid reduction the inter stages
  // forward.
  auto partial =
      make_temp(g, w.data_mode() && has_intra && striped, send.bytes, dtype);
  auto mpartial = make_temp(
      g, w.data_mode() && has_mid && has_inter && striped && me_mid == 0,
      send.bytes, dtype);

  std::vector<int> sr_node(u, -1), mr_node(u, -1), ir_node(u, -1),
      ib_node(u, -1), mb_node(u, -1);
  const int last = u - 1 + spec.max_lag();
  for (int t = 0; t <= last; ++t) {
    for (const StageSlot& slot : spec.stages) {
      const int i = t - slot.lag;
      if (i < 0 || i >= u) continue;
      const int owner = i % k;
      if (slot.role == "sr") {
        if (!has_intra) continue;
        const BufView src = seg_of(send, segs, i);
        const BufView dst =
            me_low == owner ? partial->view(segs.offset(i), segs.length(i))
                            : BufView::timing_only(segs.length(i), dtype);
        sr_node[i] =
            g.add({Op::Reduce, Level::Intra, low, t, i, src.bytes, {},
                   [lmod, low, me_low, owner, src, dst, dtype, op] {
                     return lmod->ireduce(*low, me_low, owner, src, dst,
                                          dtype, op, CollConfig{});
                   }});
      } else if (slot.role == "mr") {
        if (!has_mid || me_low != owner) continue;
        const BufView src =
            has_intra ? partial->view(segs.offset(i), segs.length(i))
                      : seg_of(send, segs, i);
        // Without an inter level the mid reduce tops the ladder and lands
        // straight in recv.
        const BufView dst =
            me_mid != 0 ? BufView::timing_only(segs.length(i), dtype)
            : has_inter ? mpartial->view(segs.offset(i), segs.length(i))
                        : seg_of(recv, segs, i);
        std::vector<int> deps;
        if (sr_node[i] >= 0) deps.push_back(sr_node[i]);
        mr_node[i] =
            g.add({Op::Reduce, Level::Mid, midc, t, i, src.bytes,
                   std::move(deps),
                   [lmod, midc, me_mid, src, dst, dtype, op, mcfg] {
                     return lmod->ireduce(*midc, me_mid, /*root=*/0, src,
                                          dst, dtype, op, mcfg);
                   }});
      } else if (slot.role == "ir") {
        if (!has_inter || me_low != owner || me_mid != 0) continue;
        const BufView contrib =
            has_mid   ? mpartial->view(segs.offset(i), segs.length(i))
            : has_intra ? partial->view(segs.offset(i), segs.length(i))
                        : seg_of(send, segs, i);
        const BufView dst = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (mr_node[i] >= 0) {
          deps.push_back(mr_node[i]);
        } else if (sr_node[i] >= 0) {
          deps.push_back(sr_node[i]);
        }
        const int lsf =
            effective_sf(sfax, w.profile(), contrib.bytes, dtype);
        ir_node[i] =
            g.add({Op::Reduce, Level::Inter, up, t, i, contrib.bytes,
                   std::move(deps),
                   [eng, imod, up, me_up, contrib, dst, dtype, op, ircfg,
                    lsf] {
                     return striped_ireduce(*eng, imod, *up, me_up,
                                            /*root=*/0, contrib, dst, dtype,
                                            op, ircfg, lsf);
                   }});
      } else if (slot.role == "ib") {
        if (!has_inter || me_low != owner || me_mid != 0) continue;
        const BufView seg = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (ir_node[i] >= 0) deps.push_back(ir_node[i]);
        const int lsf = effective_sf(sfax, w.profile(), seg.bytes, dtype);
        ib_node[i] =
            g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes,
                   std::move(deps),
                   [eng, imod, up, me_up, seg, dtype, ibcfg, lsf] {
                     return striped_ibcast(*eng, imod, *up, me_up,
                                           /*root=*/0, seg, dtype, ibcfg,
                                           lsf);
                   }});
      } else if (slot.role == "mb") {
        if (!has_mid || me_low != owner) continue;
        const BufView seg = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (ib_node[i] >= 0) {
          deps.push_back(ib_node[i]);
        } else if (!has_inter && mr_node[i] >= 0) {
          // Mid tops the ladder: its bcast returns the total its reduce
          // just formed.
          deps.push_back(mr_node[i]);
        }
        mb_node[i] =
            g.add({Op::Bcast, Level::Mid, midc, t, i, seg.bytes,
                   std::move(deps), [lmod, midc, me_mid, seg, dtype, mcfg] {
                     return lmod->ibcast(*midc, me_mid, /*root=*/0, seg,
                                         dtype, mcfg);
                   }});
      } else {  // sb
        if (!has_intra) continue;
        const BufView seg = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (mb_node[i] >= 0) {
          deps.push_back(mb_node[i]);
        } else if (ib_node[i] >= 0) {
          deps.push_back(ib_node[i]);
        }
        g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes,
               std::move(deps), [lmod, low, me_low, owner, seg, dtype] {
                 return lmod->ibcast(*low, me_low, owner, seg, dtype,
                                     CollConfig{});
               }});
      }
    }
  }
  return g;
}

TaskGraph build_bcast_three_level(core::HanModule& m, const mpi::Comm& comm,
                                  int me, int root, BufView buf,
                                  Datatype dtype, const HanConfig& cfg,
                                  const SynthSpec& spec) {
  TaskGraph g;
  Hierarchy& hc = m.hierarchy(comm);
  const int top = hc.depth() - 1;
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.rank(0, root);
  const bool has_intra = low->size() > 1;
  const mpi::Comm* midc = hc.depth() >= 3 ? hc.comm(1, me) : nullptr;
  const int me_mid = midc != nullptr ? hc.rank(1, me) : 0;
  const int root_mid = midc != nullptr ? hc.rank(1, root) : 0;
  const bool has_mid = midc != nullptr && midc->size() > 1;
  const mpi::Comm* up = hc.up(me);
  const bool has_inter = up != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter && !has_mid) {
    if (has_intra) {
      g.add({Op::Bcast, Level::Intra, low, 0, -1, buf.bytes, {},
             [smod, low, me_low, root_low, buf, dtype] {
               return smod->ibcast(*low, me_low, root_low, buf, dtype,
                                   CollConfig{});
             }});
    }
    return g;
  }

  // The n-level root trick (han/hierarchy.hpp): I run level l's stage iff
  // I hold the root's slot at every level below it; the root index within
  // my family is the root's own level-l rank.
  const bool on_mid = has_mid && hc.same_slots_below(1, me, root);
  const bool on_inter = has_inter && hc.same_slots_below(top, me, root);
  CollModule* imod = m.inter_module(cfg);
  CollModule* lmod = low_module(m, cfg, buf.bytes);
  sim::Engine* eng = &m.world_ref().engine();
  const machine::MachineProfile& prof = m.world_ref().profile();
  const int sfax = std::max(cfg.sf, spec.sf);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const mpi::Comm* upc = up;
  const int me_up = hc.up_rank(me);
  const int root_up = hc.rank(top, root);

  std::vector<int> ib_node(u, -1), mb_node(u, -1);
  const int last = u - 1 + spec.max_lag();
  for (int t = 0; t <= last; ++t) {
    for (const StageSlot& slot : spec.stages) {
      const int i = t - slot.lag;
      if (i < 0 || i >= u) continue;
      const BufView seg = seg_of(buf, segs, i);
      if (slot.role == "ib") {
        if (!on_inter) continue;
        const int lsf = effective_sf(sfax, prof, seg.bytes, dtype);
        ib_node[i] =
            g.add({Op::Bcast, Level::Inter, upc, t, i, seg.bytes, {},
                   [eng, imod, upc, me_up, root_up, seg, dtype, icfg, lsf] {
                     return striped_ibcast(*eng, imod, *upc, me_up, root_up,
                                           seg, dtype, icfg, lsf);
                   }});
      } else if (slot.role == "mb") {
        if (!on_mid) continue;
        std::vector<int> deps;
        if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
        mb_node[i] =
            g.add({Op::Bcast, Level::Mid, midc, t, i, seg.bytes,
                   std::move(deps),
                   [lmod, midc, me_mid, root_mid, seg, dtype, mcfg] {
                     return lmod->ibcast(*midc, me_mid, root_mid, seg,
                                         dtype, mcfg);
                   }});
      } else {  // sb
        if (!has_intra) continue;
        std::vector<int> deps;
        if (mb_node[i] >= 0) {
          deps.push_back(mb_node[i]);
        } else if (ib_node[i] >= 0) {
          deps.push_back(ib_node[i]);
        }
        g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes,
               std::move(deps),
               [lmod, low, me_low, root_low, seg, dtype] {
                 return lmod->ibcast(*low, me_low, root_low, seg, dtype,
                                     CollConfig{});
               }});
      }
    }
  }
  return g;
}

}  // namespace

TaskGraph build_schedule_allreduce(core::HanModule& m, const mpi::Comm& comm,
                                   int me, BufView send, BufView recv,
                                   Datatype dtype, ReduceOp op,
                                   const HanConfig& cfg,
                                   const SynthSpec& spec) {
  if (spec.three_level()) {
    return build_allreduce_three_level(m, comm, me, send, recv, dtype, op,
                                       cfg, spec);
  }
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    // Degenerate hierarchy: the spec's inter stages vanish; mirror
    // task::build_allreduce exactly.
    if (has_intra) {
      g.add({Op::Reduce, Level::Intra, low, 0, -1, send.bytes, {},
             [smod, low, me_low, send, recv, dtype, op] {
               return smod->iallreduce(*low, me_low, send, recv, dtype, op,
                                       CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  sim::Engine* eng = &w.engine();
  const int sfax = std::max(cfg.sf, spec.sf);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  // Stripe count: segment i is owned by local rank i % k; leaders drive
  // ir/ib for their stripe on their own up communicator.
  const int k = has_intra
                    ? std::max(1, std::min(spec.leaders, low->size()))
                    : 1;
  const int leader_idx = me_low < k ? me_low : -1;
  const mpi::Comm* up = hc.up(me);
  const int me_up = hc.up_rank(me);
  auto partial =
      make_temp(g, w.data_mode() && leader_idx >= 0, send.bytes, dtype);

  std::vector<int> sr_node(u, -1), ir_node(u, -1), ib_node(u, -1);
  // Emit step by step, stages in the spec's order — the emission order IS
  // the per-comm FIFO order, and it is identical across ranks for the low
  // comm because every rank walks the same stage list (inter stages are
  // simply skipped by non-owners).
  const int last = u - 1 + spec.max_lag();
  for (int t = 0; t <= last; ++t) {
    for (const StageSlot& slot : spec.stages) {
      const int i = t - slot.lag;
      if (i < 0 || i >= u) continue;
      const int owner = i % k;
      if (slot.role == "sr") {
        if (!has_intra) continue;
        const BufView src = seg_of(send, segs, i);
        const BufView dst =
            me_low == owner ? partial->view(segs.offset(i), segs.length(i))
                            : BufView::timing_only(segs.length(i), dtype);
        sr_node[i] =
            g.add({Op::Reduce, Level::Intra, low, t, i, src.bytes, {},
                   [smod, low, me_low, owner, src, dst, dtype, op] {
                     return smod->ireduce(*low, me_low, owner, src, dst,
                                          dtype, op, CollConfig{});
                   }});
      } else if (slot.role == "ir") {
        if (leader_idx != owner) continue;
        const BufView contrib =
            has_intra ? partial->view(segs.offset(i), segs.length(i))
                      : seg_of(send, segs, i);
        const BufView dst = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (sr_node[i] >= 0) deps.push_back(sr_node[i]);
        const int lsf =
            effective_sf(sfax, w.profile(), contrib.bytes, dtype);
        ir_node[i] =
            g.add({Op::Reduce, Level::Inter, up, t, i, contrib.bytes,
                   std::move(deps),
                   [eng, imod, up, me_up, contrib, dst, dtype, op, ircfg,
                    lsf] {
                     return striped_ireduce(*eng, imod, *up, me_up,
                                            /*root=*/0, contrib, dst, dtype,
                                            op, ircfg, lsf);
                   }});
      } else if (slot.role == "ib") {
        if (leader_idx != owner) continue;
        const BufView seg = seg_of(recv, segs, i);
        const int lsf = effective_sf(sfax, w.profile(), seg.bytes, dtype);
        ib_node[i] =
            g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes,
                   {ir_node[i]},
                   [eng, imod, up, me_up, seg, dtype, ibcfg, lsf] {
                     return striped_ibcast(*eng, imod, *up, me_up,
                                           /*root=*/0, seg, dtype, ibcfg,
                                           lsf);
                   }});
      } else {  // sb
        if (!has_intra) continue;
        const BufView seg = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
        g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes,
               std::move(deps), [smod, low, me_low, owner, seg, dtype] {
                 return smod->ibcast(*low, me_low, owner, seg, dtype,
                                     CollConfig{});
               }});
      }
    }
  }
  return g;
}

TaskGraph build_schedule_bcast(core::HanModule& m, const mpi::Comm& comm,
                               int me, int root, BufView buf, Datatype dtype,
                               const HanConfig& cfg, const SynthSpec& spec) {
  if (spec.three_level()) {
    return build_bcast_three_level(m, comm, me, root, buf, dtype, cfg, spec);
  }
  TaskGraph g;
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      g.add({Op::Bcast, Level::Intra, low, 0, -1, buf.bytes, {},
             [smod, low, me_low, root_low, buf, dtype] {
               return smod->ibcast(*low, me_low, root_low, buf, dtype,
                                   CollConfig{});
             }});
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  sim::Engine* eng = &m.world_ref().engine();
  const machine::MachineProfile& prof = m.world_ref().profile();
  const int sfax = std::max(cfg.sf, spec.sf);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  if (me_low == root_low) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    std::vector<int> ib_node(u, -1);
    const int last = u - 1 + spec.max_lag();
    for (int t = 0; t <= last; ++t) {
      for (const StageSlot& slot : spec.stages) {
        const int i = t - slot.lag;
        if (i < 0 || i >= u) continue;
        const BufView seg = seg_of(buf, segs, i);
        if (slot.role == "ib") {
          const int lsf = effective_sf(sfax, prof, seg.bytes, dtype);
          ib_node[i] =
              g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes, {},
                     [eng, imod, up, me_up, root_up, seg, dtype, icfg,
                      lsf] {
                       return striped_ibcast(*eng, imod, *up, me_up,
                                             root_up, seg, dtype, icfg,
                                             lsf);
                     }});
        } else {  // sb
          if (!has_intra) continue;
          std::vector<int> deps;
          if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
          g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes,
                 std::move(deps),
                 [smod, low, me_low, root_low, seg, dtype] {
                   return smod->ibcast(*low, me_low, root_low, seg, dtype,
                                       CollConfig{});
                 }});
        }
      }
    }
  } else {
    // Followers run the intra stage alone at lag 0 (as in
    // task::build_bcast): the low comm matches collectives by call order,
    // and a follower has no reason to idle behind the leader's lag.
    for (int i = 0; i < u; ++i) {
      const BufView seg = seg_of(buf, segs, i);
      g.add({Op::Bcast, Level::Intra, low, i, i, seg.bytes, {},
             [smod, low, me_low, root_low, seg, dtype] {
               return smod->ibcast(*low, me_low, root_low, seg, dtype,
                                   CollConfig{});
             }});
    }
  }
  return g;
}

}  // namespace han::synth

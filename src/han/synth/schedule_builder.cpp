#include "han/synth/schedule_builder.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "han/han_util.hpp"

namespace han::synth {

namespace {

using coll::CollConfig;
using coll::CollModule;
using coll::Segmenter;
using core::HanComm;
using core::HanConfig;
using core::TempBuf;
using core::seg_of;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;
using task::Level;
using task::Op;
using task::TaskGraph;

std::shared_ptr<TempBuf> make_temp(TaskGraph& g, bool data_mode,
                                   std::size_t bytes, Datatype t) {
  auto buf = std::make_shared<TempBuf>(data_mode, bytes, t);
  g.keepalive.push_back(buf);
  return buf;
}

}  // namespace

TaskGraph build_schedule_allreduce(core::HanModule& m, const mpi::Comm& comm,
                                   int me, BufView send, BufView recv,
                                   Datatype dtype, ReduceOp op,
                                   const HanConfig& cfg,
                                   const SynthSpec& spec) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    // Degenerate hierarchy: the spec's inter stages vanish; mirror
    // task::build_allreduce exactly.
    if (has_intra) {
      g.add({Op::Reduce, Level::Intra, low, 0, -1, send.bytes, {},
             [smod, low, me_low, send, recv, dtype, op] {
               return smod->iallreduce(*low, me_low, send, recv, dtype, op,
                                       CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  // Stripe count: segment i is owned by local rank i % k; leaders drive
  // ir/ib for their stripe on their own up communicator.
  const int k = has_intra
                    ? std::max(1, std::min(spec.leaders, low->size()))
                    : 1;
  const int leader_idx = me_low < k ? me_low : -1;
  const mpi::Comm* up = hc.up(me);
  const int me_up = hc.up_rank(me);
  auto partial =
      make_temp(g, w.data_mode() && leader_idx >= 0, send.bytes, dtype);

  std::vector<int> sr_node(u, -1), ir_node(u, -1), ib_node(u, -1);
  // Emit step by step, stages in the spec's order — the emission order IS
  // the per-comm FIFO order, and it is identical across ranks for the low
  // comm because every rank walks the same stage list (inter stages are
  // simply skipped by non-owners).
  const int last = u - 1 + spec.max_lag();
  for (int t = 0; t <= last; ++t) {
    for (const StageSlot& slot : spec.stages) {
      const int i = t - slot.lag;
      if (i < 0 || i >= u) continue;
      const int owner = i % k;
      if (slot.role == "sr") {
        if (!has_intra) continue;
        const BufView src = seg_of(send, segs, i);
        const BufView dst =
            me_low == owner ? partial->view(segs.offset(i), segs.length(i))
                            : BufView::timing_only(segs.length(i), dtype);
        sr_node[i] =
            g.add({Op::Reduce, Level::Intra, low, t, i, src.bytes, {},
                   [smod, low, me_low, owner, src, dst, dtype, op] {
                     return smod->ireduce(*low, me_low, owner, src, dst,
                                          dtype, op, CollConfig{});
                   }});
      } else if (slot.role == "ir") {
        if (leader_idx != owner) continue;
        const BufView contrib =
            has_intra ? partial->view(segs.offset(i), segs.length(i))
                      : seg_of(send, segs, i);
        const BufView dst = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (sr_node[i] >= 0) deps.push_back(sr_node[i]);
        ir_node[i] =
            g.add({Op::Reduce, Level::Inter, up, t, i, contrib.bytes,
                   std::move(deps),
                   [imod, up, me_up, contrib, dst, dtype, op, ircfg] {
                     return imod->ireduce(*up, me_up, /*root=*/0, contrib,
                                          dst, dtype, op, ircfg);
                   }});
      } else if (slot.role == "ib") {
        if (leader_idx != owner) continue;
        const BufView seg = seg_of(recv, segs, i);
        ib_node[i] =
            g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes,
                   {ir_node[i]},
                   [imod, up, me_up, seg, dtype, ibcfg] {
                     return imod->ibcast(*up, me_up, /*root=*/0, seg, dtype,
                                         ibcfg);
                   }});
      } else {  // sb
        if (!has_intra) continue;
        const BufView seg = seg_of(recv, segs, i);
        std::vector<int> deps;
        if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
        g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes,
               std::move(deps), [smod, low, me_low, owner, seg, dtype] {
                 return smod->ibcast(*low, me_low, owner, seg, dtype,
                                     CollConfig{});
               }});
      }
    }
  }
  return g;
}

TaskGraph build_schedule_bcast(core::HanModule& m, const mpi::Comm& comm,
                               int me, int root, BufView buf, Datatype dtype,
                               const HanConfig& cfg, const SynthSpec& spec) {
  TaskGraph g;
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      g.add({Op::Bcast, Level::Intra, low, 0, -1, buf.bytes, {},
             [smod, low, me_low, root_low, buf, dtype] {
               return smod->ibcast(*low, me_low, root_low, buf, dtype,
                                   CollConfig{});
             }});
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  if (me_low == root_low) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    std::vector<int> ib_node(u, -1);
    const int last = u - 1 + spec.max_lag();
    for (int t = 0; t <= last; ++t) {
      for (const StageSlot& slot : spec.stages) {
        const int i = t - slot.lag;
        if (i < 0 || i >= u) continue;
        const BufView seg = seg_of(buf, segs, i);
        if (slot.role == "ib") {
          ib_node[i] =
              g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes, {},
                     [imod, up, me_up, root_up, seg, dtype, icfg] {
                       return imod->ibcast(*up, me_up, root_up, seg, dtype,
                                           icfg);
                     }});
        } else {  // sb
          if (!has_intra) continue;
          std::vector<int> deps;
          if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
          g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes,
                 std::move(deps),
                 [smod, low, me_low, root_low, seg, dtype] {
                   return smod->ibcast(*low, me_low, root_low, seg, dtype,
                                       CollConfig{});
                 }});
        }
      }
    }
  } else {
    // Followers run the intra stage alone at lag 0 (as in
    // task::build_bcast): the low comm matches collectives by call order,
    // and a follower has no reason to idle behind the leader's lag.
    for (int i = 0; i < u; ++i) {
      const BufView seg = seg_of(buf, segs, i);
      g.add({Op::Bcast, Level::Intra, low, i, i, seg.bytes, {},
             [smod, low, me_low, root_low, seg, dtype] {
               return smod->ibcast(*low, me_low, root_low, seg, dtype,
                                   CollConfig{});
             }});
    }
  }
  return g;
}

}  // namespace han::synth

#include "han/synth/generator.hpp"

#include <algorithm>
#include <string>

namespace han::synth {

namespace {

/// The dependency-chain order of each kind (prerequisite first).
std::vector<std::string> chain_roles(coll::CollKind kind, bool three_level) {
  if (kind == coll::CollKind::Bcast) {
    if (three_level) return {"ib", "mb", "sb"};
    return {"ib", "sb"};
  }
  if (three_level) return {"sr", "mr", "ir", "ib", "mb", "sb"};
  return {"sr", "ir", "ib", "sb"};
}

void push_if_valid(std::vector<SynthSpec>& out, SynthSpec spec) {
  if (spec.validate().empty()) out.push_back(std::move(spec));
}

}  // namespace

std::vector<SynthSpec> enumerate_specs(coll::CollKind kind, int ppn,
                                       const GeneratorOptions& opts) {
  const std::vector<std::string> chain = chain_roles(kind, opts.three_level);
  const int links = static_cast<int>(chain.size()) - 1;
  const int slack = std::max(opts.max_extra_lag, 0);

  // Lag assignments: chain head at 0, each link delta in [0, slack].
  std::vector<std::vector<int>> lag_sets;
  std::vector<int> deltas(links, 0);
  for (;;) {
    std::vector<int> lags(chain.size(), 0);
    for (int l = 0; l < links; ++l) lags[l + 1] = lags[l] + deltas[l];
    lag_sets.push_back(std::move(lags));
    int carry = links - 1;
    while (carry >= 0 && deltas[carry] == slack) deltas[carry--] = 0;
    if (carry < 0) break;
    ++deltas[carry];
  }

  // Leader counts, clamped and deduplicated (bcast is single-leader; the
  // validate() call filters k > 1 there).
  std::vector<int> ks;
  for (int k : opts.leader_counts) {
    const int kk = std::max(1, std::min(k, ppn));
    if (std::find(ks.begin(), ks.end(), kk) == ks.end()) ks.push_back(kk);
  }
  std::sort(ks.begin(), ks.end());

  // Rail-stripe factors, clamped to the machine's rails: a single-rail
  // machine enumerates exactly the pre-rail grammar.
  std::vector<int> sfs;
  for (int s : opts.stripe_factors) {
    const int ss = std::max(1, std::min(s, std::max(1, opts.rails)));
    if (std::find(sfs.begin(), sfs.end(), ss) == sfs.end()) sfs.push_back(ss);
  }
  if (sfs.empty()) sfs.push_back(1);
  std::sort(sfs.begin(), sfs.end());

  std::vector<SynthSpec> out;
  // Emission orders: every permutation of the chain's stages
  // (std::next_permutation over indices; validate() rejects orders that
  // emit a stage before its equal-lag prerequisite). The six-stage
  // three-level chain would permute 720 ways — there only the chain-order
  // emission enumerates, and mutate_spec's adjacent swaps explore order
  // locally around the pareto frontier instead.
  std::vector<int> perm(chain.size());
  for (std::size_t j = 0; j < perm.size(); ++j) perm[j] = static_cast<int>(j);
  std::sort(perm.begin(), perm.end());
  do {
    for (const std::vector<int>& lags : lag_sets) {
      for (int k : ks) {
        for (int s : sfs) {
          SynthSpec spec;
          spec.kind = kind;
          spec.leaders = k;
          spec.sf = s;
          for (int idx : perm) {
            spec.stages.push_back({chain[idx], lags[idx]});
          }
          push_if_valid(out, std::move(spec));
        }
      }
    }
  } while (!opts.three_level &&
           std::next_permutation(perm.begin(), perm.end()));

  std::sort(out.begin(), out.end(),
            [](const SynthSpec& a, const SynthSpec& b) {
              return a.id() < b.id();
            });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SynthSpec mutate_spec(const SynthSpec& base, sim::Rng& rng, int ppn,
                      int rails) {
  SynthSpec spec = base;
  // The rail-stripe move only enters the rotation on multi-rail machines,
  // keeping single-rail mutation sequences identical to the pre-rail ones.
  switch (rng.next_below(rails > 1 ? 4 : 3)) {
    case 0: {  // bump one stage's lag by +-1
      const std::size_t at = rng.next_below(spec.stages.size());
      const int delta = rng.next_below(2) == 0 ? -1 : 1;
      spec.stages[at].lag += delta;
      break;
    }
    case 1: {  // swap two adjacent stages in the emission order
      if (spec.stages.size() >= 2) {
        const std::size_t at = rng.next_below(spec.stages.size() - 1);
        std::swap(spec.stages[at], spec.stages[at + 1]);
      }
      break;
    }
    case 2: {  // halve or double the leader stripe count
      const int k =
          rng.next_below(2) == 0 ? spec.leaders / 2 : spec.leaders * 2;
      spec.leaders = std::max(1, std::min(k, ppn));
      break;
    }
    default: {  // halve or double the rail-stripe factor
      const int s = rng.next_below(2) == 0 ? spec.sf / 2 : spec.sf * 2;
      spec.sf = std::max(1, std::min(s, std::max(1, rails)));
      break;
    }
  }
  return spec;
}

}  // namespace han::synth

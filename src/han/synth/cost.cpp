#include "han/synth/cost.hpp"

#include <algorithm>
#include <vector>

namespace han::synth {

namespace {

int ceil_log2(int n) {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return std::max(bits, 1);
}

/// Replay the parametric builder's emission on the abstract machine and
/// return the makespan. Lane 0 is the shared intra lane; lanes 1..k are
/// the per-leader inter lanes (stripe owner of segment i is i % k).
double walk(const SynthSpec& spec, int u, std::size_t seg_len, int window,
            int k, int nodes, int ppn) {
  // Affine per-task costs in abstract units; the log factor is the tree
  // depth of the level's collective, the byte slopes encode that the
  // inter fabric is the scarcer resource.
  const double intra =
      ppn > 1 ? (1.0 + static_cast<double>(seg_len) / 65536.0) *
                    ceil_log2(ppn)
              : 0.0;
  const double inter = (4.0 + static_cast<double>(seg_len) / 16384.0) *
                       ceil_log2(nodes);

  std::vector<double> lane_free(1 + static_cast<std::size_t>(k), 0.0);
  std::vector<double> fin_sr(u, 0.0), fin_ir(u, 0.0), fin_ib(u, 0.0);
  const int last = u - 1 + spec.max_lag();
  // Frontier gating: a task at step t may start only once every task of
  // steps <= t - window has finished (the TaskScheduler's window rule,
  // conservative against its forward-pump refinement).
  std::vector<double> step_max(static_cast<std::size_t>(last) + 1, 0.0);
  std::vector<double> gate(static_cast<std::size_t>(last) + 1, 0.0);

  double makespan = 0.0;
  for (int t = 0; t <= last; ++t) {
    gate[t] = t > 0 ? std::max(gate[t - 1], step_max[t - 1]) : 0.0;
    for (const StageSlot& slot : spec.stages) {
      const int i = t - slot.lag;
      if (i < 0 || i >= u) continue;
      const bool is_intra = slot.role == "sr" || slot.role == "sb";
      const double cost = is_intra ? intra : inter;
      if (cost == 0.0) continue;  // degenerate level: no task emitted
      const std::size_t lane =
          is_intra ? 0 : 1 + static_cast<std::size_t>(i % k);
      double start = lane_free[lane];
      if (t >= window) start = std::max(start, gate[t - window + 1]);
      if (slot.role == "ir") {
        start = std::max(start, fin_sr[i]);
      } else if (slot.role == "ib") {
        start = std::max(start, fin_ir[i]);
      } else if (slot.role == "sb") {
        start = std::max(start, fin_ib[i]);
      }
      const double fin = start + cost;
      lane_free[lane] = fin;
      if (slot.role == "sr") {
        fin_sr[i] = fin;
      } else if (slot.role == "ir") {
        fin_ir[i] = fin;
      } else if (slot.role == "ib") {
        fin_ib[i] = fin;
      }
      step_max[t] = std::max(step_max[t], fin);
      makespan = std::max(makespan, fin);
    }
  }
  return makespan;
}

}  // namespace

CostPoint symbolic_cost(const SynthSpec& spec, const core::HanConfig& cfg,
                        int nodes, int ppn, std::size_t msg_bytes) {
  const std::size_t m = std::max<std::size_t>(msg_bytes, 1);
  const std::size_t fs = std::max<std::size_t>(cfg.fs, 1);
  const int u = static_cast<int>((m + fs - 1) / fs);
  const std::size_t seg = (m + static_cast<std::size_t>(u) - 1) /
                          static_cast<std::size_t>(u);
  const int k = std::max(1, std::min(spec.leaders, ppn));

  CostPoint c;
  c.lat = walk(spec, std::min(u, 2), seg, cfg.window, k, nodes, ppn);
  c.bw = walk(spec, u, seg, cfg.window, k, nodes, ppn);
  return c;
}

}  // namespace han::synth

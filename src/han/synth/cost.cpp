#include "han/synth/cost.hpp"

#include <algorithm>
#include <vector>

namespace han::synth {

namespace {

int ceil_log2(int n) {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return std::max(bits, 1);
}

/// The universal dependency-chain order; every kind's chain (flat or
/// three-level) is a subsequence. A stage's prerequisite is the nearest
/// earlier element the spec actually contains.
const char* const kChain[] = {"sr", "mr", "ir", "ib", "mb", "sb"};
constexpr int kChainLen = 6;

int chain_pos(const std::string& role) {
  for (int p = 0; p < kChainLen; ++p) {
    if (role == kChain[p]) return p;
  }
  return -1;
}

/// Replay the parametric builder's emission on the abstract machine and
/// return the makespan. Lane 0 is the shared intra lane (sr/sb and — the
/// memory bus serializes them — the mid stages mr/mb); lanes 1..k are the
/// per-leader inter lanes (stripe owner of segment i is i % k).
double walk(const SynthSpec& spec, int u, std::size_t seg_len, int window,
            int k, int nodes, int ppn, int numa, int sf) {
  // Affine per-task costs in abstract units; the log factor is the tree
  // depth of the level's collective, the byte slopes encode that the
  // inter fabric is the scarcer resource and the cross-domain bus sits
  // between it and the intra fabric.
  const double intra =
      ppn > 1 ? (1.0 + static_cast<double>(seg_len) / 65536.0) *
                    ceil_log2(ppn)
              : 0.0;
  // Rail striping moves the slices in parallel on disjoint rails: the
  // byte term divides by sf, the latency term is paid once (all slices
  // launch together). sf = 1 reproduces the pre-rail expression exactly.
  const double inter =
      (4.0 + static_cast<double>(seg_len) / (16384.0 * sf)) *
      ceil_log2(nodes);
  const double mid =
      numa > 1 ? (1.0 + static_cast<double>(seg_len) / 32768.0) *
                     ceil_log2(numa)
               : 0.0;

  // Which chain position each spec stage feeds from (nearest earlier
  // chain element present in the spec; -1 at the chain head).
  bool present[kChainLen] = {};
  for (const StageSlot& slot : spec.stages) {
    const int p = chain_pos(slot.role);
    if (p >= 0) present[p] = true;
  }

  std::vector<double> lane_free(1 + static_cast<std::size_t>(k), 0.0);
  // fin[p][i]: finish time of chain stage p on segment i (0 when the
  // stage is absent or degenerate — dependents then see no constraint,
  // matching the flat walk's behavior for skipped levels).
  std::vector<std::vector<double>> fin(
      kChainLen, std::vector<double>(static_cast<std::size_t>(u), 0.0));
  const int last = u - 1 + spec.max_lag();
  // Frontier gating: a task at step t may start only once every task of
  // steps <= t - window has finished (the TaskScheduler's window rule,
  // conservative against its forward-pump refinement).
  std::vector<double> step_max(static_cast<std::size_t>(last) + 1, 0.0);
  std::vector<double> gate(static_cast<std::size_t>(last) + 1, 0.0);

  double makespan = 0.0;
  for (int t = 0; t <= last; ++t) {
    gate[t] = t > 0 ? std::max(gate[t - 1], step_max[t - 1]) : 0.0;
    for (const StageSlot& slot : spec.stages) {
      const int i = t - slot.lag;
      if (i < 0 || i >= u) continue;
      const int p = chain_pos(slot.role);
      const bool is_intra = slot.role == "sr" || slot.role == "sb";
      const bool is_mid = slot.role == "mr" || slot.role == "mb";
      const double cost = is_intra ? intra : is_mid ? mid : inter;
      if (cost == 0.0) continue;  // degenerate level: no task emitted
      const std::size_t lane =
          is_intra || is_mid ? 0 : 1 + static_cast<std::size_t>(i % k);
      double start = lane_free[lane];
      if (t >= window) start = std::max(start, gate[t - window + 1]);
      for (int q = p - 1; q >= 0; --q) {
        if (present[q]) {
          start = std::max(start, fin[q][i]);
          break;
        }
      }
      const double done = start + cost;
      lane_free[lane] = done;
      fin[p][i] = done;
      step_max[t] = std::max(step_max[t], done);
      makespan = std::max(makespan, done);
    }
  }
  return makespan;
}

}  // namespace

CostPoint symbolic_cost(const SynthSpec& spec, const core::HanConfig& cfg,
                        int nodes, int ppn, std::size_t msg_bytes,
                        int numa, int rails) {
  const std::size_t m = std::max<std::size_t>(msg_bytes, 1);
  const std::size_t fs = std::max<std::size_t>(cfg.fs, 1);
  const int u = static_cast<int>((m + fs - 1) / fs);
  const std::size_t seg = (m + static_cast<std::size_t>(u) - 1) /
                          static_cast<std::size_t>(u);
  const int k = std::max(1, std::min(spec.leaders, ppn));
  const int sf = std::max(1, std::min(spec.sf, std::max(1, rails)));

  CostPoint c;
  c.lat =
      walk(spec, std::min(u, 2), seg, cfg.window, k, nodes, ppn, numa, sf);
  c.bw = walk(spec, u, seg, cfg.window, k, nodes, ppn, numa, sf);
  return c;
}

}  // namespace han::synth

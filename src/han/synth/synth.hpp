// han::synth — bounded, verified schedule synthesis over the TaskGraph IR
// (docs/SYNTHESIS.md).
//
// Pipeline per (collective, message size) case:
//   1. enumerate the generator grammar (generator.hpp) across a small set
//      of base Table II configs, and score every candidate with the
//      symbolic cost walk (cost.hpp);
//   2. prune to the (lat, bw) pareto frontier, then locally mutate the
//      frontier with the deterministic sim::Rng and re-prune;
//   3. gate the survivors through han::verify::analyze_task_graphs — a
//      candidate with ANY finding never reaches execution;
//   4. score the verified finalists (plus the canonical hand-written
//      shape, always included) in the simulator through the ordinary
//      TaskScheduler path, against a baseline of the same base configs
//      dispatched to the hand-written builders;
//   5. persist each case's winner as a first-class LookupTable entry
//      (cfg.sched = the spec id), dispatched by Tuner/DecisionRules
//      exactly like any tuned config.
//
// Everything is deterministic: fixed seeds, sorted candidate orders, a
// simulated fitness oracle, and a byte-stable JSON report (tools/han_synth
// gates CI on it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autotune/lookup.hpp"
#include "han/synth/cost.hpp"
#include "han/synth/generator.hpp"

namespace han::synth {

struct SynthOptions {
  int nodes = 2;
  int ppn = 2;
  /// NUMA domains per node. 1 (the default) keeps the flat machine and
  /// grammar — reports are byte-identical to before the knob existed.
  /// Above 1 the case worlds are NUMA machines (machine::with_numa), the
  /// three-level chain (mr/mb stages, docs/HIERARCHY.md) joins the
  /// enumeration alongside the flat one, and the canonical three-level
  /// ladder shape joins the always-included finalists.
  int numa = 1;
  /// Fabric rails (NICs per node, docs/FABRIC.md). 1 (the default) keeps
  /// reports byte-identical to the pre-rail synthesizer. Above 1 the case
  /// worlds are multi-rail machines (machine::with_rails), the rail-stripe
  /// axis (":r<sf>" ids) joins the enumeration, and the symbolic cost
  /// divides the inter byte term by the stripe.
  int rails = 1;
  std::vector<coll::CollKind> kinds{coll::CollKind::Allreduce,
                                    coll::CollKind::Bcast};
  std::vector<std::size_t> sizes{64 << 10, 1 << 20};
  /// Base Table II axes crossed with every spec (adapt/Binary inter).
  std::vector<std::size_t> fs_sizes{64 << 10, 256 << 10};
  std::vector<int> windows{1, 2};
  std::uint64_t seed = 1;
  int mutation_rounds = 2;
  int mutants_per_round = 16;
  /// Pareto survivors entering the verify gate (and, if clean, the
  /// simulator) per case, beyond the always-included canonical shape.
  int max_finalists = 6;
  GeneratorOptions grammar;
  /// Concurrent (kind, size) case jobs (han::par). Cases already own their
  /// worlds and rng streams, and results merge in input order before the
  /// name sort, so every jobs value produces byte-identical reports
  /// (0 = one job per hardware thread).
  int jobs = 1;
};

struct Candidate {
  core::HanConfig cfg;  // cfg.sched carries the spec id
  SynthSpec spec;
  CostPoint cost;
  bool verified = false;  // passed the gate with zero findings
  int verify_errors = 0;
  int verify_warnings = 0;
  double time = -1.0;  // simulated seconds; -1 = not measured
};

struct SynthCase {
  std::string name;  // e.g. "allreduce.2x2.1M"
  coll::CollKind kind = coll::CollKind::Allreduce;
  std::size_t bytes = 0;
  int explored = 0;  // spec x config candidates costed
  int frontier = 0;  // pareto survivors after mutation
  double baseline = -1.0;  // best hand-written base config, simulated s
  std::string baseline_cfg;
  std::vector<Candidate> finalists;  // gate results, sorted by cfg string
  int winner = -1;                   // index into finalists; -1 = none
};

struct SynthResult {
  SynthOptions opts;
  std::vector<SynthCase> cases;

  /// Verify findings among finalists (CI gates on 0).
  int finalist_findings() const;
  /// Cases whose winner matches or beats the hand-written baseline.
  int wins() const;
  /// Winners as lookup-table entries (kind, nodes, ppn, bytes -> cfg).
  tune::LookupTable winners() const;
  /// Deterministic obs-style report (totals first, sorted cases).
  std::string to_json() const;
};

SynthResult run_synthesis(const SynthOptions& opts = {});

}  // namespace han::synth

// SynthSpec: the serializable identity of a *synthesized* hierarchical
// schedule (docs/SYNTHESIS.md).
//
// HAN's hand-written builders hard-code one point of the schedule space:
// the paper's stage lags (sr0.ir1.ib2.sb3 for allreduce), a single leader,
// and a fixed per-step emission order. A SynthSpec names any point of the
// bounded generator grammar over the same shape primitives
// (task/shapes.hpp): the ordered stage list with per-stage pipeline lags,
// plus a leader (stripe) count. Together with the ordinary Table II knobs
// carried by HanConfig (fs, imod, smod, algorithms, window) it fully
// determines a TaskGraph, built by synth::build_schedule_* — so a
// synthesized schedule can be cached in the autotuner LookupTable and
// dispatched exactly like a tuned configuration (HanConfig::sched).
//
// The id grammar is space-free (HanConfig::to_string tokens are
// space-separated) and versioned:
//
//   allreduce:  ar1:k<leaders>[:r<sf>]:sr<lag>.ir<lag>.ib<lag>.sb<lag>
//   bcast:      bc1:k1[:r<sf>]:ib<lag>.sb<lag>
//
// Three-level schedules (derived NUMA ladders, docs/HIERARCHY.md) add the
// mid roles "mr"/"mb" to the same grammar — the dependency chain grows to
// sr.mr.ir.ib.mb.sb (ib.mb.sb for bcast) whenever either mid role appears.
// Multi-rail schedules (docs/FABRIC.md) add the optional rail-stripe
// group ":r<sf>" after the leader count — each inter stage splits into sf
// rail-pinned slices; the token is omitted at the sf=1 default. Both are
// pure grammar extensions that leave every previously valid id unchanged,
// so kVersion stays 1.
//
// Stage order in the id IS the per-step emission order (it fixes the
// per-comm FIFO order, so it is semantically meaningful — see
// task/shapes.hpp). parse() round-trips id() exactly and rejects any
// malformed or truncated id loudly; validate() holds the semantic rules
// (lag monotonicity along the dependency chain, prerequisite-first order
// for equal lags) that make the built graph well-formed by construction.
#pragma once

#include <string>
#include <vector>

#include "coll/types.hpp"

namespace han::synth {

/// One pipeline stage of a synthesized schedule: the stage role (the
/// shape-primitive names of task/shapes.hpp) and its pipeline lag —
/// segment index at step t is t - lag.
struct StageSlot {
  std::string role;  // "sr" | "ir" | "ib" | "sb" | "mr" | "mb"
  int lag = 0;

  friend bool operator==(const StageSlot&, const StageSlot&) = default;
};

struct SynthSpec {
  /// Schedule ids are versioned; bump when the grammar changes shape.
  static constexpr int kVersion = 1;
  /// Upper bound on any stage lag (keeps ids compact and pipelines sane).
  static constexpr int kMaxLag = 9;
  /// Upper bound on the leader (stripe) count.
  static constexpr int kMaxLeaders = 64;
  /// Upper bound on the rail-stripe factor (NIC counts are small).
  static constexpr int kMaxStripe = 64;

  coll::CollKind kind = coll::CollKind::Allreduce;  // Allreduce | Bcast
  std::vector<StageSlot> stages;  // per-step emission order
  int leaders = 1;                // segment-stripe count k (allreduce)
  int sf = 1;                     // rail-stripe factor of the inter stages
                                  // (clamped to the machine's rails)

  friend bool operator==(const SynthSpec&, const SynthSpec&) = default;

  /// Canonical, parseable identifier (the HanConfig::sched value).
  std::string id() const;

  /// Strict inverse of id(): returns false on any malformed, truncated,
  /// or semantically invalid input (out->* unspecified then). A true
  /// return implies validate().empty().
  static bool parse(const std::string& id, SynthSpec* out);

  /// "" when the spec is well-formed, else a description of the first
  /// defect. Rules: the stage multiset matches the kind (allreduce:
  /// sr/ir/ib/sb once each; bcast: ib/sb once each), lags are in
  /// [0, kMaxLag] and non-decreasing along the dependency chain
  /// (sr <= ir <= ib <= sb; ib <= sb for bcast) with the chain head at
  /// lag 0, a dependency's prerequisite is emitted first when lags are
  /// equal, and leaders is in [1, kMaxLeaders] (1 for bcast).
  std::string validate() const;

  int lag_of(const std::string& role) const;  // -1 when absent
  int max_lag() const;

  /// True when the spec carries a mid stage ("mr"/"mb") — the dependency
  /// chain is then the three-level ladder's (validate() requires the full
  /// mid multiset, so a lone mid role is rejected loudly).
  bool three_level() const;

  /// The paper's hand-written shapes, as specs: allreduce
  /// ar1:k1:sr0.ir1.ib2.sb3 and bcast bc1:k1:sb1.ib0 (these build graphs
  /// structurally identical to task::build_allreduce / task::build_bcast).
  static SynthSpec canonical(coll::CollKind kind);

  /// The derived three-level ladder's shapes (the retired han3 pipelines):
  /// allreduce ar1:k1:sr0.mr1.ir2.ib3.mb4.sb5 and bcast
  /// bc1:k1:ib0.mb1.sb2 — structurally identical to the depth-3 graphs of
  /// task::build_allreduce / task::build_bcast on a NUMA machine.
  static SynthSpec canonical3(coll::CollKind kind);
};

}  // namespace han::synth

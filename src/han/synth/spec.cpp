#include "han/synth/spec.hpp"

#include <algorithm>

namespace han::synth {

namespace {

const char* kind_tag(coll::CollKind kind) {
  switch (kind) {
    case coll::CollKind::Allreduce: return "ar";
    case coll::CollKind::Bcast: return "bc";
    default: return nullptr;
  }
}

bool known_role(const std::string& role) {
  return role == "sr" || role == "ir" || role == "ib" || role == "sb" ||
         role == "mr" || role == "mb";
}

/// The dependency chain of each kind, prerequisite first. A stage's
/// prerequisite is the previous element that the spec actually contains.
/// Specs carrying a mid role use the three-level ladder's chain
/// (docs/HIERARCHY.md).
const std::vector<std::string>& dep_chain(coll::CollKind kind,
                                          bool three_level) {
  static const std::vector<std::string> kAllreduce{"sr", "ir", "ib", "sb"};
  static const std::vector<std::string> kBcast{"ib", "sb"};
  static const std::vector<std::string> kAllreduce3{"sr", "mr", "ir",
                                                    "ib", "mb", "sb"};
  static const std::vector<std::string> kBcast3{"ib", "mb", "sb"};
  if (kind == coll::CollKind::Bcast) return three_level ? kBcast3 : kBcast;
  return three_level ? kAllreduce3 : kAllreduce;
}

/// Parse a non-negative integer at s[pos..]; advances pos past the
/// digits. Returns -1 when no digit is present or the value overflows a
/// small sane bound (lags and leader counts are tiny).
int parse_small_int(const std::string& s, std::size_t* pos) {
  if (*pos >= s.size() || s[*pos] < '0' || s[*pos] > '9') return -1;
  int v = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    v = v * 10 + (s[*pos] - '0');
    if (v > 9999) return -1;
    ++*pos;
  }
  return v;
}

}  // namespace

std::string SynthSpec::id() const {
  std::string out = kind_tag(kind) == nullptr ? "??" : kind_tag(kind);
  out += std::to_string(kVersion);
  out += ":k" + std::to_string(leaders);
  if (sf != 1) out += ":r" + std::to_string(sf);
  out += ":";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out += '.';
    out += stages[i].role + std::to_string(stages[i].lag);
  }
  return out;
}

bool SynthSpec::parse(const std::string& text, SynthSpec* out) {
  SynthSpec spec;
  if (text.size() < 2) return false;
  const std::string tag = text.substr(0, 2);
  if (tag == "ar") {
    spec.kind = coll::CollKind::Allreduce;
  } else if (tag == "bc") {
    spec.kind = coll::CollKind::Bcast;
  } else {
    return false;
  }
  std::size_t pos = 2;
  const int version = parse_small_int(text, &pos);
  if (version != kVersion) return false;
  if (pos + 1 >= text.size() || text[pos] != ':' || text[pos + 1] != 'k') {
    return false;
  }
  pos += 2;
  spec.leaders = parse_small_int(text, &pos);
  if (spec.leaders < 0) return false;
  if (pos >= text.size() || text[pos] != ':') return false;
  ++pos;
  // Optional rail-stripe group ":r<sf>" (omitted at the sf=1 default).
  if (pos < text.size() && text[pos] == 'r' && pos + 1 < text.size() &&
      text[pos + 1] >= '0' && text[pos + 1] <= '9') {
    ++pos;
    spec.sf = parse_small_int(text, &pos);
    if (spec.sf < 0) return false;
    if (pos >= text.size() || text[pos] != ':') return false;
    ++pos;
  }
  // Stage list: role-lag pairs joined by '.'; at least one stage.
  while (true) {
    if (pos + 2 > text.size()) return false;
    StageSlot slot;
    slot.role = text.substr(pos, 2);
    if (!known_role(slot.role)) return false;
    pos += 2;
    slot.lag = parse_small_int(text, &pos);
    if (slot.lag < 0) return false;
    spec.stages.push_back(std::move(slot));
    if (pos == text.size()) break;
    if (text[pos] != '.') return false;
    ++pos;
  }
  if (!spec.validate().empty()) return false;
  *out = std::move(spec);
  return true;
}

int SynthSpec::lag_of(const std::string& role) const {
  for (const StageSlot& s : stages) {
    if (s.role == role) return s.lag;
  }
  return -1;
}

int SynthSpec::max_lag() const {
  int m = 0;
  for (const StageSlot& s : stages) m = std::max(m, s.lag);
  return m;
}

bool SynthSpec::three_level() const {
  for (const StageSlot& s : stages) {
    if (s.role == "mr" || s.role == "mb") return true;
  }
  return false;
}

std::string SynthSpec::validate() const {
  if (kind_tag(kind) == nullptr) {
    return "synth spec: unsupported collective kind";
  }
  const std::vector<std::string>& chain = dep_chain(kind, three_level());
  // Exactly the kind's stage multiset, each role once.
  if (stages.size() != chain.size()) {
    return "synth spec: expected " + std::to_string(chain.size()) +
           " stages, got " + std::to_string(stages.size());
  }
  for (const std::string& role : chain) {
    int count = 0;
    for (const StageSlot& s : stages) count += s.role == role;
    if (count != 1) {
      return "synth spec: stage '" + role + "' must appear exactly once";
    }
  }
  for (const StageSlot& s : stages) {
    if (s.lag < 0 || s.lag > kMaxLag) {
      return "synth spec: stage '" + s.role + "' lag " +
             std::to_string(s.lag) + " outside [0, " +
             std::to_string(kMaxLag) + "]";
    }
  }
  // Lag monotonicity along the dependency chain, head pinned to 0 (a
  // uniform shift only inserts idle steps).
  if (lag_of(chain.front()) != 0) {
    return "synth spec: chain head '" + chain.front() + "' must have lag 0";
  }
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const int prev = lag_of(chain[i - 1]);
    const int cur = lag_of(chain[i]);
    if (cur < prev) {
      return "synth spec: stage '" + chain[i] + "' lag " +
             std::to_string(cur) + " below its prerequisite '" +
             chain[i - 1] + "' lag " + std::to_string(prev);
    }
    if (cur == prev) {
      // Same step: the prerequisite must be emitted first so the builder
      // can reference it as a dependency (and the scheduler's in-step
      // dependency chaining works).
      std::size_t at_prev = 0, at_cur = 0;
      for (std::size_t j = 0; j < stages.size(); ++j) {
        if (stages[j].role == chain[i - 1]) at_prev = j;
        if (stages[j].role == chain[i]) at_cur = j;
      }
      if (at_cur < at_prev) {
        return "synth spec: stage '" + chain[i] +
               "' emitted before its equal-lag prerequisite '" +
               chain[i - 1] + "'";
      }
    }
  }
  if (leaders < 1 || leaders > kMaxLeaders) {
    return "synth spec: leaders " + std::to_string(leaders) +
           " outside [1, " + std::to_string(kMaxLeaders) + "]";
  }
  if (kind == coll::CollKind::Bcast && leaders != 1) {
    return "synth spec: bcast schedules are single-leader";
  }
  if (sf < 1 || sf > kMaxStripe) {
    return "synth spec: rail stripe " + std::to_string(sf) +
           " outside [1, " + std::to_string(kMaxStripe) + "]";
  }
  return "";
}

SynthSpec SynthSpec::canonical(coll::CollKind kind) {
  SynthSpec spec;
  spec.kind = kind;
  spec.leaders = 1;
  if (kind == coll::CollKind::Bcast) {
    // Mirrors task::bcast_shape: sb(t-1) emitted before ib(t).
    spec.stages = {{"sb", 1}, {"ib", 0}};
  } else {
    // Mirrors task::allreduce_shape (paper Fig. 5).
    spec.kind = coll::CollKind::Allreduce;
    spec.stages = {{"sr", 0}, {"ir", 1}, {"ib", 2}, {"sb", 3}};
  }
  return spec;
}

SynthSpec SynthSpec::canonical3(coll::CollKind kind) {
  SynthSpec spec;
  spec.kind = kind;
  spec.leaders = 1;
  if (kind == coll::CollKind::Bcast) {
    // Mirrors task::bcast_ladder_shape at depth 3 (top-down emission).
    spec.stages = {{"ib", 0}, {"mb", 1}, {"sb", 2}};
  } else {
    // Mirrors task::allreduce_ladder_shape at depth 3: reduce stages
    // ascend the ladder, bcast stages descend.
    spec.kind = coll::CollKind::Allreduce;
    spec.stages = {{"sr", 0}, {"mr", 1}, {"ir", 2},
                   {"ib", 3}, {"mb", 4}, {"sb", 5}};
  }
  return spec;
}

}  // namespace han::synth

// Parametric TaskGraph builders for synthesized schedules.
//
// task/builders.cpp hard-codes the paper's shapes; these builders accept
// any validated SynthSpec and emit the corresponding stepped pipeline:
// the spec's stage list (in its emission order, with its lags) for the
// participating ranks, striped over spec.leaders node-local leaders for
// allreduce (segment i is owned by local rank i % k). With
// SynthSpec::canonical the produced graphs are structurally identical to
// task::build_allreduce / task::build_bcast, so dispatching through a
// spec is never a regression.
//
// Flat specs build on the paper's flat 2-level ladder; specs carrying a
// mid stage (SynthSpec::three_level) build on the profile-derived ladder
// (docs/HIERARCHY.md) — on a machine whose derived ladder is flat the mid
// stages degenerate away and the graphs match the flat spec's.
//
// Compiled into han_core (not the han_synth search library): HanModule
// dispatches any HanConfig whose `sched` field names a spec
// (docs/SYNTHESIS.md), whether it came from the synthesizer, a lookup
// table, or a hand-typed config string.
#pragma once

#include "han/han.hpp"
#include "han/synth/spec.hpp"
#include "han/task/graph.hpp"

namespace han::synth {

/// Allreduce from a spec. Degenerate hierarchies (single node) fall back
/// to the same graphs task::build_allreduce emits.
task::TaskGraph build_schedule_allreduce(core::HanModule& m,
                                         const mpi::Comm& comm, int me,
                                         mpi::BufView send, mpi::BufView recv,
                                         mpi::Datatype dtype, mpi::ReduceOp op,
                                         const core::HanConfig& cfg,
                                         const SynthSpec& spec);

/// Bcast from a spec (single-leader; leaders = ranks sharing the root's
/// local rank, as in task::build_bcast).
task::TaskGraph build_schedule_bcast(core::HanModule& m,
                                     const mpi::Comm& comm, int me, int root,
                                     mpi::BufView buf, mpi::Datatype dtype,
                                     const core::HanConfig& cfg,
                                     const SynthSpec& spec);

}  // namespace han::synth

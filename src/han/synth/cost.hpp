// Symbolic pruning costs for schedule synthesis (docs/SYNTHESIS.md).
//
// The synthesizer cannot afford to simulate every candidate, so each
// SynthSpec x HanConfig pair is first walked on an abstract node machine:
// one serial intra lane (the low communicator runs one collective at a
// time) and one serial inter lane per leader stripe (each leader drives
// its own up communicator). Task costs are affine in the segment length,
// scaled by the log-depth of the level's tree — abstract units, only the
// relative ordering matters. The walk replays the exact emission the
// parametric builder performs (same stage order, same lags, same
// dependency chain, same frontier/window gating as the TaskScheduler), in
// the spirit of autotune/costmodel.cpp's step-signature walks: the pruner
// and the builder cannot disagree about structure.
//
// Two points summarize a candidate: `lat` (makespan of a 2-segment
// pipeline — dominated by fill/drain and intra-step dependency chains)
// and `bw` (makespan at full segmentation — steady-state throughput).
// Candidates are pruned to the (lat, bw) pareto frontier; the survivors
// are ranked by the deterministic simulator, never by this model.
#pragma once

#include <cstddef>

#include "han/config.hpp"
#include "han/synth/spec.hpp"

namespace han::synth {

struct CostPoint {
  double lat = 0.0;  // fill-sensitive makespan (u = 2), abstract units
  double bw = 0.0;   // steady-state makespan (u = ceil(m / fs))

  friend bool operator==(const CostPoint&, const CostPoint&) = default;

  /// Strict pareto dominance: at least as good on both axes, better on one.
  bool dominates(const CostPoint& o) const {
    return lat <= o.lat && bw <= o.bw && (lat < o.lat || bw < o.bw);
  }
};

/// Walk one candidate on the abstract machine. `nodes`/`ppn` give the
/// topology; cfg contributes fs (segment count) and window (step gating).
/// `numa` is the NUMA domain count per node: mid stages ("mr"/"mb",
/// docs/HIERARCHY.md) cost a cross-domain hop on the shared intra lane
/// (the memory bus serializes them with sr/sb), and cost nothing when
/// numa <= 1 — a flat walk is byte-identical to before the parameter
/// existed. `rails` is the machine's NIC count: a spec's rail stripe
/// (spec.sf, clamped to rails) divides the inter stages' byte term —
/// slices move in parallel on disjoint rails while the latency term is
/// paid once. At rails = 1 the walk is byte-identical to the pre-rail
/// model.
CostPoint symbolic_cost(const SynthSpec& spec, const core::HanConfig& cfg,
                        int nodes, int ppn, std::size_t msg_bytes,
                        int numa = 1, int rails = 1);

}  // namespace han::synth

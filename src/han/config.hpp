// HanConfig: the autotuned parameter set of a HAN collective operation —
// exactly the output columns of the paper's Table II.
#pragma once

#include <cstddef>
#include <string>

#include "coll/types.hpp"

namespace han::core {

struct HanConfig {
  std::size_t fs = 512 << 10;  // HAN segment size (pipeline granularity)
  std::string imod = "adapt";  // inter-node submodule (libnbc | adapt)
  std::string smod = "sm";     // intra-node submodule (sm | solo)
  coll::Algorithm ibalg = coll::Algorithm::Binary;  // inter bcast algorithm
  coll::Algorithm iralg = coll::Algorithm::Binary;  // inter reduce algorithm
  std::size_t ibs = 0;  // inter bcast segment size (if imod supports it)
  std::size_t irs = 0;  // inter reduce segment size (if imod supports it)
  int window = 1;       // scheduler in-flight step window (1 = lock-step,
                        // the paper's wait-all barrier semantics)
  std::string sched;    // synthesized-schedule id (synth::SynthSpec);
                        // "" = the hand-written builders

  // --- per-level fields (n-level hierarchies, LookupTable format v3) ------
  int lvl = 0;          // hierarchy depth: 0 = derive from the machine's
                        // topology descriptor, 2 = force the flat 2-level
                        // ladder (the paper's shape)
  coll::Algorithm malg = coll::Algorithm::Default;  // mid-level algorithm
  std::size_t ms = 0;   // mid-level segment size (0 = module default)
  std::size_t zcs = 0;  // zero-copy switchover: intra/mid stages of
                        // messages smaller than this use the
                        // copy-in-copy-out p2p module instead of the
                        // shared-memory one (0 = always shared memory)

  // --- multi-rail fields (LookupTable format v4, docs/FABRIC.md) ----------
  int sf = 1;           // inter-node stripe factor: split each inter
                        // send into sf slices, one per fabric rail
                        // (1 = unstriped; clamped to the machine's rails)

  friend bool operator==(const HanConfig&, const HanConfig&) = default;

  std::string to_string() const;

  /// Parse the to_string() form back; returns false on malformed input.
  /// Strict: unknown keys, bad values, unknown imod/smod names, and
  /// malformed or truncated sched ids all fail (never silently fall back
  /// to defaults).
  static bool parse(const std::string& text, HanConfig* out);
};

}  // namespace han::core

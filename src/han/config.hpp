// HanConfig: the autotuned parameter set of a HAN collective operation —
// exactly the output columns of the paper's Table II.
#pragma once

#include <cstddef>
#include <string>

#include "coll/types.hpp"

namespace han::core {

struct HanConfig {
  std::size_t fs = 512 << 10;  // HAN segment size (pipeline granularity)
  std::string imod = "adapt";  // inter-node submodule (libnbc | adapt)
  std::string smod = "sm";     // intra-node submodule (sm | solo)
  coll::Algorithm ibalg = coll::Algorithm::Binary;  // inter bcast algorithm
  coll::Algorithm iralg = coll::Algorithm::Binary;  // inter reduce algorithm
  std::size_t ibs = 0;  // inter bcast segment size (if imod supports it)
  std::size_t irs = 0;  // inter reduce segment size (if imod supports it)
  int window = 1;       // scheduler in-flight step window (1 = lock-step,
                        // the paper's wait-all barrier semantics)
  std::string sched;    // synthesized-schedule id (synth::SynthSpec);
                        // "" = the hand-written builders

  friend bool operator==(const HanConfig&, const HanConfig&) = default;

  std::string to_string() const;

  /// Parse the to_string() form back; returns false on malformed input.
  /// Strict: unknown keys, bad values, unknown imod/smod names, and
  /// malformed or truncated sched ids all fail (never silently fall back
  /// to defaults).
  static bool parse(const std::string& text, HanConfig* out);
};

}  // namespace han::core

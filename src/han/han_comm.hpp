// HanComm: the hierarchical communicator pair (paper §III).
//
// Mirrors Open MPI HAN's low_comm/up_comm construction: the parent
// communicator is split with MPI_Comm_split_type(SHARED) into per-node
// low communicators, and split by local rank into up communicators that
// connect same-local-rank processes across nodes. Rooted operations use
// the up communicator of the root's local rank, so any rank can be the
// root without an extra relay hop.
#pragma once

#include <vector>

#include "simmpi/world.hpp"

namespace han::core {

class HanComm {
 public:
  HanComm(mpi::SimWorld& world, const mpi::Comm& parent);

  const mpi::Comm& parent() const { return *parent_; }

  /// Intra-node communicator of a parent rank.
  const mpi::Comm& low(int parent_rank) const {
    return *low_[parent_rank];
  }

  /// Inter-node communicator joining ranks whose local (low) rank equals
  /// this parent rank's. Null if the cluster has a single node.
  const mpi::Comm* up(int parent_rank) const { return up_[parent_rank]; }

  /// Local (low-comm) rank of a parent rank.
  int low_rank(int parent_rank) const { return low_rank_[parent_rank]; }

  /// Up-comm rank of a parent rank (its node index among nodes hosting
  /// that local rank).
  int up_rank(int parent_rank) const { return up_rank_[parent_rank]; }

  int node_count() const { return node_count_; }
  int max_ppn() const { return max_ppn_; }

  /// The distinct low/up communicators created by this split (owners:
  /// SimWorld). Exposed so the parent comm's destruction can free them.
  const std::vector<mpi::Comm*>& sub_comms() const { return sub_comms_; }

 private:
  const mpi::Comm* parent_;
  std::vector<mpi::Comm*> low_;   // per parent rank
  std::vector<mpi::Comm*> up_;    // per parent rank
  std::vector<int> low_rank_;     // per parent rank
  std::vector<int> up_rank_;      // per parent rank
  std::vector<mpi::Comm*> sub_comms_;  // distinct low/up comms
  int node_count_ = 0;
  int max_ppn_ = 0;
};

}  // namespace han::core

// Small helpers shared by the HAN graph builders (2-level, 3-level, ring):
// segment slicing over a Segmenter and an owning temp buffer that degrades
// to timing-only views when the world carries no payloads.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/builders.hpp"
#include "simmpi/buffer.hpp"

namespace han::core {

inline mpi::BufView seg_of(mpi::BufView buf, const coll::Segmenter& segs,
                           int i) {
  return buf.slice(segs.offset(i), segs.length(i));
}

/// Owning temp buffer usable as BufView slices; empty in timing-only mode.
/// Graph builders park these in TaskGraph::keepalive so the storage
/// outlives the asynchronous execution.
struct TempBuf {
  std::vector<std::byte> storage;
  mpi::Datatype dtype = mpi::Datatype::Byte;

  TempBuf(bool data_mode, std::size_t bytes, mpi::Datatype t) : dtype(t) {
    if (data_mode) storage.resize(bytes);
  }
  mpi::BufView view(std::size_t off, std::size_t len) {
    if (storage.empty()) return mpi::BufView::timing_only(len, dtype);
    return mpi::BufView{storage.data() + off, len, dtype};
  }
};

}  // namespace han::core

// Declarative TaskGraph builders for the HAN collectives.
//
// Each builder returns the calling rank's task graph for one collective
// operation — the graph the TaskScheduler executes and (structurally) the
// one the cost model walks. An empty graph means the operation is a local
// no-op; any required send→recv copy has already been performed by the
// builder (matching the seed programs' synchronous degenerate paths).
#pragma once

#include "han/han3.hpp"
#include "han/task/graph.hpp"

namespace han::task {

TaskGraph build_bcast(core::HanModule& m, const mpi::Comm& comm, int me,
                      int root, mpi::BufView buf, mpi::Datatype dtype,
                      const core::HanConfig& cfg);

TaskGraph build_reduce(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const core::HanConfig& cfg);

TaskGraph build_allreduce(core::HanModule& m, const mpi::Comm& comm, int me,
                          mpi::BufView send, mpi::BufView recv,
                          mpi::Datatype dtype, mpi::ReduceOp op,
                          const core::HanConfig& cfg);

/// Non-degenerate multi-leader allreduce (has_inter && has_intra && k > 1;
/// the degenerate shapes delegate to build_allreduce in han.cpp).
TaskGraph build_allreduce_multileader(core::HanModule& m,
                                      const mpi::Comm& comm, int me,
                                      mpi::BufView send, mpi::BufView recv,
                                      mpi::Datatype dtype, mpi::ReduceOp op,
                                      const core::HanConfig& cfg, int k);

TaskGraph build_reduce_scatter(core::HanModule& m, const mpi::Comm& comm,
                               int me, mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype, mpi::ReduceOp op,
                               const core::HanConfig& cfg);

TaskGraph build_gather(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, mpi::BufView send, mpi::BufView recv,
                       const core::HanConfig& cfg);

TaskGraph build_scatter(core::HanModule& m, const mpi::Comm& comm, int me,
                        int root, mpi::BufView send, mpi::BufView recv,
                        const core::HanConfig& cfg);

TaskGraph build_allgather(core::HanModule& m, const mpi::Comm& comm, int me,
                          mpi::BufView send, mpi::BufView recv,
                          const core::HanConfig& cfg);

TaskGraph build_barrier(core::HanModule& m, const mpi::Comm& comm, int me);

TaskGraph build_bcast3(core::HanModule& m, core::Han3::Comm3& c3, int me,
                       mpi::BufView buf, mpi::Datatype dtype,
                       const core::HanConfig& cfg);

TaskGraph build_allreduce3(core::HanModule& m, core::Han3::Comm3& c3, int me,
                           mpi::BufView send, mpi::BufView recv,
                           mpi::Datatype dtype, mpi::ReduceOp op,
                           const core::HanConfig& cfg);

}  // namespace han::task

// Declarative TaskGraph builders for the HAN collectives.
//
// Each builder returns the calling rank's task graph for one collective
// operation — the graph the TaskScheduler executes and (structurally) the
// one the cost model walks. An empty graph means the operation is a local
// no-op; any required send→recv copy has already been performed by the
// builder (matching the seed programs' synchronous degenerate paths).
//
// Bcast, reduce and allreduce are level-recursive: they resolve the
// communicator ladder derived from the machine's topology descriptor
// (hierarchy.hpp) and emit one pipeline stage per live level, so a flat
// machine gets the paper's 2-level shapes bit-identically and a NUMA
// machine gets the 3-level ladder that used to live in han3.cpp.
#pragma once

#include "han/han.hpp"
#include "han/task/graph.hpp"

namespace han::task {

TaskGraph build_bcast(core::HanModule& m, const mpi::Comm& comm, int me,
                      int root, mpi::BufView buf, mpi::Datatype dtype,
                      const core::HanConfig& cfg);

TaskGraph build_reduce(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const core::HanConfig& cfg);

TaskGraph build_allreduce(core::HanModule& m, const mpi::Comm& comm, int me,
                          mpi::BufView send, mpi::BufView recv,
                          mpi::Datatype dtype, mpi::ReduceOp op,
                          const core::HanConfig& cfg);

/// Non-degenerate multi-leader allreduce (has_inter && has_intra && k > 1;
/// the degenerate shapes delegate to build_allreduce in han.cpp).
TaskGraph build_allreduce_multileader(core::HanModule& m,
                                      const mpi::Comm& comm, int me,
                                      mpi::BufView send, mpi::BufView recv,
                                      mpi::Datatype dtype, mpi::ReduceOp op,
                                      const core::HanConfig& cfg, int k);

TaskGraph build_reduce_scatter(core::HanModule& m, const mpi::Comm& comm,
                               int me, mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype, mpi::ReduceOp op,
                               const core::HanConfig& cfg);

TaskGraph build_gather(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, mpi::BufView send, mpi::BufView recv,
                       const core::HanConfig& cfg);

TaskGraph build_scatter(core::HanModule& m, const mpi::Comm& comm, int me,
                        int root, mpi::BufView send, mpi::BufView recv,
                        const core::HanConfig& cfg);

TaskGraph build_allgather(core::HanModule& m, const mpi::Comm& comm, int me,
                          mpi::BufView send, mpi::BufView recv,
                          const core::HanConfig& cfg);

TaskGraph build_barrier(core::HanModule& m, const mpi::Comm& comm, int me);

}  // namespace han::task

#include "han/task/builders.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "han/han_util.hpp"
#include "han/hierarchy.hpp"
#include "han/task/shapes.hpp"
#include "han/task/stripe.hpp"

namespace han::task {

namespace {

using coll::CollConfig;
using coll::CollModule;
using coll::Segmenter;
using core::HanConfig;
using core::Hierarchy;
using core::TempBuf;
using core::seg_of;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;

std::shared_ptr<TempBuf> make_temp(TaskGraph& g, bool data_mode,
                                   std::size_t bytes, Datatype t) {
  auto buf = std::make_shared<TempBuf>(data_mode, bytes, t);
  g.keepalive.push_back(buf);
  return buf;
}

// ---------------------------------------------------------------------------
// Ladder resolution: the per-operation view of a Hierarchy.
// ---------------------------------------------------------------------------

/// One rooted operation's resolved ladder: globally degenerate levels
/// collapsed away, per-rank comms/ranks/roots/enables settled.
struct Ladder {
  std::vector<const mpi::Comm*> comm;  // my level family
  std::vector<int> rank;               // my rank within it
  std::vector<int> root;               // the op root's rank within its family
  std::vector<Level> level;            // Intra / Mid / Inter task level
  std::vector<bool> member;            // I hold the root's slots below this
  std::vector<bool> enabled;           // member && my family moves data
  bool flat2 = false;                  // the canonical intra+inter ladder
  int de() const { return static_cast<int>(comm.size()); }
};

/// Does any family at level l have more than one member (i.e. can data
/// move across this level anywhere in the world)?
bool level_live(const Hierarchy& h, int l) {
  for (int pr = 0; pr < h.parent().size(); ++pr) {
    const mpi::Comm* c = h.comm(l, pr);
    if (c != nullptr && c->size() > 1) return true;
  }
  return false;
}

Ladder make_ladder(const Hierarchy& h, int me, int root) {
  const int d = h.depth();
  // Dead outermost levels collapse away first — exactly HanComm's
  // single-node up-nulling, applied from the top down.
  int top = d - 1;
  while (top > 0 && !level_live(h, top)) --top;
  std::vector<int> keep;
  if (top > 0 || level_live(h, 0)) {
    for (int l = 0; l <= top; ++l) keep.push_back(l);
  }
  // Below the top, a dead level is spliced out while the ladder is deeper
  // than the canonical 2: a deep descriptor on a machine without the
  // matching domains collapses to the flat pipeline instead of pushing
  // lag-chain bubbles (or null-comm tasks) through the schedule. At depth
  // 2 the dead level keeps its disabled lag slot, preserving the seed's
  // exact 2-level shapes.
  while (static_cast<int>(keep.size()) > 2) {
    bool spliced = false;
    for (std::size_t i = 0; i + 1 < keep.size(); ++i) {
      if (!level_live(h, keep[i])) {
        keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(i));
        spliced = true;
        break;
      }
    }
    if (!spliced) break;
  }

  Ladder lad;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const int l = keep[i];
    const mpi::Comm* c = h.comm(l, me);
    lad.comm.push_back(c);
    lad.rank.push_back(h.rank(l, me));
    lad.root.push_back(h.rank(l, root));
    lad.level.push_back(h.level_name(l) == "cluster" ? Level::Inter
                        : i == 0                     ? Level::Intra
                                                     : Level::Mid);
    // The n-level root trick: I run level l's operation iff I hold the
    // root's slot at every level below it (HanComm's root_low_rank test,
    // generalized). Spliced levels have trivial all-zero slots, so the
    // original level index is the right one to compare at.
    lad.member.push_back(h.same_slots_below(l, me, root));
    lad.enabled.push_back(lad.member.back() && c != nullptr && c->size() > 1);
  }
  lad.flat2 = lad.de() == 2 && lad.level[0] == Level::Intra &&
              lad.level[1] == Level::Inter;
  return lad;
}

/// The module running level l's stage: the inter level uses cfg.imod; the
/// intra/mid levels use cfg.smod, or the copy-in-copy-out p2p module when
/// the whole message sits under the zero-copy switchover cfg.zcs.
CollModule* ladder_module(core::HanModule& m, const Ladder& lad, int l,
                          const HanConfig& cfg, std::size_t msg_bytes) {
  if (lad.level[l] == Level::Inter) return m.inter_module(cfg);
  if (cfg.zcs > 0 && msg_bytes < cfg.zcs) return &m.modules().libnbc();
  return m.intra_module(cfg);
}

}  // namespace

// ---------------------------------------------------------------------------
// Bcast (paper Fig. 1, generalized): the top level runs ib(t); each lower
// level re-broadcasts one segment behind the level above; level 0 delivers
// with sb. On the canonical flat ladder this is exactly the seed's leader
// ib(0), sbib(1..u-1), sb(u-1) / follower sb(0..u-1) pair.
// ---------------------------------------------------------------------------

TaskGraph build_bcast(core::HanModule& m, const mpi::Comm& comm, int me,
                      int root, BufView buf, Datatype dtype,
                      const HanConfig& cfg) {
  TaskGraph g;
  Hierarchy& h = m.ladder_for(comm, cfg);
  const Ladder lad = make_ladder(h, me, root);
  const int de = lad.de();

  if (de == 0) return g;  // single rank: nothing to move
  if (de == 1) {
    // Ladder collapsed to one intra level: a single unsegmented operation
    // (the seed's single-node path).
    if (lad.enabled[0]) {
      CollModule* mod = ladder_module(m, lad, 0, cfg, buf.bytes);
      const mpi::Comm* low = lad.comm[0];
      const int me_l = lad.rank[0], root_l = lad.root[0];
      g.add({Op::Bcast, lad.level[0], low, 0, -1, buf.bytes, {},
             [mod, low, me_l, root_l, buf, dtype] {
               return mod->ibcast(*low, me_l, root_l, buf, dtype,
                                  CollConfig{});
             }});
    }
    return g;
  }

  sim::Engine* eng = &m.world_ref().engine();
  const machine::MachineProfile& prof = m.world_ref().profile();
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  // Non-members of the root's inter family keep the seed's dedicated
  // lag-0 follower shape on the flat ladder; deeper ladders share one
  // shape whose per-rank enables encode every role.
  const std::vector<StageSpec> shape =
      lad.flat2 && !lad.member[1] ? bcast_follower_shape()
                                  : bcast_ladder_shape(lad.level, lad.enabled);
  std::vector<std::vector<int>> bc(de, std::vector<int>(u, -1));
  for_each_task(shape, u, [&](int t, const StageSpec& s, int i) {
    const int l = s.tier;
    const BufView seg = seg_of(buf, segs, i);
    const mpi::Comm* c = lad.comm[l];
    const int me_l = lad.rank[l], root_l = lad.root[l];
    CollModule* mod = ladder_module(m, lad, l, cfg, buf.bytes);
    const CollConfig lcfg = lad.level[l] == Level::Inter ? icfg
                            : l == 0                     ? CollConfig{}
                                                         : mcfg;
    // A level's bcast waits for the segment to arrive from the nearest
    // level above that delivered it.
    std::vector<int> deps;
    for (int j = l + 1; j < de && deps.empty(); ++j) {
      if (bc[j][i] >= 0) deps.push_back(bc[j][i]);
    }
    const int lsf = lad.level[l] == Level::Inter
                        ? effective_sf(cfg.sf, prof, seg.bytes, dtype)
                        : 1;
    bc[l][i] = g.add({s.op, s.level, c, t, i, seg.bytes, std::move(deps),
                      [eng, mod, c, me_l, root_l, seg, dtype, lcfg, lsf] {
                        return striped_ibcast(*eng, mod, *c, me_l, root_l,
                                              seg, dtype, lcfg, lsf);
                      }});
  });
  return g;
}

// ---------------------------------------------------------------------------
// Reduce: the mirror ladder — each level reduces into a per-level partial
// one segment ahead of the level above (the rooted prefix of Fig. 5).
// ---------------------------------------------------------------------------

TaskGraph build_reduce(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, BufView send, BufView recv, Datatype dtype,
                       ReduceOp op, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& h = m.ladder_for(comm, cfg);
  const Ladder lad = make_ladder(h, me, root);
  const int de = lad.de();

  if (de == 0) {
    if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }
  if (de == 1) {
    if (lad.enabled[0]) {
      CollModule* mod = ladder_module(m, lad, 0, cfg, send.bytes);
      const mpi::Comm* low = lad.comm[0];
      const int me_l = lad.rank[0], root_l = lad.root[0];
      g.add({Op::Reduce, lad.level[0], low, 0, -1, send.bytes, {},
             [mod, low, me_l, root_l, send, recv, dtype, op] {
               return mod->ireduce(*low, me_l, root_l, send, recv, dtype, op,
                                   CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  sim::Engine* eng = &w.engine();
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();

  // Per-level partials: level l reduces into part[l], which the next level
  // up forwards (han3's leaf_part/node_part, generalized). Only ranks that
  // participate at level l+1 hold real data in part[l].
  std::vector<std::shared_ptr<TempBuf>> part(
      static_cast<std::size_t>(de - 1));
  for (int l = 0; l + 1 < de; ++l) {
    part[static_cast<std::size_t>(l)] =
        make_temp(g, w.data_mode() && lad.member[l + 1], send.bytes, dtype);
  }

  std::vector<std::vector<int>> red(de, std::vector<int>(u, -1));
  for_each_task(
      reduce_ladder_shape(lad.level, lad.enabled), u,
      [&](int t, const StageSpec& s, int i) {
        const int l = s.tier;
        const mpi::Comm* c = lad.comm[l];
        const int me_l = lad.rank[l], root_l = lad.root[l];
        CollModule* mod = ladder_module(m, lad, l, cfg, send.bytes);
        const CollConfig lcfg = lad.level[l] == Level::Inter ? ircfg
                                : l == 0                     ? CollConfig{}
                                                             : mcfg;
        // Contribution: the deepest live lower level's partial, else my
        // own send segment.
        BufView src = seg_of(send, segs, i);
        for (int j = l - 1; j >= 0; --j) {
          if (lad.enabled[j]) {
            src = part[static_cast<std::size_t>(j)]->view(segs.offset(i),
                                                          segs.length(i));
            break;
          }
        }
        const BufView dst =
            l == de - 1 ? seg_of(recv, segs, i)
            : lad.member[l + 1]
                ? part[static_cast<std::size_t>(l)]->view(segs.offset(i),
                                                          segs.length(i))
                : BufView::timing_only(segs.length(i), dtype);
        std::vector<int> deps;
        for (int j = l - 1; j >= 0 && deps.empty(); --j) {
          if (red[j][i] >= 0) deps.push_back(red[j][i]);
        }
        const int lsf = lad.level[l] == Level::Inter
                            ? effective_sf(cfg.sf, w.profile(), src.bytes,
                                           dtype)
                            : 1;
        red[l][i] = g.add({s.op, s.level, c, t, i, src.bytes,
                           std::move(deps),
                           [eng, mod, c, me_l, root_l, src, dst, dtype, op,
                            lcfg, lsf] {
                             return striped_ireduce(*eng, mod, *c, me_l,
                                                    root_l, src, dst, dtype,
                                                    op, lcfg, lsf);
                           }});
      });
  return g;
}

// ---------------------------------------------------------------------------
// Allreduce (paper Fig. 5, generalized): the reduce ladder ascends to the
// top, then the bcast ladder descends — 2d stages over d live levels. On
// the flat ladder this is exactly the paper's 4-stage sr → ir → ib → sb
// pipeline; at depth 3 it is the retired allreduce3 bit for bit.
// ---------------------------------------------------------------------------

TaskGraph build_allreduce(core::HanModule& m, const mpi::Comm& comm, int me,
                          BufView send, BufView recv, Datatype dtype,
                          ReduceOp op, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& h = m.ladder_for(comm, cfg);
  // No user root: the slot-0 leader chain carries the upper levels.
  const Ladder lad = make_ladder(h, me, /*root=*/0);
  const int de = lad.de();

  if (de == 0) {
    if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }
  if (de == 1) {
    if (lad.enabled[0]) {
      CollModule* mod = ladder_module(m, lad, 0, cfg, send.bytes);
      const mpi::Comm* low = lad.comm[0];
      const int me_l = lad.rank[0];
      g.add({Op::Reduce, lad.level[0], low, 0, -1, send.bytes, {},
             [mod, low, me_l, send, recv, dtype, op] {
               return mod->iallreduce(*low, me_l, send, recv, dtype, op,
                                      CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  // Paper §III-B: the inter reduce and bcast share algorithm and root to
  // maximize the opposite-direction overlap on the full-duplex network.
  sim::Engine* eng = &w.engine();
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();

  std::vector<std::shared_ptr<TempBuf>> part(
      static_cast<std::size_t>(de - 1));
  for (int l = 0; l + 1 < de; ++l) {
    part[static_cast<std::size_t>(l)] =
        make_temp(g, w.data_mode() && lad.member[l + 1], send.bytes, dtype);
  }

  std::vector<std::vector<int>> red(de, std::vector<int>(u, -1));
  std::vector<std::vector<int>> bc(de, std::vector<int>(u, -1));
  for_each_task(
      allreduce_ladder_shape(lad.level, lad.enabled), u,
      [&](int t, const StageSpec& s, int i) {
        const int l = s.tier;
        const mpi::Comm* c = lad.comm[l];
        const int me_l = lad.rank[l];
        CollModule* mod = ladder_module(m, lad, l, cfg, send.bytes);
        if (s.op == Op::Reduce) {
          const CollConfig lcfg = lad.level[l] == Level::Inter ? ircfg
                                  : l == 0                     ? CollConfig{}
                                                               : mcfg;
          BufView src = seg_of(send, segs, i);
          for (int j = l - 1; j >= 0; --j) {
            if (lad.enabled[j]) {
              src = part[static_cast<std::size_t>(j)]->view(segs.offset(i),
                                                            segs.length(i));
              break;
            }
          }
          const BufView dst =
              l == de - 1 ? seg_of(recv, segs, i)
              : lad.member[l + 1]
                  ? part[static_cast<std::size_t>(l)]->view(segs.offset(i),
                                                            segs.length(i))
                  : BufView::timing_only(segs.length(i), dtype);
          std::vector<int> deps;
          for (int j = l - 1; j >= 0 && deps.empty(); --j) {
            if (red[j][i] >= 0) deps.push_back(red[j][i]);
          }
          const int lsf = lad.level[l] == Level::Inter
                              ? effective_sf(cfg.sf, w.profile(), src.bytes,
                                             dtype)
                              : 1;
          red[l][i] = g.add({s.op, s.level, c, t, i, src.bytes,
                             std::move(deps),
                             [eng, mod, c, me_l, src, dst, dtype, op, lcfg,
                              lsf] {
                               return striped_ireduce(*eng, mod, *c, me_l,
                                                      /*root=*/0, src, dst,
                                                      dtype, op, lcfg, lsf);
                             }});
        } else {  // the descending bcast half
          const CollConfig lcfg = lad.level[l] == Level::Inter ? ibcfg
                                  : l == 0                     ? CollConfig{}
                                                               : mcfg;
          const BufView seg = seg_of(recv, segs, i);
          std::vector<int> deps;
          if (l == de - 1) {
            // The top bcast returns the total the top reduce just formed.
            if (red[l][i] >= 0) deps.push_back(red[l][i]);
          } else {
            for (int j = l + 1; j < de && deps.empty(); ++j) {
              if (bc[j][i] >= 0) deps.push_back(bc[j][i]);
            }
          }
          const int lsf = lad.level[l] == Level::Inter
                              ? effective_sf(cfg.sf, w.profile(), seg.bytes,
                                             dtype)
                              : 1;
          bc[l][i] = g.add({s.op, s.level, c, t, i, seg.bytes,
                            std::move(deps),
                            [eng, mod, c, me_l, seg, dtype, lcfg, lsf] {
                              return striped_ibcast(*eng, mod, *c, me_l,
                                                    /*root=*/0, seg, dtype,
                                                    lcfg, lsf);
                            }});
        }
      });
  return g;
}

// ---------------------------------------------------------------------------
// Multi-leader allreduce: stripe the segment pipeline across k node-local
// leaders, each driving its own up communicator. Stripe j = segments with
// i % k == j; every rank participates in all sr/sb (consistent low-comm
// call order); leader j additionally drives ir/ib for its stripe.
// ---------------------------------------------------------------------------

TaskGraph build_allreduce_multileader(core::HanModule& m,
                                      const mpi::Comm& comm, int me,
                                      BufView send, BufView recv,
                                      Datatype dtype, ReduceOp op,
                                      const HanConfig& cfg, int k) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  CollModule* imod = m.inter_module(cfg);
  CollModule* smod = m.intra_module(cfg);
  sim::Engine* eng = &w.engine();
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const int leader_idx = me_low < k ? me_low : -1;
  auto partial =
      make_temp(g, w.data_mode() && leader_idx >= 0, send.bytes, dtype);
  const mpi::Comm* up = hc.up(me);
  const int me_up = hc.up_rank(me);

  std::vector<int> sr_node(u, -1), ir_node(u, -1), ib_node(u, -1);
  for (int t = 0; t <= u + 2; ++t) {
    if (t <= u - 1) {
      const int owner = t % k;
      const BufView src = seg_of(send, segs, t);
      const BufView dst =
          me_low == owner ? partial->view(segs.offset(t), segs.length(t))
                          : BufView::timing_only(segs.length(t), dtype);
      sr_node[t] =
          g.add({Op::Reduce, Level::Intra, low, t, t, src.bytes, {},
                 [smod, low, me_low, owner, src, dst, dtype, op] {
                   return smod->ireduce(*low, me_low, owner, src, dst, dtype,
                                        op, CollConfig{});
                 }});
    }
    if (leader_idx >= 0 && t >= 1 && t - 1 <= u - 1 &&
        (t - 1) % k == leader_idx) {
      const int i = t - 1;
      const BufView contrib = partial->view(segs.offset(i), segs.length(i));
      const BufView dst = seg_of(recv, segs, i);
      const int lsf = effective_sf(cfg.sf, w.profile(), contrib.bytes, dtype);
      ir_node[i] =
          g.add({Op::Reduce, Level::Inter, up, t, i, contrib.bytes,
                 {sr_node[i]},
                 [eng, imod, up, me_up, contrib, dst, dtype, op, ircfg,
                  lsf] {
                   return striped_ireduce(*eng, imod, *up, me_up, /*root=*/0,
                                          contrib, dst, dtype, op, ircfg,
                                          lsf);
                 }});
    }
    if (leader_idx >= 0 && t >= 2 && t - 2 <= u - 1 &&
        (t - 2) % k == leader_idx) {
      const int i = t - 2;
      const BufView seg = seg_of(recv, segs, i);
      const int lsf = effective_sf(cfg.sf, w.profile(), seg.bytes, dtype);
      ib_node[i] = g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes,
                          {ir_node[i]},
                          [eng, imod, up, me_up, seg, dtype, ibcfg, lsf] {
                            return striped_ibcast(*eng, imod, *up, me_up,
                                                  /*root=*/0, seg, dtype,
                                                  ibcfg, lsf);
                          }});
    }
    if (t >= 3 && t - 3 <= u - 1) {
      const int i = t - 3;
      const int owner = i % k;
      const BufView seg = seg_of(recv, segs, i);
      std::vector<int> deps;
      if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
      g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes, std::move(deps),
             [smod, low, me_low, owner, seg, dtype] {
               return smod->ibcast(*low, me_low, owner, seg, dtype,
                                   CollConfig{});
             }});
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Reduce-scatter (equal blocks): sr pipeline → inter ring-or-tree → ss.
// The ring path is dependency-driven (all nodes at step 0): slice k's
// strided inter-node ring overlaps slice k+1's intra reduces, exactly the
// seed's issue-without-await structure, which step barriers cannot express.
// ---------------------------------------------------------------------------

TaskGraph build_reduce_scatter(core::HanModule& m, const mpi::Comm& comm,
                               int me, BufView send, BufView recv,
                               Datatype dtype, ReduceOp op,
                               const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t total = send.bytes;
  CollModule* smod = m.intra_module(cfg);
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    if (has_intra) {
      // Single node: reduce to the leader, then scatter the blocks back.
      auto full = make_temp(g, w.data_mode() && me_low == 0, total, dtype);
      const BufView fullv = full->view(0, total);
      const int red =
          g.add({Op::Reduce, Level::Intra, low, 0, -1, total, {},
                 [smod, low, me_low, send, fullv, dtype, op] {
                   return smod->ireduce(*low, me_low, /*root=*/0, send,
                                        fullv, dtype, op, CollConfig{});
                 }});
      g.add({Op::Scatter, Level::Intra, low, 1, -1, total, {red},
             [libnbc, low, me_low, fullv, recv] {
               return libnbc->iscatter(*low, me_low, /*root=*/0, fullv, recv,
                                       CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const std::size_t region = recv.bytes * low->size();  // this node's slice
  const Segmenter segs(total, cfg.fs, dtype);
  const int u = segs.count();
  const bool leader = me_low == 0;
  const bool ring = cfg.imod == "ring";

  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    auto partial = make_temp(g, w.data_mode() && has_intra, total, dtype);
    auto node_region =
        make_temp(g, w.data_mode() && has_intra, region, dtype);
    // Without an intra level the node's region is the caller's block.
    const BufView region_buf =
        has_intra ? node_region->view(0, region) : recv;
    int inter_last = -1;  // node delivering this node's region

    if (ring) {
      const CollConfig ircfg{coll::Algorithm::Ring, cfg.irs};
      if (has_intra) {
        coll::RingModule* rmod = &m.modules().ring();
        const int nodes = hc.node_count();
        int sr_last = -1, ring_prev = -1, ring_prev2 = -1;
        for_each_ring_slice(
            region, cfg.fs, dtype,
            [&](int k, std::size_t s_off, std::size_t s_len) {
              for (int j = 0; j < nodes; ++j) {
                const std::size_t off = j * region + s_off;
                const BufView src = send.slice(off, s_len);
                const BufView dst = partial->view(off, s_len);
                std::vector<int> deps;
                if (sr_last >= 0) deps.push_back(sr_last);
                // Slice k's reduces start once ring(k-1) is *issued*
                // (i.e. ring(k-2) completed) — they overlap ring(k-1),
                // which is the point of the two-level pipeline.
                if (j == 0 && ring_prev2 >= 0) deps.push_back(ring_prev2);
                sr_last = g.add(
                    {Op::Reduce, Level::Intra, low, 0, k, s_len,
                     std::move(deps),
                     [smod, low, me_low, src, dst, dtype, op] {
                       return smod->ireduce(*low, me_low, /*root=*/0, src,
                                            dst, dtype, op, CollConfig{});
                     }});
              }
              const BufView src = partial->view(s_off, total - s_off);
              const BufView dst = node_region->view(s_off, s_len);
              std::vector<int> deps{sr_last};
              if (ring_prev >= 0) deps.push_back(ring_prev);
              ring_prev2 = ring_prev;
              ring_prev = g.add(
                  {Op::ReduceScatter, Level::Inter, up, 0, k, src.bytes,
                   std::move(deps),
                   [rmod, up, me_up, src, dst, region, dtype, op, ircfg] {
                     return rmod->ireduce_scatter_strided(
                         *up, me_up, src, dst, region, dtype, op, ircfg);
                   }});
            });
        inter_last = ring_prev;
      } else {
        // No intra level: one bandwidth-optimal ring reduce-scatter of
        // the whole vector — chunk j of the up comm is exactly node j's
        // region (node-contiguous placement).
        inter_last =
            g.add({Op::ReduceScatter, Level::Inter, up, 0, -1, total, {},
                   [imod, up, me_up, send, region_buf, dtype, op, ircfg] {
                     return imod->ireduce_scatter(*up, me_up, send,
                                                  region_buf, dtype, op,
                                                  ircfg);
                   }});
      }
    } else {
      // Tree path: sr ⊕ ir pipeline reducing the whole vector to up-root
      // 0, then one inter scatter of the node regions.
      const CollConfig ircfg{cfg.iralg, cfg.irs};
      auto full_red = make_temp(g, w.data_mode() && me_up == 0, total, dtype);
      std::vector<int> sr_node(u, -1);
      int ir_last = -1;
      for_each_task(
          reduce_scatter_tree_shape(has_intra), u,
          [&](int t, const StageSpec& s, int i) {
            if (std::string_view(s.role) == "sr") {
              const BufView src = seg_of(send, segs, i);
              const BufView dst =
                  partial->view(segs.offset(i), segs.length(i));
              sr_node[i] =
                  g.add({s.op, s.level, low, t, i, src.bytes, {},
                         [smod, low, me_low, src, dst, dtype, op] {
                           return smod->ireduce(*low, me_low, /*root=*/0,
                                                src, dst, dtype, op,
                                                CollConfig{});
                         }});
            } else {  // ir(i)
              const BufView contrib =
                  has_intra ? partial->view(segs.offset(i), segs.length(i))
                            : seg_of(send, segs, i);
              const BufView dst =
                  full_red->view(segs.offset(i), segs.length(i));
              std::vector<int> deps;
              if (has_intra) deps.push_back(sr_node[i]);
              ir_last = g.add(
                  {s.op, s.level, up, t, i, contrib.bytes, std::move(deps),
                   [imod, up, me_up, contrib, dst, dtype, op, ircfg] {
                     return imod->ireduce(*up, me_up, /*root=*/0, contrib,
                                          dst, dtype, op, ircfg);
                   }});
            }
          });
      const BufView fullv = full_red->view(0, total);
      const int tail = shape_steps(reduce_scatter_tree_shape(has_intra), u);
      inter_last =
          g.add({Op::Scatter, Level::Inter, up, tail, -1, total, {ir_last},
                 [imod, up, me_up, fullv, region_buf] {
                   return imod->iscatter(*up, me_up, /*root=*/0, fullv,
                                         region_buf, CollConfig{});
                 }});
    }

    // ss: scatter the node's reduced region into per-rank blocks.
    if (has_intra) {
      const BufView regionv = node_region->view(0, region);
      const int tail = g.nodes[inter_last].step + 1;
      g.add({Op::Scatter, Level::Intra, low, tail, -1, region, {inter_last},
             [libnbc, low, me_low, regionv, recv] {
               return libnbc->iscatter(*low, me_low, /*root=*/0, regionv,
                                       recv, CollConfig{});
             }});
    }
  } else {
    // Non-leaders: contribute to every sr (in exactly the leader's issue
    // order — the low comm matches collectives by call order), then
    // receive their block.
    int sr_last = -1;
    if (ring) {
      const int nodes = hc.node_count();
      for_each_ring_slice(
          region, cfg.fs, dtype,
          [&](int k, std::size_t s_off, std::size_t s_len) {
            for (int j = 0; j < nodes; ++j) {
              const std::size_t off = j * region + s_off;
              const BufView src = send.slice(off, s_len);
              const BufView dst = BufView::timing_only(s_len, dtype);
              std::vector<int> deps;
              if (sr_last >= 0) deps.push_back(sr_last);
              sr_last = g.add(
                  {Op::Reduce, Level::Intra, low, 0, k, s_len,
                   std::move(deps),
                   [smod, low, me_low, src, dst, dtype, op] {
                     return smod->ireduce(*low, me_low, /*root=*/0, src, dst,
                                          dtype, op, CollConfig{});
                   }});
            }
          });
    } else {
      for (int i = 0; i < u; ++i) {
        const BufView src = seg_of(send, segs, i);
        const BufView dst = BufView::timing_only(segs.length(i), dtype);
        sr_last = g.add({Op::Reduce, Level::Intra, low, i, i, src.bytes, {},
                         [smod, low, me_low, src, dst, dtype, op] {
                           return smod->ireduce(*low, me_low, /*root=*/0,
                                                src, dst, dtype, op,
                                                CollConfig{});
                         }});
      }
    }
    const BufView regionv = BufView::timing_only(region);
    const int tail = sr_last >= 0 ? g.nodes[sr_last].step + 1 : 0;
    std::vector<int> deps;
    if (sr_last >= 0) deps.push_back(sr_last);
    g.add({Op::Scatter, Level::Intra, low, tail, -1, region,
           std::move(deps), [libnbc, low, me_low, regionv, recv] {
             return libnbc->iscatter(*low, me_low, /*root=*/0, regionv, recv,
                                     CollConfig{});
           }});
  }
  return g;
}

// ---------------------------------------------------------------------------
// Gather / Scatter / Allgather / Barrier (paper §III: "similar designs can
// be extended to other collective operations")
// ---------------------------------------------------------------------------

TaskGraph build_gather(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, BufView send, BufView recv,
                       const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = send.bytes;
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    g.add({Op::Gather, Level::Intra, low, 0, -1, block, {},
           [libnbc, low, me_low, root_low, send, recv] {
             return libnbc->igather(*low, me_low, root_low, send, recv,
                                    CollConfig{});
           }});
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  // sg: node-local gather to this operation's leaders. P2P gather over the
  // shm pipe — Open MPI similarly falls back to a P2P module here.
  const std::size_t node_bytes = block * low->size();
  auto node_block =
      make_temp(g, w.data_mode(), node_bytes, mpi::Datatype::Byte);
  const bool leader = me_low == root_low;
  const BufView node_dst = leader ? node_block->view(0, node_bytes)
                                  : BufView::timing_only(node_bytes);
  const int sg = g.add({Op::Gather, Level::Intra, low, 0, -1, block, {},
                        [libnbc, low, me_low, root_low, send, node_dst] {
                          return libnbc->igather(*low, me_low, root_low,
                                                 send, node_dst,
                                                 CollConfig{});
                        }});
  // ig: inter-node gather of node blocks to the root.
  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    const BufView node_src = node_block->view(0, node_bytes);
    const BufView dst =
        me == root ? recv : BufView::timing_only(recv.bytes);
    g.add({Op::Gather, Level::Inter, up, 1, -1, node_bytes, {sg},
           [imod, up, me_up, root_up, node_src, dst] {
             return imod->igather(*up, me_up, root_up, node_src, dst,
                                  CollConfig{});
           }});
  }
  return g;
}

TaskGraph build_scatter(core::HanModule& m, const mpi::Comm& comm, int me,
                        int root, BufView send, BufView recv,
                        const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = recv.bytes;
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    g.add({Op::Scatter, Level::Intra, low, 0, -1, block, {},
           [libnbc, low, me_low, root_low, send, recv] {
             return libnbc->iscatter(*low, me_low, root_low, send, recv,
                                     CollConfig{});
           }});
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const std::size_t node_bytes = block * low->size();
  auto node_block =
      make_temp(g, w.data_mode(), node_bytes, mpi::Datatype::Byte);
  const bool leader = me_low == root_low;
  std::vector<int> ss_deps;
  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    const BufView src =
        me == root ? send : BufView::timing_only(send.bytes);
    const BufView node_dst = node_block->view(0, node_bytes);
    ss_deps.push_back(
        g.add({Op::Scatter, Level::Inter, up, 0, -1, node_bytes, {},
               [imod, up, me_up, root_up, src, node_dst] {
                 return imod->iscatter(*up, me_up, root_up, src, node_dst,
                                       CollConfig{});
               }}));
  }
  const BufView node_src = leader ? node_block->view(0, node_bytes)
                                  : BufView::timing_only(node_bytes);
  g.add({Op::Scatter, Level::Intra, low, leader ? 1 : 0, -1, block,
         std::move(ss_deps), [libnbc, low, me_low, root_low, node_src, recv] {
           return libnbc->iscatter(*low, me_low, root_low, node_src, recv,
                                   CollConfig{});
         }});
  return g;
}

TaskGraph build_allgather(core::HanModule& m, const mpi::Comm& comm, int me,
                          BufView send, BufView recv, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = send.bytes;
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    g.add({Op::Allgather, Level::Intra, low, 0, -1, block, {},
           [libnbc, low, me_low, send, recv] {
             return libnbc->iallgather(*low, me_low, send, recv,
                                       CollConfig{});
           }});
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  CollModule* smod = m.intra_module(cfg);
  const bool leader = me_low == 0;
  const std::size_t node_bytes = block * low->size();
  auto node_block =
      make_temp(g, w.data_mode(), node_bytes, mpi::Datatype::Byte);

  // sg: gather node block to the leader.
  const BufView node_dst = leader ? node_block->view(0, node_bytes)
                                  : BufView::timing_only(node_bytes);
  const int sg = g.add({Op::Gather, Level::Intra, low, 0, -1, block, {},
                        [libnbc, low, me_low, send, node_dst] {
                          return libnbc->igather(*low, me_low, /*root=*/0,
                                                 send, node_dst,
                                                 CollConfig{});
                        }});
  // iag: inter-node allgather of node blocks (leaders only) straight into
  // the final layout (node-contiguous placement).
  int sb_dep = sg;
  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const BufView node_src = node_block->view(0, node_bytes);
    sb_dep = g.add({Op::Allgather, Level::Inter, up, 1, -1, node_bytes, {sg},
                    [imod, up, me_up, node_src, recv] {
                      return imod->iallgather(*up, me_up, node_src, recv,
                                              CollConfig{});
                    }});
  }
  // sb: broadcast the assembled buffer within the node.
  g.add({Op::Bcast, Level::Intra, low, leader ? 2 : 1, -1, recv.bytes,
         {sb_dep}, [smod, low, me_low, recv] {
           return smod->ibcast(*low, me_low, /*root=*/0, recv,
                               mpi::Datatype::Byte, CollConfig{});
         }});
  return g;
}

TaskGraph build_barrier(core::HanModule& m, const mpi::Comm& comm, int me) {
  TaskGraph g;
  Hierarchy& hc = m.flat_hierarchy(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  coll::SmModule* sm = &m.modules().sm();
  CollModule* libnbc = &m.modules().libnbc();

  // Fan-in: node barrier; leaders: inter barrier; fan-out: node signal.
  int prev = -1;
  if (has_intra) {
    prev = g.add({Op::Barrier, Level::Intra, low, 0, -1, 0, {},
                  [sm, low, me_low] { return sm->ibarrier(*low, me_low); }});
  }
  if (has_inter && me_low == 0) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    std::vector<int> deps;
    if (prev >= 0) deps.push_back(prev);
    prev = g.add({Op::Barrier, Level::Inter, up, prev >= 0 ? 1 : 0, -1, 0,
                  std::move(deps),
                  [libnbc, up, me_up] { return libnbc->ibarrier(*up, me_up); }});
  }
  if (has_intra) {
    const int step = prev >= 0 ? g.nodes[prev].step + 1 : 0;
    std::vector<int> deps;
    if (prev >= 0) deps.push_back(prev);
    g.add({Op::Bcast, Level::Intra, low, step, -1, 0, std::move(deps),
           [sm, low, me_low] {
             return sm->ibcast(*low, me_low, /*root=*/0,
                               BufView::timing_only(0), mpi::Datatype::Byte,
                               CollConfig{});
           }});
  }
  return g;
}

}  // namespace han::task

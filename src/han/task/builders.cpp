#include "han/task/builders.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "han/han_util.hpp"
#include "han/task/shapes.hpp"

namespace han::task {

namespace {

using coll::CollConfig;
using coll::CollModule;
using coll::Segmenter;
using core::HanComm;
using core::HanConfig;
using core::TempBuf;
using core::seg_of;
using mpi::BufView;
using mpi::Datatype;
using mpi::ReduceOp;

std::shared_ptr<TempBuf> make_temp(TaskGraph& g, bool data_mode,
                                   std::size_t bytes, Datatype t) {
  auto buf = std::make_shared<TempBuf>(data_mode, bytes, t);
  g.keepalive.push_back(buf);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bcast (paper Fig. 1): leaders run ib(0), sbib(1..u-1), sb(u-1); other
// ranks run sb(0..u-1).
// ---------------------------------------------------------------------------

TaskGraph build_bcast(core::HanModule& m, const mpi::Comm& comm, int me,
                      int root, BufView buf, Datatype dtype,
                      const HanConfig& cfg) {
  TaskGraph g;
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      g.add({Op::Bcast, Level::Intra, low, 0, -1, buf.bytes, {},
             [smod, low, me_low, root_low, buf, dtype] {
               return smod->ibcast(*low, me_low, root_low, buf, dtype,
                                   CollConfig{});
             }});
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  // The up communicator carrying data is the one holding the root: every
  // rank whose local rank equals the root's local rank is a "leader" for
  // this operation (Open MPI HAN's root_low_rank trick — no relay hop).
  if (me_low == root_low) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    std::vector<int> ib_node(u, -1);
    for_each_task(
        bcast_shape(has_intra), u,
        [&](int t, const StageSpec& s, int i) {
          const BufView seg = seg_of(buf, segs, i);
          if (std::string_view(s.role) == "ib") {
            ib_node[i] =
                g.add({s.op, s.level, up, t, i, seg.bytes, {},
                       [imod, up, me_up, root_up, seg, dtype, icfg] {
                         return imod->ibcast(*up, me_up, root_up, seg, dtype,
                                             icfg);
                       }});
          } else {  // sb(i): intra bcast once segment i has arrived
            g.add({s.op, s.level, low, t, i, seg.bytes, {ib_node[i]},
                   [smod, low, me_low, root_low, seg, dtype] {
                     return smod->ibcast(*low, me_low, root_low, seg, dtype,
                                         CollConfig{});
                   }});
          }
        });
  } else {
    for_each_task(
        bcast_follower_shape(), u, [&](int t, const StageSpec& s, int i) {
          const BufView seg = seg_of(buf, segs, i);
          g.add({s.op, s.level, low, t, i, seg.bytes, {},
                 [smod, low, me_low, root_low, seg, dtype] {
                   return smod->ibcast(*low, me_low, root_low, seg, dtype,
                                       CollConfig{});
                 }});
        });
  }
  return g;
}

// ---------------------------------------------------------------------------
// Reduce: sr → ir pipeline (the rooted prefix of Fig. 5)
// ---------------------------------------------------------------------------

TaskGraph build_reduce(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, BufView send, BufView recv, Datatype dtype,
                       ReduceOp op, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      g.add({Op::Reduce, Level::Intra, low, 0, -1, send.bytes, {},
             [smod, low, me_low, root_low, send, recv, dtype, op] {
               return smod->ireduce(*low, me_low, root_low, send, recv,
                                    dtype, op, CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();

  if (me_low == root_low) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    // Per-node partial results; feeds the inter-node reduction.
    auto partial = make_temp(g, w.data_mode(), send.bytes, dtype);
    std::vector<int> sr_node(u, -1);
    for_each_task(
        reduce_shape(has_intra), u, [&](int t, const StageSpec& s, int i) {
          if (std::string_view(s.role) == "sr") {
            const BufView dst =
                partial->view(segs.offset(i), segs.length(i));
            const BufView src = seg_of(send, segs, i);
            sr_node[i] =
                g.add({s.op, s.level, low, t, i, src.bytes, {},
                       [smod, low, me_low, root_low, src, dst, dtype, op] {
                         return smod->ireduce(*low, me_low, root_low, src,
                                              dst, dtype, op, CollConfig{});
                       }});
          } else {  // ir(i): inter reduce of the node partials
            const BufView contrib =
                has_intra ? partial->view(segs.offset(i), segs.length(i))
                          : seg_of(send, segs, i);
            const BufView dst = seg_of(recv, segs, i);
            std::vector<int> deps;
            if (has_intra) deps.push_back(sr_node[i]);
            g.add({s.op, s.level, up, t, i, contrib.bytes, std::move(deps),
                   [imod, up, me_up, root_up, contrib, dst, dtype, op,
                    ircfg] {
                     return imod->ireduce(*up, me_up, root_up, contrib, dst,
                                          dtype, op, ircfg);
                   }});
          }
        });
  } else {
    for_each_task(
        reduce_follower_shape(), u, [&](int t, const StageSpec& s, int i) {
          const BufView src = seg_of(send, segs, i);
          const BufView dst = BufView::timing_only(segs.length(i), dtype);
          g.add({s.op, s.level, low, t, i, src.bytes, {},
                 [smod, low, me_low, root_low, src, dst, dtype, op] {
                   return smod->ireduce(*low, me_low, root_low, src, dst,
                                        dtype, op, CollConfig{});
                 }});
        });
  }
  return g;
}

// ---------------------------------------------------------------------------
// Allreduce (paper Fig. 5): 4-stage sr → ir → ib → sb pipeline
// ---------------------------------------------------------------------------

TaskGraph build_allreduce(core::HanModule& m, const mpi::Comm& comm, int me,
                          BufView send, BufView recv, Datatype dtype,
                          ReduceOp op, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  CollModule* smod = m.intra_module(cfg);

  if (!has_inter) {
    if (has_intra) {
      g.add({Op::Reduce, Level::Intra, low, 0, -1, send.bytes, {},
             [smod, low, me_low, send, recv, dtype, op] {
               return smod->iallreduce(*low, me_low, send, recv, dtype, op,
                                       CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  // Paper §III-B: ir and ib use the same algorithm and the same root to
  // maximize the opposite-direction overlap on the full-duplex network.
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const bool leader = me_low == 0;  // no user root: node-local rank 0 leads

  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    auto partial = make_temp(g, w.data_mode(), send.bytes, dtype);
    std::vector<int> sr_node(u, -1), ir_node(u, -1), ib_node(u, -1);
    for_each_task(
        allreduce_shape(has_intra), u,
        [&](int t, const StageSpec& s, int i) {
          const std::string_view role(s.role);
          if (role == "sr") {
            const BufView src = seg_of(send, segs, i);
            const BufView dst =
                partial->view(segs.offset(i), segs.length(i));
            sr_node[i] =
                g.add({s.op, s.level, low, t, i, src.bytes, {},
                       [smod, low, me_low, src, dst, dtype, op] {
                         return smod->ireduce(*low, me_low, /*root=*/0, src,
                                              dst, dtype, op, CollConfig{});
                       }});
          } else if (role == "ir") {
            const BufView contrib =
                has_intra ? partial->view(segs.offset(i), segs.length(i))
                          : seg_of(send, segs, i);
            const BufView dst = seg_of(recv, segs, i);
            std::vector<int> deps;
            if (has_intra) deps.push_back(sr_node[i]);
            ir_node[i] =
                g.add({s.op, s.level, up, t, i, contrib.bytes,
                       std::move(deps),
                       [imod, up, me_up, contrib, dst, dtype, op, ircfg] {
                         return imod->ireduce(*up, me_up, /*root=*/0,
                                              contrib, dst, dtype, op,
                                              ircfg);
                       }});
          } else if (role == "ib") {
            const BufView seg = seg_of(recv, segs, i);
            ib_node[i] =
                g.add({s.op, s.level, up, t, i, seg.bytes, {ir_node[i]},
                       [imod, up, me_up, seg, dtype, ibcfg] {
                         return imod->ibcast(*up, me_up, /*root=*/0, seg,
                                             dtype, ibcfg);
                       }});
          } else {  // sb
            const BufView seg = seg_of(recv, segs, i);
            g.add({s.op, s.level, low, t, i, seg.bytes, {ib_node[i]},
                   [smod, low, me_low, seg, dtype] {
                     return smod->ibcast(*low, me_low, /*root=*/0, seg,
                                         dtype, CollConfig{});
                   }});
          }
        });
  } else {
    // Task sbsr(i): receive broadcast segment i-3 while contributing
    // segment i to the intra-node reduction.
    for_each_task(
        allreduce_follower_shape(), u,
        [&](int t, const StageSpec& s, int i) {
          if (std::string_view(s.role) == "sr") {
            const BufView src = seg_of(send, segs, i);
            const BufView dst = BufView::timing_only(segs.length(i), dtype);
            g.add({s.op, s.level, low, t, i, src.bytes, {},
                   [smod, low, me_low, src, dst, dtype, op] {
                     return smod->ireduce(*low, me_low, /*root=*/0, src, dst,
                                          dtype, op, CollConfig{});
                   }});
          } else {  // sb
            const BufView seg = seg_of(recv, segs, i);
            g.add({s.op, s.level, low, t, i, seg.bytes, {},
                   [smod, low, me_low, seg, dtype] {
                     return smod->ibcast(*low, me_low, /*root=*/0, seg,
                                         dtype, CollConfig{});
                   }});
          }
        });
  }
  return g;
}

// ---------------------------------------------------------------------------
// Multi-leader allreduce: stripe the segment pipeline across k node-local
// leaders, each driving its own up communicator. Stripe j = segments with
// i % k == j; every rank participates in all sr/sb (consistent low-comm
// call order); leader j additionally drives ir/ib for its stripe.
// ---------------------------------------------------------------------------

TaskGraph build_allreduce_multileader(core::HanModule& m,
                                      const mpi::Comm& comm, int me,
                                      BufView send, BufView recv,
                                      Datatype dtype, ReduceOp op,
                                      const HanConfig& cfg, int k) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  CollModule* imod = m.inter_module(cfg);
  CollModule* smod = m.intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();
  const int leader_idx = me_low < k ? me_low : -1;
  auto partial =
      make_temp(g, w.data_mode() && leader_idx >= 0, send.bytes, dtype);
  const mpi::Comm* up = hc.up(me);
  const int me_up = hc.up_rank(me);

  std::vector<int> sr_node(u, -1), ir_node(u, -1), ib_node(u, -1);
  for (int t = 0; t <= u + 2; ++t) {
    if (t <= u - 1) {
      const int owner = t % k;
      const BufView src = seg_of(send, segs, t);
      const BufView dst =
          me_low == owner ? partial->view(segs.offset(t), segs.length(t))
                          : BufView::timing_only(segs.length(t), dtype);
      sr_node[t] =
          g.add({Op::Reduce, Level::Intra, low, t, t, src.bytes, {},
                 [smod, low, me_low, owner, src, dst, dtype, op] {
                   return smod->ireduce(*low, me_low, owner, src, dst, dtype,
                                        op, CollConfig{});
                 }});
    }
    if (leader_idx >= 0 && t >= 1 && t - 1 <= u - 1 &&
        (t - 1) % k == leader_idx) {
      const int i = t - 1;
      const BufView contrib = partial->view(segs.offset(i), segs.length(i));
      const BufView dst = seg_of(recv, segs, i);
      ir_node[i] =
          g.add({Op::Reduce, Level::Inter, up, t, i, contrib.bytes,
                 {sr_node[i]},
                 [imod, up, me_up, contrib, dst, dtype, op, ircfg] {
                   return imod->ireduce(*up, me_up, /*root=*/0, contrib, dst,
                                        dtype, op, ircfg);
                 }});
    }
    if (leader_idx >= 0 && t >= 2 && t - 2 <= u - 1 &&
        (t - 2) % k == leader_idx) {
      const int i = t - 2;
      const BufView seg = seg_of(recv, segs, i);
      ib_node[i] = g.add({Op::Bcast, Level::Inter, up, t, i, seg.bytes,
                          {ir_node[i]},
                          [imod, up, me_up, seg, dtype, ibcfg] {
                            return imod->ibcast(*up, me_up, /*root=*/0, seg,
                                                dtype, ibcfg);
                          }});
    }
    if (t >= 3 && t - 3 <= u - 1) {
      const int i = t - 3;
      const int owner = i % k;
      const BufView seg = seg_of(recv, segs, i);
      std::vector<int> deps;
      if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
      g.add({Op::Bcast, Level::Intra, low, t, i, seg.bytes, std::move(deps),
             [smod, low, me_low, owner, seg, dtype] {
               return smod->ibcast(*low, me_low, owner, seg, dtype,
                                   CollConfig{});
             }});
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Reduce-scatter (equal blocks): sr pipeline → inter ring-or-tree → ss.
// The ring path is dependency-driven (all nodes at step 0): slice k's
// strided inter-node ring overlaps slice k+1's intra reduces, exactly the
// seed's issue-without-await structure, which step barriers cannot express.
// ---------------------------------------------------------------------------

TaskGraph build_reduce_scatter(core::HanModule& m, const mpi::Comm& comm,
                               int me, BufView send, BufView recv,
                               Datatype dtype, ReduceOp op,
                               const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t total = send.bytes;
  CollModule* smod = m.intra_module(cfg);
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    if (has_intra) {
      // Single node: reduce to the leader, then scatter the blocks back.
      auto full = make_temp(g, w.data_mode() && me_low == 0, total, dtype);
      const BufView fullv = full->view(0, total);
      const int red =
          g.add({Op::Reduce, Level::Intra, low, 0, -1, total, {},
                 [smod, low, me_low, send, fullv, dtype, op] {
                   return smod->ireduce(*low, me_low, /*root=*/0, send,
                                        fullv, dtype, op, CollConfig{});
                 }});
      g.add({Op::Scatter, Level::Intra, low, 1, -1, total, {red},
             [libnbc, low, me_low, fullv, recv] {
               return libnbc->iscatter(*low, me_low, /*root=*/0, fullv, recv,
                                       CollConfig{});
             }});
    } else if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const std::size_t region = recv.bytes * low->size();  // this node's slice
  const Segmenter segs(total, cfg.fs, dtype);
  const int u = segs.count();
  const bool leader = me_low == 0;
  const bool ring = cfg.imod == "ring";

  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    auto partial = make_temp(g, w.data_mode() && has_intra, total, dtype);
    auto node_region =
        make_temp(g, w.data_mode() && has_intra, region, dtype);
    // Without an intra level the node's region is the caller's block.
    const BufView region_buf =
        has_intra ? node_region->view(0, region) : recv;
    int inter_last = -1;  // node delivering this node's region

    if (ring) {
      const CollConfig ircfg{coll::Algorithm::Ring, cfg.irs};
      if (has_intra) {
        coll::RingModule* rmod = &m.modules().ring();
        const int nodes = hc.node_count();
        int sr_last = -1, ring_prev = -1, ring_prev2 = -1;
        for_each_ring_slice(
            region, cfg.fs, dtype,
            [&](int k, std::size_t s_off, std::size_t s_len) {
              for (int j = 0; j < nodes; ++j) {
                const std::size_t off = j * region + s_off;
                const BufView src = send.slice(off, s_len);
                const BufView dst = partial->view(off, s_len);
                std::vector<int> deps;
                if (sr_last >= 0) deps.push_back(sr_last);
                // Slice k's reduces start once ring(k-1) is *issued*
                // (i.e. ring(k-2) completed) — they overlap ring(k-1),
                // which is the point of the two-level pipeline.
                if (j == 0 && ring_prev2 >= 0) deps.push_back(ring_prev2);
                sr_last = g.add(
                    {Op::Reduce, Level::Intra, low, 0, k, s_len,
                     std::move(deps),
                     [smod, low, me_low, src, dst, dtype, op] {
                       return smod->ireduce(*low, me_low, /*root=*/0, src,
                                            dst, dtype, op, CollConfig{});
                     }});
              }
              const BufView src = partial->view(s_off, total - s_off);
              const BufView dst = node_region->view(s_off, s_len);
              std::vector<int> deps{sr_last};
              if (ring_prev >= 0) deps.push_back(ring_prev);
              ring_prev2 = ring_prev;
              ring_prev = g.add(
                  {Op::ReduceScatter, Level::Inter, up, 0, k, src.bytes,
                   std::move(deps),
                   [rmod, up, me_up, src, dst, region, dtype, op, ircfg] {
                     return rmod->ireduce_scatter_strided(
                         *up, me_up, src, dst, region, dtype, op, ircfg);
                   }});
            });
        inter_last = ring_prev;
      } else {
        // No intra level: one bandwidth-optimal ring reduce-scatter of
        // the whole vector — chunk j of the up comm is exactly node j's
        // region (node-contiguous placement).
        inter_last =
            g.add({Op::ReduceScatter, Level::Inter, up, 0, -1, total, {},
                   [imod, up, me_up, send, region_buf, dtype, op, ircfg] {
                     return imod->ireduce_scatter(*up, me_up, send,
                                                  region_buf, dtype, op,
                                                  ircfg);
                   }});
      }
    } else {
      // Tree path: sr ⊕ ir pipeline reducing the whole vector to up-root
      // 0, then one inter scatter of the node regions.
      const CollConfig ircfg{cfg.iralg, cfg.irs};
      auto full_red = make_temp(g, w.data_mode() && me_up == 0, total, dtype);
      std::vector<int> sr_node(u, -1);
      int ir_last = -1;
      for_each_task(
          reduce_scatter_tree_shape(has_intra), u,
          [&](int t, const StageSpec& s, int i) {
            if (std::string_view(s.role) == "sr") {
              const BufView src = seg_of(send, segs, i);
              const BufView dst =
                  partial->view(segs.offset(i), segs.length(i));
              sr_node[i] =
                  g.add({s.op, s.level, low, t, i, src.bytes, {},
                         [smod, low, me_low, src, dst, dtype, op] {
                           return smod->ireduce(*low, me_low, /*root=*/0,
                                                src, dst, dtype, op,
                                                CollConfig{});
                         }});
            } else {  // ir(i)
              const BufView contrib =
                  has_intra ? partial->view(segs.offset(i), segs.length(i))
                            : seg_of(send, segs, i);
              const BufView dst =
                  full_red->view(segs.offset(i), segs.length(i));
              std::vector<int> deps;
              if (has_intra) deps.push_back(sr_node[i]);
              ir_last = g.add(
                  {s.op, s.level, up, t, i, contrib.bytes, std::move(deps),
                   [imod, up, me_up, contrib, dst, dtype, op, ircfg] {
                     return imod->ireduce(*up, me_up, /*root=*/0, contrib,
                                          dst, dtype, op, ircfg);
                   }});
            }
          });
      const BufView fullv = full_red->view(0, total);
      const int tail = shape_steps(reduce_scatter_tree_shape(has_intra), u);
      inter_last =
          g.add({Op::Scatter, Level::Inter, up, tail, -1, total, {ir_last},
                 [imod, up, me_up, fullv, region_buf] {
                   return imod->iscatter(*up, me_up, /*root=*/0, fullv,
                                         region_buf, CollConfig{});
                 }});
    }

    // ss: scatter the node's reduced region into per-rank blocks.
    if (has_intra) {
      const BufView regionv = node_region->view(0, region);
      const int tail = g.nodes[inter_last].step + 1;
      g.add({Op::Scatter, Level::Intra, low, tail, -1, region, {inter_last},
             [libnbc, low, me_low, regionv, recv] {
               return libnbc->iscatter(*low, me_low, /*root=*/0, regionv,
                                       recv, CollConfig{});
             }});
    }
  } else {
    // Non-leaders: contribute to every sr (in exactly the leader's issue
    // order — the low comm matches collectives by call order), then
    // receive their block.
    int sr_last = -1;
    if (ring) {
      const int nodes = hc.node_count();
      for_each_ring_slice(
          region, cfg.fs, dtype,
          [&](int k, std::size_t s_off, std::size_t s_len) {
            for (int j = 0; j < nodes; ++j) {
              const std::size_t off = j * region + s_off;
              const BufView src = send.slice(off, s_len);
              const BufView dst = BufView::timing_only(s_len, dtype);
              std::vector<int> deps;
              if (sr_last >= 0) deps.push_back(sr_last);
              sr_last = g.add(
                  {Op::Reduce, Level::Intra, low, 0, k, s_len,
                   std::move(deps),
                   [smod, low, me_low, src, dst, dtype, op] {
                     return smod->ireduce(*low, me_low, /*root=*/0, src, dst,
                                          dtype, op, CollConfig{});
                   }});
            }
          });
    } else {
      for (int i = 0; i < u; ++i) {
        const BufView src = seg_of(send, segs, i);
        const BufView dst = BufView::timing_only(segs.length(i), dtype);
        sr_last = g.add({Op::Reduce, Level::Intra, low, i, i, src.bytes, {},
                         [smod, low, me_low, src, dst, dtype, op] {
                           return smod->ireduce(*low, me_low, /*root=*/0,
                                                src, dst, dtype, op,
                                                CollConfig{});
                         }});
      }
    }
    const BufView regionv = BufView::timing_only(region);
    const int tail = sr_last >= 0 ? g.nodes[sr_last].step + 1 : 0;
    std::vector<int> deps;
    if (sr_last >= 0) deps.push_back(sr_last);
    g.add({Op::Scatter, Level::Intra, low, tail, -1, region,
           std::move(deps), [libnbc, low, me_low, regionv, recv] {
             return libnbc->iscatter(*low, me_low, /*root=*/0, regionv, recv,
                                     CollConfig{});
           }});
  }
  return g;
}

// ---------------------------------------------------------------------------
// Gather / Scatter / Allgather / Barrier (paper §III: "similar designs can
// be extended to other collective operations")
// ---------------------------------------------------------------------------

TaskGraph build_gather(core::HanModule& m, const mpi::Comm& comm, int me,
                       int root, BufView send, BufView recv,
                       const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = send.bytes;
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    g.add({Op::Gather, Level::Intra, low, 0, -1, block, {},
           [libnbc, low, me_low, root_low, send, recv] {
             return libnbc->igather(*low, me_low, root_low, send, recv,
                                    CollConfig{});
           }});
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  // sg: node-local gather to this operation's leaders. P2P gather over the
  // shm pipe — Open MPI similarly falls back to a P2P module here.
  const std::size_t node_bytes = block * low->size();
  auto node_block =
      make_temp(g, w.data_mode(), node_bytes, mpi::Datatype::Byte);
  const bool leader = me_low == root_low;
  const BufView node_dst = leader ? node_block->view(0, node_bytes)
                                  : BufView::timing_only(node_bytes);
  const int sg = g.add({Op::Gather, Level::Intra, low, 0, -1, block, {},
                        [libnbc, low, me_low, root_low, send, node_dst] {
                          return libnbc->igather(*low, me_low, root_low,
                                                 send, node_dst,
                                                 CollConfig{});
                        }});
  // ig: inter-node gather of node blocks to the root.
  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    const BufView node_src = node_block->view(0, node_bytes);
    const BufView dst =
        me == root ? recv : BufView::timing_only(recv.bytes);
    g.add({Op::Gather, Level::Inter, up, 1, -1, node_bytes, {sg},
           [imod, up, me_up, root_up, node_src, dst] {
             return imod->igather(*up, me_up, root_up, node_src, dst,
                                  CollConfig{});
           }});
  }
  return g;
}

TaskGraph build_scatter(core::HanModule& m, const mpi::Comm& comm, int me,
                        int root, BufView send, BufView recv,
                        const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const int root_low = hc.low_rank(root);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = recv.bytes;
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    g.add({Op::Scatter, Level::Intra, low, 0, -1, block, {},
           [libnbc, low, me_low, root_low, send, recv] {
             return libnbc->iscatter(*low, me_low, root_low, send, recv,
                                     CollConfig{});
           }});
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  const std::size_t node_bytes = block * low->size();
  auto node_block =
      make_temp(g, w.data_mode(), node_bytes, mpi::Datatype::Byte);
  const bool leader = me_low == root_low;
  std::vector<int> ss_deps;
  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const int root_up = hc.up_rank(root);
    const BufView src =
        me == root ? send : BufView::timing_only(send.bytes);
    const BufView node_dst = node_block->view(0, node_bytes);
    ss_deps.push_back(
        g.add({Op::Scatter, Level::Inter, up, 0, -1, node_bytes, {},
               [imod, up, me_up, root_up, src, node_dst] {
                 return imod->iscatter(*up, me_up, root_up, src, node_dst,
                                       CollConfig{});
               }}));
  }
  const BufView node_src = leader ? node_block->view(0, node_bytes)
                                  : BufView::timing_only(node_bytes);
  g.add({Op::Scatter, Level::Intra, low, leader ? 1 : 0, -1, block,
         std::move(ss_deps), [libnbc, low, me_low, root_low, node_src, recv] {
           return libnbc->iscatter(*low, me_low, root_low, node_src, recv,
                                   CollConfig{});
         }});
  return g;
}

TaskGraph build_allgather(core::HanModule& m, const mpi::Comm& comm, int me,
                          BufView send, BufView recv, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_inter = hc.up(me) != nullptr;
  const std::size_t block = send.bytes;
  CollModule* libnbc = &m.modules().libnbc();

  if (!has_inter) {
    g.add({Op::Allgather, Level::Intra, low, 0, -1, block, {},
           [libnbc, low, me_low, send, recv] {
             return libnbc->iallgather(*low, me_low, send, recv,
                                       CollConfig{});
           }});
    return g;
  }

  CollModule* imod = m.inter_module(cfg);
  CollModule* smod = m.intra_module(cfg);
  const bool leader = me_low == 0;
  const std::size_t node_bytes = block * low->size();
  auto node_block =
      make_temp(g, w.data_mode(), node_bytes, mpi::Datatype::Byte);

  // sg: gather node block to the leader.
  const BufView node_dst = leader ? node_block->view(0, node_bytes)
                                  : BufView::timing_only(node_bytes);
  const int sg = g.add({Op::Gather, Level::Intra, low, 0, -1, block, {},
                        [libnbc, low, me_low, send, node_dst] {
                          return libnbc->igather(*low, me_low, /*root=*/0,
                                                 send, node_dst,
                                                 CollConfig{});
                        }});
  // iag: inter-node allgather of node blocks (leaders only) straight into
  // the final layout (node-contiguous placement).
  int sb_dep = sg;
  if (leader) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    const BufView node_src = node_block->view(0, node_bytes);
    sb_dep = g.add({Op::Allgather, Level::Inter, up, 1, -1, node_bytes, {sg},
                    [imod, up, me_up, node_src, recv] {
                      return imod->iallgather(*up, me_up, node_src, recv,
                                              CollConfig{});
                    }});
  }
  // sb: broadcast the assembled buffer within the node.
  g.add({Op::Bcast, Level::Intra, low, leader ? 2 : 1, -1, recv.bytes,
         {sb_dep}, [smod, low, me_low, recv] {
           return smod->ibcast(*low, me_low, /*root=*/0, recv,
                               mpi::Datatype::Byte, CollConfig{});
         }});
  return g;
}

TaskGraph build_barrier(core::HanModule& m, const mpi::Comm& comm, int me) {
  TaskGraph g;
  HanComm& hc = m.han_comm(comm);
  const mpi::Comm* low = &hc.low(me);
  const int me_low = hc.low_rank(me);
  const bool has_intra = low->size() > 1;
  const bool has_inter = hc.up(me) != nullptr;
  coll::SmModule* sm = &m.modules().sm();
  CollModule* libnbc = &m.modules().libnbc();

  // Fan-in: node barrier; leaders: inter barrier; fan-out: node signal.
  int prev = -1;
  if (has_intra) {
    prev = g.add({Op::Barrier, Level::Intra, low, 0, -1, 0, {},
                  [sm, low, me_low] { return sm->ibarrier(*low, me_low); }});
  }
  if (has_inter && me_low == 0) {
    const mpi::Comm* up = hc.up(me);
    const int me_up = hc.up_rank(me);
    std::vector<int> deps;
    if (prev >= 0) deps.push_back(prev);
    prev = g.add({Op::Barrier, Level::Inter, up, prev >= 0 ? 1 : 0, -1, 0,
                  std::move(deps),
                  [libnbc, up, me_up] { return libnbc->ibarrier(*up, me_up); }});
  }
  if (has_intra) {
    const int step = prev >= 0 ? g.nodes[prev].step + 1 : 0;
    std::vector<int> deps;
    if (prev >= 0) deps.push_back(prev);
    g.add({Op::Bcast, Level::Intra, low, step, -1, 0, std::move(deps),
           [sm, low, me_low] {
             return sm->ibcast(*low, me_low, /*root=*/0,
                               BufView::timing_only(0), mpi::Datatype::Byte,
                               CollConfig{});
           }});
  }
  return g;
}

// ---------------------------------------------------------------------------
// 3-level pipelines (NUMA-aware): bcast3 ib → mb → sb and allreduce3
// sr → mr → ir → ib → mb → sb. Stage enables are per-rank roles, so the
// same shapes serve leaders and followers (and the cost model).
// ---------------------------------------------------------------------------

TaskGraph build_bcast3(core::HanModule& m, core::Han3::Comm3& c3, int me,
                       BufView buf, Datatype dtype, const HanConfig& cfg) {
  TaskGraph g;
  CollModule* imod = m.inter_module(cfg);
  CollModule* smod = m.intra_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const Segmenter segs(buf.bytes, cfg.fs, dtype);
  const int u = segs.count();

  const mpi::Comm* leaf = c3.leaf[me];
  const int me_leaf = c3.leaf_rank[me];
  const bool numa_leader = c3.numa_leader(me);
  const bool node_leader = c3.node_leader(me);
  const bool has_leaf = leaf->size() > 1;
  const bool has_mid = c3.mid[me] != nullptr && c3.mid[me]->size() > 1;
  const bool has_up = c3.up[me] != nullptr;
  const int wr = leaf->world_rank(me_leaf);  // my world rank

  const mpi::Comm* up = has_up ? c3.up[me] : nullptr;
  const mpi::Comm* mid = c3.mid[me];
  const int me_up = up != nullptr ? up->comm_rank_of_world(wr) : -1;
  const int me_mid = mid != nullptr ? mid->comm_rank_of_world(wr) : -1;

  std::vector<int> ib_node(u, -1), mb_node(u, -1);
  for_each_task(
      bcast3_shape(node_leader && has_up, numa_leader && has_mid, has_leaf),
      u, [&](int t, const StageSpec& s, int i) {
        const BufView seg = seg_of(buf, segs, i);
        const std::string_view role(s.role);
        if (role == "ib") {
          ib_node[i] = g.add({s.op, s.level, up, t, i, seg.bytes, {},
                              [imod, up, me_up, seg, dtype, icfg] {
                                return imod->ibcast(*up, me_up, /*root=*/0,
                                                    seg, dtype, icfg);
                              }});
        } else if (role == "mb") {
          std::vector<int> deps;
          if (ib_node[i] >= 0) deps.push_back(ib_node[i]);
          mb_node[i] = g.add({s.op, s.level, mid, t, i, seg.bytes,
                              std::move(deps),
                              [smod, mid, me_mid, seg, dtype] {
                                return smod->ibcast(*mid, me_mid, /*root=*/0,
                                                    seg, dtype,
                                                    CollConfig{});
                              }});
        } else {  // sb
          std::vector<int> deps;
          if (mb_node[i] >= 0) {
            deps.push_back(mb_node[i]);
          } else if (ib_node[i] >= 0) {
            deps.push_back(ib_node[i]);
          }
          g.add({s.op, s.level, leaf, t, i, seg.bytes, std::move(deps),
                 [smod, leaf, me_leaf, seg, dtype] {
                   return smod->ibcast(*leaf, me_leaf, /*root=*/0, seg,
                                       dtype, CollConfig{});
                 }});
        }
      });
  return g;
}

TaskGraph build_allreduce3(core::HanModule& m, core::Han3::Comm3& c3, int me,
                           BufView send, BufView recv, Datatype dtype,
                           ReduceOp op, const HanConfig& cfg) {
  TaskGraph g;
  mpi::SimWorld& w = m.world_ref();
  CollModule* imod = m.inter_module(cfg);
  CollModule* smod = m.intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const Segmenter segs(send.bytes, cfg.fs, dtype);
  const int u = segs.count();

  const mpi::Comm* leaf = c3.leaf[me];
  const int me_leaf = c3.leaf_rank[me];
  const bool numa_leader = c3.numa_leader(me);
  const bool node_leader = c3.node_leader(me);
  const bool has_leaf = leaf->size() > 1;
  const bool has_mid = c3.mid[me] != nullptr && c3.mid[me]->size() > 1;
  const bool has_up = c3.up[me] != nullptr;
  const int wr = leaf->world_rank(me_leaf);

  if (!has_leaf && !has_mid && !has_up) {
    // Degenerate case: single rank overall.
    if (w.data_mode() && send.has_data() && recv.has_data()) {
      std::memcpy(recv.data, send.data, send.bytes);
    }
    return g;
  }

  const mpi::Comm* up = has_up ? c3.up[me] : nullptr;
  const mpi::Comm* mid = c3.mid[me];
  const int me_up = up != nullptr ? up->comm_rank_of_world(wr) : -1;
  const int me_mid = mid != nullptr ? mid->comm_rank_of_world(wr) : -1;

  auto leaf_part =
      make_temp(g, w.data_mode() && numa_leader, send.bytes, dtype);
  auto node_part =
      make_temp(g, w.data_mode() && node_leader, send.bytes, dtype);

  auto leaf_contrib = [&](int i) {
    return has_leaf ? leaf_part->view(segs.offset(i), segs.length(i))
                    : seg_of(send, segs, i);
  };
  auto node_contrib = [&](int i) {
    return has_mid ? node_part->view(segs.offset(i), segs.length(i))
                   : leaf_contrib(i);
  };

  std::vector<int> sr_node(u, -1), mr_node(u, -1), ir_node(u, -1),
      ib_node(u, -1), mb_node(u, -1);
  auto first_of = [](std::initializer_list<int> ids) {
    std::vector<int> deps;
    for (int id : ids) {
      if (id >= 0) {
        deps.push_back(id);
        break;
      }
    }
    return deps;
  };

  for_each_task(
      allreduce3_shape(node_leader && has_up, numa_leader && has_mid,
                       has_leaf),
      u, [&](int t, const StageSpec& s, int i) {
        const std::string_view role(s.role);
        if (role == "sr") {  // leaf reduce to the NUMA leader
          const BufView src = seg_of(send, segs, i);
          const BufView dst =
              numa_leader ? leaf_part->view(segs.offset(i), segs.length(i))
                          : BufView::timing_only(segs.length(i), dtype);
          sr_node[i] =
              g.add({s.op, s.level, leaf, t, i, src.bytes, {},
                     [smod, leaf, me_leaf, src, dst, dtype, op] {
                       return smod->ireduce(*leaf, me_leaf, /*root=*/0, src,
                                            dst, dtype, op, CollConfig{});
                     }});
        } else if (role == "mr") {  // mid reduce to the node leader
          const BufView src = leaf_contrib(i);
          const BufView dst =
              node_leader ? node_part->view(segs.offset(i), segs.length(i))
                          : BufView::timing_only(segs.length(i), dtype);
          mr_node[i] =
              g.add({s.op, s.level, mid, t, i, src.bytes,
                     first_of({sr_node[i]}),
                     [smod, mid, me_mid, src, dst, dtype, op] {
                       return smod->ireduce(*mid, me_mid, /*root=*/0, src,
                                            dst, dtype, op, CollConfig{});
                     }});
        } else if (role == "ir") {  // inter-node reduce among node leaders
          const BufView src = node_contrib(i);
          const BufView dst = seg_of(recv, segs, i);
          ir_node[i] =
              g.add({s.op, s.level, up, t, i, src.bytes,
                     first_of({mr_node[i], sr_node[i]}),
                     [imod, up, me_up, src, dst, dtype, op, ircfg] {
                       return imod->ireduce(*up, me_up, /*root=*/0, src, dst,
                                            dtype, op, ircfg);
                     }});
        } else if (role == "ib") {  // inter-node bcast of the total
          const BufView seg = seg_of(recv, segs, i);
          ib_node[i] = g.add({s.op, s.level, up, t, i, seg.bytes,
                              first_of({ir_node[i]}),
                              [imod, up, me_up, seg, dtype, ibcfg] {
                                return imod->ibcast(*up, me_up, /*root=*/0,
                                                    seg, dtype, ibcfg);
                              }});
        } else if (role == "mb") {  // mid bcast to the numa leaders
          const BufView seg = seg_of(recv, segs, i);
          mb_node[i] = g.add({s.op, s.level, mid, t, i, seg.bytes,
                              first_of({ib_node[i]}),
                              [smod, mid, me_mid, seg, dtype] {
                                return smod->ibcast(*mid, me_mid, /*root=*/0,
                                                    seg, dtype,
                                                    CollConfig{});
                              }});
        } else {  // sb: leaf bcast
          const BufView seg = seg_of(recv, segs, i);
          g.add({s.op, s.level, leaf, t, i, seg.bytes,
                 first_of({mb_node[i], ib_node[i]}),
                 [smod, leaf, me_leaf, seg, dtype] {
                   return smod->ibcast(*leaf, me_leaf, /*root=*/0, seg,
                                       dtype, CollConfig{});
                 }});
        }
      });
  return g;
}

}  // namespace han::task

// Rail striping of inter-node collective calls (docs/FABRIC.md).
//
// On a multi-NIC machine a single inter-node operation drives one NIC and
// one fabric rail — 1/rails of the node's aggregate bandwidth. The tuned
// stripe factor `sf` (HanConfig::sf, ExaComm/HiCCL style) splits each
// inter-node operation into `sf` contiguous slices, slice r pinned to
// fabric rail r via CollConfig::rail; the slices run as independent
// module calls (each its own Plan, each on its own NIC lane) and are
// merged by a zero-cost wait-all gate. Every rank derives the same slice
// geometry from shared arguments, so cross-rank call-order matching is
// preserved. At sf == 1 the helpers collapse to the exact original single
// module call — the 1-rail golden-equivalence guarantee.
#pragma once

#include <algorithm>
#include <vector>

#include "coll/builders.hpp"
#include "coll/module.hpp"
#include "machine/machine.hpp"
#include "simmpi/request.hpp"

namespace han::task {

/// Effective stripe factor of an inter-node operation: the tuned sf
/// clamped to the machine's rails (striped configs degrade cleanly on
/// machines with fewer NICs) and to one datatype element per slice.
inline int effective_sf(int sf, const machine::MachineProfile& profile,
                        std::size_t bytes, mpi::Datatype dtype) {
  int e = std::min(sf, profile.nics_per_node);
  const std::size_t elem = mpi::type_size(dtype);
  if (elem > 0) {
    const std::size_t slices = bytes / elem;
    if (slices < static_cast<std::size_t>(e)) e = static_cast<int>(slices);
  }
  return std::max(1, e);
}

/// Slice geometry of a striped operation: ~bytes/sf per slice, aligned to
/// the datatype (the Segmenter may emit one extra tail slice after
/// alignment; rails are assigned modulo sf so it wraps onto rail 0).
inline coll::Segmenter stripe_slices(std::size_t bytes, int sf,
                                     mpi::Datatype dtype) {
  return coll::Segmenter(
      bytes, (bytes + static_cast<std::size_t>(sf) - 1) / sf, dtype);
}

inline mpi::Request striped_ibcast(sim::Engine& engine, coll::CollModule* mod,
                                   const mpi::Comm& comm, int me, int root,
                                   mpi::BufView buf, mpi::Datatype dtype,
                                   const coll::CollConfig& cfg, int sf) {
  if (sf <= 1) return mod->ibcast(comm, me, root, buf, dtype, cfg);
  const coll::Segmenter sl = stripe_slices(buf.bytes, sf, dtype);
  std::vector<mpi::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(sl.count()));
  for (int r = 0; r < sl.count(); ++r) {
    coll::CollConfig c = cfg;
    c.rail = r % sf;
    reqs.push_back(mod->ibcast(comm, me, root,
                               buf.slice(sl.offset(r), sl.length(r)), dtype,
                               c));
  }
  return mpi::wait_all(engine, std::move(reqs)).gate();
}

inline mpi::Request striped_ireduce(sim::Engine& engine,
                                    coll::CollModule* mod,
                                    const mpi::Comm& comm, int me, int root,
                                    mpi::BufView send, mpi::BufView recv,
                                    mpi::Datatype dtype, mpi::ReduceOp op,
                                    const coll::CollConfig& cfg, int sf) {
  if (sf <= 1) {
    return mod->ireduce(comm, me, root, send, recv, dtype, op, cfg);
  }
  const coll::Segmenter sl = stripe_slices(send.bytes, sf, dtype);
  std::vector<mpi::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(sl.count()));
  for (int r = 0; r < sl.count(); ++r) {
    coll::CollConfig c = cfg;
    c.rail = r % sf;
    reqs.push_back(mod->ireduce(comm, me, root,
                                send.slice(sl.offset(r), sl.length(r)),
                                recv.slice(sl.offset(r), sl.length(r)),
                                dtype, op, c));
  }
  return mpi::wait_all(engine, std::move(reqs)).gate();
}

}  // namespace han::task

// Pipeline shapes shared by the graph builders and the cost model.
//
// A HAN collective's stepped pipeline is fully described by an ordered
// stage list: stage s contributes the task for segment (t - lag_s) at
// step t. The list order is the per-step emission order (which fixes the
// FIFO order on the NIC / copy lanes, so it is semantically meaningful).
// task/builders.cpp maps each emitted (step, stage, seg) to an issue
// closure; autotune/costmodel.cpp walks the identical emission to sum
// benchmarked task costs along the critical path — the executor and the
// predictor can never disagree about structure.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/builders.hpp"
#include "han/task/graph.hpp"

namespace han::task {

struct StageSpec {
  const char* role;  // "sr" | "ir" | "ib" | "sb" | "mr" | "mb"
  Op op;
  Level level;
  int lag;            // segment index at step t is t - lag
  bool enabled = true;
};

inline int shape_steps(const std::vector<StageSpec>& stages, int u) {
  int max_lag = 0;
  for (const StageSpec& s : stages) {
    if (s.enabled && s.lag > max_lag) max_lag = s.lag;
  }
  return u + max_lag;  // steps run 0 .. u-1+max_lag
}

/// Invoke fn(step, stage, seg) for every task of the stepped pipeline, in
/// step order and, within a step, in stage-list order.
template <typename Fn>
void for_each_task(const std::vector<StageSpec>& stages, int u, Fn&& fn) {
  const int last = shape_steps(stages, u) - 1;
  for (int t = 0; t <= last; ++t) {
    for (const StageSpec& s : stages) {
      const int seg = t - s.lag;
      if (s.enabled && seg >= 0 && seg < u) fn(t, s, seg);
    }
  }
}

// --- canonical HAN shapes --------------------------------------------------
// Stage order within a step mirrors the paper's task sequences (and the
// seed implementation's issue order exactly).

/// Bcast leader (Fig. 1): ib(0); sbib(1..u-1); sb(u-1).
inline std::vector<StageSpec> bcast_shape(bool has_intra) {
  return {{"sb", Op::Bcast, Level::Intra, 1, has_intra},
          {"ib", Op::Bcast, Level::Inter, 0, true}};
}

/// Bcast non-leader: the intra stage alone.
inline std::vector<StageSpec> bcast_follower_shape() {
  return {{"sb", Op::Bcast, Level::Intra, 0, true}};
}

/// Reduce leader: sr(0); irsr(1..u-1); ir(u-1).
inline std::vector<StageSpec> reduce_shape(bool has_intra) {
  return {{"ir", Op::Reduce, Level::Inter, 1, true},
          {"sr", Op::Reduce, Level::Intra, 0, has_intra}};
}

inline std::vector<StageSpec> reduce_follower_shape() {
  return {{"sr", Op::Reduce, Level::Intra, 0, true}};
}

/// Allreduce leader (Fig. 5): the 4-stage sr → ir → ib → sb pipeline.
inline std::vector<StageSpec> allreduce_shape(bool has_intra) {
  return {{"sr", Op::Reduce, Level::Intra, 0, has_intra},
          {"ir", Op::Reduce, Level::Inter, 1, true},
          {"ib", Op::Bcast, Level::Inter, 2, true},
          {"sb", Op::Bcast, Level::Intra, 3, has_intra}};
}

/// Allreduce non-leader: contribute sr(t) while receiving sb(t-3).
inline std::vector<StageSpec> allreduce_follower_shape() {
  return {{"sr", Op::Reduce, Level::Intra, 0, true},
          {"sb", Op::Bcast, Level::Intra, 3, true}};
}

/// Reduce-scatter tree path, pipeline part: sr ⊕ ir reducing the whole
/// vector to up-root 0 (the inter scatter + intra scatter tails are
/// appended by the builder / walked by the model separately).
inline std::vector<StageSpec> reduce_scatter_tree_shape(bool has_intra) {
  return reduce_shape(has_intra);
}

/// 3-level Bcast: ib(t) → mb(t-1) → sb(t-2).
inline std::vector<StageSpec> bcast3_shape(bool has_up, bool has_mid,
                                           bool has_leaf) {
  return {{"ib", Op::Bcast, Level::Inter, 0, has_up},
          {"mb", Op::Bcast, Level::Mid, 1, has_mid},
          {"sb", Op::Bcast, Level::Intra, 2, has_leaf}};
}

/// 3-level Allreduce: sr → mr → ir → ib → mb → sb, each one segment
/// behind the previous.
inline std::vector<StageSpec> allreduce3_shape(bool has_up, bool has_mid,
                                               bool has_leaf) {
  return {{"sr", Op::Reduce, Level::Intra, 0, has_leaf},
          {"mr", Op::Reduce, Level::Mid, 1, has_mid},
          {"ir", Op::Reduce, Level::Inter, 2, has_up},
          {"ib", Op::Bcast, Level::Inter, 3, has_up},
          {"mb", Op::Bcast, Level::Mid, 4, has_mid},
          {"sb", Op::Bcast, Level::Intra, 5, has_leaf}};
}

/// Reduce-scatter ring path: the node region is cut into slices of
/// min(fs, region); slice k's strided inter-node ring overlaps slice
/// k+1's intra reduces. fn(k, off, len) per slice, in order.
template <typename Fn>
void for_each_ring_slice(std::size_t region, std::size_t fs,
                         mpi::Datatype dtype, Fn&& fn) {
  const coll::Segmenter sl(region, std::min(fs, region), dtype);
  for (int k = 0; k < sl.count(); ++k) fn(k, sl.offset(k), sl.length(k));
}

}  // namespace han::task

// Pipeline shapes shared by the graph builders and the cost model.
//
// A HAN collective's stepped pipeline is fully described by an ordered
// stage list: stage s contributes the task for segment (t - lag_s) at
// step t. The list order is the per-step emission order (which fixes the
// FIFO order on the NIC / copy lanes, so it is semantically meaningful).
// task/builders.cpp maps each emitted (step, stage, seg) to an issue
// closure; autotune/costmodel.cpp walks the identical emission to sum
// benchmarked task costs along the critical path — the executor and the
// predictor can never disagree about structure.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/builders.hpp"
#include "han/task/graph.hpp"

namespace han::task {

struct StageSpec {
  const char* role;  // "sr" | "ir" | "ib" | "sb" | "mr" | "mb"
  Op op;
  Level level;
  int lag;            // segment index at step t is t - lag
  bool enabled = true;
  int tier = 0;       // ladder level index (0 = innermost) for n-level shapes
};

inline int shape_steps(const std::vector<StageSpec>& stages, int u) {
  int max_lag = 0;
  for (const StageSpec& s : stages) {
    if (s.enabled && s.lag > max_lag) max_lag = s.lag;
  }
  return u + max_lag;  // steps run 0 .. u-1+max_lag
}

/// Invoke fn(step, stage, seg) for every task of the stepped pipeline, in
/// step order and, within a step, in stage-list order.
template <typename Fn>
void for_each_task(const std::vector<StageSpec>& stages, int u, Fn&& fn) {
  const int last = shape_steps(stages, u) - 1;
  for (int t = 0; t <= last; ++t) {
    for (const StageSpec& s : stages) {
      const int seg = t - s.lag;
      if (s.enabled && seg >= 0 && seg < u) fn(t, s, seg);
    }
  }
}

// --- canonical HAN shapes --------------------------------------------------
// Stage order within a step mirrors the paper's task sequences (and the
// seed implementation's issue order exactly).

/// Bcast leader (Fig. 1): ib(0); sbib(1..u-1); sb(u-1).
inline std::vector<StageSpec> bcast_shape(bool has_intra) {
  return {{"sb", Op::Bcast, Level::Intra, 1, has_intra},
          {"ib", Op::Bcast, Level::Inter, 0, true}};
}

/// Bcast non-leader: the intra stage alone.
inline std::vector<StageSpec> bcast_follower_shape() {
  return {{"sb", Op::Bcast, Level::Intra, 0, true}};
}

/// Reduce leader: sr(0); irsr(1..u-1); ir(u-1).
inline std::vector<StageSpec> reduce_shape(bool has_intra) {
  return {{"ir", Op::Reduce, Level::Inter, 1, true},
          {"sr", Op::Reduce, Level::Intra, 0, has_intra}};
}

inline std::vector<StageSpec> reduce_follower_shape() {
  return {{"sr", Op::Reduce, Level::Intra, 0, true}};
}

/// Allreduce leader (Fig. 5): the 4-stage sr → ir → ib → sb pipeline.
inline std::vector<StageSpec> allreduce_shape(bool has_intra) {
  return {{"sr", Op::Reduce, Level::Intra, 0, has_intra},
          {"ir", Op::Reduce, Level::Inter, 1, true},
          {"ib", Op::Bcast, Level::Inter, 2, true},
          {"sb", Op::Bcast, Level::Intra, 3, has_intra}};
}

/// Allreduce non-leader: contribute sr(t) while receiving sb(t-3).
inline std::vector<StageSpec> allreduce_follower_shape() {
  return {{"sr", Op::Reduce, Level::Intra, 0, true},
          {"sb", Op::Bcast, Level::Intra, 3, true}};
}

/// Reduce-scatter tree path, pipeline part: sr ⊕ ir reducing the whole
/// vector to up-root 0 (the inter scatter + intra scatter tails are
/// appended by the builder / walked by the model separately).
inline std::vector<StageSpec> reduce_scatter_tree_shape(bool has_intra) {
  return reduce_shape(has_intra);
}

// --- n-level ladder shapes -------------------------------------------------
// Generalizations of the canonical shapes to a communicator ladder of
// depth d (hierarchy.hpp). Stage roles follow the seed's naming: level 0
// is "s*" (shared/leaf), the top level is "i*" (inter), every level in
// between is "m*" (mid). Depth 2 reproduces the canonical shapes above —
// including their per-step emission order — exactly; depth 3 reproduces
// the retired bcast3/allreduce3 shapes exactly.

inline const char* ladder_role(int l, int top, bool bcast) {
  if (l == 0) return bcast ? "sb" : "sr";
  if (l == top) return bcast ? "ib" : "ir";
  return bcast ? "mb" : "mr";
}

/// Rooted bcast over a depth-d ladder: ib(t) → mb(t-1) → … → sb(t-(d-1)).
/// Depth 2 keeps the canonical {sb, ib} per-step emission order of
/// bcast_shape (frozen by the seed goldens); deeper ladders emit top-down.
inline std::vector<StageSpec> bcast_ladder_shape(
    const std::vector<Level>& level, const std::vector<bool>& enabled) {
  const int d = static_cast<int>(level.size());
  if (d == 2) {
    return {{"sb", Op::Bcast, level[0], 1, enabled[0], 0},
            {"ib", Op::Bcast, level[1], 0, enabled[1], 1}};
  }
  std::vector<StageSpec> s;
  for (int l = d - 1; l >= 0; --l) {
    s.push_back({ladder_role(l, d - 1, /*bcast=*/true), Op::Bcast, level[l],
                 d - 1 - l, enabled[l], l});
  }
  return s;
}

/// Rooted reduce over a depth-d ladder: the mirror pipeline, emitted
/// top-down like reduce_shape: ir(t-(d-1)) … mr(t-1), sr(t) — stage at
/// level l lags by l. Depth 2 is reduce_shape exactly.
inline std::vector<StageSpec> reduce_ladder_shape(
    const std::vector<Level>& level, const std::vector<bool>& enabled) {
  const int d = static_cast<int>(level.size());
  std::vector<StageSpec> s;
  for (int l = d - 1; l >= 0; --l) {
    s.push_back({ladder_role(l, d - 1, /*bcast=*/false), Op::Reduce, level[l],
                 l, enabled[l], l});
  }
  return s;
}

/// Allreduce over a depth-d ladder: the reduce stages ascend the ladder
/// (sr → mr → … → ir, level l lagging l), then the bcast stages descend
/// (ib → mb → … → sb, level l lagging 2d-1-l). Depth 2 is the paper's
/// 4-stage sr → ir → ib → sb (allreduce_shape) exactly; depth 3 is the
/// retired allreduce3 6-stage pipeline exactly.
inline std::vector<StageSpec> allreduce_ladder_shape(
    const std::vector<Level>& level, const std::vector<bool>& enabled) {
  const int d = static_cast<int>(level.size());
  std::vector<StageSpec> s;
  for (int l = 0; l < d; ++l) {
    s.push_back({ladder_role(l, d - 1, /*bcast=*/false), Op::Reduce, level[l],
                 l, enabled[l], l});
  }
  for (int l = d - 1; l >= 0; --l) {
    s.push_back({ladder_role(l, d - 1, /*bcast=*/true), Op::Bcast, level[l],
                 2 * d - 1 - l, enabled[l], l});
  }
  return s;
}

/// Reduce-scatter ring path: the node region is cut into slices of
/// min(fs, region); slice k's strided inter-node ring overlaps slice
/// k+1's intra reduces. fn(k, off, len) per slice, in order.
template <typename Fn>
void for_each_ring_slice(std::size_t region, std::size_t fs,
                         mpi::Datatype dtype, Fn&& fn) {
  const coll::Segmenter sl(region, std::min(fs, region), dtype);
  for (int k = 0; k < sl.count(); ++k) fn(k, sl.offset(k), sl.length(k));
}

}  // namespace han::task

// TaskScheduler: executes any acyclic TaskGraph over the CollModule
// interface with a configurable in-flight step window.
//
// A node becomes issuable when (a) all its dependency nodes completed,
// (b) its step lies inside the window: step < frontier + window, where
// the frontier is the earliest step with incomplete tasks, and (c) every
// earlier-emitted node on the same communicator has been issued (per-comm
// FIFO — CollRuntime matches collective instances by per-rank call order,
// so the issue order must stay identical across ranks regardless of
// window). Window 1 reproduces the seed coroutines' lock-step wait_all
// barrier semantics exactly; larger windows let later steps start as soon
// as their data dependencies allow — a new tunable (HanConfig::window).
#pragma once

#include "coll/runtime.hpp"
#include "han/task/graph.hpp"

namespace han::task {

class TaskScheduler {
 public:
  /// Execute `graph`. Returns a request that completes when every node
  /// has completed; an empty graph completes it synchronously. The graph
  /// is validated (HAN_ASSERT on malformed input). `trace_rank` labels
  /// tracer spans and is the owning rank's world rank.
  static mpi::Request run(coll::CollRuntime& rt, TaskGraph graph, int window,
                          int trace_rank);
};

}  // namespace han::task

#include "han/task/graph.hpp"

#include <algorithm>

namespace han::task {

const char* level_name(Level level) {
  switch (level) {
    case Level::Intra: return "intra";
    case Level::Mid: return "mid";
    case Level::Inter: return "inter";
    case Level::Local: return "local";
  }
  return "?";
}

const char* op_name(Op op) {
  switch (op) {
    case Op::Bcast: return "bcast";
    case Op::Reduce: return "reduce";
    case Op::Gather: return "gather";
    case Op::Scatter: return "scatter";
    case Op::Allgather: return "allgather";
    case Op::ReduceScatter: return "reduce_scatter";
    case Op::Barrier: return "barrier";
  }
  return "?";
}

int TaskGraph::max_step() const {
  int m = -1;
  for (const TaskNode& n : nodes) m = std::max(m, n.step);
  return m;
}

std::string validate_graph(const TaskGraph& graph) {
  const int n = static_cast<int>(graph.nodes.size());
  std::vector<int> indegree(n, 0);
  for (int i = 0; i < n; ++i) {
    const TaskNode& node = graph.nodes[i];
    if (!node.issue) {
      return "node " + std::to_string(i) + " has no issue closure";
    }
    if (node.step < 0) {
      return "node " + std::to_string(i) + " has negative step " +
             std::to_string(node.step);
    }
    for (int d : node.deps) {
      if (d < 0 || d >= n) {
        return "node " + std::to_string(i) + " depends on out-of-range node " +
               std::to_string(d);
      }
      if (d == i) return "node " + std::to_string(i) + " depends on itself";
      ++indegree[i];
    }
  }
  // Kahn's algorithm: every node must be reachable from the dep-free set.
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<std::vector<int>> dependents(n);
  for (int i = 0; i < n; ++i) {
    for (int d : graph.nodes[i].deps) dependents[d].push_back(i);
  }
  int visited = 0;
  while (!ready.empty()) {
    const int i = ready.back();
    ready.pop_back();
    ++visited;
    for (int j : dependents[i]) {
      if (--indegree[j] == 0) ready.push_back(j);
    }
  }
  if (visited != n) {
    return "dependency cycle among " + std::to_string(n - visited) +
           " of " + std::to_string(n) + " nodes";
  }
  return "";
}

}  // namespace han::task

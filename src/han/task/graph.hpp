// TaskGraph: the first-class IR of a HAN collective (paper §III).
//
// A hierarchical collective is a DAG of per-level sub-collectives
// ("tasks"). Each node binds the operation kind, the hierarchy level, the
// communicator it runs on, its segment, and an issue closure carrying the
// bound submodule + buffers + configuration. Edges are explicit data
// dependencies; the pipeline *step* expresses the paper's lock-step
// barrier structure (all tasks of step t start once step t-1 finished —
// at scheduler window 1 — while larger windows let later steps start as
// soon as their data dependencies allow).
//
// The same graph shape drives both execution (task/scheduler.hpp) and
// cost prediction (autotune/costmodel.cpp walks shapes from
// task/shapes.hpp) — one source of truth, so the model cannot drift from
// the executor.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/request.hpp"

namespace han::task {

enum class Level { Intra, Mid, Inter, Local };
enum class Op {
  Bcast,
  Reduce,
  Gather,
  Scatter,
  Allgather,
  ReduceScatter,
  Barrier,
};

const char* level_name(Level level);
const char* op_name(Op op);

struct TaskNode {
  Op op = Op::Bcast;
  Level level = Level::Intra;
  const mpi::Comm* comm = nullptr;  // communicator the task runs on
  int step = 0;                     // pipeline step (window gating)
  int seg = -1;                     // segment index; -1 = whole message
  std::size_t bytes = 0;            // payload moved (tracing)
  std::vector<int> deps;            // prerequisite node indices
  std::function<mpi::Request()> issue;  // bound submodule call
};

struct TaskGraph {
  std::vector<TaskNode> nodes;
  /// Owners of temp buffers the issue closures slice into; released when
  /// the scheduler finishes.
  std::vector<std::shared_ptr<void>> keepalive;

  int add(TaskNode node) {
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }
  bool empty() const { return nodes.empty(); }
  int max_step() const;
};

/// Structural validation: returns "" when the graph is well-formed, else a
/// description of the first defect. Checks issue closures, dep indices,
/// self-dependencies, negative steps, and acyclicity (Kahn).
std::string validate_graph(const TaskGraph& graph);

}  // namespace han::task

#include "han/task/scheduler.hpp"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace han::task {

namespace {

constexpr int kOpCount = static_cast<int>(Op::Barrier) + 1;

/// Per-run execution state, kept alive by the completion callbacks.
struct Exec : std::enable_shared_from_this<Exec> {
  coll::CollRuntime* rt = nullptr;
  TaskGraph g;
  int window = 1;
  int trace_rank = 0;
  mpi::Request done;

  std::vector<int> deps_left;
  std::vector<char> issued;
  std::vector<std::vector<int>> dependents;
  std::vector<int> ctx_prev;  // previous node on the same comm, -1 if none
  std::vector<long> step_total, step_done;
  int frontier = 0;
  int remaining = 0;

  obs::Gauge* inflight = nullptr;
  obs::Counter* c_issued = nullptr;
  obs::Counter* c_completed = nullptr;
  std::array<obs::Counter*, kOpCount> c_per_op{};  // cached off the hot loop

  void init() {
    const int n = static_cast<int>(g.nodes.size());
    deps_left.assign(n, 0);
    issued.assign(n, 0);
    dependents.assign(n, {});
    ctx_prev.assign(n, -1);
    const int steps = g.max_step() + 1;
    step_total.assign(steps, 0);
    step_done.assign(steps, 0);
    remaining = n;

    // Per-comm FIFO threading: a graph touches a handful of communicators
    // (intra/mid/inter), so a flat {ctx, last node} vector with a linear
    // scan beats a hash map on every shape we build.
    std::vector<std::pair<int, int>> last_on_ctx;
    for (int i = 0; i < n; ++i) {
      const TaskNode& node = g.nodes[i];
      deps_left[i] = static_cast<int>(node.deps.size());
      for (int d : node.deps) dependents[d].push_back(i);
      ++step_total[node.step];
      if (node.comm != nullptr) {
        const int ctx = node.comm->context();
        bool found = false;
        for (auto& [c, last] : last_on_ctx) {
          if (c == ctx) {
            ctx_prev[i] = last;
            last = i;
            found = true;
            break;
          }
        }
        if (!found) last_on_ctx.emplace_back(ctx, i);
      }
    }
    while (frontier < steps && step_done[frontier] == step_total[frontier]) {
      ++frontier;
    }

    obs::MetricsRegistry& m = rt->world().metrics();
    inflight = &m.gauge("han.task.inflight");
    c_issued = &m.counter("han.task.issued");
    c_completed = &m.counter("han.task.completed");
    for (const TaskNode& node : g.nodes) {
      auto& slot = c_per_op[static_cast<int>(node.op)];
      if (slot == nullptr) {
        slot = &m.counter(std::string("han.task.op.") + op_name(node.op));
      }
    }
    m.counter("han.task.graphs").add(1.0);
    m.counter("han.task.nodes").add(static_cast<double>(n));
  }

  bool issuable(int i) const {
    return !issued[i] && deps_left[i] == 0 &&
           g.nodes[i].step < frontier + window &&
           (ctx_prev[i] < 0 || issued[ctx_prev[i]]);
  }

  /// Issue everything currently issuable, in emission order. A single
  /// forward pass suffices: issuing node i can only unblock (via the
  /// per-comm FIFO) nodes emitted after it.
  void pump() {
    for (int i = 0; i < static_cast<int>(g.nodes.size()); ++i) {
      if (!issuable(i)) continue;
      issued[i] = 1;
      c_issued->add(1.0);
      c_per_op[static_cast<int>(g.nodes[i].op)]->add(1.0);
      const double t0 = rt->world().now();
      inflight->add(t0, 1.0);
      mpi::Request req = g.nodes[i].issue();
      HAN_ASSERT_MSG(req != nullptr, "task issue returned a null request");
      req->on_complete([self = shared_from_this(), i, t0] {
        self->finish(i, t0);
      });
    }
  }

  void finish(int i, double t0) {
    const double now = rt->world().now();
    inflight->add(now, -1.0);
    c_completed->add(1.0);
    if (sim::Tracer* tr = rt->tracer()) {
      const TaskNode& node = g.nodes[i];
      const std::string name = std::string("task.") + level_name(node.level) +
                               "." + op_name(node.op);
      tr->span(trace_rank, "han.task", name, t0, now,
               rt->world().rank(trace_rank).node);
    }
    ++step_done[g.nodes[i].step];
    const int steps = static_cast<int>(step_total.size());
    while (frontier < steps && step_done[frontier] == step_total[frontier]) {
      ++frontier;
    }
    for (int j : dependents[i]) --deps_left[j];
    if (--remaining == 0) {
      g.keepalive.clear();
      done->complete();
      return;
    }
    pump();
  }
};

}  // namespace

mpi::Request TaskScheduler::run(coll::CollRuntime& rt, TaskGraph graph,
                                int window, int trace_rank) {
  HAN_ASSERT_MSG(window >= 1, "scheduler window must be >= 1");
  const std::string defect = validate_graph(graph);
  HAN_ASSERT_MSG(defect.empty(), defect.c_str());
  mpi::Request done = mpi::make_request(rt.world().engine());
  if (graph.empty()) {
    done->complete();  // degenerate: nothing to run
    return done;
  }
  auto exec = std::make_shared<Exec>();
  exec->rt = &rt;
  exec->g = std::move(graph);
  exec->window = window;
  exec->trace_rank = trace_rank;
  exec->done = done;
  exec->init();
  exec->pump();
  return done;
}

}  // namespace han::task

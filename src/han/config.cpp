#include "han/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "han/synth/spec.hpp"
#include "simbase/units.hpp"

namespace han::core {

namespace {

coll::Algorithm parse_alg(const std::string& s, bool* ok) {
  *ok = true;
  if (s == "chain") return coll::Algorithm::Chain;
  if (s == "binary") return coll::Algorithm::Binary;
  if (s == "binomial") return coll::Algorithm::Binomial;
  if (s == "linear") return coll::Algorithm::Linear;
  if (s == "recdoub") return coll::Algorithm::RecursiveDoubling;
  if (s == "ring") return coll::Algorithm::Ring;
  if (s == "default") return coll::Algorithm::Default;
  *ok = false;
  return coll::Algorithm::Default;
}

}  // namespace

std::string HanConfig::to_string() const {
  std::string out;
  out += "fs=" + sim::format_bytes(fs);
  out += " imod=" + imod;
  out += " smod=" + smod;
  out += " ibalg=" + std::string(coll::algorithm_name(ibalg));
  out += " iralg=" + std::string(coll::algorithm_name(iralg));
  out += " ibs=" + sim::format_bytes(ibs);
  out += " irs=" + sim::format_bytes(irs);
  out += " window=" + std::to_string(window);
  // Optional tokens only appear when non-default, so flat 2-level config
  // strings (and their goldens) are unchanged.
  if (lvl != 0) out += " lvl=" + std::to_string(lvl);
  if (malg != coll::Algorithm::Default) {
    out += " malg=" + std::string(coll::algorithm_name(malg));
  }
  if (ms != 0) out += " ms=" + sim::format_bytes(ms);
  if (zcs != 0) out += " zcs=" + sim::format_bytes(zcs);
  if (sf != 1) out += " sf=" + std::to_string(sf);
  if (!sched.empty()) out += " sched=" + sched;
  return out;
}

bool HanConfig::parse(const std::string& text, HanConfig* out) {
  HanConfig cfg;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eq = text.find('=', pos);
    if (eq == std::string::npos) return false;
    const std::string key = text.substr(pos, eq - pos);
    std::size_t end = text.find(' ', eq + 1);
    if (end == std::string::npos) end = text.size();
    const std::string value = text.substr(eq + 1, end - eq - 1);
    bool ok = true;
    if (key == "fs") {
      cfg.fs = sim::parse_bytes(value, &ok);
    } else if (key == "imod") {
      // Closed sets: a truncated module name must fail here, loudly, not
      // surface later as a missing-module assert (or worse, be cached).
      ok = value == "libnbc" || value == "adapt" || value == "ring";
      if (ok) cfg.imod = value;
    } else if (key == "smod") {
      ok = value == "sm" || value == "solo";
      if (ok) cfg.smod = value;
    } else if (key == "ibalg") {
      cfg.ibalg = parse_alg(value, &ok);
    } else if (key == "iralg") {
      cfg.iralg = parse_alg(value, &ok);
    } else if (key == "ibs") {
      cfg.ibs = sim::parse_bytes(value, &ok);
    } else if (key == "irs") {
      cfg.irs = sim::parse_bytes(value, &ok);
    } else if (key == "window") {
      char* rest = nullptr;
      const long v = std::strtol(value.c_str(), &rest, 10);
      ok = rest != nullptr && *rest == '\0' && !value.empty() && v >= 1;
      if (ok) cfg.window = static_cast<int>(v);
    } else if (key == "lvl") {
      char* rest = nullptr;
      const long v = std::strtol(value.c_str(), &rest, 10);
      // 0 = derive; explicit depths must be plausible ladders. Anything
      // else (including the reserved 1) is rejected loudly.
      ok = rest != nullptr && *rest == '\0' && !value.empty() &&
           (v == 0 || (v >= 2 && v <= 8));
      if (ok) cfg.lvl = static_cast<int>(v);
    } else if (key == "malg") {
      cfg.malg = parse_alg(value, &ok);
    } else if (key == "ms") {
      cfg.ms = sim::parse_bytes(value, &ok);
    } else if (key == "zcs") {
      cfg.zcs = sim::parse_bytes(value, &ok);
    } else if (key == "sf") {
      char* rest = nullptr;
      const long v = std::strtol(value.c_str(), &rest, 10);
      // Stripe factors are small NIC counts; 64 bounds any plausible node.
      ok = rest != nullptr && *rest == '\0' && !value.empty() && v >= 1 &&
           v <= 64;
      if (ok) cfg.sf = static_cast<int>(v);
    } else if (key == "sched") {
      synth::SynthSpec spec;
      ok = synth::SynthSpec::parse(value, &spec);
      if (ok) cfg.sched = value;
    } else {
      ok = false;
    }
    if (!ok) return false;
    pos = end + (end < text.size() ? 1 : 0);
  }
  *out = cfg;
  return true;
}

}  // namespace han::core

// han::verify — static race/deadlock analysis of collective schedules.
//
// Model-checks schedules *without executing them*, extending the
// structural checks (coll::validate_plan, task::validate_graph) into
// semantic analysis at both layers of the stack:
//
//  * Plan level (analyze_plan): the cross-rank wait-for graph is built
//    from send/recv peer+tag matching under per-pair FIFO semantics.
//    Unmatched operations, size-mismatched pairs, ambiguous match order
//    (two same-key operations not happens-before ordered on their rank)
//    and wait cycles are reported with a minimal witness cycle. A
//    byte-interval happens-before pass over every rank's action set then
//    detects buffer races: two actions touching overlapping
//    [offset, offset+len) ranges of one buffer slot, at least one
//    writing, with no dependency path between them. Accesses are
//    modelled at the instants the runtime performs them — a send
//    snapshots its payload synchronously at issue, recv delivery and
//    copy/reduce application mutate storage at completion. Reduction
//    accumulations are tracked as their own access class so legal
//    recv-reduce chains are not flagged, while an *unordered* pair of
//    accumulations (a floating-point determinism hazard) gets its own
//    diagnostic.
//
//  * TaskGraph level (analyze_task_graphs): every rank's task graph for
//    one collective operation, checked under the TaskScheduler's issue
//    rules — data dependencies, per-comm FIFO, and the in-flight step
//    window w. Cross-rank edges come from collective-instance matching
//    (the k-th task on a communicator context forms one instance across
//    all member ranks; a rank's instance cannot complete until every
//    member issued its part — the rendezvous-conservative rule). A cycle
//    at window w is a deadlock at that window; the analysis is
//    parameterized by w, so a graph that is only safe at some windows is
//    reported per window with a witness cycle. Mismatched per-context
//    task counts or operation sequences across member ranks (the classic
//    crossed-call-order bug) get dedicated diagnostics.
//
// All analyses are pure functions of the schedule: no simulator state,
// deterministic findings order. docs/VERIFICATION.md has the algorithms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/plan.hpp"

namespace han::task {
struct TaskGraph;
}
namespace han::coll {
class CollRuntime;
}

namespace han::verify {

/// Diagnostic classes. Every finding carries exactly one.
enum class Diag {
  UnmatchedSend,         // send with no matching recv (hangs in rendezvous)
  UnmatchedRecv,         // recv with no matching send (always hangs)
  SizeMismatch,          // matched pair moves differing byte counts
  MatchOrderAmbiguous,   // same (peer, tag) ops: posting order inverted by
                         // deps (error) or merely HB-unordered (warning)
  WaitCycle,             // cycle in the plan's cross-rank wait-for graph
  BufferRace,            // overlapping access, >= 1 write, no HB path
  ReduceOrderAmbiguous,  // unordered accumulation pair (fp determinism)
  CrossAccessUnordered,  // Cross* action unordered with its peer's actions
  CollectiveCountMismatch,  // ranks disagree on #collectives per context
  CollectiveOrderMismatch,  // ranks disagree on a context's op sequence
  GraphWaitCycle,        // cycle in the task-level wait-for graph
};

const char* diag_name(Diag d);

enum class Severity { Error, Warning };

/// One element of a wait-for-cycle witness: the issue or completion event
/// of an action (plan level) or task node (graph level).
struct Event {
  int rank = -1;
  int index = -1;   // action index / task node index within the rank
  bool completion = false;  // false = issue event
};

struct Finding {
  Diag code = Diag::WaitCycle;
  Severity severity = Severity::Error;
  std::string message;      // human-readable, includes the witness
  std::vector<Event> cycle; // wait-cycle witness (minimal), else empty
  // Conflicting-pair witness (races / mismatches); -1 when not applicable.
  int rank_a = -1, index_a = -1;
  int rank_b = -1, index_b = -1;
  int slot = -1;                   // raced buffer slot
  std::size_t lo = 0, hi = 0;      // overlapping byte interval [lo, hi)
};

struct Options {
  /// Treat every send as rendezvous (completes only once the matching
  /// recv is posted). The conservative portable-MPI assumption; plans
  /// that only terminate because small sends complete eagerly are
  /// exactly the silent hangs this analyzer exists to catch.
  bool assume_rendezvous = true;
  bool check_deadlock = true;
  bool check_races = true;
  /// Upper bound on overlapping-pair happens-before queries per plan; a
  /// plan exceeding it reports truncated analysis (never silently).
  std::size_t max_race_pairs = 1u << 20;
};

struct Report {
  std::vector<Finding> findings;
  // Analysis footprint (for reports and tests).
  int actions = 0;        // plan actions / graph nodes analyzed
  int match_edges = 0;    // matched send/recv pairs (plan level)
  int race_pairs = 0;     // overlapping-pair HB queries performed
  bool truncated = false; // max_race_pairs hit

  bool clean() const {
    for (const Finding& f : findings) {
      if (f.severity == Severity::Error) return false;
    }
    return true;
  }
  int error_count() const {
    int n = 0;
    for (const Finding& f : findings) n += f.severity == Severity::Error;
    return n;
  }
  /// One line per finding, deterministic order.
  std::string to_string() const;
};

/// Semantic analysis of one collective Plan (all ranks). The plan must
/// already pass coll::validate_plan (callers assert that first).
Report analyze_plan(const coll::Plan& plan, int comm_size,
                    const Options& opts = {});

// ---- task-graph level -------------------------------------------------

/// Structural projection of one rank's TaskGraph: just what the
/// scheduler's issue rules and cross-rank matching see. `members` holds
/// the world ranks of the node's communicator so instances can be
/// stitched across ranks; `ctx` is the communicator context id.
struct GraphNodeSummary {
  int ctx = -1;
  int step = 0;
  int op = -1;       // task::Op, as int (kept abstract for mutation tests)
  std::vector<int> deps;
  std::vector<int> members;  // world ranks of the comm; empty if no comm
};

struct GraphSummary {
  int world_rank = -1;
  std::vector<GraphNodeSummary> nodes;
};

/// Project a built TaskGraph into its analyzable structure.
GraphSummary summarize(const task::TaskGraph& graph, int world_rank);

/// Deadlock analysis of one collective operation's per-rank task graphs
/// under scheduler window `window` (>= 1). `graphs` holds one summary per
/// participating rank (any order; ranks identified by world_rank).
Report analyze_task_graphs(const std::vector<GraphSummary>& graphs,
                           int window, const Options& opts = {});

// ---- runtime gate -------------------------------------------------------

/// Arm `rt`'s pre-execution plan-checker with analyze_plan: every freshly
/// built Plan is analyzed before scheduling and any Error finding aborts
/// execution with the report (CollRuntime::set_plan_checker). Test
/// harnesses arm this in debug runs; `han_verify --exec` uses a recording
/// variant of the same hook.
void arm_plan_gate(coll::CollRuntime& rt, Options opts = {});

}  // namespace han::verify

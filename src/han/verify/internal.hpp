// Shared graph machinery for the verify analyses: memoized reachability,
// iterative Tarjan SCC, and shortest-cycle witness extraction. Internal to
// src/han/verify/ — not part of the public API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace han::verify::internal {

/// Memoizing forward-reachability oracle over an event digraph.
class ReachOracle {
 public:
  explicit ReachOracle(const std::vector<std::vector<int>>& adj)
      : adj_(&adj), words_((adj.size() + 63) / 64) {}

  bool reaches(int from, int to) {
    const std::vector<std::uint64_t>& bits = closure(from);
    return get_bit(bits, to);
  }

 private:
  const std::vector<std::uint64_t>& closure(int from) {
    auto it = cache_.find(from);
    if (it != cache_.end()) return it->second;
    std::vector<std::uint64_t> bits(words_, 0);
    std::vector<int> stack{from};
    set_bit(bits, from);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int w : (*adj_)[v]) {
        if (!get_bit(bits, w)) {
          set_bit(bits, w);
          stack.push_back(w);
        }
      }
    }
    return cache_.emplace(from, std::move(bits)).first->second;
  }

  static void set_bit(std::vector<std::uint64_t>& bits, int i) {
    bits[static_cast<std::size_t>(i) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
  }
  static bool get_bit(const std::vector<std::uint64_t>& bits, int i) {
    return (bits[static_cast<std::size_t>(i) / 64] >>
            (static_cast<std::size_t>(i) % 64)) & 1u;
  }

  const std::vector<std::vector<int>>* adj_;
  std::size_t words_;
  std::map<int, std::vector<std::uint64_t>> cache_;
};

/// Iterative Tarjan SCC; returns the component id of every node, with
/// components numbered in deterministic (reverse topological) order.
inline std::vector<int> tarjan_scc(const std::vector<std::vector<int>>& adj,
                                   int* num_components) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  std::vector<Frame> frames;
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        const int w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        const int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
        if (low[v] == index[v]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp[w] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
      }
    }
  }
  *num_components = next_comp;
  return comp;
}

/// Shortest cycle through `start` staying inside its SCC (BFS). The SCC is
/// nontrivial, so a cycle exists.
inline std::vector<int> witness_cycle(
    const std::vector<std::vector<int>>& adj, const std::vector<int>& comp,
    int start) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> parent(n, -2);
  std::vector<int> queue{start};
  parent[start] = -1;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int v = queue[qi];
    for (int w : adj[v]) {
      if (comp[w] != comp[start]) continue;
      if (w == start) {
        std::vector<int> cycle{start};
        for (int x = v; x != -1; x = parent[x]) cycle.push_back(x);
        std::reverse(cycle.begin() + 1, cycle.end());
        return cycle;
      }
      if (parent[w] == -2) {
        parent[w] = v;
        queue.push_back(w);
      }
    }
  }
  return {start};  // unreachable for a nontrivial SCC
}

}  // namespace han::verify::internal

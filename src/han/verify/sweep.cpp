#include "han/verify/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>

#include "autotune/search.hpp"
#include "coll/builders.hpp"
#include "parallel/pool.hpp"
#include "coll/registry.hpp"
#include "coll/ring/ring_builders.hpp"
#include "coll/validate.hpp"
#include "han/han.hpp"
#include "han/synth/schedule_builder.hpp"
#include "han/task/builders.hpp"
#include "machine/machine.hpp"

namespace han::verify {

namespace {

using coll::Algorithm;
using coll::BuildSpec;
using coll::CollKind;
using core::HanConfig;
using mpi::BufView;
using mpi::Datatype;

void record(SweepResult& out, std::string name, const Report& rep) {
  SweepEntry e;
  e.name = std::move(name);
  e.actions = rep.actions;
  for (const Finding& f : rep.findings) {
    if (f.severity == Severity::Error) {
      ++e.errors;
    } else {
      ++e.warnings;
    }
    e.lines.push_back(
        std::string(f.severity == Severity::Error ? "error[" : "warning[") +
        diag_name(f.code) + "]: " + f.message);
  }
  if (rep.truncated) {
    ++e.errors;
    e.lines.push_back("error[truncated]: race analysis hit max_race_pairs");
  }
  out.entries.push_back(std::move(e));
}

void record_defect(SweepResult& out, std::string name, std::string defect) {
  SweepEntry e;
  e.name = std::move(name);
  e.errors = 1;
  e.lines.push_back("error[invalid]: " + std::move(defect));
  out.entries.push_back(std::move(e));
}

// ---- plan.* family ------------------------------------------------------

void plan_case(SweepResult& out, const std::string& name,
               const coll::Plan& plan, int comm_size) {
  std::string defect = coll::validate_plan(plan, comm_size);
  if (!defect.empty()) {
    record_defect(out, name, std::move(defect));
    return;
  }
  record(out, name, analyze_plan(plan, comm_size));
}

/// One plan-family sweep job: every builder at one communicator size.
void sweep_plans_for(SweepResult& out, int n) {
  struct SizeCase {
    const char* tag;
    std::size_t bytes;
    std::size_t segment;
  };
  // 4 KiB unsegmented plus a pipelined 1 MiB / 64 KiB split; byte counts
  // stay Int32-aligned for the reduce family.
  const SizeCase kSizes[] = {{"small", 4 << 10, 0},
                             {"pipe", 1 << 20, 64 << 10}};
  const Algorithm kTreeAlgs[] = {Algorithm::Linear, Algorithm::Chain,
                                 Algorithm::Binary, Algorithm::Binomial};

  {
    for (const SizeCase& sz : kSizes) {
      BuildSpec spec;
      spec.bytes = sz.bytes;
      spec.segment = sz.segment;
      spec.dtype = Datatype::Int32;
      const std::string suffix =
          ".n" + std::to_string(n) + "." + sz.tag;
      for (Algorithm alg : kTreeAlgs) {
        BuildSpec s = spec;
        s.alg = alg;
        plan_case(out, std::string("plan.tree_bcast.") +
                           coll::algorithm_name(alg) + suffix,
                  coll::build_tree_bcast(n, s), n);
        plan_case(out, std::string("plan.tree_reduce.") +
                           coll::algorithm_name(alg) + suffix,
                  coll::build_tree_reduce(n, s), n);
        // Non-zero root exercises the builders' rank rotation.
        if (n > 2) {
          s.root = 1;
          plan_case(out, std::string("plan.tree_bcast.") +
                             coll::algorithm_name(alg) + ".root1" + suffix,
                    coll::build_tree_bcast(n, s), n);
          plan_case(out, std::string("plan.tree_reduce.") +
                             coll::algorithm_name(alg) + ".root1" + suffix,
                    coll::build_tree_reduce(n, s), n);
        }
      }
      plan_case(out, "plan.recdoub_allreduce" + suffix,
                coll::build_recdoub_allreduce(n, spec), n);
      plan_case(out, "plan.linear_gather" + suffix,
                coll::build_linear_gather(n, spec), n);
      plan_case(out, "plan.linear_scatter" + suffix,
                coll::build_linear_scatter(n, spec), n);
      {
        // Ring chunks are bytes/n; keep them element-aligned and nonzero.
        BuildSpec rs = spec;
        rs.bytes = static_cast<std::size_t>(n) * (64 << 10);
        plan_case(out, "plan.ring_reduce_scatter" + suffix,
                  coll::build_ring_reduce_scatter(n, rs), n);
        plan_case(out, "plan.ring_allreduce" + suffix,
                  coll::build_ring_allreduce(n, rs), n);
        BuildSpec st = spec;
        st.bytes = static_cast<std::size_t>(n) * (32 << 10);
        plan_case(out, "plan.ring_reduce_scatter_strided" + suffix,
                  coll::build_ring_reduce_scatter_strided(
                      n, st, /*chunk_stride=*/32 << 10,
                      /*chunk_bytes=*/16 << 10),
                  n);
        plan_case(out, "plan.ring_allgather" + suffix,
                  coll::build_ring_allgather(n, spec), n);
      }
    }
    BuildSpec barrier;
    plan_case(out, "plan.dissemination_barrier.n" + std::to_string(n),
              coll::build_dissemination_barrier(n, barrier), n);
  }
}

// ---- graph.* family -----------------------------------------------------

struct GraphWorld {
  explicit GraphWorld(machine::MachineProfile profile)
      : world(std::move(profile)),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

/// Build one rank's graph, or record the structural defect and return
/// false.
bool checked_summarize(SweepResult& out, const std::string& name, int rank,
                       task::TaskGraph graph,
                       std::vector<GraphSummary>& summaries) {
  const std::string defect = task::validate_graph(graph);
  if (!defect.empty()) {
    record_defect(out, name,
                  "rank " + std::to_string(rank) + ": " + defect);
    return false;
  }
  summaries.push_back(summarize(graph, rank));
  return true;
}

void graph_case(SweepResult& out, const std::string& name,
                const std::vector<GraphSummary>& summaries,
                const std::vector<int>& windows) {
  for (int w : windows) {
    record(out, name + ".w" + std::to_string(w),
           analyze_task_graphs(summaries, w));
  }
}

/// The SearchSpace a sweep enumerates (full, or the smoke subset: one
/// inter/intra module combination per segment size).
tune::SearchSpace sweep_space(bool full_space) {
  tune::SearchSpace space;
  if (!full_space) {
    space.imods = {"adapt"};
    space.adapt_algs = {Algorithm::Chain};
    space.adapt_inter_segments = {32 << 10};
  }
  return space;
}

constexpr std::size_t kGraphBytes = 1 << 20;

/// One graph-family sweep job: every SearchSpace config of one collective
/// kind on one topology. Owns its world — jobs share nothing.
void graph_kind_job(SweepResult& out, const char* topo_tag, int topo_nodes,
                    int topo_ppn, CollKind kind, bool full_kind,
                    bool full_space, const std::vector<int>& windows) {
  GraphWorld gw(machine::make_aries(topo_nodes, topo_ppn));
  const mpi::Comm& wc = gw.world.world_comm();
  const int n = wc.size();
  const std::size_t kBytes = kGraphBytes;
  const std::string tprefix = std::string("graph.") + topo_tag + ".";
  tune::SearchSpace ks = sweep_space(full_space);
  if (!full_kind) {
    // The linear-phase collectives ignore the inter knobs.
    ks.imods = {"libnbc"};
    ks.include_ring = false;
  }
  for (const HanConfig& cfg : ks.enumerate(kind)) {
    const std::string name = tprefix + coll::coll_kind_name(kind) +
                             "." + cfg.to_string();
    std::vector<GraphSummary> summaries;
    bool ok = true;
    for (int me = 0; me < n && ok; ++me) {
      task::TaskGraph g;
      switch (kind) {
        case CollKind::Bcast:
          g = task::build_bcast(gw.han, wc, me, 0,
                                BufView::timing_only(kBytes),
                                Datatype::Byte, cfg);
          break;
        case CollKind::Reduce:
          g = task::build_reduce(gw.han, wc, me, 0,
                                 BufView::timing_only(kBytes),
                                 BufView::timing_only(kBytes),
                                 Datatype::Int32, mpi::ReduceOp::Sum,
                                 cfg);
          break;
        case CollKind::Allreduce:
          g = task::build_allreduce(gw.han, wc, me,
                                    BufView::timing_only(kBytes),
                                    BufView::timing_only(kBytes),
                                    Datatype::Int32, mpi::ReduceOp::Sum,
                                    cfg);
          break;
        case CollKind::ReduceScatter:
          g = task::build_reduce_scatter(
              gw.han, wc, me,
              BufView::timing_only(kBytes),
              BufView::timing_only(kBytes / static_cast<std::size_t>(n)),
              Datatype::Int32, mpi::ReduceOp::Sum, cfg);
          break;
        case CollKind::Gather:
          g = task::build_gather(
              gw.han, wc, me, 0, BufView::timing_only(kBytes),
              BufView::timing_only(kBytes * static_cast<std::size_t>(n)),
              cfg);
          break;
        case CollKind::Scatter:
          g = task::build_scatter(
              gw.han, wc, me, 0,
              BufView::timing_only(kBytes * static_cast<std::size_t>(n)),
              BufView::timing_only(kBytes), cfg);
          break;
        case CollKind::Allgather:
          g = task::build_allgather(
              gw.han, wc, me, BufView::timing_only(kBytes),
              BufView::timing_only(kBytes * static_cast<std::size_t>(n)),
              cfg);
          break;
        default:
          break;
      }
      ok = checked_summarize(out, name, me, std::move(g), summaries);
    }
    if (ok) graph_case(out, name, summaries, windows);
  }
}

/// Barrier has no Table II knobs: one case per topology.
void graph_barrier_job(SweepResult& out, const char* topo_tag,
                       int topo_nodes, int topo_ppn,
                       const std::vector<int>& windows) {
  GraphWorld gw(machine::make_aries(topo_nodes, topo_ppn));
  const mpi::Comm& wc = gw.world.world_comm();
  const int n = wc.size();
  const std::string name = std::string("graph.") + topo_tag + ".barrier";
  std::vector<GraphSummary> summaries;
  bool ok = true;
  for (int me = 0; me < n && ok; ++me) {
    ok = checked_summarize(out, name, me,
                           task::build_barrier(gw.han, wc, me), summaries);
  }
  if (ok) graph_case(out, name, summaries, windows);
}

/// Multi-leader allreduce (k = 2); only scheduled for multi-node,
/// multi-rank topologies.
void graph_ml2_job(SweepResult& out, const char* topo_tag, int topo_nodes,
                   int topo_ppn, bool full_space,
                   const std::vector<int>& windows) {
  GraphWorld gw(machine::make_aries(topo_nodes, topo_ppn));
  const mpi::Comm& wc = gw.world.world_comm();
  const int n = wc.size();
  const std::size_t kBytes = kGraphBytes;
  tune::SearchSpace space = sweep_space(full_space);
  for (const HanConfig& cfg : space.enumerate(CollKind::Allreduce)) {
    const std::string name = std::string("graph.") + topo_tag +
                             ".allreduce_ml2." + cfg.to_string();
    std::vector<GraphSummary> summaries;
    bool ok = true;
    for (int me = 0; me < n && ok; ++me) {
      ok = checked_summarize(
          out, name, me,
          task::build_allreduce_multileader(
              gw.han, wc, me, BufView::timing_only(kBytes),
              BufView::timing_only(kBytes), Datatype::Int32,
              mpi::ReduceOp::Sum, cfg, /*k=*/2),
          summaries);
    }
    if (ok) graph_case(out, name, summaries, windows);
  }
}

/// Derived n-level builders on NUMA topologies: the machine's topology
/// descriptor (numa < node < cluster) makes the generic bcast / reduce /
/// allreduce builders emit the 3-level ladder pipelines that used to live
/// in the hand-written bcast3/allreduce3. One job per (machine, kind).
void graph_numa_job(SweepResult& out, const char* topo_tag,
                    machine::MachineProfile profile, CollKind kind,
                    bool full_space, const std::vector<int>& windows) {
  GraphWorld gw(std::move(profile));
  const mpi::Comm& wc = gw.world.world_comm();
  const int n = wc.size();
  const std::size_t kBytes = kGraphBytes;
  tune::SearchSpace space = sweep_space(full_space);
  for (const HanConfig& cfg : space.enumerate(kind)) {
    const std::string name = std::string("graph.") + topo_tag + "." +
                             coll::coll_kind_name(kind) + "_lvl3." +
                             cfg.to_string();
    std::vector<GraphSummary> summaries;
    bool ok = true;
    for (int me = 0; me < n && ok; ++me) {
      task::TaskGraph g;
      switch (kind) {
        case CollKind::Bcast:
          g = task::build_bcast(gw.han, wc, me, 0,
                                BufView::timing_only(kBytes),
                                Datatype::Byte, cfg);
          break;
        case CollKind::Reduce:
          g = task::build_reduce(gw.han, wc, me, 0,
                                 BufView::timing_only(kBytes),
                                 BufView::timing_only(kBytes),
                                 Datatype::Int32, mpi::ReduceOp::Sum, cfg);
          break;
        default:
          g = task::build_allreduce(gw.han, wc, me,
                                    BufView::timing_only(kBytes),
                                    BufView::timing_only(kBytes),
                                    Datatype::Int32, mpi::ReduceOp::Sum,
                                    cfg);
          break;
      }
      ok = checked_summarize(out, name, me, std::move(g), summaries);
    }
    if (ok) graph_case(out, name, summaries, windows);
  }
}

/// Multi-rail variants of the stock machines: the stripe axis
/// (HanConfig::sf, docs/FABRIC.md) is crossed into the space with the
/// divisors of the machine's NIC count, so every striped slice set gets
/// the same structural gate as the single-rail pipelines. One job per
/// (machine, kind).
void graph_rail_job(SweepResult& out, const char* topo_tag,
                    machine::MachineProfile profile, CollKind kind,
                    bool full_space, const std::vector<int>& windows) {
  const int rails = profile.nics_per_node;
  GraphWorld gw(std::move(profile));
  const mpi::Comm& wc = gw.world.world_comm();
  const int n = wc.size();
  const std::size_t kBytes = kGraphBytes;
  tune::SearchSpace space = sweep_space(full_space);
  for (int d = 1; d <= rails; ++d) {
    if (rails % d == 0) space.stripe_factors.push_back(d);
  }
  for (const HanConfig& cfg : space.enumerate(kind)) {
    const std::string name = std::string("graph.") + topo_tag + "." +
                             coll::coll_kind_name(kind) + "_rail." +
                             cfg.to_string();
    std::vector<GraphSummary> summaries;
    bool ok = true;
    for (int me = 0; me < n && ok; ++me) {
      task::TaskGraph g;
      switch (kind) {
        case CollKind::Bcast:
          g = task::build_bcast(gw.han, wc, me, 0,
                                BufView::timing_only(kBytes),
                                Datatype::Byte, cfg);
          break;
        case CollKind::Reduce:
          g = task::build_reduce(gw.han, wc, me, 0,
                                 BufView::timing_only(kBytes),
                                 BufView::timing_only(kBytes),
                                 Datatype::Int32, mpi::ReduceOp::Sum, cfg);
          break;
        default:
          g = task::build_allreduce(gw.han, wc, me,
                                    BufView::timing_only(kBytes),
                                    BufView::timing_only(kBytes),
                                    Datatype::Int32, mpi::ReduceOp::Sum,
                                    cfg);
          break;
      }
      ok = checked_summarize(out, name, me, std::move(g), summaries);
    }
    if (ok) graph_case(out, name, summaries, windows);
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int SweepResult::total_errors() const {
  int n = 0;
  for (const SweepEntry& e : entries) n += e.errors;
  return n;
}

int SweepResult::total_warnings() const {
  int n = 0;
  for (const SweepEntry& e : entries) n += e.warnings;
  return n;
}

std::string SweepResult::to_json() const {
  std::string j = "{\n  \"totals\": {\"cases\": " +
                  std::to_string(entries.size()) +
                  ", \"errors\": " + std::to_string(total_errors()) +
                  ", \"warnings\": " + std::to_string(total_warnings()) +
                  "},\n  \"cases\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SweepEntry& e = entries[i];
    j += "    \"" + json_escape(e.name) +
         "\": {\"actions\": " + std::to_string(e.actions) +
         ", \"errors\": " + std::to_string(e.errors) +
         ", \"warnings\": " + std::to_string(e.warnings) +
         ", \"findings\": [";
    for (std::size_t k = 0; k < e.lines.size(); ++k) {
      if (k > 0) j += ", ";
      j += "\"" + json_escape(e.lines[k]) + "\"";
    }
    j += "]}";
    j += i + 1 < entries.size() ? ",\n" : "\n";
  }
  j += "  }\n}\n";
  return j;
}

std::string SweepResult::summary() const {
  std::string s = std::to_string(entries.size()) + " cases, " +
                  std::to_string(total_errors()) + " errors, " +
                  std::to_string(total_warnings()) + " warnings\n";
  for (const SweepEntry& e : entries) {
    if (e.lines.empty()) continue;
    s += e.name + ":\n";
    for (const std::string& line : e.lines) s += "  " + line + "\n";
  }
  return s;
}

SweepResult run_sweep(const SweepOptions& opts) {
  // The sweep is a flat list of independent jobs, each of which builds its
  // own worlds and fills a private fragment. Fragments concatenate in
  // input order before the name sort, so the report is byte-identical for
  // every opts.jobs value.
  std::vector<std::function<void(SweepResult&)>> jobs;
  if (opts.plans) {
    for (int n : {2, 3, 4, 8, 16}) {
      jobs.push_back([n](SweepResult& frag) { sweep_plans_for(frag, n); });
    }
  }
  if (opts.graphs) {
    struct Topo {
      const char* tag;
      int nodes, ppn;
    };
    static const Topo kTopos[] = {{"2x2", 2, 2}, {"4x4", 4, 4},
                                  {"8x2", 8, 2}};
    struct KindCase {
      CollKind kind;
      bool full;  // full SearchSpace, or the (fs, smod) subset (the
                  // linear-phase collectives ignore the inter knobs)
    };
    static const KindCase kKinds[] = {
        {CollKind::Bcast, true},          {CollKind::Reduce, true},
        {CollKind::Allreduce, true},      {CollKind::ReduceScatter, true},
        {CollKind::Gather, false},        {CollKind::Scatter, false},
        {CollKind::Allgather, false},
    };
    for (const Topo& t : kTopos) {
      for (const KindCase& kc : kKinds) {
        jobs.push_back([&t, kc, &opts](SweepResult& frag) {
          graph_kind_job(frag, t.tag, t.nodes, t.ppn, kc.kind, kc.full,
                         opts.full_space, opts.windows);
        });
      }
      jobs.push_back([&t, &opts](SweepResult& frag) {
        graph_barrier_job(frag, t.tag, t.nodes, t.ppn, opts.windows);
      });
      if (t.nodes > 1 && t.ppn >= 2) {
        jobs.push_back([&t, &opts](SweepResult& frag) {
          graph_ml2_job(frag, t.tag, t.nodes, t.ppn, opts.full_space,
                        opts.windows);
        });
      }
    }
    // NUMA variants of the stock machines: every registered numa-split
    // profile is swept with the derived (3-level) builders by default.
    for (const machine::StockMachine& sm : machine::stock_machines()) {
      if (sm.profile.numa_per_node <= 1) continue;
      for (CollKind kind :
           {CollKind::Bcast, CollKind::Reduce, CollKind::Allreduce}) {
        jobs.push_back([&sm, kind, &opts](SweepResult& frag) {
          graph_numa_job(frag, sm.name, sm.profile, kind, opts.full_space,
                         opts.windows);
        });
      }
    }
    // Multi-rail variants: every registered multi-NIC profile is swept
    // with the stripe axis crossed in, gating striped inter stages too.
    for (const machine::StockMachine& sm : machine::stock_machines()) {
      if (sm.profile.nics_per_node <= 1) continue;
      for (CollKind kind :
           {CollKind::Bcast, CollKind::Reduce, CollKind::Allreduce}) {
        jobs.push_back([&sm, kind, &opts](SweepResult& frag) {
          graph_rail_job(frag, sm.name, sm.profile, kind, opts.full_space,
                         opts.windows);
        });
      }
    }
  }

  std::vector<SweepResult> frags = par::parallel_map(
      opts.jobs, static_cast<int>(jobs.size()), [&jobs](int i) {
        SweepResult frag;
        jobs[static_cast<std::size_t>(i)](frag);
        return frag;
      });
  SweepResult out;
  for (SweepResult& frag : frags) {
    for (SweepEntry& e : frag.entries) out.entries.push_back(std::move(e));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const SweepEntry& a, const SweepEntry& b) {
              return a.name < b.name;
            });
  return out;
}

void verify_lookup(const tune::LookupTable& table, SweepResult& out) {
  for (const auto& [key, cfg] : table.entries()) {
    if (cfg.sched.empty()) continue;
    const std::string name =
        std::string("lookup.") + coll::coll_kind_name(key.kind) + "." +
        std::to_string(key.nodes) + "x" + std::to_string(key.ppn) +
        ".log2_" + std::to_string(key.log2_bytes);
    synth::SynthSpec spec;
    if (!synth::SynthSpec::parse(cfg.sched, &spec)) {
      record_defect(out, name, "unparseable sched id '" + cfg.sched + "'");
      continue;
    }
    if (spec.kind != key.kind) {
      record_defect(out, name,
                    "sched id '" + cfg.sched + "' is for another kind");
      continue;
    }
    if (key.nodes < 2 || key.ppn < 1) {
      record_defect(out, name, "entry shape has no inter level");
      continue;
    }
    // Rebuild the schedule exactly as dispatch would: the entry's own
    // topology, its bucket's message size, its config's window. Striped
    // entries (v4 `sf=` tokens, in the config or the sched id itself)
    // need a multi-rail fabric with at least that many rails — on a
    // single-rail rebuild effective_sf would clamp to 1 and the striped
    // schedule would be verified in name only.
    const int rails = std::max(cfg.sf, spec.sf);
    GraphWorld gw(rails > 1
                      ? machine::with_rails(
                            machine::make_aries(key.nodes, key.ppn), rails)
                      : machine::make_aries(key.nodes, key.ppn));
    const mpi::Comm& wc = gw.world.world_comm();
    const std::size_t bytes = std::size_t{1} << key.log2_bytes;
    std::vector<GraphSummary> summaries;
    bool ok = true;
    for (int me = 0; ok && me < wc.size(); ++me) {
      task::TaskGraph g =
          key.kind == CollKind::Bcast
              ? synth::build_schedule_bcast(
                    gw.han, wc, me, /*root=*/0, BufView::timing_only(bytes),
                    Datatype::Byte, cfg, spec)
              : synth::build_schedule_allreduce(
                    gw.han, wc, me, BufView::timing_only(bytes),
                    BufView::timing_only(bytes), Datatype::Byte,
                    mpi::ReduceOp::Sum, cfg, spec);
      ok = checked_summarize(out, name, me, std::move(g), summaries);
    }
    if (ok) record(out, name, analyze_task_graphs(summaries, cfg.window));
  }
}

}  // namespace han::verify

// TaskGraph-level deadlock analysis, parameterized by the scheduler
// window. Models the TaskScheduler's issue rules (data deps, per-comm
// FIFO, step window) per rank plus rendezvous-conservative cross-rank
// collective-instance matching, then searches the combined wait-for graph
// for cycles. See verify.hpp for the model.
#include "han/verify/verify.hpp"

#include <algorithm>
#include <map>

#include "han/task/graph.hpp"
#include "han/verify/internal.hpp"

namespace han::verify {

namespace {

std::string graph_op_name(int op) {
  if (op >= 0 && op <= static_cast<int>(task::Op::Barrier)) {
    return task::op_name(static_cast<task::Op>(op));
  }
  return "op" + std::to_string(op);
}

}  // namespace

GraphSummary summarize(const task::TaskGraph& graph, int world_rank) {
  GraphSummary s;
  s.world_rank = world_rank;
  s.nodes.reserve(graph.nodes.size());
  for (const task::TaskNode& node : graph.nodes) {
    GraphNodeSummary n;
    n.step = node.step;
    n.op = static_cast<int>(node.op);
    n.deps = node.deps;
    if (node.comm != nullptr) {
      n.ctx = node.comm->context();
      n.members.assign(node.comm->world_ranks().begin(),
                       node.comm->world_ranks().end());
    }
    s.nodes.push_back(std::move(n));
  }
  return s;
}

Report analyze_task_graphs(const std::vector<GraphSummary>& graphs,
                           int window, const Options& opts) {
  Report rep;
  if (window < 1) window = 1;

  // Deterministic rank order.
  std::vector<int> order(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return graphs[a].world_rank < graphs[b].world_rank;
  });
  std::map<int, int> rank_to_idx;  // world rank -> graphs index
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    rank_to_idx[graphs[i].world_rank] = static_cast<int>(i);
  }

  // Event layout: per rank, 2 events per node (issue = base + 2j,
  // completion = base + 2j + 1) followed by one "steps <= s all complete"
  // barrier event per pipeline step.
  std::vector<int> node_base(graphs.size(), 0);
  std::vector<int> barrier_base(graphs.size(), 0);
  std::vector<int> num_steps(graphs.size(), 0);
  int num_events = 0;
  for (int gi : order) {
    const GraphSummary& g = graphs[gi];
    int max_step = -1;
    for (const GraphNodeSummary& n : g.nodes) {
      max_step = std::max(max_step, n.step);
    }
    num_steps[gi] = max_step + 1;
    node_base[gi] = num_events;
    num_events += 2 * static_cast<int>(g.nodes.size());
    barrier_base[gi] = num_events;
    num_events += num_steps[gi];
    rep.actions += static_cast<int>(g.nodes.size());
  }
  auto issue_ev = [&](int gi, int j) { return node_base[gi] + 2 * j; };
  auto comp_ev = [&](int gi, int j) { return node_base[gi] + 2 * j + 1; };

  std::vector<std::vector<int>> wait(num_events);

  // Per-rank scheduler rules.
  for (int gi : order) {
    const GraphSummary& g = graphs[gi];
    std::vector<std::pair<int, int>> last_on_ctx;  // mirrors scheduler
    for (int j = 0; j < static_cast<int>(g.nodes.size()); ++j) {
      const GraphNodeSummary& n = g.nodes[j];
      wait[issue_ev(gi, j)].push_back(comp_ev(gi, j));
      for (int d : n.deps) {
        wait[comp_ev(gi, d)].push_back(issue_ev(gi, j));
      }
      if (n.ctx >= 0) {
        bool found = false;
        for (auto& [c, last] : last_on_ctx) {
          if (c == n.ctx) {
            wait[issue_ev(gi, last)].push_back(issue_ev(gi, j));
            last = j;
            found = true;
            break;
          }
        }
        if (!found) last_on_ctx.emplace_back(n.ctx, j);
      }
      // Window gating: node at step s cannot issue until every step
      // <= s - window completed on this rank.
      wait[comp_ev(gi, j)].push_back(barrier_base[gi] + n.step);
      if (n.step - window >= 0) {
        wait[barrier_base[gi] + n.step - window].push_back(issue_ev(gi, j));
      }
    }
    for (int s = 1; s < num_steps[gi]; ++s) {
      wait[barrier_base[gi] + s - 1].push_back(barrier_base[gi] + s);
    }
  }

  // Cross-rank collective-instance matching: the k-th node on context c
  // forms one instance across the member ranks; a rank's part cannot
  // complete before every member issued theirs.
  struct CtxSeq {
    std::vector<int> members;            // world ranks, from the first node
    std::map<int, std::vector<int>> seq; // world rank -> node indices
  };
  std::map<int, CtxSeq> ctxs;
  for (int gi : order) {
    const GraphSummary& g = graphs[gi];
    for (int j = 0; j < static_cast<int>(g.nodes.size()); ++j) {
      const GraphNodeSummary& n = g.nodes[j];
      if (n.ctx < 0) continue;
      CtxSeq& cs = ctxs[n.ctx];
      if (cs.members.empty()) cs.members = n.members;
      cs.seq[g.world_rank].push_back(j);
    }
  }
  for (const auto& [ctx, cs] : ctxs) {
    // Member ranks we have a graph for (a member absent from `graphs` is
    // outside the analysis scope, e.g. a partial sweep).
    std::vector<int> present;
    for (int r : cs.members) {
      if (rank_to_idx.count(r) != 0) present.push_back(r);
    }
    if (present.empty()) continue;
    std::size_t min_count = static_cast<std::size_t>(-1);
    for (int r : present) {
      auto it = cs.seq.find(r);
      const std::size_t count = it == cs.seq.end() ? 0 : it->second.size();
      min_count = std::min(min_count, count);
    }
    const int r0 = present.front();
    for (int r : present) {
      auto it = cs.seq.find(r);
      const std::size_t count = it == cs.seq.end() ? 0 : it->second.size();
      auto it0 = cs.seq.find(r0);
      const std::size_t count0 =
          it0 == cs.seq.end() ? 0 : it0->second.size();
      if (count != count0) {
        Finding f;
        f.code = Diag::CollectiveCountMismatch;
        f.severity = Severity::Error;
        f.rank_a = r0;
        f.rank_b = r;
        f.message = "context " + std::to_string(ctx) + ": rank " +
                    std::to_string(r0) + " runs " + std::to_string(count0) +
                    " collectives but member rank " + std::to_string(r) +
                    " runs " + std::to_string(count);
        rep.findings.push_back(std::move(f));
      }
    }
    // Op-sequence agreement over the common prefix.
    for (std::size_t k = 0; k < min_count; ++k) {
      const GraphSummary& g0 = graphs[rank_to_idx.at(r0)];
      const int op0 = g0.nodes[cs.seq.at(r0)[k]].op;
      for (int r : present) {
        const GraphSummary& g = graphs[rank_to_idx.at(r)];
        const int j = cs.seq.at(r)[k];
        if (g.nodes[j].op != op0) {
          Finding f;
          f.code = Diag::CollectiveOrderMismatch;
          f.severity = Severity::Error;
          f.rank_a = r0;
          f.index_a = cs.seq.at(r0)[k];
          f.rank_b = r;
          f.index_b = j;
          f.message = "context " + std::to_string(ctx) + " collective " +
                      std::to_string(k) + ": rank " + std::to_string(r0) +
                      " issues " + graph_op_name(op0) + " but rank " +
                      std::to_string(r) + " issues " +
                      graph_op_name(g.nodes[j].op);
          rep.findings.push_back(std::move(f));
        }
      }
    }
    rep.match_edges += static_cast<int>(min_count);
    for (std::size_t k = 0; k < min_count; ++k) {
      for (int r : present) {
        const int gi = rank_to_idx.at(r);
        const int j = cs.seq.at(r)[k];
        for (int r2 : present) {
          if (r2 == r) continue;
          const int gi2 = rank_to_idx.at(r2);
          const int j2 = cs.seq.at(r2)[k];
          wait[issue_ev(gi2, j2)].push_back(comp_ev(gi, j));
        }
      }
    }
  }

  // Cycle search.
  if (opts.check_deadlock) {
    int num_comp = 0;
    const std::vector<int> comp = internal::tarjan_scc(wait, &num_comp);
    std::vector<int> scc_size(num_comp, 0), scc_min(num_comp, num_events);
    for (int v = 0; v < num_events; ++v) {
      ++scc_size[comp[v]];
      scc_min[comp[v]] = std::min(scc_min[comp[v]], v);
    }
    auto describe = [&](int ev, Finding* f) {
      // Recover (rank, node/barrier) from the event id.
      for (int gi : order) {
        const int nodes_end = node_base[gi] +
                              2 * static_cast<int>(graphs[gi].nodes.size());
        if (ev >= node_base[gi] && ev < nodes_end) {
          const int j = (ev - node_base[gi]) / 2;
          const bool completion = ((ev - node_base[gi]) % 2) != 0;
          if (f != nullptr) {
            f->cycle.push_back({graphs[gi].world_rank, j, completion});
          }
          const GraphNodeSummary& n = graphs[gi].nodes[j];
          return "rank " + std::to_string(graphs[gi].world_rank) +
                 " task " + std::to_string(j) + " (" +
                 graph_op_name(n.op) + " step " + std::to_string(n.step) +
                 (n.ctx >= 0 ? " ctx " + std::to_string(n.ctx) : "") +
                 (completion ? ") completion" : ") issue");
        }
        if (ev >= barrier_base[gi] &&
            ev < barrier_base[gi] + num_steps[gi]) {
          return "rank " + std::to_string(graphs[gi].world_rank) +
                 " step " + std::to_string(ev - barrier_base[gi]) +
                 " barrier";
        }
      }
      return std::string("event ") + std::to_string(ev);
    };
    int reported = 0;
    for (int c = 0; c < num_comp && reported < 4; ++c) {
      if (scc_size[c] < 2) continue;
      ++reported;
      const std::vector<int> cyc =
          internal::witness_cycle(wait, comp, scc_min[c]);
      Finding f;
      f.code = Diag::GraphWaitCycle;
      f.severity = Severity::Error;
      std::string msg = "window " + std::to_string(window) +
                        ": wait cycle of " + std::to_string(cyc.size()) +
                        " events: ";
      for (std::size_t i = 0; i < cyc.size(); ++i) {
        if (i > 0) msg += " -> ";
        msg += describe(cyc[i], &f);
      }
      f.message = std::move(msg);
      rep.findings.push_back(std::move(f));
    }
  }

  return rep;
}

}  // namespace han::verify

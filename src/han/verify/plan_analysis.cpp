// Plan-level semantic analysis: send/recv match pairing, the cross-rank
// wait-for graph with minimal witness cycles, and byte-interval
// happens-before buffer-race detection. See verify.hpp for the model and
// docs/VERIFICATION.md for the algorithms.
#include "han/verify/verify.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "han/verify/internal.hpp"

namespace han::verify {

namespace {

using coll::Action;
using coll::DepRef;
using coll::Plan;
using internal::ReachOracle;
using internal::tarjan_scc;
using internal::witness_cycle;

const char* kind_name(Action::Kind k) {
  switch (k) {
    case Action::Kind::Send: return "send";
    case Action::Kind::Recv: return "recv";
    case Action::Kind::Copy: return "copy";
    case Action::Kind::Reduce: return "reduce";
    case Action::Kind::Compute: return "compute";
    case Action::Kind::Noop: return "noop";
    case Action::Kind::CrossCopy: return "cross_copy";
    case Action::Kind::CrossReduce: return "cross_reduce";
  }
  return "?";
}

/// Event ids: action with flat id g has issue event 2g and completion
/// event 2g + 1. Buffer accesses are modelled as instants matching the
/// runtime: a send snapshots its payload at issue (isend_ctx copies the
/// buffer synchronously), while recv delivery and copy/reduce application
/// all mutate storage in the completion callback.
constexpr int issue_ev(int g) { return 2 * g; }
constexpr int comp_ev(int g) { return 2 * g + 1; }

enum class AccessType { Read, Write, Accum };

struct Access {
  int owner = 0;    // rank whose buffer slot is touched
  int slot = 0;
  std::size_t lo = 0, hi = 0;
  AccessType type = AccessType::Read;
  int rank = 0;     // rank executing the action
  int action = 0;
  int global = 0;   // flat action id
  int ev = 0;       // event at which the access takes effect
};

std::string interval_str(std::size_t lo, std::size_t hi) {
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + ")";
}

}  // namespace

const char* diag_name(Diag d) {
  switch (d) {
    case Diag::UnmatchedSend: return "unmatched-send";
    case Diag::UnmatchedRecv: return "unmatched-recv";
    case Diag::SizeMismatch: return "size-mismatch";
    case Diag::MatchOrderAmbiguous: return "match-order-ambiguous";
    case Diag::WaitCycle: return "wait-cycle";
    case Diag::BufferRace: return "buffer-race";
    case Diag::ReduceOrderAmbiguous: return "reduce-order-ambiguous";
    case Diag::CrossAccessUnordered: return "cross-access-unordered";
    case Diag::CollectiveCountMismatch: return "collective-count-mismatch";
    case Diag::CollectiveOrderMismatch: return "collective-order-mismatch";
    case Diag::GraphWaitCycle: return "graph-wait-cycle";
  }
  return "?";
}

std::string Report::to_string() const {
  std::string out;
  for (const Finding& f : findings) {
    out += std::string(f.severity == Severity::Error ? "error" : "warning");
    out += "[";
    out += diag_name(f.code);
    out += "]: ";
    out += f.message;
    out += "\n";
  }
  return out;
}

Report analyze_plan(const Plan& plan, int comm_size, const Options& opts) {
  Report rep;
  const int n = std::min(comm_size, static_cast<int>(plan.ranks.size()));

  // Flatten (rank, action) -> global action id.
  std::vector<int> base(n + 1, 0);
  for (int r = 0; r < n; ++r) {
    base[r + 1] = base[r] + static_cast<int>(plan.ranks[r].actions.size());
  }
  const int total = base[n];
  rep.actions = total;
  const int num_events = 2 * total;
  auto rank_of = [&](int g) {
    return static_cast<int>(std::upper_bound(base.begin(), base.end(), g) -
                            base.begin()) - 1;
  };
  auto action_of = [&](int g) { return g - base[rank_of(g)]; };
  auto describe = [&](int g) {
    const int r = rank_of(g);
    const int a = action_of(g);
    const Action& act = plan.ranks[r].actions[a];
    std::string s = "rank " + std::to_string(r) + " action " +
                    std::to_string(a) + " (" + kind_name(act.kind);
    if (act.kind == Action::Kind::Send || act.kind == Action::Kind::Recv) {
      s += (act.kind == Action::Kind::Send ? "->" : "<-") +
           std::to_string(act.peer) + " tag " + std::to_string(act.tag);
    }
    s += ")";
    return s;
  };

  // Universal happens-before edges: issue -> completion, plus dependency
  // edges (completion of the dependency enables the dependent's issue).
  std::vector<std::vector<int>> hb(num_events);
  for (int r = 0; r < n; ++r) {
    const auto& actions = plan.ranks[r].actions;
    for (int a = 0; a < static_cast<int>(actions.size()); ++a) {
      const int g = base[r] + a;
      hb[issue_ev(g)].push_back(comp_ev(g));
      for (const DepRef& d : actions[a].deps) {
        const int dr = d.rank == DepRef::kSameRank ? r : d.rank;
        hb[comp_ev(base[dr] + d.action)].push_back(issue_ev(g));
      }
    }
  }

  // ---- send/recv matching under per-(src, dst, tag) FIFO ---------------
  struct KeyOps {
    std::vector<int> sends;  // global ids, emission order
    std::vector<int> recvs;
  };
  std::map<std::tuple<int, int, int>, KeyOps> keys;  // (src, dst, tag)
  for (int r = 0; r < n; ++r) {
    const auto& actions = plan.ranks[r].actions;
    for (int a = 0; a < static_cast<int>(actions.size()); ++a) {
      const Action& act = actions[a];
      if (act.kind == Action::Kind::Send) {
        keys[{r, act.peer, act.tag}].sends.push_back(base[r] + a);
      } else if (act.kind == Action::Kind::Recv) {
        keys[{act.peer, r, act.tag}].recvs.push_back(base[r] + a);
      }
    }
  }

  // Matching pairs same-key operations in posting order: the runtime
  // posts same-rank actions in emission (index) order as they become
  // ready, so the k-th same-key send pairs with the k-th same-key recv.
  // The posting-order check itself runs later, against the fully
  // assembled happens-before graph.
  std::vector<std::pair<int, int>> matches;  // (send global, recv global)
  for (auto& [key, ops] : keys) {
    (void)key;
    const std::size_t paired = std::min(ops.sends.size(), ops.recvs.size());
    for (std::size_t k = 0; k < paired; ++k) {
      matches.emplace_back(ops.sends[k], ops.recvs[k]);
    }
    for (std::size_t k = paired; k < ops.sends.size(); ++k) {
      Finding f;
      f.code = Diag::UnmatchedSend;
      f.severity = Severity::Error;
      f.rank_a = rank_of(ops.sends[k]);
      f.index_a = action_of(ops.sends[k]);
      f.message = describe(ops.sends[k]) + " has no matching recv";
      rep.findings.push_back(std::move(f));
    }
    for (std::size_t k = paired; k < ops.recvs.size(); ++k) {
      Finding f;
      f.code = Diag::UnmatchedRecv;
      f.severity = Severity::Error;
      f.rank_a = rank_of(ops.recvs[k]);
      f.index_a = action_of(ops.recvs[k]);
      f.message = describe(ops.recvs[k]) + " has no matching send";
      rep.findings.push_back(std::move(f));
    }
  }
  rep.match_edges = static_cast<int>(matches.size());

  for (const auto& [s, v] : matches) {
    const Action& sa = plan.ranks[rank_of(s)].actions[action_of(s)];
    const Action& ra = plan.ranks[rank_of(v)].actions[action_of(v)];
    if (sa.bytes != ra.bytes) {
      Finding f;
      f.code = Diag::SizeMismatch;
      f.severity = Severity::Error;
      f.rank_a = rank_of(s);
      f.index_a = action_of(s);
      f.rank_b = rank_of(v);
      f.index_b = action_of(v);
      f.message = describe(s) + " moves " + std::to_string(sa.bytes) +
                  " bytes but matched " + describe(v) + " expects " +
                  std::to_string(ra.bytes);
      rep.findings.push_back(std::move(f));
    }
    // Data edges: the recv cannot complete before the send is issued,
    // and delivery cannot finish before the sender's side has (the
    // simulated transfer completes both requests together).
    hb[issue_ev(s)].push_back(comp_ev(v));
    hb[comp_ev(s)].push_back(comp_ev(v));
  }

  // ---- in-cascade issue order --------------------------------------------
  // When an action completes, the runtime issues every newly-ready action
  // of a rank in index order, synchronously. So if everything action a
  // waits for is already complete by the time action b (a < b, same rank)
  // can issue, a's issue provably precedes b's. These edges capture the
  // posting order pipelined builders rely on.
  {
    ReachOracle pre(hb);
    for (int r = 0; r < n; ++r) {
      const auto& actions = plan.ranks[r].actions;
      const int cnt = static_cast<int>(actions.size());
      for (int b = 1; b < cnt; ++b) {
        const int gb = base[r] + b;
        for (int a = 0; a < b; ++a) {
          const int ga = base[r] + a;
          bool dominated = true;
          for (const DepRef& d : actions[a].deps) {
            const int dr = d.rank == DepRef::kSameRank ? r : d.rank;
            if (!pre.reaches(comp_ev(base[dr] + d.action), issue_ev(gb))) {
              dominated = false;
              break;
            }
          }
          if (!dominated) continue;
          if (pre.reaches(issue_ev(gb), issue_ev(ga))) continue;
          hb[issue_ev(ga)].push_back(issue_ev(gb));
        }
      }
    }
  }

  // ---- posting-order check for shared match keys -------------------------
  // A dependency chain that *forces* a later same-key op to post before an
  // earlier one inverts FIFO matching — a hard error. Same-key ops that
  // are merely HB-incomparable keep index order whenever they become
  // ready together, so they get a warning, not an error.
  ReachOracle dep_reach(hb);
  auto order_key_ops = [&](const std::vector<int>& ops, const char* what,
                           const std::tuple<int, int, int>& key) {
    for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const bool forward =
            dep_reach.reaches(issue_ev(ops[i]), issue_ev(ops[j]));
        const bool inverted =
            dep_reach.reaches(issue_ev(ops[j]), issue_ev(ops[i]));
        if (forward && !inverted) continue;
        Finding f;
        f.code = Diag::MatchOrderAmbiguous;
        f.severity = inverted ? Severity::Error : Severity::Warning;
        f.rank_a = rank_of(ops[i]);
        f.index_a = action_of(ops[i]);
        f.rank_b = rank_of(ops[j]);
        f.index_b = action_of(ops[j]);
        f.message = std::string(what) + "s " + describe(ops[i]) + " and " +
                    describe(ops[j]) + " share key (src " +
                    std::to_string(std::get<0>(key)) + ", dst " +
                    std::to_string(std::get<1>(key)) + ", tag " +
                    std::to_string(std::get<2>(key)) +
                    (inverted
                         ? ") and dependencies force the later one to "
                           "post first, inverting FIFO matching"
                         : ") and their posting order is not fixed by "
                           "dependencies");
        rep.findings.push_back(std::move(f));
      }
    }
  };
  for (const auto& [key, ops] : keys) {
    if (ops.sends.size() > 1) order_key_ops(ops.sends, "send", key);
    if (ops.recvs.size() > 1) order_key_ops(ops.recvs, "recv", key);
  }

  // ---- wait-for cycles --------------------------------------------------
  if (opts.check_deadlock) {
    // Deadlock graph = happens-before edges plus, under rendezvous
    // semantics, the reverse coupling: a send cannot complete before its
    // matching recv is issued.
    std::vector<std::vector<int>> wait = hb;
    if (opts.assume_rendezvous) {
      for (const auto& [s, v] : matches) {
        wait[issue_ev(v)].push_back(comp_ev(s));
      }
    }
    int num_comp = 0;
    const std::vector<int> comp = tarjan_scc(wait, &num_comp);
    std::vector<int> scc_size(num_comp, 0), scc_min(num_comp, num_events);
    for (int v = 0; v < num_events; ++v) {
      ++scc_size[comp[v]];
      scc_min[comp[v]] = std::min(scc_min[comp[v]], v);
    }
    int reported = 0;
    for (int c = 0; c < num_comp && reported < 4; ++c) {
      if (scc_size[c] < 2) continue;
      ++reported;
      const std::vector<int> cyc = witness_cycle(wait, comp, scc_min[c]);
      Finding f;
      f.code = Diag::WaitCycle;
      f.severity = Severity::Error;
      std::string msg = "wait cycle of " + std::to_string(cyc.size()) +
                        " events: ";
      for (std::size_t i = 0; i < cyc.size(); ++i) {
        const int ev = cyc[i];
        const int g = ev / 2;
        f.cycle.push_back({rank_of(g), action_of(g), (ev % 2) != 0});
        if (i > 0) msg += " -> ";
        msg += describe(g);
        msg += (ev % 2) != 0 ? " completion" : " issue";
      }
      f.message = std::move(msg);
      rep.findings.push_back(std::move(f));
    }
  }

  // ---- Cross* peer-ordering ---------------------------------------------
  // A CrossCopy/CrossReduce reads the peer's slot directly; without a
  // dependency path from some action of the peer it can run before the
  // peer even arrived (the runtime asserts on this at execution time).
  std::vector<std::vector<int>> rhb(num_events);
  for (int v = 0; v < num_events; ++v) {
    for (int w : hb[v]) rhb[w].push_back(v);
  }
  ReachOracle rev_reach(rhb);
  for (int r = 0; r < n; ++r) {
    const auto& actions = plan.ranks[r].actions;
    for (int a = 0; a < static_cast<int>(actions.size()); ++a) {
      const Action& act = actions[a];
      if (act.kind != Action::Kind::CrossCopy &&
          act.kind != Action::Kind::CrossReduce) {
        continue;
      }
      if (act.peer == r) continue;
      const int peer_first = base[act.peer];
      const int peer_last = base[act.peer + 1];
      bool ordered = peer_first == peer_last;  // peer has no actions at all
      for (int g = peer_first; g < peer_last && !ordered; ++g) {
        ordered = rev_reach.reaches(issue_ev(base[r] + a), issue_ev(g)) ||
                  rev_reach.reaches(issue_ev(base[r] + a), comp_ev(g));
      }
      if (!ordered) {
        Finding f;
        f.code = Diag::CrossAccessUnordered;
        f.severity = Severity::Error;
        f.rank_a = r;
        f.index_a = a;
        f.rank_b = act.peer;
        f.message = describe(base[r] + a) + " reads rank " +
                    std::to_string(act.peer) +
                    "'s slot with no dependency path from any of that "
                    "rank's actions";
        rep.findings.push_back(std::move(f));
      }
    }
  }

  // ---- byte-interval happens-before races -------------------------------
  if (opts.check_races) {
    std::vector<Access> accesses;
    for (int r = 0; r < n; ++r) {
      const auto& actions = plan.ranks[r].actions;
      for (int a = 0; a < static_cast<int>(actions.size()); ++a) {
        const Action& act = actions[a];
        if (act.bytes == 0) continue;
        const int g = base[r] + a;
        // Sends snapshot their payload synchronously at issue; recv
        // delivery and copy/reduce application run in the completion
        // callback, so those accesses take effect at the completion event.
        auto push = [&](int owner, const coll::SlotRef& ref, AccessType t) {
          const int ev = act.kind == Action::Kind::Send ? issue_ev(g)
                                                        : comp_ev(g);
          accesses.push_back({owner, ref.slot, ref.offset,
                              ref.offset + act.bytes, t, r, a, g, ev});
        };
        switch (act.kind) {
          case Action::Kind::Send:
            push(r, act.src, AccessType::Read);
            break;
          case Action::Kind::Recv:
            push(r, act.dst, AccessType::Write);
            break;
          case Action::Kind::Copy:
            push(r, act.src, AccessType::Read);
            push(r, act.dst, AccessType::Write);
            break;
          case Action::Kind::Reduce:
            push(r, act.src, AccessType::Read);
            push(r, act.dst, AccessType::Accum);
            break;
          case Action::Kind::CrossCopy:
            push(act.peer, act.src, AccessType::Read);
            push(r, act.dst, AccessType::Write);
            break;
          case Action::Kind::CrossReduce:
            push(act.peer, act.src, AccessType::Read);
            push(r, act.dst, AccessType::Accum);
            break;
          case Action::Kind::Compute:
          case Action::Kind::Noop:
            break;
        }
      }
    }
    std::stable_sort(accesses.begin(), accesses.end(),
                     [](const Access& x, const Access& y) {
                       return std::tie(x.owner, x.slot, x.lo) <
                              std::tie(y.owner, y.slot, y.lo);
                     });
    ReachOracle hb_reach(hb);
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const Access& x = accesses[i];
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const Access& y = accesses[j];
        if (y.owner != x.owner || y.slot != x.slot || y.lo >= x.hi) break;
        if (x.global == y.global) continue;
        if (x.type == AccessType::Read && y.type == AccessType::Read) {
          continue;
        }
        if (rep.race_pairs >= static_cast<int>(opts.max_race_pairs)) {
          rep.truncated = true;
          break;
        }
        ++rep.race_pairs;
        const bool xy = hb_reach.reaches(x.ev, y.ev);
        const bool yx = !xy && hb_reach.reaches(y.ev, x.ev);
        if (xy || yx) continue;
        const bool both_accum =
            x.type == AccessType::Accum && y.type == AccessType::Accum;
        Finding f;
        f.code = both_accum ? Diag::ReduceOrderAmbiguous : Diag::BufferRace;
        f.severity = Severity::Error;
        f.rank_a = x.rank;
        f.index_a = x.action;
        f.rank_b = y.rank;
        f.index_b = y.action;
        f.slot = x.slot;
        f.lo = std::max(x.lo, y.lo);
        f.hi = std::min(x.hi, y.hi);
        f.message =
            (both_accum
                 ? std::string("unordered reduction accumulations ")
                 : std::string("unordered conflicting accesses ")) +
            describe(x.global) + " and " + describe(y.global) +
            " overlap on rank " + std::to_string(x.owner) + " slot " +
            std::to_string(x.slot) + " bytes " + interval_str(f.lo, f.hi);
        rep.findings.push_back(std::move(f));
      }
      if (rep.truncated) break;
    }
  }

  return rep;
}

}  // namespace han::verify

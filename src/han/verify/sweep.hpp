// Full builder x SearchSpace verification sweep — the backing of the
// `han_verify` CLI and its CI gate.
//
// Two families of cases:
//  * plan.* — the pure Plan builders (tree bcast/reduce, recursive
//    doubling, linear gather/scatter, dissemination barrier, the ring
//    family) across comm sizes, message sizes, and segment sizes, analyzed
//    with analyze_plan.
//  * graph.* — the HAN TaskGraph builders (six 2-level collectives,
//    barrier, multi-leader allreduce, 3-level bcast/allreduce) built for
//    every rank of simulated topologies across the autotuner's full
//    SearchSpace, analyzed with analyze_task_graphs at every window.
//
// Results are deterministic: case names are stable, entries sorted.
#pragma once

#include <string>
#include <vector>

#include "autotune/lookup.hpp"
#include "han/verify/verify.hpp"

namespace han::verify {

struct SweepOptions {
  /// Scheduler windows the graph-level analysis runs at.
  std::vector<int> windows{1, 2, 3};
  bool plans = true;   // plan.* family
  bool graphs = true;  // graph.* family
  /// Full autotuner SearchSpace; false = one config per (fs, smod) smoke
  /// subset (fast local runs).
  bool full_space = true;
  /// Concurrent sweep jobs (han::par). Every job builds its own worlds and
  /// results merge in input order, so any jobs value — including the
  /// serial 1, the default — produces byte-identical reports (0 = one job
  /// per hardware thread).
  int jobs = 1;
};

struct SweepEntry {
  std::string name;
  int actions = 0;
  int errors = 0;
  int warnings = 0;
  std::vector<std::string> lines;  // findings, one per line
};

struct SweepResult {
  std::vector<SweepEntry> entries;  // sorted by name
  int total_errors() const;
  int total_warnings() const;
  /// obs-style report: deterministic key order, totals first.
  std::string to_json() const;
  /// Human summary: totals plus every entry with findings.
  std::string summary() const;
};

SweepResult run_sweep(const SweepOptions& opts = {});

/// Re-verify every cached synthesized schedule of a lookup table: each
/// entry with a non-empty cfg.sched is rebuilt on its own (nodes, ppn)
/// topology at its bucket's message size and analyzed at its window
/// (entries named "lookup.<kind>.<n>x<p>.log2_<b>"). Unparseable ids and
/// kind mismatches are recorded as defects, never skipped silently.
/// Appends to `out` (the han_verify CLI sorts at the end).
void verify_lookup(const tune::LookupTable& table, SweepResult& out);

}  // namespace han::verify

// Pre-execution gate: wires analyze_plan into CollRuntime's plan-checker
// hook so every Plan any module builds is semantically verified before the
// runtime schedules a single action.
#include "coll/runtime.hpp"
#include "han/verify/verify.hpp"

namespace han::verify {

void arm_plan_gate(coll::CollRuntime& rt, Options opts) {
  rt.set_plan_checker(
      [opts](const coll::Plan& plan, int comm_size) -> std::string {
        const Report rep = analyze_plan(plan, comm_size, opts);
        if (rep.clean()) return {};
        return "verify: plan rejected by pre-execution analysis:\n" +
               rep.to_string();
      });
}

}  // namespace han::verify

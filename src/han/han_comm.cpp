#include "han/han_comm.hpp"

#include <algorithm>

namespace han::core {

HanComm::HanComm(mpi::SimWorld& world, const mpi::Comm& parent)
    : parent_(&parent) {
  const int n = parent.size();
  low_ = world.comm_split_shared(parent);
  low_rank_.resize(n);
  for (int pr = 0; pr < n; ++pr) {
    low_rank_[pr] = low_[pr]->comm_rank_of_world(parent.world_rank(pr));
    max_ppn_ = std::max(max_ppn_, low_[pr]->size());
  }

  // Up communicators: split by local rank, ordered by parent rank (which
  // orders nodes consistently across all up comms).
  std::vector<int> color(n), key(n);
  for (int pr = 0; pr < n; ++pr) {
    color[pr] = low_rank_[pr];
    key[pr] = pr;
  }
  up_ = world.comm_split(parent, color, key);
  up_rank_.resize(n);
  for (int pr = 0; pr < n; ++pr) {
    up_rank_[pr] = up_[pr]->comm_rank_of_world(parent.world_rank(pr));
  }
  node_count_ = up_[0] != nullptr ? up_[0]->size() : 1;

  // Record the distinct splits before the single-node up comms are
  // forgotten below — they exist in the world either way and must be
  // freed with the parent.
  for (const auto& vec : {low_, up_}) {
    for (mpi::Comm* c : vec) {
      if (c != nullptr &&
          std::find(sub_comms_.begin(), sub_comms_.end(), c) ==
              sub_comms_.end()) {
        sub_comms_.push_back(c);
      }
    }
  }

  if (node_count_ <= 1) {
    // Single node: no inter level.
    std::fill(up_.begin(), up_.end(), nullptr);
  }
}

}  // namespace han::core

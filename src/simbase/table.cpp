#include "simbase/table.hpp"

#include <cstdio>
#include <fstream>

#include "simbase/assert.hpp"

namespace han::sim {

Table& Table::cell(std::string value) {
  HAN_ASSERT_MSG(!rows_.empty(), "call begin_row() before cell()");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string(buf));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      // Right-align everything; IMB-style tables are numeric-heavy.
      line.append(widths[c] - std::min(widths[c], v.size()), ' ');
      line += v;
      if (c + 1 < widths.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& v) {
    if (v.find_first_of(",\"\n") == std::string::npos) return v;
    std::string quoted = "\"";
    for (char ch : v) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::print(const std::string& title) const {
  std::printf("\n# %s\n%s", title.c_str(), to_text().c_str());
  std::fflush(stdout);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (out) out << to_csv();
}

}  // namespace han::sim

#include "simbase/stats.hpp"

#include <numeric>

namespace han::sim {

double quantile(std::span<const double> values, double q) {
  HAN_ASSERT(!values.empty());
  HAN_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  HAN_ASSERT(!values.empty());
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

}  // namespace han::sim

// Deterministic discrete-event engine.
//
// The entire simulated cluster — P2P protocol steps, CPU progression lanes,
// fluid-flow completions, rank-program coroutine resumptions — runs on one
// of these. Determinism contract: events at equal timestamps fire in
// scheduling order (FIFO tie-break via a monotonically increasing sequence
// number), so a given workload always produces bit-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simbase/assert.hpp"
#include "simbase/units.hpp"

namespace han::sim {

/// Handle for a scheduled event; usable with Engine::cancel().
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute simulated time `t` (>= now).
  EventId schedule_at(Time t, Callback cb) {
    HAN_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    const std::uint64_t seq = next_seq_++;
    queue_.push(Entry{t, seq});
    callbacks_.emplace(seq, std::move(cb));
    return EventId{seq};
  }

  /// Schedule `cb` to run `dt` seconds from now.
  EventId schedule_after(Time dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Best-effort cancellation: the event is dropped when it reaches the
  /// head of the queue. Cancelling an already-fired event is a no-op.
  void cancel(EventId id) { cancelled_.insert(id.seq); }

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Run events with timestamp <= `deadline`; afterwards now() == deadline
  /// if the simulation reached it.
  void run_until(Time deadline);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  // Callbacks live out-of-heap keyed by seq so heap sift operations move
  // 16-byte entries instead of std::function state.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace han::sim

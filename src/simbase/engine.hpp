// Deterministic discrete-event engine.
//
// The entire simulated cluster — P2P protocol steps, CPU progression lanes,
// fluid-flow completions, rank-program coroutine resumptions — runs on one
// of these. Determinism contract: events at equal timestamps fire in
// scheduling order (FIFO tie-break via a monotonically increasing sequence
// number), so a given workload always produces bit-identical results.
//
// Hot-path design (see docs/PERFORMANCE.md):
//  * Event records live in a chunked slab pool with a free list. Chunks are
//    fixed-size arrays that never move, so record addresses are stable:
//    growth never relocates closure state, and a due callback is invoked in
//    place instead of being moved out first. A record holds the callback
//    (SBO InlineFn — no heap allocation for small captures) and its
//    sequence number; the priority queue orders lightweight {time, seq,
//    slot} entries only.
//  * The queue is a lazy sorted run plus a small overflow heap.
//    schedule_at just appends to an unsorted tail; the next head access
//    folds the tail in — a large burst is sorted once and merged into the
//    descending run (pops become pop_back, and an equal-timestamp batch is
//    one contiguous reverse-copy), while a trickle sifts into a small
//    4-ary min-heap that is merged into the run when it outgrows it.
//  * cancel() is O(1) and reclaims eagerly: the callback is destroyed and
//    the slot returned to the free list immediately; the stale heap entry
//    is recognized later by its mismatched sequence number (slots recycle,
//    sequence numbers never do).
//  * Same-timestamp batch draining: all entries due at the current time are
//    popped into a FIFO batch in one pass; zero-delay events scheduled
//    while the batch drains append to it directly, bypassing the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "simbase/assert.hpp"
#include "simbase/inline_fn.hpp"
#include "simbase/units.hpp"

namespace han::sim {

/// Handle for a scheduled event; usable with Engine::cancel(). The slot
/// index makes cancellation O(1); the sequence number makes a handle for a
/// fired/cancelled event inert even after its slot has been recycled.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0xffffffffu;
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

class Engine {
 public:
  using Callback = InlineFn<void(), 48>;

  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `f` to run at absolute simulated time `t` (>= now). Accepts
  /// any callable: a raw closure is constructed directly inside the pooled
  /// event record (no temporary wrapper, no relocation); a ready-made
  /// Callback is moved in.
  template <typename F>
  EventId schedule_at(Time t, F&& f) {
    HAN_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    const std::uint64_t seq = ++next_seq_;
    const std::uint32_t slot = acquire_slot();
    Event& rec = slot_ref(slot);
    rec.seq = seq;
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      rec.cb = std::forward<F>(f);
    } else {
      rec.cb.assign(std::forward<F>(f));
    }
    ++live_;
    if (t == now_ && due_head_ < due_.size()) {
      // The batch at `now` is still draining: this event belongs to it
      // (its seq exceeds everything already queued, so FIFO order holds).
      due_.push_back(Entry{t, seq, slot});
    } else {
      // Ordered lazily by fold_tail(). Skip the allocator's crawl through
      // tiny capacities — every real workload schedules dozens of events.
      if (tail_.size() == tail_.capacity() && tail_.capacity() < 32) {
        tail_.reserve(32);
      }
      tail_.push_back(Entry{t, seq, slot});
    }
    return EventId{seq, slot};
  }

  /// Schedule `f` to run `dt` seconds from now.
  template <typename F>
  EventId schedule_after(Time dt, F&& f) {
    return schedule_at(now_ + dt, std::forward<F>(f));
  }

  /// O(1) cancellation. The callback is destroyed and its pool slot
  /// reclaimed immediately; the queue entry is dropped lazily (recognized
  /// by its stale sequence number). Cancelling an already-fired or
  /// already-cancelled event is a no-op.
  void cancel(EventId id) {
    if (id.slot >= pool_size_ || slot_ref(id.slot).seq != id.seq) return;
    release_slot(id.slot);
    ++stale_;
    maybe_purge();
  }

  /// Run the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Run events with timestamp <= `deadline`; afterwards now() == deadline
  /// if the simulation reached it.
  void run_until(Time deadline);

  /// Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return live_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Pool diagnostics (tests assert occupancy returns to zero and that
  /// slots recycle instead of growing the slab).
  std::size_t pool_in_use() const { return live_; }
  std::size_t pool_capacity() const { return pool_size_; }

 private:
  struct Event {
    Callback cb;
    std::uint64_t seq = 0;  // 0 = slot free; matches queue entries while live
    std::uint32_t next_free = kNoSlot;
  };
  struct Entry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  // 256 events per chunk: big enough that chunk allocation is rare, small
  // enough that an idle engine stays cheap.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  static bool before(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  // Chunks hold raw storage; records are placement-constructed on first
  // use (slots are handed out sequentially, so a fresh chunk is never
  // swept eagerly) and destroyed en masse in ~Engine.
  Event& slot_ref(std::uint32_t slot) {
    auto* events = reinterpret_cast<Event*>(chunks_[slot >> kChunkShift].get());
    return events[slot & (kChunkSize - 1)];
  }
  const Event& slot_ref(std::uint32_t slot) const {
    auto* events =
        reinterpret_cast<const Event*>(chunks_[slot >> kChunkShift].get());
    return events[slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slot_ref(slot).next_free;
      return slot;
    }
    if ((pool_size_ & (kChunkSize - 1)) == 0) {
      chunks_.emplace_back(new std::byte[sizeof(Event) * kChunkSize]);
    }
    const std::uint32_t slot = pool_size_++;
    new (&slot_ref(slot)) Event();
    return slot;
  }

  void release_slot(std::uint32_t slot) {
    Event& rec = slot_ref(slot);
    rec.cb = nullptr;  // destroy the capture eagerly
    rec.seq = 0;
    rec.next_free = free_head_;
    free_head_ = slot;
    --live_;
  }

  bool stale(const Entry& e) const { return slot_ref(e.slot).seq != e.seq; }

  // --- Priority queue: sorted run + overflow heap + unsorted tail ---------
  // Invariant at head-access time (after fold_tail): every pending entry is
  // in `sorted_` (descending (t, seq); minimum at the back) or in `heap4_`
  // (4-ary min-heap). `tail_` holds arrivals since the last fold.
  bool queue_empty() const { return sorted_.empty() && heap4_.empty(); }
  const Entry& queue_top() const {
    if (heap4_.empty()) return sorted_.back();
    if (sorted_.empty()) return heap4_.front();
    return before(sorted_.back(), heap4_.front()) ? sorted_.back()
                                                  : heap4_.front();
  }
  Entry queue_pop();
  void fold_tail();
  void heap4_push(Entry e);
  Entry heap4_pop();
  void heap4_sift_down(std::size_t i);
  void radix_sort_tail();
  // Sorts `batch` (descending) and merges it into the run. `fifo_input`
  // marks a batch already in ascending-seq order (i.e. tail_), unlocking
  // the stable radix path.
  void merge_into_sorted(std::vector<Entry>& batch, bool fifo_input);
  void maybe_purge();
  bool refill_due();  // pop the next equal-time batch; false if queue empty
  void skip_stale_tops();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::size_t stale_ = 0;  // upper bound on dead entries still queued
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::uint32_t pool_size_ = 0;  // slots ever created
  std::uint32_t free_head_ = kNoSlot;
  std::vector<Entry> sorted_;
  std::vector<Entry> heap4_;
  std::vector<Entry> tail_;
  std::vector<Entry> scratch_;  // merge buffer, reused across folds
  // Current same-timestamp batch, drained FIFO from due_head_.
  std::vector<Entry> due_;
  std::size_t due_head_ = 0;
};

}  // namespace han::sim

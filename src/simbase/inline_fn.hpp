// InlineFn: a move-only callable wrapper with small-buffer-optimized
// storage, built for the simulator hot path.
//
// Every event the engine fires, every flow completion, every CPU-lane
// wakeup is a closure. std::function heap-allocates any capture larger
// than (typically) two pointers and drags in RTTI + copyability machinery
// we never use. InlineFn stores captures up to `Cap` bytes inline in the
// wrapper itself — the common scheduling closures capture a pointer or
// three and never touch the allocator — and transparently falls back to a
// single heap cell for the rare large capture (deep protocol closures
// carrying buffers/paths). Move-only by design: simulator callbacks are
// consumed exactly once, so copyability would only force every capture to
// be copyable too.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace han::sim {

template <typename Sig, std::size_t Cap = 48>
class InlineFn;

template <typename R, typename... Args, std::size_t Cap>
class InlineFn<R(Args...), Cap> {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  /// Replace the stored callable, constructing `f` directly in the buffer
  /// (one construction — no temporary InlineFn, no relocation). The
  /// engine's scheduling path uses this to write a closure straight into
  /// its pooled event record.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void assign(F&& f) {
    reset();
    emplace(std::forward<F>(f));
  }

  /// True when the callable's capture lives in the inline buffer (no heap
  /// allocation). Exposed so tests can pin the SBO threshold.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  static constexpr std::size_t inline_capacity() { return Cap; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-construct `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
    // Trivially copyable + destructible capture: relocation is a plain
    // buffer copy and destruction a no-op, so the hot move/reset paths
    // skip the indirect call entirely (most scheduling closures capture
    // only pointers and integers).
    bool trivial;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= Cap && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*std::launder(reinterpret_cast<F*>(p)))(
          std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      F* from = std::launder(reinterpret_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* p) noexcept {
      std::launder(reinterpret_cast<F*>(p))->~F();
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true,
                             std::is_trivially_copyable_v<F> &&
                                 std::is_trivially_destructible_v<F>};
  };

  template <typename F>
  struct HeapOps {
    static F*& slot(void* p) { return *std::launder(reinterpret_cast<F**>(p)); }
    static R invoke(void* p, Args&&... args) {
      return (*slot(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(slot(src));
    }
    static void destroy(void* p) noexcept { delete slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false, false};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (&storage_) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (&storage_) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        // Fixed-size copy: compiles to a few vector moves, no indirect
        // call. Trailing bytes past the capture are never read back.
        std::memcpy(&storage_, &other.storage_, Cap);
      } else {
        ops_->relocate(&storage_, &other.storage_);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[Cap];
};

}  // namespace han::sim

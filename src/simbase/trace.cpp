#include "simbase/trace.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace han::sim {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  char buf[96];
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"cat\":\"";
    append_escaped(out, s.cat);
    out += "\",\"name\":\"";
    append_escaped(out, s.name);
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f}",
                  s.start * 1e6, s.duration * 1e6);
    out += buf;
    if (i + 1 < spans_.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool Tracer::save(const std::string& path) const {
  errno = 0;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "Tracer::save: cannot open '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  f << to_chrome_json();
  f.flush();
  if (!f) {
    std::fprintf(stderr, "Tracer::save: write to '%s' failed: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace han::sim

#include "simbase/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

namespace han::sim {

namespace {

// JSON string escaping. Control characters (< 0x20) must be \uXXXX-escaped
// or the output is invalid JSON — span names built from user strings can
// legally contain them.
void append_escaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  char buf[96];
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: name processes after simulated nodes and threads after world
  // ranks, so Perfetto's track labels read "node 2 / rank 17".
  std::vector<int> pids;
  std::vector<std::pair<int, int>> tids;  // (pid, tid)
  for (const Span& s : spans_) {
    pids.push_back(s.pid);
    tids.emplace_back(s.pid, s.tid);
  }
  for (const CounterSample& c : counters_) pids.push_back(c.pid);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (int pid : pids) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"node %d\"}}",
                  pid, pid);
    out += buf;
  }
  for (const auto& [pid, tid] : tids) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"rank %d\"}}",
                  pid, tid, tid);
    out += buf;
  }

  for (const Span& s : spans_) {
    sep();
    out += "{\"ph\":\"X\",\"pid\":";
    out += std::to_string(s.pid);
    out += ",\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"cat\":\"";
    append_escaped(out, s.cat);
    out += "\",\"name\":\"";
    append_escaped(out, s.name);
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f}",
                  s.start * 1e6, s.duration * 1e6);
    out += buf;
  }

  for (const CounterSample& c : counters_) {
    sep();
    out += "{\"ph\":\"C\",\"pid\":";
    out += std::to_string(c.pid);
    out += ",\"name\":\"";
    append_escaped(out, c.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ts\":%.3f,\"args\":{\"value\":%.9g}}", c.t * 1e6,
                  c.value);
    out += buf;
  }

  out += "\n]}\n";
  return out;
}

bool Tracer::save(const std::string& path) const {
  errno = 0;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "Tracer::save: cannot open '%s': %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  f << to_chrome_json();
  f.flush();
  if (!f) {
    std::fprintf(stderr, "Tracer::save: write to '%s' failed: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace han::sim

// Lightweight assertion macros for the HAN reproduction.
//
// The simulator is deterministic; an invariant violation is always a
// programming error, never a data-dependent condition, so we abort with a
// readable message instead of throwing across the event loop.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace han::sim::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HAN_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace han::sim::detail

#define HAN_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::han::sim::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HAN_ASSERT_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::han::sim::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

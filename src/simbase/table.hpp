// Aligned-text and CSV table output, used by every bench binary to print
// the paper's rows/series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace han::sim {

/// Collects rows of strings and renders them as an aligned ASCII table
/// (IMB-style) and/or CSV. Numeric convenience overloads format through
/// snprintf so output is locale-independent.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& begin_row() {
    rows_.emplace_back();
    return *this;
  }

  Table& cell(std::string value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value) { return cell(std::to_string(value)); }
  Table& cell(int value) { return cell(std::to_string(value)); }

  std::size_t row_count() const { return rows_.size(); }

  /// Render as an aligned table with a separator under the header.
  std::string to_text() const;

  /// Render as CSV (header + rows). Cells containing commas are quoted.
  std::string to_csv() const;

  /// Print to stdout: a title line, then the aligned table.
  void print(const std::string& title) const;

  /// Write CSV alongside printed output (best effort; ignores I/O errors so
  /// benches never fail on a read-only filesystem).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace han::sim

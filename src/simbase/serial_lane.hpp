// SerialLane: FIFO execution lane for resources that process one operation
// at a time — a NIC injection engine, the single core of a single-threaded
// MPI process. Tasks run in submission order; each must invoke its release
// callback exactly once to free the lane.
//
// Hot-path note: tasks and the release callback are SBO InlineFn wrappers
// (the release closure is a single pointer and always lives inline), and
// the queue is a recycled ring rather than a deque — a lane wakeup in the
// steady state touches no allocator.
#pragma once

#include "simbase/inline_fn.hpp"
#include "simbase/ring_queue.hpp"

namespace han::sim {

class SerialLane {
 public:
  /// Invoked by a task to free the lane; must be called exactly once.
  using Release = InlineFn<void(), 16>;
  /// `task` runs when the lane frees up; it must eventually invoke the
  /// passed release callback exactly once. 80 bytes of inline capture
  /// covers the protocol closures (engine pointer + duration + completion
  /// callback); bulk-data closures carrying paths spill to one heap cell.
  using Task = InlineFn<void(Release), 80>;

  void submit(Task task) {
    queue_.push_back(std::move(task));
    if (!busy_) pump();
  }

  bool busy() const { return busy_; }

 private:
  void pump() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Task t = queue_.pop_front();
    t(Release([this] { pump(); }));
  }

  bool busy_ = false;
  RingQueue<Task> queue_;
};

}  // namespace han::sim

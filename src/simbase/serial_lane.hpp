// SerialLane: FIFO execution lane for resources that process one operation
// at a time — a NIC injection engine, the single core of a single-threaded
// MPI process. Tasks run in submission order; each must invoke its release
// callback exactly once to free the lane.
#pragma once

#include <deque>
#include <functional>

namespace han::sim {

class SerialLane {
 public:
  /// `task` runs when the lane frees up; it must eventually invoke the
  /// passed release callback exactly once.
  using Task = std::function<void(std::function<void()> release)>;

  void submit(Task task) {
    queue_.push_back(std::move(task));
    if (!busy_) pump();
  }

  bool busy() const { return busy_; }

 private:
  void pump() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Task t = std::move(queue_.front());
    queue_.pop_front();
    t([this] { pump(); });
  }

  bool busy_ = false;
  std::deque<Task> queue_;
};

}  // namespace han::sim

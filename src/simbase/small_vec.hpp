// SmallVec: a vector with inline storage for the first N elements,
// restricted to trivially copyable types.
//
// Flow paths through the fluid network are at most four resources for
// every machine shape we simulate (tx lane, fabric, rx lane, memory bus),
// and a flow starts/finishes millions of times per figure sweep. Keeping
// the path inline in the Flow record removes one heap allocation plus a
// pointer chase per flow lifetime; the heap spill path exists only for
// synthetic topologies in tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>

#include "simbase/assert.hpp"

namespace han::sim {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable element types");
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  bool is_inline() const { return data_ == inline_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) {
    HAN_ASSERT(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    HAN_ASSERT(i < size_);
    return data_[i];
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  T& back() {
    HAN_ASSERT(size_ > 0);
    return data_[size_ - 1];
  }
  const T& back() const {
    HAN_ASSERT(size_ > 0);
    return data_[size_ - 1];
  }

  void pop_back() {
    HAN_ASSERT(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  /// Erase [first, last), preserving the order of later elements.
  T* erase(T* first, T* last) {
    HAN_ASSERT(data_ <= first && first <= last && last <= end());
    std::memmove(first, last, static_cast<std::size_t>(end() - last) * sizeof(T));
    size_ -= static_cast<std::size_t>(last - first);
    return first;
  }

 private:
  void grow(std::size_t new_cap) {
    T* heap = new T[new_cap];
    std::memcpy(heap, data_, size_ * sizeof(T));
    release();
    data_ = heap;
    cap_ = new_cap;
  }

  void release() {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
  }

  void steal(SmallVec& other) noexcept {
    if (other.is_inline()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      data_ = inline_;
      cap_ = N;
    } else {
      data_ = other.data_;
      cap_ = other.cap_;
      other.data_ = other.inline_;
      other.cap_ = N;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace han::sim

// Byte-size and time formatting/parsing helpers shared by benches, the
// autotuner lookup-table serialization, and test diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace han::sim {

/// Simulated time, in seconds. Double precision gives sub-nanosecond
/// resolution over the hours-long horizons the tuning benches simulate.
using Time = double;

inline constexpr Time kMicrosecond = 1e-6;
inline constexpr Time kMillisecond = 1e-3;

/// Format a byte count the way IMB tables do: "4", "1K", "128K", "4M", "1G".
/// Exact powers of two collapse to the suffix form; everything else prints
/// the raw byte count.
std::string format_bytes(std::uint64_t bytes);

/// Parse "64K", "4M", "1G", "128" (case-insensitive, optional trailing 'B')
/// into a byte count. Returns 0 and sets *ok=false on malformed input.
std::uint64_t parse_bytes(std::string_view text, bool* ok = nullptr);

/// Format a simulated duration with an auto-selected unit: "3.24us",
/// "1.52ms", "2.01s".
std::string format_time(Time seconds);

/// Format seconds as microseconds with fixed precision — the unit IMB and
/// the paper's figures use.
std::string format_usec(Time seconds, int precision = 2);

}  // namespace han::sim

#include "simbase/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace han::sim {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr struct {
    std::uint64_t scale;
    char suffix;
  } kUnits[] = {
      {1ull << 30, 'G'},
      {1ull << 20, 'M'},
      {1ull << 10, 'K'},
  };
  for (const auto& u : kUnits) {
    if (bytes >= u.scale && bytes % u.scale == 0) {
      return std::to_string(bytes / u.scale) + u.suffix;
    }
  }
  return std::to_string(bytes);
}

std::uint64_t parse_bytes(std::string_view text, bool* ok) {
  if (ok != nullptr) *ok = false;
  if (text.empty()) return 0;

  std::uint64_t value = 0;
  std::size_t i = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    any_digit = true;
    ++i;
  }
  if (!any_digit) return 0;

  std::uint64_t scale = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': scale = 1ull << 10; ++i; break;
      case 'M': scale = 1ull << 20; ++i; break;
      case 'G': scale = 1ull << 30; ++i; break;
      default: break;
    }
    // Optional trailing 'B' ("64KB").
    if (i < text.size() &&
        std::toupper(static_cast<unsigned char>(text[i])) == 'B') {
      ++i;
    }
  }
  if (i != text.size()) return 0;
  if (ok != nullptr) *ok = true;
  return value * scale;
}

std::string format_time(Time seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
  } else if (abs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

std::string format_usec(Time seconds, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, seconds * 1e6);
  return buf;
}

}  // namespace han::sim

// Deterministic PRNG for the simulator.
//
// xoshiro256** — fast, high quality, and (unlike std::mt19937 streamed
// through std::uniform_*_distribution) gives bit-identical sequences across
// standard-library implementations, which keeps every bench output
// reproducible byte-for-byte.
#pragma once

#include <cstdint>

namespace han::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) — bound must be nonzero. Uses the
  /// widening-multiply trick (unbiased enough for simulation jitter).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace han::sim

// C++20 coroutine plumbing for simulated rank programs.
//
// A rank program is an eagerly-started, self-destroying coroutine (CoTask).
// It suspends on Waitable objects (request completion, timers); completions
// resume waiters through the Engine as zero-delay events, which keeps the
// C++ call stack flat no matter how deep the simulated dependency chains go
// and preserves deterministic FIFO ordering among same-time resumptions.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "simbase/assert.hpp"
#include "simbase/engine.hpp"

namespace han::sim {

/// Fire-and-forget coroutine, started explicitly via start(). The frame is
/// destroyed automatically when the body returns; an optional completion
/// hook fires first (used by SimWorld to count live rank programs). Lazy
/// start guarantees the hook is installed even for bodies that complete
/// synchronously.
class CoTask {
 public:
  struct promise_type {
    std::function<void()> on_done;

    CoTask get_return_object() {
      return CoTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {
      if (on_done) on_done();
    }
    void unhandled_exception() { std::terminate(); }
  };

  /// Begin execution. Call exactly once; the handle must not be touched
  /// afterwards (the frame self-destroys on completion).
  void start(std::function<void()> on_done = nullptr) {
    HAN_ASSERT(handle_ && !started_);
    started_ = true;
    handle_.promise().on_done = std::move(on_done);
    handle_.resume();
  }

 private:
  explicit CoTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
  bool started_ = false;
};

/// One-shot completion object supporting multiple coroutine waiters and
/// plain callback subscribers. Completion resumes/invokes everyone via the
/// engine at the current simulated time. Subscribed callbacks are stored
/// as the engine's SBO callback type, so completion fan-out stays
/// allocation-free for small captures.
class Waitable {
 public:
  explicit Waitable(Engine& engine) : engine_(&engine) {}
  Waitable(const Waitable&) = delete;
  Waitable& operator=(const Waitable&) = delete;

  bool done() const { return done_; }

  /// Subscribe a callback; fires immediately (as a 0-delay event) if the
  /// waitable is already complete.
  void on_complete(Engine::Callback cb) {
    if (done_) {
      engine_->schedule_after(0.0, std::move(cb));
    } else {
      callbacks_.push_back(std::move(cb));
    }
  }

  /// Mark complete and wake all waiters. Idempotence is a bug here:
  /// completing twice indicates a broken protocol, so we assert.
  void complete() {
    HAN_ASSERT_MSG(!done_, "Waitable completed twice");
    done_ = true;
    for (auto& h : waiters_) {
      engine_->schedule_after(0.0, [h] { h.resume(); });
    }
    waiters_.clear();
    for (auto& cb : callbacks_) {
      engine_->schedule_after(0.0, std::move(cb));
    }
    callbacks_.clear();
  }

  auto operator co_await() {
    struct Awaiter {
      Waitable* w;
      bool await_ready() const noexcept { return w->done_; }
      void await_suspend(std::coroutine_handle<> h) {
        w->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  Engine& engine() { return *engine_; }

 private:
  Engine* engine_;
  bool done_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<Engine::Callback> callbacks_;
};

/// Awaitable timer: `co_await Delay{engine, dt};`
struct Delay {
  Engine& engine;
  Time dt;

  bool await_ready() const noexcept { return dt <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_after(dt, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

}  // namespace han::sim

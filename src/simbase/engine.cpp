#include "simbase/engine.hpp"

namespace han::sim {

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    auto cancelled = cancelled_.find(top.seq);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      callbacks_.erase(top.seq);
      continue;
    }
    auto it = callbacks_.find(top.seq);
    HAN_ASSERT(it != callbacks_.end());
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.t;
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace han::sim

#include "simbase/engine.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace han::sim {

namespace {

// Non-negative doubles compare like their bit patterns; the +0.0 folds a
// possible -0.0 into +0.0 so the two compare equal in key space too.
// (Simulated time is never negative: schedule_at asserts t >= now >= 0.)
inline std::uint64_t time_key(Time t) {
  const double d = t + 0.0;
  std::uint64_t k;
  std::memcpy(&k, &d, sizeof k);
  return k;
}

}  // namespace

Engine::~Engine() {
  // Records are placement-constructed (see acquire_slot); only slots that
  // were ever handed out exist.
  for (std::uint32_t s = 0; s < pool_size_; ++s) slot_ref(s).~Event();
}

void Engine::heap4_push(Entry e) {
  std::size_t i = heap4_.size();
  heap4_.push_back(e);
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (!before(e, heap4_[p])) break;
    heap4_[i] = heap4_[p];
    i = p;
  }
  heap4_[i] = e;
}

void Engine::heap4_sift_down(std::size_t i) {
  const std::size_t n = heap4_.size();
  const Entry e = heap4_[i];
  for (;;) {
    const std::size_t c = 4 * i + 1;
    if (c >= n) break;
    const std::size_t last = std::min(c + 4, n);
    std::size_t best = c;
    for (std::size_t j = c + 1; j < last; ++j) {
      if (before(heap4_[j], heap4_[best])) best = j;
    }
    if (!before(heap4_[best], e)) break;
    heap4_[i] = heap4_[best];
    i = best;
  }
  heap4_[i] = e;
}

Engine::Entry Engine::heap4_pop() {
  const Entry top = heap4_.front();
  heap4_.front() = heap4_.back();
  heap4_.pop_back();
  if (!heap4_.empty()) heap4_sift_down(0);
  return top;
}

Engine::Entry Engine::queue_pop() {
  if (heap4_.empty() ||
      (!sorted_.empty() && before(sorted_.back(), heap4_.front()))) {
    const Entry e = sorted_.back();
    sorted_.pop_back();
    return e;
  }
  return heap4_pop();
}

// Stable LSD radix sort of `tail_` by time key, ascending. Stability is
// what makes sorting by time alone sufficient: the tail is appended in
// ascending seq order, so equal times keep FIFO order without ever
// comparing sequence numbers. Byte positions where every key agrees are
// skipped — a simulation's pending times typically share exponent and
// low-mantissa bytes, leaving two or three real passes.
void Engine::radix_sort_tail() {
  const std::size_t n = tail_.size();
  scratch_.resize(n);
  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (const Entry& e : tail_) {
    const std::uint64_t k = time_key(e.t);
    for (int b = 0; b < 8; ++b) ++hist[b][(k >> (8 * b)) & 0xffu];
  }
  Entry* src = tail_.data();
  Entry* dst = scratch_.data();
  for (int b = 0; b < 8; ++b) {
    auto& h = hist[b];
    bool uniform = false;
    for (int j = 0; j < 256; ++j) {
      if (h[j] == n) {
        uniform = true;
        break;
      }
      if (h[j] != 0) break;  // first non-empty bucket decides
    }
    if (uniform) continue;
    std::uint32_t pos = 0;
    std::array<std::uint32_t, 256> start;
    for (int j = 0; j < 256; ++j) {
      start[j] = pos;
      pos += h[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = time_key(src[i].t);
      dst[start[(k >> (8 * b)) & 0xffu]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != tail_.data()) tail_.swap(scratch_);
}

void Engine::merge_into_sorted(std::vector<Entry>& batch, bool fifo_input) {
  const auto later = [](const Entry& a, const Entry& b) {
    return before(b, a);
  };
  if (fifo_input) {
    // A burst often lands on one timestamp (synchronized completions); an
    // ascending-seq input then just needs reversing, no sort at all.
    bool one_time = true;
    for (const Entry& e : batch) {
      if (e.t != batch.front().t) {
        one_time = false;
        break;
      }
    }
    if (one_time) {
      std::reverse(batch.begin(), batch.end());
    } else if (batch.size() > 256) {
      radix_sort_tail();  // stable ascending by time...
      std::reverse(batch.begin(), batch.end());  // ...flipped to descending
    } else {
      std::sort(batch.begin(), batch.end(), later);
    }
  } else {
    std::sort(batch.begin(), batch.end(), later);
  }
  if (sorted_.empty()) {
    sorted_.swap(batch);
  } else {
    scratch_.clear();
    scratch_.reserve(sorted_.size() + batch.size());
    std::merge(sorted_.begin(), sorted_.end(), batch.begin(), batch.end(),
               std::back_inserter(scratch_), later);
    sorted_.swap(scratch_);
  }
  batch.clear();
}

// Fold arrivals since the last head access into the queue proper. A burst
// — the "schedule N, then run" pattern — is sorted once and merged into
// the run; a trickle sifts into the small overflow heap. The overflow heap
// itself is merged into the run once it outgrows it, so it stays shallow.
void Engine::fold_tail() {
  if (!tail_.empty()) {
    // Merge the tail directly only when it is a real burst relative to the
    // run — merging costs O(sorted), so small tails go through the heap
    // and ride its amortized threshold instead.
    if (tail_.size() <= 16 || tail_.size() * 8 < sorted_.size()) {
      for (const Entry& e : tail_) heap4_push(e);
      tail_.clear();
    } else {
      merge_into_sorted(tail_, /*fifo_input=*/true);
    }
  }
  if (heap4_.size() > 64 && heap4_.size() * 2 > sorted_.size()) {
    // Heap order is irrelevant (re-sorted), but heap4_ is not in seq
    // order, so it takes the comparator path.
    merge_into_sorted(heap4_, /*fifo_input=*/false);
  }
}

// Drop cancelled entries sitting at the head of the queue.
void Engine::skip_stale_tops() {
  while (!queue_empty() && stale(queue_top())) {
    queue_pop();
    if (stale_ > 0) --stale_;
  }
}

// Compact the queue when cancelled events dominate it, so cancel-heavy
// workloads (retry timers, speculative protocol steps) stay O(live), not
// O(ever-scheduled). stale_ is an upper bound: it also counts entries that
// died in the due batch, hence the exact recount here.
void Engine::maybe_purge() {
  const std::size_t queued = sorted_.size() + heap4_.size() + tail_.size();
  if (stale_ < 64 || stale_ * 2 < queued) return;
  const auto dead = [this](const Entry& e) { return stale(e); };
  sorted_.erase(std::remove_if(sorted_.begin(), sorted_.end(), dead),
                sorted_.end());  // keeps the descending order
  tail_.erase(std::remove_if(tail_.begin(), tail_.end(), dead), tail_.end());
  heap4_.erase(std::remove_if(heap4_.begin(), heap4_.end(), dead),
               heap4_.end());
  for (std::size_t n = heap4_.size(), i = n >= 2 ? (n - 2) / 4 + 1 : 0;
       i-- > 0;) {
    heap4_sift_down(i);
  }
  stale_ = 0;
}

bool Engine::refill_due() {
  due_.clear();
  due_head_ = 0;
  // Synchronized-completion fast path: everything pending arrived since the
  // last fold and lands on one timestamp (a barrier of flows finishing
  // together). The tail is already FIFO — it IS the batch, no sort, no
  // reverse, no copy. Guarded on stale_ == 0 so a fully-cancelled batch
  // cannot advance now_ (the fold path leaves now_ untouched in that case).
  if (stale_ == 0 && sorted_.empty() && heap4_.empty() && !tail_.empty()) {
    const Time t = tail_.front().t;
    bool one_time = true;
    for (const Entry& e : tail_) {
      if (e.t != t) {
        one_time = false;
        break;
      }
    }
    if (one_time) {
      due_.swap(tail_);
      now_ = t;
      return true;
    }
  }
  fold_tail();
  skip_stale_tops();
  if (queue_empty()) return false;
  const Time t = queue_top().t;
  // Pop the entire equal-time batch before firing any of it: callbacks
  // that schedule zero-delay events then append to `due_` directly,
  // preserving global FIFO order without re-touching the heap. The head
  // entry is live (stale tops were just skipped), so the batch is
  // guaranteed non-empty.
  if (heap4_.empty() || heap4_.front().t != t) {
    // Fast path: the whole batch sits contiguously at the back of the
    // sorted run, in descending seq order — copy it out reversed without
    // touching the (cache-scattered) event records; step() re-checks
    // staleness per entry anyway.
    std::size_t first = sorted_.size();
    while (first > 0 && sorted_[first - 1].t == t) --first;
    for (std::size_t i = sorted_.size(); i-- > first;) {
      due_.push_back(sorted_[i]);
    }
    sorted_.resize(first);
  } else {
    while (!queue_empty() && queue_top().t == t) {
      const Entry e = queue_pop();
      if (!stale(e)) {
        due_.push_back(e);
      } else if (stale_ > 0) {
        --stale_;
      }
    }
  }
  now_ = t;
  return true;
}

bool Engine::step() {
  for (;;) {
    if (due_head_ >= due_.size()) {
      if (!refill_due()) return false;
    }
    const Entry e = due_[due_head_++];
    // The batch announces future record accesses; their slots are scattered
    // (firing order != allocation order), so prefetch a few entries ahead.
    if (due_head_ + 4 < due_.size()) {
      __builtin_prefetch(&slot_ref(due_[due_head_ + 4].slot));
    }
    Event& rec = slot_ref(e.slot);
    if (rec.seq != e.seq) {
      if (stale_ > 0) --stale_;
      continue;  // cancelled while waiting in the batch
    }
    // Fire in place: chunk addresses are stable, and clearing `seq` first
    // makes a self-cancel inside the callback a no-op. The slot joins the
    // free list only after the callback returns, so events it schedules
    // cannot reuse it mid-flight.
    rec.seq = 0;
    --live_;
    ++processed_;
    rec.cb();
    rec.cb = nullptr;
    rec.next_free = free_head_;
    free_head_ = e.slot;
    return true;
  }
}

void Engine::run_until(Time deadline) {
  for (;;) {
    if (due_head_ < due_.size()) {
      // Entries in the current batch are due at now(); a partially
      // drained batch can sit beyond a smaller deadline.
      if (now_ > deadline) break;
      step();
      continue;
    }
    fold_tail();
    skip_stale_tops();
    if (queue_empty() || queue_top().t > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace han::sim

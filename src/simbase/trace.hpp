// Execution tracing: collects (rank, category, name, start, duration)
// spans of simulated activity and exports Chrome trace-event JSON —
// loadable in chrome://tracing or Perfetto to inspect how a collective's
// tasks pipeline and overlap (the visual counterpart of paper Fig. 1/5).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "simbase/units.hpp"

namespace han::sim {

class Tracer {
 public:
  struct Span {
    int tid = 0;  // simulated world rank
    std::string cat;
    std::string name;
    Time start = 0.0;
    Time duration = 0.0;
  };

  void span(int tid, std::string_view cat, std::string_view name, Time start,
            Time end) {
    spans_.push_back(Span{tid, std::string(cat), std::string(name), start,
                          end - start});
  }

  std::size_t size() const { return spans_.size(); }
  void clear() { spans_.clear(); }
  const std::vector<Span>& spans() const { return spans_; }

  /// Chrome trace-event JSON ("X" complete events, microsecond units).
  std::string to_chrome_json() const;

  /// Best-effort file write; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace han::sim

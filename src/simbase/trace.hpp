// Execution tracing: collects (node, rank, category, name, start, duration)
// spans of simulated activity plus named counter-track samples, and exports
// Chrome trace-event JSON — loadable in chrome://tracing or Perfetto to
// inspect how a collective's tasks pipeline and overlap (the visual
// counterpart of paper Fig. 1/5) and how link utilization / queue depth /
// in-flight concurrency evolve alongside ("C" counter events).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "simbase/units.hpp"

namespace han::sim {

class Tracer {
 public:
  struct Span {
    int pid = 0;  // simulated node id (Perfetto groups ranks by process)
    int tid = 0;  // simulated world rank
    std::string cat;
    std::string name;
    Time start = 0.0;
    Time duration = 0.0;
  };

  /// Counter-track sample: rendered by Perfetto as a stepped time series
  /// under process `pid` (track identity is the (pid, name) pair).
  struct CounterSample {
    int pid = 0;
    std::string name;
    Time t = 0.0;
    double value = 0.0;
  };

  void span(int tid, std::string_view cat, std::string_view name, Time start,
            Time end, int pid = 0) {
    spans_.push_back(Span{pid, tid, std::string(cat), std::string(name),
                          start, end - start});
  }

  void counter(std::string_view name, Time t, double value, int pid = 0) {
    counters_.push_back(CounterSample{pid, std::string(name), t, value});
  }

  std::size_t size() const { return spans_.size(); }
  std::size_t counter_count() const { return counters_.size(); }
  void clear() {
    spans_.clear();
    counters_.clear();
  }
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<CounterSample>& counters() const { return counters_; }

  /// Chrome trace-event JSON: "X" complete events (microsecond units),
  /// "C" counter events, and "M" metadata naming each pid "node <n>" /
  /// each tid "rank <r>".
  std::string to_chrome_json() const;

  /// Best-effort file write; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;
};

}  // namespace han::sim

// Small statistics helpers used by the benchmark harnesses and the task
// benchmarking component of the autotuner.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "simbase/assert.hpp"

namespace han::sim {

/// Streaming mean/min/max/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-quantile (q in [0,1]) with linear interpolation; does not modify input.
double quantile(std::span<const double> values, double q);

inline double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

double mean(std::span<const double> values);

inline double max_of(std::span<const double> values) {
  HAN_ASSERT(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

inline double min_of(std::span<const double> values) {
  HAN_ASSERT(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

}  // namespace han::sim

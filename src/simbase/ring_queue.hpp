// RingQueue: a growable power-of-two circular FIFO for move-only types.
//
// Replaces std::deque in the simulator's serial lanes and CPU progression
// queues: a deque allocates per chunk and walks a map of blocks, while a
// lane's queue is tiny and hot — push at tail, pop at head, millions of
// times per run. Capacity never shrinks; the steady state is
// allocation-free.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "simbase/assert.hpp"

namespace han::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  T& front() {
    HAN_ASSERT(size_ > 0);
    return buf_[head_];
  }

  T pop_front() {
    HAN_ASSERT(size_ > 0);
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
    return v;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace han::sim

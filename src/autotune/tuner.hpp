// Tuner: the offline autotuning driver (paper §III-C).
//
// Runs the task-model search over a message-size sample, fills a
// LookupTable, and can install the resulting decision function into a
// HanModule — the "performed once when installing the MPI to a new
// machine" workflow.
#pragma once

#include "autotune/lookup.hpp"
#include "autotune/search.hpp"

namespace han::tune {

struct TunerOptions {
  /// Message sizes sampled into the lookup table (Table I's m axis).
  std::vector<std::size_t> message_sizes{
      4 << 10,  16 << 10, 64 << 10, 256 << 10,
      1 << 20,  4 << 20,  16 << 20};
  // Built by push_back rather than an initializer list: GCC 12 emits a
  // spurious -Wmaybe-uninitialized for the byte-sized backing array when
  // this NSDMI is inlined into callers under -O2.
  static std::vector<coll::CollKind> default_kinds() {
    std::vector<coll::CollKind> v;
    v.push_back(coll::CollKind::Bcast);
    v.push_back(coll::CollKind::Allreduce);
    v.push_back(coll::CollKind::ReduceScatter);
    return v;
  }
  std::vector<coll::CollKind> kinds = default_kinds();
  bool heuristics = false;  // user-toggleable (paper: accuracy trade-off)
  /// Concurrent per-kind tuning jobs (han::par). Each job rebuilds the
  /// machine in a private SimWorld and the results merge in kind order, so
  /// every jobs value — including the serial 1, the default — produces an
  /// identical report (0 = one job per hardware thread). Only applies when
  /// the tuner targets the world communicator; sub-communicator tuning
  /// cannot be replayed in a fresh world and stays serial in place.
  int jobs = 1;
};

struct TuneReport {
  LookupTable table;
  double tuning_cost = 0.0;  // simulated benchmark seconds
  int task_benchmarks = 0;   // configurations whose tasks were measured
};

class Tuner {
 public:
  Tuner(mpi::SimWorld& world, core::HanModule& han, const mpi::Comm& comm,
        SearchSpace space = SearchSpace());

  /// Task-model autotuning: benchmark tasks, model every (config, m), fill
  /// the table with the per-m winners.
  TuneReport tune(const TunerOptions& options = TunerOptions());

  /// Install a table's decision function into the HanModule.
  void install(const LookupTable& table);

  Searcher& searcher() { return searcher_; }
  mpi::SimWorld& world() { return *world_; }
  core::HanModule& han() { return *han_; }
  const mpi::Comm& comm() const { return *comm_; }

 private:
  mpi::SimWorld* world_;
  core::HanModule* han_;
  const mpi::Comm* comm_;
  Searcher searcher_;
};

}  // namespace han::tune

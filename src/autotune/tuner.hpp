// Tuner: the offline autotuning driver (paper §III-C).
//
// Runs the task-model search over a message-size sample, fills a
// LookupTable, and can install the resulting decision function into a
// HanModule — the "performed once when installing the MPI to a new
// machine" workflow.
#pragma once

#include "autotune/lookup.hpp"
#include "autotune/search.hpp"

namespace han::tune {

struct TunerOptions {
  /// Message sizes sampled into the lookup table (Table I's m axis).
  std::vector<std::size_t> message_sizes{
      4 << 10,  16 << 10, 64 << 10, 256 << 10,
      1 << 20,  4 << 20,  16 << 20};
  // Built by push_back rather than an initializer list: GCC 12 emits a
  // spurious -Wmaybe-uninitialized for the byte-sized backing array when
  // this NSDMI is inlined into callers under -O2.
  static std::vector<coll::CollKind> default_kinds() {
    std::vector<coll::CollKind> v;
    v.push_back(coll::CollKind::Bcast);
    v.push_back(coll::CollKind::Allreduce);
    v.push_back(coll::CollKind::ReduceScatter);
    return v;
  }
  std::vector<coll::CollKind> kinds = default_kinds();
  bool heuristics = false;  // user-toggleable (paper: accuracy trade-off)
};

struct TuneReport {
  LookupTable table;
  double tuning_cost = 0.0;  // simulated benchmark seconds
  int task_benchmarks = 0;   // configurations whose tasks were measured
};

class Tuner {
 public:
  Tuner(mpi::SimWorld& world, core::HanModule& han, const mpi::Comm& comm,
        SearchSpace space = SearchSpace());

  /// Task-model autotuning: benchmark tasks, model every (config, m), fill
  /// the table with the per-m winners.
  TuneReport tune(const TunerOptions& options = TunerOptions());

  /// Install a table's decision function into the HanModule.
  void install(const LookupTable& table);

  Searcher& searcher() { return searcher_; }

 private:
  mpi::SimWorld* world_;
  core::HanModule* han_;
  const mpi::Comm* comm_;
  Searcher searcher_;
};

}  // namespace han::tune

// Step 2 of autotuning (paper §III-C): turn the sampled lookup table into
// compact decision rules answering arbitrary message sizes.
//
// The paper cites quadtree encoding [35] and decision trees [36] for this
// step but focuses on step 1; we implement the natural 1-D variant: merge
// adjacent message-size buckets that chose the same configuration into
// piecewise-constant ranges with midpoint thresholds — the same structure
// Open MPI's dynamic-rules files encode.
#pragma once

#include <string>
#include <vector>

#include "autotune/lookup.hpp"

namespace han::tune {

class DecisionRules {
 public:
  struct Rule {
    std::size_t max_bytes;  // applies to messages <= max_bytes
    core::HanConfig cfg;
  };

  /// Compile the rules for one (kind, nodes, ppn) slice of a lookup
  /// table. Returns an empty rule set when the table has no entries for
  /// the slice.
  static DecisionRules build(const LookupTable& table, coll::CollKind kind,
                             int nodes, int ppn);

  bool empty() const { return rules_.empty(); }
  std::size_t rule_count() const { return rules_.size(); }

  /// Configuration for an arbitrary message size: the first rule whose
  /// range covers it; messages beyond the last threshold use the last
  /// rule (largest tuned regime).
  const core::HanConfig& decide(std::size_t bytes) const;

  /// Human-readable piecewise table (the "dynamic rules file" view).
  std::string to_string() const;

  coll::CollKind kind() const { return kind_; }

 private:
  coll::CollKind kind_ = coll::CollKind::Bcast;
  std::vector<Rule> rules_;  // ascending max_bytes
};

/// Compile every (kind, nodes, ppn) slice present in a table and expose a
/// HanModule decider that dispatches to the right rule set (nearest shape
/// when the exact one is missing).
class RuleBook {
 public:
  static RuleBook build(const LookupTable& table);

  core::HanConfig decide(coll::CollKind kind, int nodes, int ppn,
                         std::size_t bytes) const;
  core::HanModule::Decider decider() const;
  std::size_t slice_count() const { return slices_.size(); }

 private:
  struct Slice {
    coll::CollKind kind;
    int nodes;
    int ppn;
    DecisionRules rules;
  };
  std::vector<Slice> slices_;
};

}  // namespace han::tune

#include "autotune/tunedb.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "simbase/assert.hpp"

namespace han::tune {

namespace {

// ---- FNV-1a 64 ------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (; n > 0; --n, ++p) {
    h ^= *p;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return mix_u64(h, bits);
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

coll::CollKind parse_kind(const std::string& s, bool* ok) {
  *ok = true;
  if (s == "bcast") return coll::CollKind::Bcast;
  if (s == "reduce") return coll::CollKind::Reduce;
  if (s == "allreduce") return coll::CollKind::Allreduce;
  if (s == "gather") return coll::CollKind::Gather;
  if (s == "scatter") return coll::CollKind::Scatter;
  if (s == "allgather") return coll::CollKind::Allgather;
  if (s == "barrier") return coll::CollKind::Barrier;
  if (s == "reduce_scatter") return coll::CollKind::ReduceScatter;
  *ok = false;
  return coll::CollKind::Bcast;
}

}  // namespace

// ---- MachineSignature ------------------------------------------------------

std::uint64_t MachineSignature::band(int log2_bytes) const {
  const int b = std::clamp(log2_bytes, 0, kBands - 1);
  return band_hash[b];
}

MachineSignature signature_of(const machine::MachineProfile& profile) {
  MachineSignature sig;
  sig.topo = profile.name + "." + std::to_string(profile.nodes) + "x" +
             std::to_string(profile.procs_per_node) + ".numa" +
             std::to_string(profile.numa_per_node);

  std::uint64_t h = fnv1a(kFnvOffset, sig.topo.data(), sig.topo.size());
  h = mix_double(h, profile.net_latency);
  h = mix_double(h, profile.nic_bandwidth);
  h = mix_double(h, profile.bisection_factor);
  h = mix_double(h, profile.shm_latency);
  h = mix_double(h, profile.membus_bandwidth);
  h = mix_double(h, profile.core_copy_bandwidth);
  h = mix_double(h, profile.inter_numa_bandwidth);
  h = mix_double(h, profile.inter_numa_latency);
  h = mix_double(h, profile.reduce_bandwidth_scalar);
  h = mix_double(h, profile.reduce_bandwidth_avx);
  h = mix_double(h, profile.jitter);
  h = mix_u64(h, profile.ompi_p2p.eager_limit);
  h = mix_double(h, profile.ompi_p2p.send_overhead);
  h = mix_double(h, profile.ompi_p2p.recv_overhead);
  h = mix_double(h, profile.ompi_p2p.match_overhead);
  h = mix_double(h, profile.ompi_p2p.rndv_rtt_extra);
  sig.scalar_hash = h;

  // Per-band curve hash: the interpolated efficiency sampled at four
  // points inside [2^b, 2^(b+1)). A knot edit moves at() across the whole
  // span between its neighboring knots, so every band that span reaches
  // changes hash — no band a perturbation can silently slip through.
  const machine::EffCurve& curve = profile.ompi_p2p.net_efficiency;
  for (int b = 0; b < MachineSignature::kBands; ++b) {
    std::uint64_t bh = mix_u64(sig.scalar_hash,
                               static_cast<std::uint64_t>(b));
    const std::uint64_t lo = std::uint64_t{1} << b;
    for (int k = 0; k < 4; ++k) {
      const std::uint64_t bytes =
          lo + static_cast<std::uint64_t>(k) * (lo / 4);
      bh = mix_double(bh, curve.at(bytes));
    }
    sig.band_hash[b] = bh;
  }
  return sig;
}

// ---- TuneDb ----------------------------------------------------------------

LookupTable TuneDb::Record::table() const {
  LookupTable t;
  for (const auto& [key, entry] : entries) {
    t.insert(key.kind, key.nodes, key.ppn,
             std::size_t{1} << key.log2_bytes, entry.cfg);
  }
  return t;
}

const TuneDb::Record* TuneDb::find(const std::string& topo_key) const {
  auto it = records_.find(topo_key);
  return it == records_.end() ? nullptr : &it->second;
}

void TuneDb::ingest(const MachineSignature& sig, const LookupTable& table) {
  Record& rec = records_[sig.key()];
  rec.sig = sig;
  rec.revision += 1;
  rec.stamp = next_stamp_++;
  for (const auto& [key, cfg] : table.entries()) {
    rec.entries[key] = Entry{cfg, sig.band(key.log2_bytes)};
  }
}

std::vector<LookupTable::Key> TuneDb::stale_keys(
    const MachineSignature& sig,
    const std::vector<LookupTable::Key>& wanted) const {
  std::vector<LookupTable::Key> stale;
  const Record* rec = find(sig.key());
  for (const LookupTable::Key& key : wanted) {
    if (rec == nullptr) {
      stale.push_back(key);
      continue;
    }
    auto it = rec->entries.find(key);
    if (it == rec->entries.end() ||
        it->second.band_hash != sig.band(key.log2_bytes)) {
      stale.push_back(key);
    }
  }
  return stale;
}

int TuneDb::invalidate(const std::string& topo_key,
                       std::optional<coll::CollKind> kind) {
  auto it = records_.find(topo_key);
  if (it == records_.end()) return 0;
  if (!kind.has_value()) {
    const int n = static_cast<int>(it->second.entries.size());
    records_.erase(it);
    return n;
  }
  int n = 0;
  auto& entries = it->second.entries;
  for (auto e = entries.begin(); e != entries.end();) {
    if (e->first.kind == *kind) {
      e = entries.erase(e);
      ++n;
    } else {
      ++e;
    }
  }
  if (entries.empty()) records_.erase(it);
  return n;
}

int TuneDb::gc(std::size_t max_records) {
  if (records_.size() <= max_records) return 0;
  // Oldest ingest stamps go first; the map key breaks (impossible) ties
  // deterministically.
  std::vector<std::pair<std::uint64_t, std::string>> order;
  for (const auto& [key, rec] : records_) order.emplace_back(rec.stamp, key);
  std::sort(order.begin(), order.end());
  const std::size_t drop = records_.size() - max_records;
  for (std::size_t i = 0; i < drop; ++i) records_.erase(order[i].second);
  return static_cast<int>(drop);
}

std::size_t TuneDb::entry_count() const {
  std::size_t n = 0;
  for (const auto& [key, rec] : records_) n += rec.entries.size();
  return n;
}

std::string TuneDb::serialize() const {
  std::string out = "# HAN tuning database: machine signature -> tuned "
                    "configurations\n";
  out += "# see docs/TUNING_SERVICE.md for the format\n";
  out += "version " + std::to_string(kFormatVersion) + "\n";
  for (const auto& [key, rec] : records_) {
    out += "machine " + key + "\n";
    out += "revision " + std::to_string(rec.revision) + "\n";
    out += "stamp " + std::to_string(rec.stamp) + "\n";
    out += "scalar " + hex64(rec.sig.scalar_hash) + "\n";
    out += "bands";
    for (int b = 0; b < MachineSignature::kBands; ++b) {
      out += " " + hex64(rec.sig.band_hash[b]);
    }
    out += "\n";
    for (const auto& [ekey, entry] : rec.entries) {
      char line[96];
      std::snprintf(line, sizeof line, "entry %s %d %d %d %s : ",
                    coll::coll_kind_name(ekey.kind), ekey.nodes, ekey.ppn,
                    ekey.log2_bytes, hex64(entry.band_hash).c_str());
      out += line;
      out += entry.cfg.to_string();
      out += '\n';
    }
    out += "end\n";
  }
  return out;
}

bool TuneDb::deserialize(const std::string& text, TuneDb* out,
                         std::string* error) {
  TuneDb db;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_version = false;
  Record* rec = nullptr;
  std::string rec_key;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "tunedb line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (!saw_version) {
      if (tag != "version") return fail("expected version header");
      int v = 0;
      std::string trailing;
      if (!(ls >> v) || ls >> trailing) return fail("malformed version");
      if (v < 1) return fail("bad version " + std::to_string(v));
      if (v > kFormatVersion) {
        return fail("format version " + std::to_string(v) +
                    " is newer than this build supports (" +
                    std::to_string(kFormatVersion) + ")");
      }
      saw_version = true;
      continue;
    }
    if (tag == "machine") {
      if (rec != nullptr) return fail("machine block missing 'end'");
      std::string key, trailing;
      if (!(ls >> key) || ls >> trailing) return fail("malformed machine");
      if (db.records_.count(key) != 0) {
        return fail("duplicate machine '" + key + "'");
      }
      rec = &db.records_[key];
      rec->sig.topo = key;
      rec_key = key;
    } else if (tag == "end") {
      if (rec == nullptr) return fail("'end' outside a machine block");
      rec = nullptr;
    } else if (rec == nullptr) {
      return fail("'" + tag + "' outside a machine block");
    } else if (tag == "revision") {
      if (!(ls >> rec->revision) || rec->revision < 1) {
        return fail("malformed revision");
      }
    } else if (tag == "stamp") {
      if (!(ls >> rec->stamp)) return fail("malformed stamp");
      db.next_stamp_ = std::max(db.next_stamp_, rec->stamp + 1);
    } else if (tag == "scalar") {
      std::string hex;
      if (!(ls >> hex) || !parse_hex64(hex, &rec->sig.scalar_hash)) {
        return fail("malformed scalar hash");
      }
    } else if (tag == "bands") {
      for (int b = 0; b < MachineSignature::kBands; ++b) {
        std::string hex;
        if (!(ls >> hex) || !parse_hex64(hex, &rec->sig.band_hash[b])) {
          return fail("malformed band hash " + std::to_string(b));
        }
      }
      std::string trailing;
      if (ls >> trailing) return fail("trailing band hash");
    } else if (tag == "entry") {
      std::string kind_s, hash_s, colon;
      int nodes = 0, ppn = 0, log2b = 0;
      if (!(ls >> kind_s >> nodes >> ppn >> log2b >> hash_s >> colon) ||
          colon != ":") {
        return fail("malformed entry");
      }
      bool ok = false;
      const coll::CollKind kind = parse_kind(kind_s, &ok);
      if (!ok || nodes <= 0 || ppn <= 0 || log2b < 0) {
        return fail("bad entry key");
      }
      Entry entry;
      if (!parse_hex64(hash_s, &entry.band_hash)) {
        return fail("bad entry band hash");
      }
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      if (!core::HanConfig::parse(rest, &entry.cfg)) {
        return fail("unparseable config '" + rest + "'");
      }
      rec->entries[LookupTable::Key{kind, nodes, ppn, log2b}] =
          std::move(entry);
    } else {
      return fail("unknown field '" + tag + "'");
    }
  }
  if (!saw_version) return fail("empty file (no version header)");
  if (rec != nullptr) return fail("unterminated machine block");
  *out = std::move(db);
  return true;
}

bool TuneDb::save(const std::string& path) const {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "TuneDb::save: cannot open '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  out << serialize();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "TuneDb::save: write to '%s' failed: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

std::optional<TuneDb> TuneDb::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  TuneDb db;
  std::string error;
  if (!deserialize(buf.str(), &db, &error)) {
    std::fprintf(stderr, "TuneDb::load: rejecting '%s': %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  return db;
}

std::string TuneDb::report_json() const {
  std::string j = "{\n  \"totals\": {\"records\": " +
                  std::to_string(records_.size()) +
                  ", \"entries\": " + std::to_string(entry_count()) +
                  "},\n  \"machines\": {\n";
  std::size_t i = 0;
  for (const auto& [key, rec] : records_) {
    std::map<std::string, int> kinds;
    for (const auto& [ekey, entry] : rec.entries) {
      kinds[coll::coll_kind_name(ekey.kind)] += 1;
    }
    j += "    \"" + key + "\": {\"revision\": " +
         std::to_string(rec.revision) +
         ", \"stamp\": " + std::to_string(rec.stamp) + ", \"scalar\": \"" +
         hex64(rec.sig.scalar_hash) + "\", \"entries\": " +
         std::to_string(rec.entries.size()) + ", \"kinds\": {";
    std::size_t k = 0;
    for (const auto& [kname, count] : kinds) {
      if (k++ > 0) j += ", ";
      j += "\"" + kname + "\": " + std::to_string(count);
    }
    j += "}}";
    j += ++i < records_.size() ? ",\n" : "\n";
  }
  j += "  }\n}\n";
  return j;
}

// ---- warm_tune -------------------------------------------------------------

WarmStartReport warm_tune(TuneDb& db, Tuner& tuner,
                          const TunerOptions& options) {
  // Normalize exactly like Tuner::tune so bucket bookkeeping matches what
  // the tuner would produce.
  TunerOptions opts = options;
  std::sort(opts.message_sizes.begin(), opts.message_sizes.end());
  opts.message_sizes.erase(
      std::unique(opts.message_sizes.begin(), opts.message_sizes.end()),
      opts.message_sizes.end());
  std::sort(opts.kinds.begin(), opts.kinds.end());
  opts.kinds.erase(std::unique(opts.kinds.begin(), opts.kinds.end()),
                   opts.kinds.end());

  WarmStartReport rep;
  const MachineSignature sig = signature_of(tuner.world().profile());
  const TuneDb::Record* rec = db.find(sig.key());
  rep.cold = rec == nullptr;

  core::Hierarchy& hc = tuner.han().flat_hierarchy(tuner.comm());
  const int nodes = hc.node_count();
  const int ppn = hc.max_ppn();

  // A collective re-tunes whole or not at all: its task benchmarks — the
  // entire tuning cost — are message-size independent, so once one bucket
  // is stale the remaining buckets of that kind are free anyway.
  TunerOptions inc = opts;
  inc.kinds.clear();
  for (coll::CollKind kind : opts.kinds) {
    std::vector<LookupTable::Key> wanted;
    for (std::size_t m : opts.message_sizes) {
      wanted.push_back(
          LookupTable::Key{kind, nodes, ppn, LookupTable::bucket_of(m)});
    }
    wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
    if (!db.stale_keys(sig, wanted).empty()) {
      inc.kinds.push_back(kind);
      rep.retuned_kinds.push_back(coll::coll_kind_name(kind));
      continue;
    }
    for (const LookupTable::Key& key : wanted) {
      auto it = rec->entries.find(key);
      HAN_ASSERT(it != rec->entries.end());
      rep.table.insert(key.kind, key.nodes, key.ppn,
                       std::size_t{1} << key.log2_bytes, it->second.cfg);
      ++rep.reused;
    }
  }

  if (!inc.kinds.empty()) {
    const TuneReport tr = tuner.tune(inc);
    rep.tuning_cost = tr.tuning_cost;
    for (const auto& [key, cfg] : tr.table.entries()) {
      rep.table.insert(key.kind, key.nodes, key.ppn,
                       std::size_t{1} << key.log2_bytes, cfg);
      ++rep.retuned;
    }
  }

  obs::MetricsRegistry& metrics = tuner.world().metrics();
  metrics.counter("tune.warm.reused").add(static_cast<double>(rep.reused));
  metrics.counter("tune.warm.retuned").add(static_cast<double>(rep.retuned));

  // Fully-warm passes leave the DB untouched (idempotent: no revision
  // churn); anything tuned — including a cold first contact — is recorded.
  if (rep.cold || rep.retuned > 0) db.ingest(sig, rep.table);
  return rep;
}

}  // namespace han::tune

// The autotuner's lookup table (paper §III-C step 1 output / step 2 input).
//
// Keys are the paper's Table I inputs — collective type t, node count n,
// processes per node p, message size m (sampled at powers of two). Values
// are Table II configurations. decide() answers arbitrary inputs by
// snapping to the nearest sampled bucket, the simple variant of the
// quadtree/decision-tree schemes the paper cites for step 2.
//
// Tables serialize to a human-readable text file, mirroring the
// HAN-in-Open-MPI dynamic-rules file workflow (tuned offline once per
// machine, loaded at MPI_Init).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "han/han.hpp"

namespace han::tune {

class LookupTable {
 public:
  /// Text-format version written by serialize(). v1 = the version-less
  /// seed format (plain Table II configs); v2 adds the header line and
  /// may carry synthesized-schedule ids (`sched=`) in config values; v3
  /// may carry per-level hierarchy tokens (`lvl=`/`malg=`/`ms=`/`zcs=`,
  /// docs/HIERARCHY.md); v4 may carry the multi-rail stripe factor
  /// (`sf=`, docs/FABRIC.md) in config values. deserialize() accepts
  /// v1-v4 and rejects anything newer.
  static constexpr int kFormatVersion = 4;

  struct Key {
    coll::CollKind kind;
    int nodes;
    int ppn;
    int log2_bytes;  // floor(log2(max(m,1)))

    auto operator<=>(const Key&) const = default;
  };

  static int bucket_of(std::size_t bytes);

  void insert(coll::CollKind kind, int nodes, int ppn, std::size_t bytes,
              const core::HanConfig& cfg);

  /// Exact-bucket lookup; nullptr when the bucket was never tuned.
  const core::HanConfig* find(coll::CollKind kind, int nodes, int ppn,
                              std::size_t bytes) const;

  /// Nearest-bucket decision for arbitrary inputs: exact bucket first,
  /// then the closest tuned message bucket for the same (kind, n, p), then
  /// the closest tuned (n, p) shape, finally the static default heuristic.
  core::HanConfig decide(coll::CollKind kind, int nodes, int ppn,
                         std::size_t bytes) const;

  /// Adapter for HanModule::set_decider (copies the table).
  core::HanModule::Decider decider() const;

  std::size_t size() const { return entries_.size(); }

  /// Read access for rule compilers (autotune/decision.hpp) and tooling.
  using Entries = std::map<Key, core::HanConfig>;
  const Entries& entries() const { return entries_; }

  std::string serialize() const;
  static bool deserialize(const std::string& text, LookupTable* out);

  /// Best-effort file round-trip.
  bool save(const std::string& path) const;
  static std::optional<LookupTable> load(const std::string& path);

 private:
  std::map<Key, core::HanConfig> entries_;
};

}  // namespace han::tune

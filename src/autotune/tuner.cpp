#include "autotune/tuner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "parallel/pool.hpp"

namespace han::tune {

namespace {

/// A private machine replica for one tuning job: same profile and world
/// options as the tuner's world, nothing shared with it.
struct TuneWorld {
  TuneWorld(machine::MachineProfile profile, mpi::SimWorld::Options o)
      : world(std::move(profile), o),
        rt(world),
        mods(world, rt),
        han(world, rt, mods) {}
  mpi::SimWorld world;
  coll::CollRuntime rt;
  coll::ModuleSet mods;
  core::HanModule han;
};

/// Everything one per-kind job produces. The world is kept alive so its
/// metrics (tune.search.*, tune.taskbench.*, sim.*) can be merged into the
/// caller's registry after the join, in kind order.
struct KindOutcome {
  std::unique_ptr<TuneWorld> tw;
  std::vector<std::pair<std::size_t, core::HanConfig>> winners;
  std::size_t estimates = 0;
  int max_evaluations = 0;
  double cost = 0.0;
};

/// NUMA profiles grow the mid-level ladder axes (docs/HIERARCHY.md)
/// unless the caller pinned either axis explicitly. Flat profiles pass
/// through untouched, keeping the seed's space byte for byte.
SearchSpace with_profile_axes(SearchSpace space,
                              const machine::MachineProfile& profile) {
  if (profile.numa_per_node > 1 && space.mid_algs.empty() &&
      space.zc_switchovers.empty()) {
    SearchSpace d = SearchSpace::for_profile(profile);
    space.mid_algs = std::move(d.mid_algs);
    space.zc_switchovers = std::move(d.zc_switchovers);
  }
  return space;
}

}  // namespace

Tuner::Tuner(mpi::SimWorld& world, core::HanModule& han,
             const mpi::Comm& comm, SearchSpace space)
    : world_(&world),
      han_(&han),
      comm_(&comm),
      searcher_(world, han, comm,
                with_profile_axes(std::move(space), world.profile())) {}

TuneReport Tuner::tune(const TunerOptions& options) {
  // Callers assemble size lists programmatically (unions of app bucket
  // sizes, sweep ladders); tolerate duplicates and out-of-order entries so
  // a repeated size is never benchmarked twice and the table fills in
  // ascending order.
  TunerOptions opts = options;
  std::sort(opts.message_sizes.begin(), opts.message_sizes.end());
  opts.message_sizes.erase(
      std::unique(opts.message_sizes.begin(), opts.message_sizes.end()),
      opts.message_sizes.end());
  std::sort(opts.kinds.begin(), opts.kinds.end());
  opts.kinds.erase(std::unique(opts.kinds.begin(), opts.kinds.end()),
                   opts.kinds.end());

  TuneReport report;
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  const int nodes = hc.node_count();
  const int ppn = hc.max_ppn();

  obs::MetricsRegistry& metrics = world_->metrics();
  std::size_t entries = 0;
  std::size_t estimates = 0;

  if (comm_ == &world_->world_comm()) {
    // World-communicator tuning: each kind is an independent job on a
    // private replica of the machine. The serial jobs=1 run executes the
    // same jobs inline in the same order, so results are identical by
    // construction for every jobs value.
    const machine::MachineProfile& profile = world_->profile();
    const mpi::SimWorld::Options wopts = world_->options();
    std::vector<KindOutcome> outcomes = par::parallel_map(
        opts.jobs, static_cast<int>(opts.kinds.size()),
        [&](int i) {
          const coll::CollKind kind = opts.kinds[static_cast<std::size_t>(i)];
          KindOutcome o;
          o.tw = std::make_unique<TuneWorld>(profile, wopts);
          Searcher s(o.tw->world, o.tw->han, o.tw->world.world_comm(),
                     searcher_.space());
          const double cost0 = s.tuning_cost();
          s.prepare(kind, opts.heuristics);
          for (std::size_t m : opts.message_sizes) {
            const SearchResult result = s.estimate(kind, m, opts.heuristics);
            o.estimates += static_cast<std::size_t>(result.evaluations);
            if (result.best) o.winners.emplace_back(m, result.best->cfg);
            o.max_evaluations = std::max(o.max_evaluations,
                                         result.evaluations);
          }
          o.cost = s.tuning_cost() - cost0;
          return o;
        });
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const coll::CollKind kind = opts.kinds[i];
      KindOutcome& o = outcomes[i];
      for (const auto& [m, cfg] : o.winners) {
        report.table.insert(kind, nodes, ppn, m, cfg);
        ++entries;
      }
      estimates += o.estimates;
      report.task_benchmarks =
          std::max(report.task_benchmarks, o.max_evaluations);
      report.tuning_cost += o.cost;
      metrics.merge_counters(o.tw->world.metrics());
    }
  } else {
    // Sub-communicator tuning has no world replica to run in; keep the
    // in-place serial path on the shared searcher.
    const double cost0 = searcher_.tuning_cost();
    for (coll::CollKind kind : opts.kinds) {
      searcher_.prepare(kind, opts.heuristics);
      for (std::size_t m : opts.message_sizes) {
        const SearchResult result =
            searcher_.estimate(kind, m, opts.heuristics);
        estimates += static_cast<std::size_t>(result.evaluations);
        if (result.best) {
          report.table.insert(kind, nodes, ppn, m, result.best->cfg);
          ++entries;
        }
        report.task_benchmarks =
            std::max(report.task_benchmarks, result.evaluations);
      }
    }
    report.tuning_cost = searcher_.tuning_cost() - cost0;
  }

  metrics.counter("tune.runs").add(1.0);
  metrics.counter("tune.table_entries").add(static_cast<double>(entries));
  metrics.counter("tune.model_estimates").add(static_cast<double>(estimates));
  metrics.counter("tune.cost_seconds").add(report.tuning_cost);
  return report;
}

void Tuner::install(const LookupTable& table) {
  han_->set_decider(table.decider());
}

}  // namespace han::tune

#include "autotune/tuner.hpp"

#include <algorithm>

namespace han::tune {

Tuner::Tuner(mpi::SimWorld& world, core::HanModule& han,
             const mpi::Comm& comm, SearchSpace space)
    : world_(&world),
      han_(&han),
      comm_(&comm),
      searcher_(world, han, comm, std::move(space)) {}

TuneReport Tuner::tune(const TunerOptions& options) {
  // Callers assemble size lists programmatically (unions of app bucket
  // sizes, sweep ladders); tolerate duplicates and out-of-order entries so
  // a repeated size is never benchmarked twice and the table fills in
  // ascending order.
  TunerOptions opts = options;
  std::sort(opts.message_sizes.begin(), opts.message_sizes.end());
  opts.message_sizes.erase(
      std::unique(opts.message_sizes.begin(), opts.message_sizes.end()),
      opts.message_sizes.end());
  std::sort(opts.kinds.begin(), opts.kinds.end());
  opts.kinds.erase(std::unique(opts.kinds.begin(), opts.kinds.end()),
                   opts.kinds.end());

  TuneReport report;
  core::HanComm& hc = han_->han_comm(*comm_);
  const int nodes = hc.node_count();
  const int ppn = hc.max_ppn();

  obs::MetricsRegistry& metrics = world_->metrics();
  std::size_t entries = 0;
  std::size_t estimates = 0;
  const double cost0 = searcher_.tuning_cost();
  for (coll::CollKind kind : opts.kinds) {
    searcher_.prepare(kind, opts.heuristics);
    for (std::size_t m : opts.message_sizes) {
      const SearchResult result =
          searcher_.estimate(kind, m, opts.heuristics);
      estimates += result.evaluations;
      if (result.best) {
        report.table.insert(kind, nodes, ppn, m, result.best->cfg);
        ++entries;
      }
      report.task_benchmarks =
          std::max(report.task_benchmarks, result.evaluations);
    }
  }
  report.tuning_cost = searcher_.tuning_cost() - cost0;
  metrics.counter("tune.runs").add(1.0);
  metrics.counter("tune.table_entries").add(static_cast<double>(entries));
  metrics.counter("tune.model_estimates").add(static_cast<double>(estimates));
  metrics.counter("tune.cost_seconds").add(report.tuning_cost);
  return report;
}

void Tuner::install(const LookupTable& table) {
  han_->set_decider(table.decider());
}

}  // namespace han::tune

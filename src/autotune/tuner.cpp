#include "autotune/tuner.hpp"

namespace han::tune {

Tuner::Tuner(mpi::SimWorld& world, core::HanModule& han,
             const mpi::Comm& comm, SearchSpace space)
    : world_(&world),
      han_(&han),
      comm_(&comm),
      searcher_(world, han, comm, std::move(space)) {}

TuneReport Tuner::tune(const TunerOptions& options) {
  TuneReport report;
  core::HanComm& hc = han_->han_comm(*comm_);
  const int nodes = hc.node_count();
  const int ppn = hc.max_ppn();

  const double cost0 = searcher_.tuning_cost();
  for (coll::CollKind kind : options.kinds) {
    searcher_.prepare(kind, options.heuristics);
    for (std::size_t m : options.message_sizes) {
      const SearchResult result =
          searcher_.estimate(kind, m, options.heuristics);
      if (result.best) {
        report.table.insert(kind, nodes, ppn, m, result.best->cfg);
      }
      report.task_benchmarks =
          std::max(report.task_benchmarks, result.evaluations);
    }
  }
  report.tuning_cost = searcher_.tuning_cost() - cost0;
  return report;
}

void Tuner::install(const LookupTable& table) {
  han_->set_decider(table.decider());
}

}  // namespace han::tune

#include "autotune/taskbench.hpp"

#include <algorithm>
#include <numeric>

#include "han/task/stripe.hpp"

namespace han::tune {

using coll::CollConfig;
using core::HanConfig;
using mpi::BufView;

double PerLeader::max() const {
  HAN_ASSERT(!t.empty());
  return *std::max_element(t.begin(), t.end());
}

double PerLeader::avg() const {
  HAN_ASSERT(!t.empty());
  return std::accumulate(t.begin(), t.end(), 0.0) /
         static_cast<double>(t.size());
}

PerLeader PipelineTrace::stabilized(int tail) const {
  HAN_ASSERT(!steps.empty());
  const int n = static_cast<int>(steps.size());
  const int from = std::max(0, n - tail);
  PerLeader out;
  out.t.assign(steps[0].t.size(), 0.0);
  for (int i = from; i < n; ++i) {
    for (std::size_t l = 0; l < out.t.size(); ++l) out.t[l] += steps[i].t[l];
  }
  for (double& v : out.t) v /= static_cast<double>(n - from);
  return out;
}

TaskBench::TaskBench(mpi::SimWorld& world, core::HanModule& han,
                     const mpi::Comm& comm)
    : world_(&world), han_(&han), comm_(&comm) {
  leaders_ = han.flat_hierarchy(comm).node_count();
}

void TaskBench::run_charged(const mpi::SimWorld::Program& program) {
  const double before = world_->now();
  world_->run(program);
  const double elapsed = world_->now() - before;
  cost_ += elapsed;
  world_->metrics().counter("tune.taskbench.runs").add(1.0);
  world_->metrics().counter("tune.taskbench.seconds").add(elapsed);
}

namespace {

/// Average iteration results into a PerLeader.
PerLeader average(const std::vector<std::vector<double>>& iters,
                  int leaders) {
  PerLeader out;
  out.t.assign(leaders, 0.0);
  for (const auto& it : iters) {
    for (int l = 0; l < leaders; ++l) out.t[l] += it[l];
  }
  for (double& v : out.t) v /= static_cast<double>(iters.size());
  return out;
}

}  // namespace

PerLeader TaskBench::bench_ib(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  // Inter benches stripe exactly as the builders do, so the composite
  // task costs the model reuses already price the configured sf.
  const int sf = task::effective_sf(cfg.sf, world_->profile(), seg_bytes,
                                    mpi::Datatype::Byte);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc11, coll::CollModule* imod7,
              CollConfig icfg4, std::shared_ptr<mpi::SyncDomain> sync11,
              std::vector<std::vector<double>>& results8, std::size_t seg,
              int iters8, int sf8, int pr) -> sim::CoTask {
      const bool leader = hc11.low_rank(pr) == 0;
      for (int it = 0; it < iters8; ++it) {
        co_await *sync11->arrive();
        if (leader) {
          const double t0 = tb.world().now();
          mpi::Request r = task::striped_ibcast(
              tb.world().engine(), imod7, *hc11.up(pr), hc11.up_rank(pr), 0,
              BufView::timing_only(seg), mpi::Datatype::Byte, icfg4, sf8);
          co_await *r;
          results8[it][hc11.up_rank(pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, imod, icfg, sync, results, seg_bytes, iters, sf,
      rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_sb(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* smod = han_->intra_module(cfg);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc10, coll::CollModule* smod8,
              std::shared_ptr<mpi::SyncDomain> sync10,
              std::vector<std::vector<double>>& results7, std::size_t seg,
              int iters7, int pr) -> sim::CoTask {
      const bool leader = hc10.low_rank(pr) == 0;
      for (int it = 0; it < iters7; ++it) {
        co_await *sync10->arrive();
        const double t0 = tb.world().now();
        mpi::Request r =
            smod8->ibcast(hc10.low(pr), hc10.low_rank(pr), 0,
                         BufView::timing_only(seg), mpi::Datatype::Byte,
                         CollConfig{});
        co_await *r;
        if (leader) results7[it][hc10.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, smod, sync, results, seg_bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_concurrent_ib_sb(const HanConfig& cfg,
                                            std::size_t seg_bytes,
                                            int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const int sf = task::effective_sf(cfg.sf, world_->profile(), seg_bytes,
                                    mpi::Datatype::Byte);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc9, coll::CollModule* imod6,
              coll::CollModule* smod7, CollConfig icfg3,
              std::shared_ptr<mpi::SyncDomain> sync9,
              std::vector<std::vector<double>>& results6, std::size_t seg,
              int iters6, int sf6, int pr) -> sim::CoTask {
      const bool leader = hc9.low_rank(pr) == 0;
      for (int it = 0; it < iters6; ++it) {
        co_await *sync9->arrive();
        const double t0 = tb.world().now();
        std::vector<mpi::Request> task;
        task.push_back(smod7->ibcast(hc9.low(pr), hc9.low_rank(pr), 0,
                                    BufView::timing_only(seg),
                                    mpi::Datatype::Byte, CollConfig{}));
        if (leader) {
          task.push_back(task::striped_ibcast(
              tb.world().engine(), imod6, *hc9.up(pr), hc9.up_rank(pr), 0,
              BufView::timing_only(seg), mpi::Datatype::Byte, icfg3, sf6));
        }
        co_await mpi::wait_all(tb.world().engine(), std::move(task));
        if (leader) results6[it][hc9.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, imod, smod, icfg, sync, results, seg_bytes, iters, sf,
      rank.world_rank);
  });
  return average(results, leaders_);
}

PipelineTrace TaskBench::bench_sbib_pipeline(const HanConfig& cfg,
                                             std::size_t seg_bytes,
                                             int steps,
                                             const PerLeader& delay_by) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  const int sf = task::effective_sf(cfg.sf, world_->profile(), seg_bytes,
                                    mpi::Datatype::Byte);

  PipelineTrace trace;
  trace.steps.assign(steps, PerLeader{std::vector<double>(leaders_, 0.0)});
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc8, coll::CollModule* imod5,
              coll::CollModule* smod6, CollConfig icfg2,
              std::shared_ptr<mpi::SyncDomain> sync8, PipelineTrace& trace4,
              const PerLeader& delay_by2, std::size_t seg, int steps2,
              int sf5, int pr) -> sim::CoTask {
      const bool leader = hc8.low_rank(pr) == 0;
      co_await *sync8->arrive();
      if (leader) {
        // Reproduce the staggered entry after ib(0): the paper's key
        // benchmarking correction (Fig. 2, red bars).
        co_await sim::Delay{tb.world().engine(),
                            delay_by2.t[hc8.up_rank(pr)]};
        for (int k = 0; k < steps2; ++k) {
          const double t0 = tb.world().now();
          std::vector<mpi::Request> task;
          task.push_back(smod6->ibcast(hc8.low(pr), hc8.low_rank(pr), 0,
                                      BufView::timing_only(seg),
                                      mpi::Datatype::Byte, CollConfig{}));
          task.push_back(task::striped_ibcast(
              tb.world().engine(), imod5, *hc8.up(pr), hc8.up_rank(pr), 0,
              BufView::timing_only(seg), mpi::Datatype::Byte, icfg2, sf5));
          co_await mpi::wait_all(tb.world().engine(), std::move(task));
          trace4.steps[k].t[hc8.up_rank(pr)] = tb.world().now() - t0;
        }
      } else {
        for (int k = 0; k < steps2; ++k) {
          mpi::Request r =
              smod6->ibcast(hc8.low(pr), hc8.low_rank(pr), 0,
                           BufView::timing_only(seg), mpi::Datatype::Byte,
                           CollConfig{});
          co_await *r;
        }
      }
    }(*this, hc, imod, smod, icfg, sync, trace, delay_by, seg_bytes, steps,
      sf, rank.world_rank);
  });
  return trace;
}

PerLeader TaskBench::bench_sr(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* smod = han_->intra_module(cfg);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc7, coll::CollModule* smod5,
              std::shared_ptr<mpi::SyncDomain> sync7,
              std::vector<std::vector<double>>& results5, std::size_t seg,
              int iters5, int pr) -> sim::CoTask {
      const bool leader = hc7.low_rank(pr) == 0;
      for (int it = 0; it < iters5; ++it) {
        co_await *sync7->arrive();
        const double t0 = tb.world().now();
        mpi::Request r = smod5->ireduce(
            hc7.low(pr), hc7.low_rank(pr), 0, BufView::timing_only(seg),
            BufView::timing_only(seg), mpi::Datatype::Byte,
            mpi::ReduceOp::Sum, CollConfig{});
        co_await *r;
        if (leader) results5[it][hc7.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, smod, sync, results, seg_bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_mb(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::Hierarchy& hc = han_->ladder_for(*comm_, cfg);
  HAN_ASSERT_MSG(hc.depth() >= 3, "bench_mb needs a mid ladder level");
  // Mirror task/builders.cpp's ladder_module for a mid level: the shared
  // submodule, or the copy-in-copy-out p2p module under the switchover.
  coll::CollModule* mod = cfg.zcs > 0 && seg_bytes < cfg.zcs
                              ? &han_->modules().libnbc()
                              : han_->intra_module(cfg);
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const int top = hc.depth() - 1;
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc12, coll::CollModule* mod9,
              CollConfig mcfg5, std::shared_ptr<mpi::SyncDomain> sync12,
              std::vector<std::vector<double>>& results9, std::size_t seg,
              int iters9, int top2, int pr) -> sim::CoTask {
      // Every slot family broadcasts over its own mid comm; the node
      // leaders' walk is the one the model prices.
      const mpi::Comm* mid = hc12.comm(1, pr);
      const bool leader = hc12.leader_below(top2, pr);
      for (int it = 0; it < iters9; ++it) {
        co_await *sync12->arrive();
        if (mid == nullptr || mid->size() < 2) continue;
        const double t0 = tb.world().now();
        mpi::Request r =
            mod9->ibcast(*mid, hc12.rank(1, pr), 0,
                         BufView::timing_only(seg), mpi::Datatype::Byte,
                         mcfg5);
        co_await *r;
        if (leader) {
          results9[it][hc12.rank(top2, pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, mod, mcfg, sync, results, seg_bytes, iters, top,
      rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_mr(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::Hierarchy& hc = han_->ladder_for(*comm_, cfg);
  HAN_ASSERT_MSG(hc.depth() >= 3, "bench_mr needs a mid ladder level");
  coll::CollModule* mod = cfg.zcs > 0 && seg_bytes < cfg.zcs
                              ? &han_->modules().libnbc()
                              : han_->intra_module(cfg);
  const CollConfig mcfg{cfg.malg, cfg.ms};
  const int top = hc.depth() - 1;
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc13, coll::CollModule* mod10,
              CollConfig mcfg6, std::shared_ptr<mpi::SyncDomain> sync13,
              std::vector<std::vector<double>>& results10, std::size_t seg,
              int iters10, int top3, int pr) -> sim::CoTask {
      const mpi::Comm* mid = hc13.comm(1, pr);
      const bool leader = hc13.leader_below(top3, pr);
      for (int it = 0; it < iters10; ++it) {
        co_await *sync13->arrive();
        if (mid == nullptr || mid->size() < 2) continue;
        const double t0 = tb.world().now();
        mpi::Request r = mod10->ireduce(
            *mid, hc13.rank(1, pr), 0, BufView::timing_only(seg),
            BufView::timing_only(seg), mpi::Datatype::Byte,
            mpi::ReduceOp::Sum, mcfg6);
        co_await *r;
        if (leader) {
          results10[it][hc13.rank(top3, pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, mod, mcfg, sync, results, seg_bytes, iters, top,
      rank.world_rank);
  });
  return average(results, leaders_);
}

PipelineTrace TaskBench::bench_allreduce_pipeline(const HanConfig& cfg,
                                                  std::size_t seg_bytes,
                                                  int steps) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};
  const int sf = task::effective_sf(cfg.sf, world_->profile(), seg_bytes,
                                    mpi::Datatype::Byte);

  const int total_steps = steps + 3;
  PipelineTrace trace;
  trace.steps.assign(total_steps,
                     PerLeader{std::vector<double>(leaders_, 0.0)});
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc6, coll::CollModule* imod4,
              coll::CollModule* smod4, CollConfig ircfg3, CollConfig ibcfg2,
              std::shared_ptr<mpi::SyncDomain> sync6, PipelineTrace& trace3,
              std::size_t seg, int u, int total_steps3, int sf4,
              int pr) -> sim::CoTask {
      const bool leader = hc6.low_rank(pr) == 0;
      const mpi::Datatype dt = mpi::Datatype::Byte;
      const mpi::ReduceOp op = mpi::ReduceOp::Sum;
      co_await *sync6->arrive();
      for (int t = 0; t < total_steps3; ++t) {
        const double t0 = tb.world().now();
        std::vector<mpi::Request> task;
        if (leader) {
          if (t <= u - 1) {
            task.push_back(smod4->ireduce(hc6.low(pr), hc6.low_rank(pr), 0,
                                         BufView::timing_only(seg),
                                         BufView::timing_only(seg), dt, op,
                                         CollConfig{}));
          }
          if (t >= 1 && t - 1 <= u - 1) {
            task.push_back(task::striped_ireduce(
                tb.world().engine(), imod4, *hc6.up(pr), hc6.up_rank(pr), 0,
                BufView::timing_only(seg), BufView::timing_only(seg), dt,
                op, ircfg3, sf4));
          }
          if (t >= 2 && t - 2 <= u - 1) {
            task.push_back(task::striped_ibcast(
                tb.world().engine(), imod4, *hc6.up(pr), hc6.up_rank(pr), 0,
                BufView::timing_only(seg), dt, ibcfg2, sf4));
          }
          if (t >= 3 && t - 3 <= u - 1) {
            task.push_back(smod4->ibcast(hc6.low(pr), hc6.low_rank(pr), 0,
                                        BufView::timing_only(seg), dt,
                                        CollConfig{}));
          }
        } else {
          if (t <= u - 1) {
            task.push_back(smod4->ireduce(hc6.low(pr), hc6.low_rank(pr), 0,
                                         BufView::timing_only(seg),
                                         BufView::timing_only(seg), dt, op,
                                         CollConfig{}));
          }
          if (t >= 3 && t - 3 <= u - 1) {
            task.push_back(smod4->ibcast(hc6.low(pr), hc6.low_rank(pr), 0,
                                        BufView::timing_only(seg), dt,
                                        CollConfig{}));
          }
        }
        if (!task.empty()) {
          co_await mpi::wait_all(tb.world().engine(), std::move(task));
        }
        if (leader) trace3.steps[t].t[hc6.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, imod, smod, ircfg, ibcfg, sync, trace, seg_bytes, steps,
      total_steps, sf, rank.world_rank);
  });
  return trace;
}

PipelineTrace TaskBench::bench_reduce_pipeline(const HanConfig& cfg,
                                               std::size_t seg_bytes,
                                               int steps) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const int sf = task::effective_sf(cfg.sf, world_->profile(), seg_bytes,
                                    mpi::Datatype::Byte);

  const int total_steps = steps + 1;
  PipelineTrace trace;
  trace.steps.assign(total_steps,
                     PerLeader{std::vector<double>(leaders_, 0.0)});
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc5, coll::CollModule* imod3,
              coll::CollModule* smod3, CollConfig ircfg2,
              std::shared_ptr<mpi::SyncDomain> sync5, PipelineTrace& trace2,
              std::size_t seg, int u, int total_steps2, int sf5,
              int pr) -> sim::CoTask {
      const bool leader = hc5.low_rank(pr) == 0;
      const mpi::Datatype dt = mpi::Datatype::Byte;
      const mpi::ReduceOp op = mpi::ReduceOp::Sum;
      co_await *sync5->arrive();
      for (int t = 0; t < total_steps2; ++t) {
        const double t0 = tb.world().now();
        std::vector<mpi::Request> task;
        if (t <= u - 1) {
          task.push_back(smod3->ireduce(hc5.low(pr), hc5.low_rank(pr), 0,
                                       BufView::timing_only(seg),
                                       BufView::timing_only(seg), dt, op,
                                       CollConfig{}));
        }
        if (leader && t >= 1 && t - 1 <= u - 1) {
          task.push_back(task::striped_ireduce(
              tb.world().engine(), imod3, *hc5.up(pr), hc5.up_rank(pr), 0,
              BufView::timing_only(seg), BufView::timing_only(seg), dt, op,
              ircfg2, sf5));
        }
        if (!task.empty()) {
          co_await mpi::wait_all(tb.world().engine(), std::move(task));
        }
        if (leader) trace2.steps[t].t[hc5.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, imod, smod, ircfg, sync, trace, seg_bytes, steps,
      total_steps, sf, rank.world_rank);
  });
  return trace;
}

PerLeader TaskBench::bench_inter_scatter(const HanConfig& cfg,
                                         std::size_t bytes, int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc4, coll::CollModule* imod2,
              std::shared_ptr<mpi::SyncDomain> sync4,
              std::vector<std::vector<double>>& results4, std::size_t bytes4,
              int iters4, int pr) -> sim::CoTask {
      const bool leader = hc4.low_rank(pr) == 0;
      for (int it = 0; it < iters4; ++it) {
        co_await *sync4->arrive();
        if (leader) {
          const int nodes = hc4.up(pr)->size();
          const double t0 = tb.world().now();
          mpi::Request r = imod2->iscatter(
              *hc4.up(pr), hc4.up_rank(pr), 0, BufView::timing_only(bytes4),
              BufView::timing_only(bytes4 / nodes), CollConfig{});
          co_await *r;
          results4[it][hc4.up_rank(pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, imod, sync, results, bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_inter_ring_rs(const HanConfig& cfg,
                                         std::size_t bytes, int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  coll::RingModule& ring = han_->modules().ring();
  const CollConfig rcfg{coll::Algorithm::Ring, cfg.irs};
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc3, coll::RingModule& ring2,
              CollConfig rcfg2, std::shared_ptr<mpi::SyncDomain> sync3,
              std::vector<std::vector<double>>& results3, std::size_t bytes3,
              int iters3, int pr) -> sim::CoTask {
      const bool leader = hc3.low_rank(pr) == 0;
      for (int it = 0; it < iters3; ++it) {
        co_await *sync3->arrive();
        if (leader) {
          const int nodes = hc3.up(pr)->size();
          const double t0 = tb.world().now();
          mpi::Request r = ring2.ireduce_scatter(
              *hc3.up(pr), hc3.up_rank(pr), BufView::timing_only(bytes3),
              BufView::timing_only(bytes3 / nodes), mpi::Datatype::Byte,
              mpi::ReduceOp::Sum, rcfg2);
          co_await *r;
          results3[it][hc3.up_rank(pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, ring, rcfg, sync, results, bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_intra_scatter(const HanConfig& cfg,
                                         std::size_t bytes, int iters) {
  core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
  (void)cfg;  // ss always uses the libnbc intra scatter, as the program does
  coll::CollModule* smod = &han_->modules().libnbc();
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::Hierarchy& hc2, coll::CollModule* smod2,
              std::shared_ptr<mpi::SyncDomain> sync2,
              std::vector<std::vector<double>>& results2, std::size_t bytes2,
              int iters2, int pr) -> sim::CoTask {
      const bool leader = hc2.low_rank(pr) == 0;
      for (int it = 0; it < iters2; ++it) {
        co_await *sync2->arrive();
        const int p = hc2.low(pr).size();
        const double t0 = tb.world().now();
        mpi::Request r = smod2->iscatter(
            hc2.low(pr), hc2.low_rank(pr), 0, BufView::timing_only(bytes2),
            BufView::timing_only(bytes2 / p), CollConfig{});
        co_await *r;
        if (leader) results2[it][hc2.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, smod, sync, results, bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

}  // namespace han::tune

#include "autotune/taskbench.hpp"

#include <algorithm>
#include <numeric>

namespace han::tune {

using coll::CollConfig;
using core::HanConfig;
using mpi::BufView;

double PerLeader::max() const {
  HAN_ASSERT(!t.empty());
  return *std::max_element(t.begin(), t.end());
}

double PerLeader::avg() const {
  HAN_ASSERT(!t.empty());
  return std::accumulate(t.begin(), t.end(), 0.0) /
         static_cast<double>(t.size());
}

PerLeader PipelineTrace::stabilized(int tail) const {
  HAN_ASSERT(!steps.empty());
  const int n = static_cast<int>(steps.size());
  const int from = std::max(0, n - tail);
  PerLeader out;
  out.t.assign(steps[0].t.size(), 0.0);
  for (int i = from; i < n; ++i) {
    for (std::size_t l = 0; l < out.t.size(); ++l) out.t[l] += steps[i].t[l];
  }
  for (double& v : out.t) v /= static_cast<double>(n - from);
  return out;
}

TaskBench::TaskBench(mpi::SimWorld& world, core::HanModule& han,
                     const mpi::Comm& comm)
    : world_(&world), han_(&han), comm_(&comm) {
  leaders_ = han.han_comm(comm).node_count();
}

void TaskBench::run_charged(const mpi::SimWorld::Program& program) {
  const double before = world_->now();
  world_->run(program);
  const double elapsed = world_->now() - before;
  cost_ += elapsed;
  world_->metrics().counter("tune.taskbench.runs").add(1.0);
  world_->metrics().counter("tune.taskbench.seconds").add(elapsed);
}

namespace {

/// Average iteration results into a PerLeader.
PerLeader average(const std::vector<std::vector<double>>& iters,
                  int leaders) {
  PerLeader out;
  out.t.assign(leaders, 0.0);
  for (const auto& it : iters) {
    for (int l = 0; l < leaders; ++l) out.t[l] += it[l];
  }
  for (double& v : out.t) v /= static_cast<double>(iters.size());
  return out;
}

}  // namespace

PerLeader TaskBench::bench_ib(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* imod,
              CollConfig icfg, std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t seg,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        if (leader) {
          const double t0 = tb.world().now();
          mpi::Request r =
              imod->ibcast(*hc.up(pr), hc.up_rank(pr), 0,
                           BufView::timing_only(seg), mpi::Datatype::Byte,
                           icfg);
          co_await *r;
          results[it][hc.up_rank(pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, imod, icfg, sync, results, seg_bytes, iters,
      rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_sb(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* smod = han_->intra_module(cfg);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* smod,
              std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t seg,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        const double t0 = tb.world().now();
        mpi::Request r =
            smod->ibcast(hc.low(pr), hc.low_rank(pr), 0,
                         BufView::timing_only(seg), mpi::Datatype::Byte,
                         CollConfig{});
        co_await *r;
        if (leader) results[it][hc.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, smod, sync, results, seg_bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_concurrent_ib_sb(const HanConfig& cfg,
                                            std::size_t seg_bytes,
                                            int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* imod,
              coll::CollModule* smod, CollConfig icfg,
              std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t seg,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        const double t0 = tb.world().now();
        std::vector<mpi::Request> task;
        task.push_back(smod->ibcast(hc.low(pr), hc.low_rank(pr), 0,
                                    BufView::timing_only(seg),
                                    mpi::Datatype::Byte, CollConfig{}));
        if (leader) {
          task.push_back(imod->ibcast(*hc.up(pr), hc.up_rank(pr), 0,
                                      BufView::timing_only(seg),
                                      mpi::Datatype::Byte, icfg));
        }
        co_await mpi::wait_all(tb.world().engine(), std::move(task));
        if (leader) results[it][hc.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, imod, smod, icfg, sync, results, seg_bytes, iters,
      rank.world_rank);
  });
  return average(results, leaders_);
}

PipelineTrace TaskBench::bench_sbib_pipeline(const HanConfig& cfg,
                                             std::size_t seg_bytes,
                                             int steps,
                                             const PerLeader& delay_by) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig icfg{cfg.ibalg, cfg.ibs};

  PipelineTrace trace;
  trace.steps.assign(steps, PerLeader{std::vector<double>(leaders_, 0.0)});
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* imod,
              coll::CollModule* smod, CollConfig icfg,
              std::shared_ptr<mpi::SyncDomain> sync, PipelineTrace& trace,
              const PerLeader& delay_by, std::size_t seg, int steps,
              int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      co_await *sync->arrive();
      if (leader) {
        // Reproduce the staggered entry after ib(0): the paper's key
        // benchmarking correction (Fig. 2, red bars).
        co_await sim::Delay{tb.world().engine(),
                            delay_by.t[hc.up_rank(pr)]};
        for (int k = 0; k < steps; ++k) {
          const double t0 = tb.world().now();
          std::vector<mpi::Request> task;
          task.push_back(smod->ibcast(hc.low(pr), hc.low_rank(pr), 0,
                                      BufView::timing_only(seg),
                                      mpi::Datatype::Byte, CollConfig{}));
          task.push_back(imod->ibcast(*hc.up(pr), hc.up_rank(pr), 0,
                                      BufView::timing_only(seg),
                                      mpi::Datatype::Byte, icfg));
          co_await mpi::wait_all(tb.world().engine(), std::move(task));
          trace.steps[k].t[hc.up_rank(pr)] = tb.world().now() - t0;
        }
      } else {
        for (int k = 0; k < steps; ++k) {
          mpi::Request r =
              smod->ibcast(hc.low(pr), hc.low_rank(pr), 0,
                           BufView::timing_only(seg), mpi::Datatype::Byte,
                           CollConfig{});
          co_await *r;
        }
      }
    }(*this, hc, imod, smod, icfg, sync, trace, delay_by, seg_bytes, steps,
      rank.world_rank);
  });
  return trace;
}

PerLeader TaskBench::bench_sr(const HanConfig& cfg, std::size_t seg_bytes,
                              int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* smod = han_->intra_module(cfg);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* smod,
              std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t seg,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        const double t0 = tb.world().now();
        mpi::Request r = smod->ireduce(
            hc.low(pr), hc.low_rank(pr), 0, BufView::timing_only(seg),
            BufView::timing_only(seg), mpi::Datatype::Byte,
            mpi::ReduceOp::Sum, CollConfig{});
        co_await *r;
        if (leader) results[it][hc.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, smod, sync, results, seg_bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PipelineTrace TaskBench::bench_allreduce_pipeline(const HanConfig& cfg,
                                                  std::size_t seg_bytes,
                                                  int steps) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};
  const CollConfig ibcfg{cfg.iralg, cfg.ibs};

  const int total_steps = steps + 3;
  PipelineTrace trace;
  trace.steps.assign(total_steps,
                     PerLeader{std::vector<double>(leaders_, 0.0)});
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* imod,
              coll::CollModule* smod, CollConfig ircfg, CollConfig ibcfg,
              std::shared_ptr<mpi::SyncDomain> sync, PipelineTrace& trace,
              std::size_t seg, int u, int total_steps,
              int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      const mpi::Datatype dt = mpi::Datatype::Byte;
      const mpi::ReduceOp op = mpi::ReduceOp::Sum;
      co_await *sync->arrive();
      for (int t = 0; t < total_steps; ++t) {
        const double t0 = tb.world().now();
        std::vector<mpi::Request> task;
        if (leader) {
          if (t <= u - 1) {
            task.push_back(smod->ireduce(hc.low(pr), hc.low_rank(pr), 0,
                                         BufView::timing_only(seg),
                                         BufView::timing_only(seg), dt, op,
                                         CollConfig{}));
          }
          if (t >= 1 && t - 1 <= u - 1) {
            task.push_back(imod->ireduce(*hc.up(pr), hc.up_rank(pr), 0,
                                         BufView::timing_only(seg),
                                         BufView::timing_only(seg), dt, op,
                                         ircfg));
          }
          if (t >= 2 && t - 2 <= u - 1) {
            task.push_back(imod->ibcast(*hc.up(pr), hc.up_rank(pr), 0,
                                        BufView::timing_only(seg), dt,
                                        ibcfg));
          }
          if (t >= 3 && t - 3 <= u - 1) {
            task.push_back(smod->ibcast(hc.low(pr), hc.low_rank(pr), 0,
                                        BufView::timing_only(seg), dt,
                                        CollConfig{}));
          }
        } else {
          if (t <= u - 1) {
            task.push_back(smod->ireduce(hc.low(pr), hc.low_rank(pr), 0,
                                         BufView::timing_only(seg),
                                         BufView::timing_only(seg), dt, op,
                                         CollConfig{}));
          }
          if (t >= 3 && t - 3 <= u - 1) {
            task.push_back(smod->ibcast(hc.low(pr), hc.low_rank(pr), 0,
                                        BufView::timing_only(seg), dt,
                                        CollConfig{}));
          }
        }
        if (!task.empty()) {
          co_await mpi::wait_all(tb.world().engine(), std::move(task));
        }
        if (leader) trace.steps[t].t[hc.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, imod, smod, ircfg, ibcfg, sync, trace, seg_bytes, steps,
      total_steps, rank.world_rank);
  });
  return trace;
}

PipelineTrace TaskBench::bench_reduce_pipeline(const HanConfig& cfg,
                                               std::size_t seg_bytes,
                                               int steps) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  coll::CollModule* smod = han_->intra_module(cfg);
  const CollConfig ircfg{cfg.iralg, cfg.irs};

  const int total_steps = steps + 1;
  PipelineTrace trace;
  trace.steps.assign(total_steps,
                     PerLeader{std::vector<double>(leaders_, 0.0)});
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* imod,
              coll::CollModule* smod, CollConfig ircfg,
              std::shared_ptr<mpi::SyncDomain> sync, PipelineTrace& trace,
              std::size_t seg, int u, int total_steps,
              int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      const mpi::Datatype dt = mpi::Datatype::Byte;
      const mpi::ReduceOp op = mpi::ReduceOp::Sum;
      co_await *sync->arrive();
      for (int t = 0; t < total_steps; ++t) {
        const double t0 = tb.world().now();
        std::vector<mpi::Request> task;
        if (t <= u - 1) {
          task.push_back(smod->ireduce(hc.low(pr), hc.low_rank(pr), 0,
                                       BufView::timing_only(seg),
                                       BufView::timing_only(seg), dt, op,
                                       CollConfig{}));
        }
        if (leader && t >= 1 && t - 1 <= u - 1) {
          task.push_back(imod->ireduce(*hc.up(pr), hc.up_rank(pr), 0,
                                       BufView::timing_only(seg),
                                       BufView::timing_only(seg), dt, op,
                                       ircfg));
        }
        if (!task.empty()) {
          co_await mpi::wait_all(tb.world().engine(), std::move(task));
        }
        if (leader) trace.steps[t].t[hc.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, imod, smod, ircfg, sync, trace, seg_bytes, steps,
      total_steps, rank.world_rank);
  });
  return trace;
}

PerLeader TaskBench::bench_inter_scatter(const HanConfig& cfg,
                                         std::size_t bytes, int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::CollModule* imod = han_->inter_module(cfg);
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* imod,
              std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t bytes,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        if (leader) {
          const int nodes = hc.up(pr)->size();
          const double t0 = tb.world().now();
          mpi::Request r = imod->iscatter(
              *hc.up(pr), hc.up_rank(pr), 0, BufView::timing_only(bytes),
              BufView::timing_only(bytes / nodes), CollConfig{});
          co_await *r;
          results[it][hc.up_rank(pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, imod, sync, results, bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_inter_ring_rs(const HanConfig& cfg,
                                         std::size_t bytes, int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  coll::RingModule& ring = han_->modules().ring();
  const CollConfig rcfg{coll::Algorithm::Ring, cfg.irs};
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::RingModule& ring,
              CollConfig rcfg, std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t bytes,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        if (leader) {
          const int nodes = hc.up(pr)->size();
          const double t0 = tb.world().now();
          mpi::Request r = ring.ireduce_scatter(
              *hc.up(pr), hc.up_rank(pr), BufView::timing_only(bytes),
              BufView::timing_only(bytes / nodes), mpi::Datatype::Byte,
              mpi::ReduceOp::Sum, rcfg);
          co_await *r;
          results[it][hc.up_rank(pr)] = tb.world().now() - t0;
        }
      }
    }(*this, hc, ring, rcfg, sync, results, bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

PerLeader TaskBench::bench_intra_scatter(const HanConfig& cfg,
                                         std::size_t bytes, int iters) {
  core::HanComm& hc = han_->han_comm(*comm_);
  (void)cfg;  // ss always uses the libnbc intra scatter, as the program does
  coll::CollModule* smod = &han_->modules().libnbc();
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  std::vector<std::vector<double>> results(iters,
                                           std::vector<double>(leaders_, 0));

  run_charged([&](mpi::Rank& rank) -> sim::CoTask {
    return [](TaskBench& tb, core::HanComm& hc, coll::CollModule* smod,
              std::shared_ptr<mpi::SyncDomain> sync,
              std::vector<std::vector<double>>& results, std::size_t bytes,
              int iters, int pr) -> sim::CoTask {
      const bool leader = hc.low_rank(pr) == 0;
      for (int it = 0; it < iters; ++it) {
        co_await *sync->arrive();
        const int p = hc.low(pr).size();
        const double t0 = tb.world().now();
        mpi::Request r = smod->iscatter(
            hc.low(pr), hc.low_rank(pr), 0, BufView::timing_only(bytes),
            BufView::timing_only(bytes / p), CollConfig{});
        co_await *r;
        if (leader) results[it][hc.up_rank(pr)] = tb.world().now() - t0;
      }
    }(*this, hc, smod, sync, results, bytes, iters, rank.world_rank);
  });
  return average(results, leaders_);
}

}  // namespace han::tune

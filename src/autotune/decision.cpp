#include "autotune/decision.hpp"

#include <cmath>

#include "simbase/assert.hpp"
#include "simbase/units.hpp"

namespace han::tune {

DecisionRules DecisionRules::build(const LookupTable& table,
                                   coll::CollKind kind, int nodes, int ppn) {
  DecisionRules out;
  out.kind_ = kind;

  // Collect the (log2 bucket, config) samples for this slice, ascending.
  std::vector<std::pair<int, core::HanConfig>> samples;
  for (const auto& [key, cfg] : table.entries()) {
    if (key.kind == kind && key.nodes == nodes && key.ppn == ppn) {
      samples.emplace_back(key.log2_bytes, cfg);
    }
  }
  if (samples.empty()) return out;

  // Merge runs of identical configurations; each run's upper threshold is
  // the midpoint (in log space) between its last bucket and the next
  // run's first bucket.
  for (std::size_t i = 0; i < samples.size();) {
    std::size_t j = i;
    while (j + 1 < samples.size() &&
           samples[j + 1].second == samples[i].second) {
      ++j;
    }
    Rule rule;
    rule.cfg = samples[i].second;
    if (j + 1 < samples.size()) {
      // Midpoint bucket between this run and the next.
      const int hi = samples[j].first;
      const int next = samples[j + 1].first;
      rule.max_bytes = 1ull << ((hi + next) / 2);
    } else {
      rule.max_bytes = ~0ull;  // open-ended top rule
    }
    out.rules_.push_back(std::move(rule));
    i = j + 1;
  }
  return out;
}

const core::HanConfig& DecisionRules::decide(std::size_t bytes) const {
  HAN_ASSERT_MSG(!rules_.empty(), "decide() on an empty rule set");
  for (const Rule& r : rules_) {
    if (bytes <= r.max_bytes) return r.cfg;
  }
  return rules_.back().cfg;
}

std::string DecisionRules::to_string() const {
  std::string out;
  std::size_t lo = 0;
  for (const Rule& r : rules_) {
    out += "  [" + sim::format_bytes(lo) + " .. ";
    out += r.max_bytes == ~0ull ? std::string("inf")
                                : sim::format_bytes(r.max_bytes);
    out += "] -> " + r.cfg.to_string() + "\n";
    lo = r.max_bytes == ~0ull ? r.max_bytes : r.max_bytes + 1;
  }
  return out;
}

RuleBook RuleBook::build(const LookupTable& table) {
  RuleBook book;
  // Enumerate distinct (kind, nodes, ppn) slices.
  std::vector<std::tuple<coll::CollKind, int, int>> shapes;
  for (const auto& [key, cfg] : table.entries()) {
    const auto shape = std::make_tuple(key.kind, key.nodes, key.ppn);
    bool seen = false;
    for (const auto& s : shapes) seen |= (s == shape);
    if (!seen) shapes.push_back(shape);
  }
  for (const auto& [kind, nodes, ppn] : shapes) {
    book.slices_.push_back(
        Slice{kind, nodes, ppn,
              DecisionRules::build(table, kind, nodes, ppn)});
  }
  return book;
}

core::HanConfig RuleBook::decide(coll::CollKind kind, int nodes, int ppn,
                                 std::size_t bytes) const {
  const Slice* best = nullptr;
  double best_dist = 0.0;
  for (const Slice& s : slices_) {
    if (s.kind != kind || s.rules.empty()) continue;
    const double dist =
        std::abs(std::log2(double(std::max(s.nodes, 1)) /
                           std::max(nodes, 1))) +
        std::abs(std::log2(double(std::max(s.ppn, 1)) / std::max(ppn, 1)));
    if (best == nullptr || dist < best_dist) {
      best = &s;
      best_dist = dist;
    }
  }
  if (best != nullptr) return best->rules.decide(bytes);
  return core::HanModule::default_config(kind, nodes, ppn, bytes);
}

core::HanModule::Decider RuleBook::decider() const {
  return [book = *this](coll::CollKind kind, int nodes, int ppn,
                        std::size_t bytes) {
    return book.decide(kind, nodes, ppn, bytes);
  };
}

}  // namespace han::tune

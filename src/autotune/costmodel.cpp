#include "autotune/costmodel.hpp"

namespace han::tune {

double bcast_model_cost(const BcastTaskCosts& costs, int u) {
  HAN_ASSERT(u >= 1);
  const std::size_t leaders = costs.ib0.t.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < leaders; ++i) {
    // u == 1: ib(0) followed by the lone sb — no sbib steps at all.
    const double t = costs.ib0.t[i] +
                     static_cast<double>(u - 1) * costs.sbib_stable.t[i] +
                     costs.sb0.t[i];
    worst = std::max(worst, t);
  }
  return worst;
}

AllreduceTaskCosts AllreduceTaskCosts::from_trace(const PipelineTrace& trace) {
  const int n = static_cast<int>(trace.steps.size());
  HAN_ASSERT_MSG(n >= 7, "allreduce trace needs >= 4 pipeline steps + tail");
  AllreduceTaskCosts c;
  c.sr0 = trace.steps[0];
  c.irsr = trace.steps[1];
  c.ibirsr = trace.steps[2];
  // Stabilized steady-state cost: average the middle steps, skipping the
  // first steady step (pipeline still filling) and the 3 drain steps.
  PerLeader mid;
  mid.t.assign(c.sr0.t.size(), 0.0);
  int count = 0;
  for (int i = 4; i < n - 3; ++i) {
    for (std::size_t l = 0; l < mid.t.size(); ++l) {
      mid.t[l] += trace.steps[i].t[l];
    }
    ++count;
  }
  if (count == 0) {
    mid = trace.steps[3];  // minimal trace: take the one steady step
  } else {
    for (double& v : mid.t) v /= count;
  }
  c.sbibirsr_stable = mid;
  c.sbibir = trace.steps[n - 3];
  c.sbib = trace.steps[n - 2];
  c.sb = trace.steps[n - 1];
  return c;
}

AffineFit AffineFit::from_points(std::size_t b1, double t1, std::size_t b2,
                                 double t2) {
  AffineFit f;
  if (b2 == b1) {
    f.base = t1;
    return f;
  }
  f.per_byte = (t2 - t1) / (static_cast<double>(b2) - static_cast<double>(b1));
  f.base = t1 - f.per_byte * static_cast<double>(b1);
  // A negative intercept can fall out of noisy two-point sampling; clamp so
  // extrapolation to tiny sizes stays sane.
  if (f.base < 0.0) f.base = 0.0;
  return f;
}

double reduce_scatter_model_cost(const ReduceScatterTaskCosts& costs,
                                 const core::HanConfig& cfg,
                                 std::size_t msg_bytes, int nodes, int ppn) {
  HAN_ASSERT(nodes >= 1 && ppn >= 1);
  const std::size_t m = std::max<std::size_t>(msg_bytes, 1);
  const std::size_t region = std::max<std::size_t>(m / nodes, 1);
  const bool has_intra = ppn > 1;
  const std::size_t fs = std::max<std::size_t>(cfg.fs, 1);

  if (cfg.imod == "ring") {
    if (!has_intra) return costs.inter_ring.at(m);
    // u serial intra reduces of ~fs bytes; the last slice's ring (a
    // strided vector of nodes * slice bytes) cannot be overlapped; ss.
    const std::size_t slice = std::min(fs, region);
    const int u = static_cast<int>((m + slice - 1) / slice);
    return u * costs.intra_reduce.at(slice) +
           costs.inter_ring.at(nodes * slice) +
           costs.intra_scatter.at(region);
  }

  const int u = static_cast<int>((m + fs - 1) / fs);
  double worst = 0.0;
  if (has_intra) {
    // sr ⊕ ir pipeline over the u segments, then the inter scatter and ss.
    for (std::size_t i = 0; i < costs.sr0.t.size(); ++i) {
      const double t = costs.sr0.t[i] +
                       static_cast<double>(u - 1) * costs.irsr_stable.t[i] +
                       costs.ir_tail.t[i];
      worst = std::max(worst, t);
    }
  } else {
    for (double t : costs.ir_tail.t) worst = std::max(worst, u * t);
  }
  return worst + costs.inter_scatter.at(m) +
         (has_intra ? costs.intra_scatter.at(region) : 0.0);
}

double allreduce_model_cost(const AllreduceTaskCosts& costs, int u) {
  HAN_ASSERT(u >= 1);
  const std::size_t leaders = costs.sr0.t.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < leaders; ++i) {
    double t = costs.sr0.t[i];
    if (u >= 2) t += costs.irsr.t[i];
    if (u >= 3) t += costs.ibirsr.t[i];
    if (u >= 4) t += static_cast<double>(u - 3) * costs.sbibirsr_stable.t[i];
    // Drain: always present once the 4-stage pipeline exists; for tiny u
    // the drain tasks approximate the remaining ir/ib/sb of the last
    // segments.
    t += costs.sbibir.t[i] + costs.sbib.t[i] + costs.sb.t[i];
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace han::tune

#include "autotune/costmodel.hpp"

#include <algorithm>
#include <map>
#include <string_view>
#include <vector>

#include "han/task/shapes.hpp"

namespace han::tune {

namespace {

// Stage-role bits forming a step signature during a symbolic walk. The
// model walks the SAME shapes the graph builders emit (task/shapes.hpp):
// each pipeline step collapses to the set of stages active in it, and the
// signature selects the benchmarked task cost for that step — no per-kind
// closed forms to drift from the executor.
enum : unsigned { kSr = 1, kIr = 2, kIb = 4, kSb = 8, kMr = 16, kMb = 32 };

unsigned role_bit(const char* role) {
  const std::string_view r(role);
  if (r == "sr") return kSr;
  if (r == "ir") return kIr;
  if (r == "ib") return kIb;
  if (r == "sb") return kSb;
  if (r == "mr") return kMr;
  if (r == "mb") return kMb;
  return 0;
}

/// Collapse the stepped pipeline to per-step signatures, in step order.
/// Empty steps are dropped — the TaskScheduler's frontier skips them too.
std::vector<unsigned> step_signatures(
    const std::vector<task::StageSpec>& stages, int u) {
  const int last = task::shape_steps(stages, u) - 1;
  std::vector<unsigned> sig;
  for (int t = 0; t <= last; ++t) {
    unsigned mask = 0;
    for (const task::StageSpec& s : stages) {
      const int seg = t - s.lag;
      if (s.enabled && seg >= 0 && seg < u) mask |= role_bit(s.role);
    }
    if (mask != 0) sig.push_back(mask);
  }
  return sig;
}

/// Walk the signature sequence under the TaskScheduler's frontier rule:
/// step s starts when step s - window completed. At window = 1 this is the
/// lock-step serial sum (exact — runs of equal signatures are multiplied
/// out, reproducing the paper's eq. 3/4 arithmetic bit for bit); for
/// window > 1 it ignores intra-step data dependencies, so it is an
/// optimistic bound. Collective cost = the slowest leader's walk.
template <typename CostOf>
double walk_cost(const std::vector<unsigned>& sig, const CostOf& cost_of,
                 int window) {
  if (sig.empty()) return 0.0;
  const std::size_t leaders = cost_of(sig[0]).t.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < leaders; ++i) {
    double total = 0.0;
    if (window <= 1) {
      for (std::size_t s = 0; s < sig.size();) {
        std::size_t run = s + 1;
        while (run < sig.size() && sig[run] == sig[s]) ++run;
        total += static_cast<double>(run - s) * cost_of(sig[s]).t[i];
        s = run;
      }
    } else {
      std::vector<double> done(sig.size(), 0.0);
      for (std::size_t s = 0; s < sig.size(); ++s) {
        const double start = s >= static_cast<std::size_t>(window)
                                 ? done[s - window]
                                 : 0.0;
        done[s] = start + cost_of(sig[s]).t[i];
      }
      total = done.back();
    }
    worst = std::max(worst, total);
  }
  return worst;
}

/// Benchmarked composite for the flat sr/ir/ib/sb part of a signature.
const PerLeader& flat_bcast_cost(const BcastTaskCosts& costs, unsigned m) {
  switch (m) {
    case kIb: return costs.ib0;
    case kIb | kSb: return costs.sbib_stable;
    default: return costs.sb0;  // kSb
  }
}

const PerLeader& flat_allreduce_cost(const AllreduceTaskCosts& costs,
                                     unsigned m) {
  switch (m) {
    case kSr: return costs.sr0;
    case kSr | kIr: return costs.irsr;
    case kSr | kIr | kIb: return costs.ibirsr;
    case kSr | kIr | kIb | kSb: return costs.sbibirsr_stable;
    // Drain: for tiny u the drain tasks approximate the remaining
    // ir/ib/sb of the last segments.
    case kIr | kIb | kSb:
    case kIr | kIb:
    case kIr: return costs.sbibir;
    case kIb | kSb:
    case kIb: return costs.sbib;
    default: return costs.sb;  // kSb
  }
}

/// Level placeholders for a model-only ladder walk: the shapes read only
/// tier indices and the top/leaf positions, so any depth-consistent vector
/// works.
std::vector<task::Level> model_levels(int depth) {
  std::vector<task::Level> v(static_cast<std::size_t>(depth),
                             task::Level::Mid);
  v.front() = task::Level::Intra;
  v.back() = task::Level::Inter;
  return v;
}

/// Price every distinct signature of a ladder walk: the flat composite of
/// the sr/ir/ib/sb bits (zero when a step is mid-only) plus the solo mid
/// cost when a mid stage is active.
template <typename FlatCost>
std::map<unsigned, PerLeader> ladder_cost_table(
    const std::vector<unsigned>& sig, const FlatCost& flat_cost,
    const PerLeader& mid_solo, const PerLeader& zero_like) {
  std::map<unsigned, PerLeader> table;
  for (unsigned m : sig) {
    if (table.count(m) != 0) continue;
    const unsigned flat = m & (kSr | kIr | kIb | kSb);
    PerLeader c;
    if (flat != 0) {
      c = flat_cost(flat);
    } else {
      c.t.assign(zero_like.t.size(), 0.0);
    }
    if ((m & (kMr | kMb)) != 0) {
      HAN_ASSERT(c.t.size() == mid_solo.t.size());
      for (std::size_t i = 0; i < c.t.size(); ++i) c.t[i] += mid_solo.t[i];
    }
    table.emplace(m, std::move(c));
  }
  return table;
}

}  // namespace

double bcast_model_cost(const BcastTaskCosts& costs, int u, int window) {
  HAN_ASSERT(u >= 1);
  // ib(0); sbib(1..u-1); sb(u-1) — eq. 3 falls out of the walk.
  const std::vector<unsigned> sig =
      step_signatures(task::bcast_shape(/*has_intra=*/true), u);
  return walk_cost(
      sig,
      [&](unsigned m) -> const PerLeader& {
        return flat_bcast_cost(costs, m);
      },
      window);
}

double bcast_ladder_model_cost(const BcastTaskCosts& costs,
                               const MidTaskCosts& mid, int depth, int u,
                               int window) {
  HAN_ASSERT(depth >= 2 && u >= 1);
  if (depth == 2) return bcast_model_cost(costs, u, window);
  const std::vector<unsigned> sig = step_signatures(
      task::bcast_ladder_shape(model_levels(depth),
                               std::vector<bool>(depth, true)),
      u);
  const std::map<unsigned, PerLeader> table = ladder_cost_table(
      sig, [&](unsigned m) { return flat_bcast_cost(costs, m); }, mid.mb,
      costs.sb0);
  return walk_cost(
      sig, [&](unsigned m) -> const PerLeader& { return table.at(m); },
      window);
}

AllreduceTaskCosts AllreduceTaskCosts::from_trace(const PipelineTrace& trace) {
  const int n = static_cast<int>(trace.steps.size());
  HAN_ASSERT_MSG(n >= 7, "allreduce trace needs >= 4 pipeline steps + tail");
  AllreduceTaskCosts c;
  c.sr0 = trace.steps[0];
  c.irsr = trace.steps[1];
  c.ibirsr = trace.steps[2];
  // Stabilized steady-state cost: average the middle steps, skipping the
  // first steady step (pipeline still filling) and the 3 drain steps.
  PerLeader mid;
  mid.t.assign(c.sr0.t.size(), 0.0);
  int count = 0;
  for (int i = 4; i < n - 3; ++i) {
    for (std::size_t l = 0; l < mid.t.size(); ++l) {
      mid.t[l] += trace.steps[i].t[l];
    }
    ++count;
  }
  if (count == 0) {
    mid = trace.steps[3];  // minimal trace: take the one steady step
  } else {
    for (double& v : mid.t) v /= count;
  }
  c.sbibirsr_stable = mid;
  c.sbibir = trace.steps[n - 3];
  c.sbib = trace.steps[n - 2];
  c.sb = trace.steps[n - 1];
  return c;
}

AffineFit AffineFit::from_points(std::size_t b1, double t1, std::size_t b2,
                                 double t2) {
  AffineFit f;
  if (b2 == b1) {
    f.base = t1;
    return f;
  }
  f.per_byte = (t2 - t1) / (static_cast<double>(b2) - static_cast<double>(b1));
  f.base = t1 - f.per_byte * static_cast<double>(b1);
  // A negative intercept can fall out of noisy two-point sampling; clamp so
  // extrapolation to tiny sizes stays sane.
  if (f.base < 0.0) f.base = 0.0;
  return f;
}

double reduce_scatter_model_cost(const ReduceScatterTaskCosts& costs,
                                 const core::HanConfig& cfg,
                                 std::size_t msg_bytes, int nodes, int ppn,
                                 int window) {
  HAN_ASSERT(nodes >= 1 && ppn >= 1);
  const std::size_t m = std::max<std::size_t>(msg_bytes, 1);
  const std::size_t region = std::max<std::size_t>(m / nodes, 1);
  const bool has_intra = ppn > 1;
  const std::size_t fs = std::max<std::size_t>(cfg.fs, 1);

  if (cfg.imod == "ring") {
    if (!has_intra) return costs.inter_ring.at(m);
    // Walk the same slice sequence the builder emits: nodes intra reduces
    // per slice (serial), each slice's strided ring hidden behind the next
    // slice's reduces; the last ring and the ss tail cannot overlap.
    double t = 0.0;
    std::size_t last_len = 0;
    task::for_each_ring_slice(
        region, fs, mpi::Datatype::Byte,
        [&](int /*k*/, std::size_t /*off*/, std::size_t len) {
          t += static_cast<double>(nodes) * costs.intra_reduce.at(len);
          last_len = len;
        });
    return t + costs.inter_ring.at(static_cast<std::size_t>(nodes) * last_len) +
           costs.intra_scatter.at(region);
  }

  // Tree path: the sr ⊕ ir pipeline shape, then the inter scatter and ss.
  const int u = static_cast<int>((m + fs - 1) / fs);
  const std::vector<unsigned> sig =
      step_signatures(task::reduce_scatter_tree_shape(has_intra), u);
  const double pipeline = walk_cost(
      sig,
      [&](unsigned s) -> const PerLeader& {
        switch (s) {
          case kSr: return costs.sr0;
          case kSr | kIr: return costs.irsr_stable;
          default: return costs.ir_tail;  // kIr
        }
      },
      window);
  return pipeline + costs.inter_scatter.at(m) +
         (has_intra ? costs.intra_scatter.at(region) : 0.0);
}

double allreduce_model_cost(const AllreduceTaskCosts& costs, int u,
                            int window) {
  HAN_ASSERT(u >= 1);
  // sr(0); irsr; ibirsr; sbibirsr(3..u-1); sbibir; sbib; sb — eq. 4.
  const std::vector<unsigned> sig =
      step_signatures(task::allreduce_shape(/*has_intra=*/true), u);
  return walk_cost(
      sig,
      [&](unsigned m) -> const PerLeader& {
        return flat_allreduce_cost(costs, m);
      },
      window);
}

double allreduce_ladder_model_cost(const AllreduceTaskCosts& costs,
                                   const MidTaskCosts& mid, int depth, int u,
                                   int window) {
  HAN_ASSERT(depth >= 2 && u >= 1);
  if (depth == 2) return allreduce_model_cost(costs, u, window);
  // The mid reduce and mid bcast lanes of one step share the cross-domain
  // bus like concurrent mids do; one averaged solo cost prices both.
  PerLeader mid_solo;
  mid_solo.t.assign(mid.mr.t.size(), 0.0);
  HAN_ASSERT(mid.mr.t.size() == mid.mb.t.size());
  for (std::size_t i = 0; i < mid_solo.t.size(); ++i) {
    mid_solo.t[i] = 0.5 * (mid.mr.t[i] + mid.mb.t[i]);
  }
  const std::vector<unsigned> sig = step_signatures(
      task::allreduce_ladder_shape(model_levels(depth),
                                   std::vector<bool>(depth, true)),
      u);
  const std::map<unsigned, PerLeader> table = ladder_cost_table(
      sig, [&](unsigned m) { return flat_allreduce_cost(costs, m); },
      mid_solo, costs.sb);
  return walk_cost(
      sig, [&](unsigned m) -> const PerLeader& { return table.at(m); },
      window);
}

}  // namespace han::tune

#include "autotune/costmodel.hpp"

namespace han::tune {

double bcast_model_cost(const BcastTaskCosts& costs, int u) {
  HAN_ASSERT(u >= 1);
  const std::size_t leaders = costs.ib0.t.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < leaders; ++i) {
    // u == 1: ib(0) followed by the lone sb — no sbib steps at all.
    const double t = costs.ib0.t[i] +
                     static_cast<double>(u - 1) * costs.sbib_stable.t[i] +
                     costs.sb0.t[i];
    worst = std::max(worst, t);
  }
  return worst;
}

AllreduceTaskCosts AllreduceTaskCosts::from_trace(const PipelineTrace& trace) {
  const int n = static_cast<int>(trace.steps.size());
  HAN_ASSERT_MSG(n >= 7, "allreduce trace needs >= 4 pipeline steps + tail");
  AllreduceTaskCosts c;
  c.sr0 = trace.steps[0];
  c.irsr = trace.steps[1];
  c.ibirsr = trace.steps[2];
  // Stabilized steady-state cost: average the middle steps, skipping the
  // first steady step (pipeline still filling) and the 3 drain steps.
  PerLeader mid;
  mid.t.assign(c.sr0.t.size(), 0.0);
  int count = 0;
  for (int i = 4; i < n - 3; ++i) {
    for (std::size_t l = 0; l < mid.t.size(); ++l) {
      mid.t[l] += trace.steps[i].t[l];
    }
    ++count;
  }
  if (count == 0) {
    mid = trace.steps[3];  // minimal trace: take the one steady step
  } else {
    for (double& v : mid.t) v /= count;
  }
  c.sbibirsr_stable = mid;
  c.sbibir = trace.steps[n - 3];
  c.sbib = trace.steps[n - 2];
  c.sb = trace.steps[n - 1];
  return c;
}

double allreduce_model_cost(const AllreduceTaskCosts& costs, int u) {
  HAN_ASSERT(u >= 1);
  const std::size_t leaders = costs.sr0.t.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < leaders; ++i) {
    double t = costs.sr0.t[i];
    if (u >= 2) t += costs.irsr.t[i];
    if (u >= 3) t += costs.ibirsr.t[i];
    if (u >= 4) t += static_cast<double>(u - 3) * costs.sbibirsr_stable.t[i];
    // Drain: always present once the 4-stage pipeline exists; for tiny u
    // the drain tasks approximate the remaining ir/ib/sb of the last
    // segments.
    t += costs.sbibir.t[i] + costs.sbib.t[i] + costs.sb.t[i];
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace han::tune

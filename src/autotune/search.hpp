// Configuration search strategies (paper §III-C).
//
// Four strategies, matching Fig. 8/9's bars:
//  * Exhaustive        — run the real collective for every configuration at
//                        every message size; ground truth, O(M*S*A) runs.
//  * Exhaustive+heur   — same, with the paper's pruning heuristics.
//  * Task model (HAN)  — benchmark tasks once per configuration, reuse the
//                        costs across message sizes through the cost model.
//  * Task model+heur   — combined, the paper's 4.3%-of-exhaustive search.
//
// Heuristics reproduced from §III-C: SOLO only for segments >= 512KB, the
// chain algorithm only when enough segments exist to fill its pipeline.
#pragma once

#include <map>
#include <optional>

#include "autotune/costmodel.hpp"

namespace han::tune {

struct SearchSpace {
  std::vector<std::size_t> fs_sizes{64 << 10,  128 << 10, 256 << 10,
                                    512 << 10, 1 << 20,   2 << 20};
  std::vector<std::string> imods{"libnbc", "adapt"};
  std::vector<std::string> smods{"sm", "solo"};
  std::vector<coll::Algorithm> adapt_algs{coll::Algorithm::Chain,
                                          coll::Algorithm::Binary,
                                          coll::Algorithm::Binomial};
  std::vector<std::size_t> adapt_inter_segments{32 << 10, 128 << 10};
  /// Add the ring inter module for the kinds it implements
  /// (reduce-scatter); one config per fs x smod.
  bool include_ring = true;
  /// Scheduler in-flight step windows to try. The default space keeps the
  /// paper's lock-step pipeline only; add e.g. {1, 2} to let the tuner
  /// weigh deeper in-flight overlap (cost model walks the same windows).
  std::vector<int> windows{1};
  /// Synthesized-schedule ids (synth::SynthSpec) to cross into the space.
  /// Empty — the default — leaves the space unchanged; otherwise every
  /// config is also tried with each id whose kind matches the collective
  /// (ids for other kinds are skipped, mismatched ids never enumerate).
  std::vector<std::string> scheds;
  /// Mid-level axes for derived n-level ladders (docs/HIERARCHY.md): the
  /// mid-stage algorithm (HanConfig::malg) and the zero-copy switchover
  /// (HanConfig::zcs; 0 = always zero-copy). Both empty — the default —
  /// leave the space byte-identical to the flat 2-level one; the Tuner
  /// populates them automatically on NUMA machine profiles.
  std::vector<coll::Algorithm> mid_algs;
  std::vector<std::size_t> zc_switchovers;
  /// Inter-node stripe factors (HanConfig::sf, docs/FABRIC.md). Empty —
  /// the default — leaves the space byte-identical to the single-rail
  /// one; the Tuner populates it with the divisors of the machine's NIC
  /// count on multi-rail profiles.
  std::vector<int> stripe_factors;

  /// Every configuration of the space (paper: S x A combinations).
  std::vector<core::HanConfig> enumerate(coll::CollKind kind) const;

  /// The default space a machine profile calls for: flat machines get the
  /// seed's space unchanged; NUMA-split profiles (numa_per_node > 1) also
  /// get the mid-level axes, so the tuner weighs the derived 3-level
  /// ladder's knobs wherever a mid level exists; multi-rail profiles
  /// (nics_per_node > 1) also get the stripe axis.
  static SearchSpace for_profile(const machine::MachineProfile& profile);
};

/// §III-C pruning rules. `u` = segment count at the evaluated message size
/// (pass 0 when unknown — message-independent rules only).
bool heuristic_allows(const core::HanConfig& cfg, coll::CollKind kind,
                      std::size_t msg_bytes, int u);

struct Evaluation {
  core::HanConfig cfg;
  double time = 0.0;  // measured (exhaustive) or estimated (model) seconds
};

struct SearchResult {
  std::optional<Evaluation> best;
  std::vector<Evaluation> all;    // every evaluated configuration
  double tuning_cost = 0.0;       // simulated seconds of benchmarking
  int evaluations = 0;
};

class Searcher {
 public:
  Searcher(mpi::SimWorld& world, core::HanModule& han, const mpi::Comm& comm,
           SearchSpace space = SearchSpace());

  /// Measure one full collective under `cfg` (max across ranks, `iters`
  /// synchronized iterations, averaged). Charged to the tuning cost.
  double measure_collective(coll::CollKind kind, std::size_t msg_bytes,
                            const core::HanConfig& cfg, int iters = 2);

  /// Exhaustive search at one message size.
  SearchResult exhaustive(coll::CollKind kind, std::size_t msg_bytes,
                          bool heuristics);

  /// Task-model search: prepare() benchmarks tasks for every configuration
  /// (charged once); estimate() then evaluates any message size for free.
  void prepare(coll::CollKind kind, bool heuristics);
  SearchResult estimate(coll::CollKind kind, std::size_t msg_bytes,
                        bool heuristics);

  /// Model-estimated cost for one specific configuration (Fig. 4/7 bars);
  /// benchmarks the configuration's tasks if not already cached.
  double estimate_config(coll::CollKind kind, std::size_t msg_bytes,
                         const core::HanConfig& cfg);

  /// Tuning cost consumed so far (Fig. 8's metric), simulated seconds:
  /// task benchmarking plus any whole-collective measurements.
  double tuning_cost() const { return bench_.elapsed_cost() + bench_charge_; }

  const SearchSpace& space() const { return space_; }
  TaskBench& bench() { return bench_; }

 private:
  struct ConfigKey {
    std::string text;  // canonical HanConfig string
    bool operator<(const ConfigKey& o) const { return text < o.text; }
  };

  const BcastTaskCosts& bcast_costs(const core::HanConfig& cfg);
  const AllreduceTaskCosts& allreduce_costs(const core::HanConfig& cfg);
  const ReduceScatterTaskCosts& reduce_scatter_costs(
      const core::HanConfig& cfg);
  const MidTaskCosts& mid_costs(const core::HanConfig& cfg);

  mpi::SimWorld* world_;
  core::HanModule* han_;
  const mpi::Comm* comm_;
  SearchSpace space_;
  TaskBench bench_;
  double bench_charge_ = 0.0;  // whole-collective measurement time
  std::map<ConfigKey, BcastTaskCosts> bcast_cache_;
  std::map<ConfigKey, AllreduceTaskCosts> allreduce_cache_;
  std::map<ConfigKey, ReduceScatterTaskCosts> reduce_scatter_cache_;
  std::map<ConfigKey, MidTaskCosts> mid_cache_;
};

}  // namespace han::tune

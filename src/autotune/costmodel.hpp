// The paper's cost models (equations 1-4).
//
// Cost of a collective = the longest completion among processes (the IMB /
// OSU definition). For Bcast (eq. 3):
//     max_i( T_i(ib(0)) + (u-1) * T_i(sbib(s)) + T_i(sb(u-1)) )
// For Allreduce (eq. 4):
//     max_i( T_i(sr(0)) + T_i(irsr(1)) + T_i(ibirsr(2))
//            + (u-3) * T_i(sbibirsr(s)) + T_i(sbibir) + T_i(sbib)
//            + T_i(sb) )
// where T_i are *benchmarked task costs* (taskbench.hpp), not analytic
// network parameters — the paper's central autotuning idea.
#pragma once

#include "autotune/taskbench.hpp"

namespace han::tune {

struct BcastTaskCosts {
  PerLeader ib0;          // T_i(ib(0))
  PerLeader sb0;          // T_i(sb(0)) ~= T_i(sb(u-1))
  PerLeader sbib_stable;  // T_i(sbib(s))
};

/// Eq. 3. `u` = segment count of the modeled message.
double bcast_model_cost(const BcastTaskCosts& costs, int u);

struct AllreduceTaskCosts {
  PerLeader sr0;              // T_i(sr(0))
  PerLeader irsr;             // T_i(irsr(1))
  PerLeader ibirsr;           // T_i(ibirsr(2))
  PerLeader sbibirsr_stable;  // T_i(sbibirsr(s))
  PerLeader sbibir;           // drain tasks
  PerLeader sbib;
  PerLeader sb;

  /// Extract from an instrumented pipeline trace (steps + 3 entries).
  static AllreduceTaskCosts from_trace(const PipelineTrace& trace);
};

/// Eq. 4 with the obvious clamping for u < 4 (fewer fill/drain steps than
/// the pipeline depth).
double allreduce_model_cost(const AllreduceTaskCosts& costs, int u);

}  // namespace han::tune

// The paper's cost models (equations 1-4).
//
// Cost of a collective = the longest completion among processes (the IMB /
// OSU definition). For Bcast (eq. 3):
//     max_i( T_i(ib(0)) + (u-1) * T_i(sbib(s)) + T_i(sb(u-1)) )
// For Allreduce (eq. 4):
//     max_i( T_i(sr(0)) + T_i(irsr(1)) + T_i(ibirsr(2))
//            + (u-3) * T_i(sbibirsr(s)) + T_i(sbibir) + T_i(sbib)
//            + T_i(sb) )
// where T_i are *benchmarked task costs* (taskbench.hpp), not analytic
// network parameters — the paper's central autotuning idea.
#pragma once

#include "autotune/taskbench.hpp"

namespace han::tune {

struct BcastTaskCosts {
  PerLeader ib0;          // T_i(ib(0))
  PerLeader sb0;          // T_i(sb(0)) ~= T_i(sb(u-1))
  PerLeader sbib_stable;  // T_i(sbib(s))
};

/// Eq. 3. `u` = segment count of the modeled message. The cost is computed
/// by symbolically walking the bcast pipeline shape (han/task/shapes.hpp)
/// — the same shape the graph builders execute. `window` mirrors the
/// TaskScheduler's in-flight step window: 1 (the default) is the paper's
/// lock-step pipeline, exactly eq. 3; larger windows give an optimistic
/// bound where step s starts when step s - window finished.
double bcast_model_cost(const BcastTaskCosts& costs, int u, int window = 1);

struct AllreduceTaskCosts {
  PerLeader sr0;              // T_i(sr(0))
  PerLeader irsr;             // T_i(irsr(1))
  PerLeader ibirsr;           // T_i(ibirsr(2))
  PerLeader sbibirsr_stable;  // T_i(sbibirsr(s))
  PerLeader sbibir;           // drain tasks
  PerLeader sbib;
  PerLeader sb;

  /// Extract from an instrumented pipeline trace (steps + 3 entries).
  static AllreduceTaskCosts from_trace(const PipelineTrace& trace);
};

/// Eq. 4 with the obvious clamping for u < 4 (fewer fill/drain steps than
/// the pipeline depth) — a symbolic walk of the allreduce shape; see
/// bcast_model_cost for the window semantics.
double allreduce_model_cost(const AllreduceTaskCosts& costs, int u,
                            int window = 1);

/// Benchmarked solo costs of the mid-level ladder tasks (derived n-level
/// hierarchies, docs/HIERARCHY.md): one mid-comm bcast/reduce of an fs
/// segment, timed per node leader like the flat tasks.
struct MidTaskCosts {
  PerLeader mb;  // T_i(mb(0))
  PerLeader mr;  // T_i(mr(0))
};

/// Depth-d generalization of eq. 3: a symbolic walk of
/// task::bcast_ladder_shape. A step's cost is the flat 2-level composite
/// benchmark of its sr/ir/ib/sb part plus the solo mid cost whenever a mid
/// stage is active — mid stages ride the (slower, cross-domain) memory bus
/// rather than the NIC, so no overlap with the inter stage is assumed;
/// ladders deeper than 3 price all concurrently active mid stages as one
/// bus lane, since they share it. Depth 2 is bcast_model_cost exactly.
double bcast_ladder_model_cost(const BcastTaskCosts& costs,
                               const MidTaskCosts& mid, int depth, int u,
                               int window = 1);

/// Depth-d generalization of eq. 4; see bcast_ladder_model_cost for the
/// additive mid composition. Depth 2 is allreduce_model_cost exactly.
double allreduce_ladder_model_cost(const AllreduceTaskCosts& costs,
                                   const MidTaskCosts& mid, int depth, int u,
                                   int window = 1);

/// Affine cost fit t(bytes) = base + per_byte * bytes from two sampled
/// points. The simulated fabric is linear in message size past the eager
/// threshold, so two samples pin the whole size axis — the reduce-scatter
/// model uses these for its scatter/ring tails, whose operand sizes (m,
/// the node region, a slice vector) are not multiples of fs.
struct AffineFit {
  double base = 0.0;
  double per_byte = 0.0;

  double at(std::size_t bytes) const {
    return base + per_byte * static_cast<double>(bytes);
  }
  static AffineFit from_points(std::size_t b1, double t1, std::size_t b2,
                               double t2);
};

/// Benchmarked task costs of the hierarchical reduce-scatter. The tree
/// path reuses the sr ⊕ ir pipeline structure (a reduce-only trace); the
/// ring path needs only sr plus the strided-ring and scatter fits.
struct ReduceScatterTaskCosts {
  PerLeader sr0;            // T_i(sr(0)): intra reduce of one fs segment
  PerLeader irsr_stable;    // T_i(irsr(s)): steady ir ∥ sr step (tree)
  PerLeader ir_tail;        // T_i(ir): drain step (tree)
  AffineFit inter_scatter;  // tree tail: inter scatter of the whole vector
  AffineFit intra_reduce;   // ring: one intra reduce vs piece size (the
                            // ring path's pieces are min(fs, region), not
                            // fs, so a fit beats a single sample)
  AffineFit inter_ring;     // ring reduce-scatter of a slice vector
  AffineFit intra_scatter;  // ss: scatter of the node region
};

/// Model cost of a reduce-scatter of `msg_bytes` under `cfg` on a
/// (nodes, ppn) hierarchy. Tree path:
///     max_i( sr(0) + (u-1)*irsr(s) + ir ) + isc(m) + ss(m/n)
/// Ring path (slices of min(fs, region) pipelining sr against the ring):
///     max_i( u*sr(0) ) + ring(n*slice) + ss(m/n)
double reduce_scatter_model_cost(const ReduceScatterTaskCosts& costs,
                                 const core::HanConfig& cfg,
                                 std::size_t msg_bytes, int nodes, int ppn,
                                 int window = 1);

}  // namespace han::tune

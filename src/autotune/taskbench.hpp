// Task benchmarking (paper §III-A2/§III-B2): measure the cost of HAN's
// tasks — ib, sb, concurrent ib+sb, delayed-start sbib pipelines, and the
// allreduce task chain — instead of whole collectives.
//
// The key methodological points reproduced from the paper:
//  * ib(0) and sb(0) are timed with a simple synchronized loop.
//  * sbib must NOT be timed from a synchronized start: each leader is
//    delayed by its measured T_i(ib(0)) to reproduce the staggered entry
//    (Fig. 2's red vs green bars).
//  * The pipeline needs a few segments to fill; per-step costs stabilize
//    afterwards (Fig. 3), and the stabilized value feeds the cost model.
//
// All benchmarks run in the caller's SimWorld; the simulated time they
// consume is the "tuning cost" the paper's Fig. 8 accounts.
#pragma once

#include <vector>

#include "han/han.hpp"

namespace han::tune {

/// Per-leader (per-node) task costs, indexed by up-comm rank.
struct PerLeader {
  std::vector<double> t;  // seconds

  double max() const;
  double avg() const;
};

/// Per-step, per-leader costs of an instrumented pipeline run:
/// steps[i].t[leader] is the duration of step i on that leader.
struct PipelineTrace {
  std::vector<PerLeader> steps;

  /// Stabilized per-step cost per leader: mean of the last `tail` steps.
  PerLeader stabilized(int tail = 3) const;
};

class TaskBench {
 public:
  /// `han` supplies submodules and hierarchical comms over `comm`.
  TaskBench(mpi::SimWorld& world, core::HanModule& han,
            const mpi::Comm& comm);

  /// Simulated seconds consumed by all benchmarks so far (tuning cost).
  double elapsed_cost() const { return cost_; }

  // --- Bcast tasks (root = rank 0) --------------------------------------

  /// T_i(ib(0)): inter-node bcast of one segment, synchronized start.
  PerLeader bench_ib(const core::HanConfig& cfg, std::size_t seg_bytes,
                     int iters = 3);

  /// T_i(sb(0)): intra-node bcast of one segment on every node.
  PerLeader bench_sb(const core::HanConfig& cfg, std::size_t seg_bytes,
                     int iters = 3);

  /// Concurrent ib(0)+sb(0) from a synchronized start (Fig. 2 green bars —
  /// demonstrates imperfect overlap; not used by the model).
  PerLeader bench_concurrent_ib_sb(const core::HanConfig& cfg,
                                   std::size_t seg_bytes, int iters = 3);

  /// Delayed-start sbib pipeline of `steps` segments (Fig. 2 red bars /
  /// Fig. 3 trend). Leaders start staggered by `delay_by` (typically the
  /// measured T_i(ib(0))).
  PipelineTrace bench_sbib_pipeline(const core::HanConfig& cfg,
                                    std::size_t seg_bytes, int steps,
                                    const PerLeader& delay_by);

  // --- Allreduce tasks ---------------------------------------------------

  /// T_i(sr(0)): intra-node reduce of one segment.
  PerLeader bench_sr(const core::HanConfig& cfg, std::size_t seg_bytes,
                     int iters = 3);

  /// Instrumented leader pipeline of the allreduce task chain over
  /// `steps + 3` steps: step 0 = sr(0), 1 = irsr, 2 = ibirsr,
  /// 3.. = sbibirsr, tail = sbibir, sbib, sb.
  PipelineTrace bench_allreduce_pipeline(const core::HanConfig& cfg,
                                         std::size_t seg_bytes, int steps);

  // --- Mid-level ladder tasks (derived hierarchies) ----------------------

  /// T_i(mb(0)): one mid-level (cross-domain, in-node) bcast of a segment
  /// over every rank's mid sub-comm of the ladder `cfg` selects
  /// (docs/HIERARCHY.md), timed per node leader. Requires a ladder of
  /// depth >= 3. The zero-copy switchover is resolved against `seg_bytes`
  /// — the builders resolve it against the whole message, so modeled
  /// zcs > 0 configs are approximate.
  PerLeader bench_mb(const core::HanConfig& cfg, std::size_t seg_bytes,
                     int iters = 3);

  /// T_i(mr(0)): the mirror mid-level reduce.
  PerLeader bench_mr(const core::HanConfig& cfg, std::size_t seg_bytes,
                     int iters = 3);

  // --- Reduce-scatter tasks ----------------------------------------------

  /// Instrumented sr ⊕ ir reduce pipeline (the front half of the allreduce
  /// chain — reduce-scatter's tree path) over `steps + 1` steps:
  /// step 0 = sr(0), 1.. = irsr, tail = ir drain.
  PipelineTrace bench_reduce_pipeline(const core::HanConfig& cfg,
                                      std::size_t seg_bytes, int steps);

  /// Inter-node scatter of `bytes` from up-root 0 (the tree path's isc
  /// tail). One point of the AffineFit the model extrapolates with.
  PerLeader bench_inter_scatter(const core::HanConfig& cfg,
                                std::size_t bytes, int iters = 3);

  /// Ring reduce-scatter of `bytes` across the node leaders (the ring
  /// path's inter task).
  PerLeader bench_inter_ring_rs(const core::HanConfig& cfg,
                                std::size_t bytes, int iters = 3);

  /// Intra-node scatter of `bytes` from the node leader (the ss tail).
  PerLeader bench_intra_scatter(const core::HanConfig& cfg,
                                std::size_t bytes, int iters = 3);

  int leader_count() const { return leaders_; }

  mpi::SimWorld& world() { return *world_; }

 private:
  /// Run `program` on every world rank and charge the elapsed simulated
  /// time to the tuning cost.
  void run_charged(const mpi::SimWorld::Program& program);

  mpi::SimWorld* world_;
  core::HanModule* han_;
  const mpi::Comm* comm_;
  int leaders_ = 0;
  double cost_ = 0.0;
};

}  // namespace han::tune

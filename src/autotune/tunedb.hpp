// Persistent tuning database (the "tuning service" storage layer).
//
// The paper's workflow tunes a machine once, at install time. A fleet
// operator re-runs that workflow every time a machine changes — firmware
// updates shift the P2P efficiency curve, node counts grow — and most of
// the fleet has not changed at all. The TuneDb makes the re-run cheap:
//
//  * signature_of() fingerprints a MachineProfile: a topology descriptor
//    (the record key) plus FNV-1a hashes of every timing-relevant scalar
//    and of the P2P efficiency curve sampled per log2 message band.
//  * Each stored entry remembers the band hash it was tuned under, so
//    staleness is detected per (kind, size-band): a curve perturbation
//    above 2 MB invalidates only the large-message bands.
//  * warm_tune() reuses every fresh entry and re-tunes only collectives
//    with stale or missing buckets, merging into a table identical to a
//    cold tune of the same machine.
//
// Files are versioned text like the LookupTable format (v2): a version
// header, one "machine" block per record, loud rejection of corrupt or
// newer-format files. See docs/TUNING_SERVICE.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "autotune/tuner.hpp"
#include "machine/machine.hpp"

namespace han::tune {

struct MachineSignature {
  /// Log2 message-size bands covered per record (1 B .. 1 GB); larger
  /// buckets clamp into the last band.
  static constexpr int kBands = 31;

  /// Topology descriptor, e.g. "aries.8x4.numa1" — the DB record key.
  std::string topo;
  /// Hash of every timing-relevant profile scalar (latencies, bandwidths,
  /// protocol overheads). Any change invalidates all bands; the efficiency
  /// curve is hashed per band instead so local edits stay local.
  std::uint64_t scalar_hash = 0;
  /// Per-band hash: scalar_hash mixed with the efficiency curve sampled
  /// inside [2^b, 2^(b+1)). A local curve edit only moves the bands whose
  /// interpolation it reaches.
  std::uint64_t band_hash[kBands] = {};

  const std::string& key() const { return topo; }
  std::uint64_t band(int log2_bytes) const;
  bool operator==(const MachineSignature&) const = default;
};

/// Fingerprint a profile (its Open MPI-stack parameters; vendor overrides
/// are a different stack, not a different machine).
MachineSignature signature_of(const machine::MachineProfile& profile);

class TuneDb {
 public:
  /// Text-format version written by serialize(). deserialize() rejects
  /// anything newer — a DB written by a future build is never misread.
  static constexpr int kFormatVersion = 1;

  struct Entry {
    core::HanConfig cfg;
    std::uint64_t band_hash = 0;  // signature band the entry was tuned under
  };

  struct Record {
    MachineSignature sig;
    int revision = 0;          // bumped on every ingest
    std::uint64_t stamp = 0;   // ingest order across the DB (gc priority)
    std::map<LookupTable::Key, Entry> entries;

    /// The record's configs as a plain lookup table (staleness ignored).
    LookupTable table() const;
  };

  const Record* find(const std::string& topo_key) const;

  /// Merge a tuned table under `sig`: listed buckets are inserted or
  /// replaced and stamped with the signature's current band hashes, other
  /// buckets of the record are kept. Bumps the revision.
  void ingest(const MachineSignature& sig, const LookupTable& table);

  /// The subset of `wanted` buckets that cannot be reused under `sig`:
  /// missing from the record, or tuned under a different band hash. With
  /// no record at all, every wanted bucket is stale.
  std::vector<LookupTable::Key> stale_keys(
      const MachineSignature& sig,
      const std::vector<LookupTable::Key>& wanted) const;

  /// Drop one machine's record (or only one collective's entries in it).
  /// Returns the number of entries removed.
  int invalidate(const std::string& topo_key,
                 std::optional<coll::CollKind> kind = std::nullopt);

  /// Keep the `max_records` most recently ingested records; returns the
  /// number of records dropped.
  int gc(std::size_t max_records);

  std::size_t record_count() const { return records_.size(); }
  std::size_t entry_count() const;
  const std::map<std::string, Record>& records() const { return records_; }

  std::string serialize() const;
  /// Strict parse: any malformed line, unknown field, or newer version
  /// fails with a diagnostic in `*error` (never a silent partial load).
  static bool deserialize(const std::string& text, TuneDb* out,
                          std::string* error);

  /// File round-trip; load prints the parse diagnostic to stderr (loud
  /// rejection) and returns nullopt. A missing file is also nullopt but
  /// silent — an empty DB is how every fleet starts.
  bool save(const std::string& path) const;
  static std::optional<TuneDb> load(const std::string& path);

  /// obs-style report: deterministic key order, totals first.
  std::string report_json() const;

 private:
  std::map<std::string, Record> records_;
  std::uint64_t next_stamp_ = 1;
};

/// One warm-start tuning pass (see docs/TUNING_SERVICE.md).
struct WarmStartReport {
  LookupTable table;     // merged result: reused + freshly tuned buckets
  double tuning_cost = 0.0;  // simulated seconds actually spent
  int reused = 0;        // buckets served from the DB
  int retuned = 0;       // buckets re-benchmarked this pass
  bool cold = false;     // no DB record existed for this machine
  /// Collectives that had to re-tune (stale or missing buckets), by name.
  std::vector<std::string> retuned_kinds;
};

/// Tune `tuner`'s machine against `db`: reuse every bucket whose band
/// hash still matches, re-tune only collectives with stale or missing
/// buckets, and ingest the merged table back (no ingest — and no revision
/// bump — when everything was warm). The merged table is identical to a
/// cold `tuner.tune(options)` of the same machine; only the cost differs.
WarmStartReport warm_tune(TuneDb& db, Tuner& tuner,
                          const TunerOptions& options = TunerOptions());

}  // namespace han::tune

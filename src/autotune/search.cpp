#include "autotune/search.hpp"

#include <algorithm>

#include "han/synth/spec.hpp"

namespace han::tune {

using coll::Algorithm;
using coll::CollKind;
using core::HanConfig;
using mpi::BufView;

std::vector<HanConfig> SearchSpace::enumerate(CollKind kind) const {
  std::vector<HanConfig> out;
  // The ring inter module only implements the ring-pattern collectives, so
  // it joins the space for reduce-scatter only; one config per fs x smod
  // (the ring has no algorithm/segment knobs beyond irs, left 0).
  const bool ring = include_ring && kind == CollKind::ReduceScatter;
  for (std::size_t fs : fs_sizes) {
    for (const std::string& smod : smods) {
      if (ring) {
        HanConfig c;
        c.fs = fs;
        c.imod = "ring";
        c.smod = smod;
        c.ibalg = Algorithm::Ring;
        c.iralg = Algorithm::Ring;
        c.ibs = 0;
        c.irs = 0;
        out.push_back(std::move(c));
      }
      for (const std::string& imod : imods) {
        if (imod == "libnbc") {
          HanConfig c;
          c.fs = fs;
          c.imod = imod;
          c.smod = smod;
          c.ibalg = Algorithm::Binomial;
          c.iralg = Algorithm::Binomial;
          c.ibs = 0;
          c.irs = 0;
          out.push_back(std::move(c));
          continue;
        }
        for (Algorithm alg : adapt_algs) {
          for (std::size_t iseg : adapt_inter_segments) {
            HanConfig c;
            c.fs = fs;
            c.imod = imod;
            c.smod = smod;
            c.ibalg = alg;
            c.iralg = alg;  // ir/ib share the algorithm (paper §III-B)
            c.ibs = iseg;
            c.irs = iseg;
            out.push_back(std::move(c));
          }
        }
      }
    }
  }
  // Cross with the scheduler windows last so the base Table II axes stay
  // contiguous ({1} — the default — leaves the space unchanged).
  std::vector<HanConfig> expanded;
  expanded.reserve(out.size() * std::max<std::size_t>(windows.size(), 1));
  for (int w : windows.empty() ? std::vector<int>{1} : windows) {
    for (const HanConfig& base : out) {
      HanConfig c = base;
      c.window = w;
      expanded.push_back(std::move(c));
    }
  }
  // Mid-level ladder axes (docs/HIERARCHY.md): crossed only when
  // populated, so a flat space enumerates byte-identically to the seed's.
  // Absent axes pin their knob to the default (malg=Default, zcs=0).
  if (!mid_algs.empty() || !zc_switchovers.empty()) {
    const std::vector<Algorithm> malgs =
        mid_algs.empty() ? std::vector<Algorithm>{Algorithm::Default}
                         : mid_algs;
    const std::vector<std::size_t> zcss =
        zc_switchovers.empty() ? std::vector<std::size_t>{0}
                               : zc_switchovers;
    std::vector<HanConfig> crossed;
    crossed.reserve(expanded.size() * malgs.size() * zcss.size());
    for (const HanConfig& base : expanded) {
      for (Algorithm malg : malgs) {
        for (std::size_t zcs : zcss) {
          HanConfig c = base;
          c.malg = malg;
          c.zcs = zcs;
          crossed.push_back(std::move(c));
        }
      }
    }
    expanded = std::move(crossed);
  }
  // The rail-stripe axis (docs/FABRIC.md): crossed only when populated, so
  // single-rail spaces enumerate byte-identically. sf > 1 never pairs with
  // the ring inter module or reduce-scatter — the ring already saturates
  // its rail per step and the reduce-scatter builders do not stripe
  // (heuristic_allows prunes those pairs; skipping them here keeps the
  // enumeration free of configs every strategy would discard).
  if (!stripe_factors.empty()) {
    std::vector<HanConfig> crossed;
    crossed.reserve(expanded.size() * stripe_factors.size());
    for (const HanConfig& base : expanded) {
      for (int sf : stripe_factors) {
        if (sf != 1 &&
            (kind == CollKind::ReduceScatter || base.imod == "ring")) {
          continue;
        }
        HanConfig c = base;
        c.sf = std::max(1, sf);
        crossed.push_back(std::move(c));
      }
    }
    expanded = std::move(crossed);
  }
  // Synthesized-schedule ids join as an extra axis: the hand-written
  // builders (sched="") stay first, then each matching id crossed over
  // the whole space. Ids for other kinds are skipped, not errors — one
  // SearchSpace serves every collective.
  if (!scheds.empty()) {
    const std::size_t plain = expanded.size();
    for (const std::string& id : scheds) {
      synth::SynthSpec spec;
      if (!synth::SynthSpec::parse(id, &spec) || spec.kind != kind) continue;
      for (std::size_t i = 0; i < plain; ++i) {
        HanConfig c = expanded[i];
        c.sched = id;
        expanded.push_back(std::move(c));
      }
    }
  }
  return expanded;
}

bool heuristic_allows(const HanConfig& cfg, CollKind kind,
                      std::size_t msg_bytes, int u) {
  // SOLO's window-synchronization cost only amortizes on big segments
  // (paper: "we only use the SOLO submodule when the segment size is
  // larger than 512KB").
  if (cfg.smod == "solo" && cfg.fs < (512u << 10)) return false;
  // The chain algorithm needs enough segments to kick-start pipelining.
  if ((cfg.ibalg == Algorithm::Chain || cfg.iralg == Algorithm::Chain) &&
      u > 0 && u < 4) {
    return false;
  }
  // Libnbc schedules whole messages: past ~512KB its unsegmented rounds
  // cannot compete with ADAPT's internal pipelining (prior-understanding
  // rule in the spirit of the paper's §III-C examples).
  if (cfg.imod == "libnbc" && cfg.fs > (512u << 10)) return false;
  // A HAN segment larger than the message itself never changes behaviour;
  // keep only the smallest such configuration.
  if (msg_bytes > 0 && cfg.fs > msg_bytes && cfg.fs / 2 >= msg_bytes) {
    return false;
  }
  // Inter-level segmentation finer than needed on tiny messages only adds
  // setup cost.
  if (msg_bytes > 0 && cfg.ibs > 0 && cfg.ibs > msg_bytes) return false;
  // The ring's n-1 serial steps lose to the trees' log depth below the
  // measured ~1-2KB crossover; prune with margin.
  if (cfg.imod == "ring" && msg_bytes > 0 && msg_bytes < (4u << 10)) {
    return false;
  }
  // A deep in-flight window only pays off once the pipeline has enough
  // steps to overlap; on short pipelines it just duplicates window = 1.
  if (cfg.window > 1 && u > 0 && u < 4) return false;
  // Mid-level ladder knobs (docs/HIERARCHY.md). A zero-copy switchover far
  // above the segment size copies-in-copies-out even well-pipelined
  // messages; past 2*fs the zero-copy path always wins the bus.
  if (cfg.zcs > 0 && cfg.zcs > 2 * cfg.fs) return false;
  // The chain mid algorithm pipelines like the inter chain: it needs
  // enough segments to fill.
  if (cfg.malg == Algorithm::Chain && u > 0 && u < 4) return false;
  // Rail striping (docs/FABRIC.md): the reduce-scatter builders do not
  // stripe, and the ring inter module already drives its rail flat out per
  // step — sf > 1 there only duplicates sf = 1.
  if (cfg.sf > 1 &&
      (kind == CollKind::ReduceScatter || cfg.imod == "ring")) {
    return false;
  }
  // Striping wins bandwidth; slices under ~32KB pay sf plans' worth of
  // per-message latency for no transfer-time gain.
  if (cfg.sf > 1 &&
      cfg.fs / static_cast<std::size_t>(cfg.sf) < (32u << 10)) {
    return false;
  }
  return true;
}

SearchSpace SearchSpace::for_profile(const machine::MachineProfile& profile) {
  SearchSpace s;
  if (profile.numa_per_node > 1) {
    s.mid_algs = {Algorithm::Default, Algorithm::Binary};
    s.zc_switchovers = {0, 256 << 10};
  }
  if (profile.nics_per_node > 1) {
    // Divisors of the NIC count: non-divisor stripes leave rails idle in
    // the tail wrap-around for no bandwidth gain.
    for (int d = 1; d <= profile.nics_per_node; ++d) {
      if (profile.nics_per_node % d == 0) s.stripe_factors.push_back(d);
    }
  }
  return s;
}

Searcher::Searcher(mpi::SimWorld& world, core::HanModule& han,
                   const mpi::Comm& comm, SearchSpace space)
    : world_(&world),
      han_(&han),
      comm_(&comm),
      space_(std::move(space)),
      bench_(world, han, comm) {}

double Searcher::measure_collective(CollKind kind, std::size_t msg_bytes,
                                    const HanConfig& cfg, int iters) {
  auto sync =
      std::make_shared<mpi::SyncDomain>(world_->engine(), comm_->size());
  auto worst = std::make_shared<std::vector<double>>(iters, 0.0);

  const double before = world_->now();
  world_->run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](Searcher& s, std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<std::vector<double>> worst2, CollKind kind2,
              std::size_t bytes, HanConfig cfg2, int iters2,
              int pr) -> sim::CoTask {
      for (int it = 0; it < iters2; ++it) {
        co_await *sync2->arrive();
        const double t0 = s.world_->now();
        mpi::Request r;
        switch (kind2) {
          case CollKind::Bcast:
            r = s.han_->ibcast_cfg(*s.comm_, pr, 0,
                                   BufView::timing_only(bytes),
                                   mpi::Datatype::Byte, cfg2);
            break;
          case CollKind::Allreduce:
            r = s.han_->iallreduce_cfg(*s.comm_, pr,
                                       BufView::timing_only(bytes),
                                       BufView::timing_only(bytes),
                                       mpi::Datatype::Byte,
                                       mpi::ReduceOp::Sum, cfg2);
            break;
          case CollKind::Reduce:
            r = s.han_->ireduce_cfg(*s.comm_, pr, 0,
                                    BufView::timing_only(bytes),
                                    BufView::timing_only(bytes),
                                    mpi::Datatype::Byte, mpi::ReduceOp::Sum,
                                    cfg2);
            break;
          case CollKind::ReduceScatter: {
            // Equal blocks: round the vector to a multiple of the comm.
            const std::size_t block =
                std::max<std::size_t>(bytes / s.comm_->size(), 1);
            r = s.han_->ireduce_scatter_cfg(
                *s.comm_, pr,
                BufView::timing_only(block * s.comm_->size()),
                BufView::timing_only(block), mpi::Datatype::Byte,
                mpi::ReduceOp::Sum, cfg2);
            break;
          }
          // The linear-phase kinds take no Table II knobs; they run the
          // decider default path (han::lint measures them for the
          // cross-kind performance guidelines).
          case CollKind::Gather: {
            const std::size_t block =
                std::max<std::size_t>(bytes / s.comm_->size(), 1);
            r = s.han_->igather(*s.comm_, pr, 0,
                                BufView::timing_only(block),
                                BufView::timing_only(block *
                                                     s.comm_->size()),
                                coll::CollConfig{});
            break;
          }
          case CollKind::Scatter: {
            const std::size_t block =
                std::max<std::size_t>(bytes / s.comm_->size(), 1);
            r = s.han_->iscatter(*s.comm_, pr, 0,
                                 BufView::timing_only(block *
                                                      s.comm_->size()),
                                 BufView::timing_only(block),
                                 coll::CollConfig{});
            break;
          }
          case CollKind::Allgather: {
            const std::size_t block =
                std::max<std::size_t>(bytes / s.comm_->size(), 1);
            r = s.han_->iallgather(*s.comm_, pr,
                                   BufView::timing_only(block),
                                   BufView::timing_only(block *
                                                        s.comm_->size()),
                                   coll::CollConfig{});
            break;
          }
          default:
            HAN_ASSERT_MSG(false, "unsupported kind2 in measure_collective");
        }
        co_await *r;
        (*worst2)[it] = std::max((*worst2)[it], s.world_->now() - t0);
      }
    }(*this, sync, worst, kind, msg_bytes, cfg, iters, rank.world_rank);
  });
  // Charge the measurement to the tuning budget via the bench's account.
  // (Exhaustive search cost = sum of real collective runs.)
  const double elapsed = world_->now() - before;
  bench_charge_ += elapsed;
  world_->metrics().counter("tune.search.measurements").add(1.0);
  world_->metrics().counter("tune.search.seconds").add(elapsed);

  double sum = 0.0;
  for (double w : *worst) sum += w;
  return sum / iters;
}

SearchResult Searcher::exhaustive(CollKind kind, std::size_t msg_bytes,
                                  bool heuristics) {
  SearchResult result;
  const double cost0 = tuning_cost();
  for (const HanConfig& cfg : space_.enumerate(kind)) {
    const int u = static_cast<int>(
        (msg_bytes + cfg.fs - 1) / std::max<std::size_t>(cfg.fs, 1));
    if (heuristics && !heuristic_allows(cfg, kind, msg_bytes, u)) continue;
    const double t = measure_collective(kind, msg_bytes, cfg);
    result.all.push_back({cfg, t});
    ++result.evaluations;
    if (!result.best || t < result.best->time) {
      result.best = Evaluation{cfg, t};
    }
  }
  result.tuning_cost = tuning_cost() - cost0;
  return result;
}

const BcastTaskCosts& Searcher::bcast_costs(const HanConfig& cfg) {
  const ConfigKey key{cfg.to_string()};
  auto it = bcast_cache_.find(key);
  if (it != bcast_cache_.end()) return it->second;

  BcastTaskCosts costs;
  costs.ib0 = bench_.bench_ib(cfg, cfg.fs);
  costs.sb0 = bench_.bench_sb(cfg, cfg.fs);
  // The delayed-start sbib benchmark (red bars of Fig. 2): enough steps to
  // pass the pipeline fill (Fig. 3 shows stabilization within ~4 steps).
  const PipelineTrace trace =
      bench_.bench_sbib_pipeline(cfg, cfg.fs, /*steps=*/8, costs.ib0);
  costs.sbib_stable = trace.stabilized();
  return bcast_cache_.emplace(key, std::move(costs)).first->second;
}

const AllreduceTaskCosts& Searcher::allreduce_costs(const HanConfig& cfg) {
  const ConfigKey key{cfg.to_string()};
  auto it = allreduce_cache_.find(key);
  if (it != allreduce_cache_.end()) return it->second;
  const PipelineTrace trace =
      bench_.bench_allreduce_pipeline(cfg, cfg.fs, /*steps=*/8);
  return allreduce_cache_
      .emplace(key, AllreduceTaskCosts::from_trace(trace))
      .first->second;
}

const ReduceScatterTaskCosts& Searcher::reduce_scatter_costs(
    const HanConfig& cfg) {
  const ConfigKey key{cfg.to_string()};
  auto it = reduce_scatter_cache_.find(key);
  if (it != reduce_scatter_cache_.end()) return it->second;

  ReduceScatterTaskCosts costs;
  const std::size_t fs = std::max<std::size_t>(cfg.fs, 1);
  // Two-point samples pin the affine size axis of each tail task.
  const std::size_t b1 = fs;
  const std::size_t b2 = 4 * fs;
  costs.intra_scatter = AffineFit::from_points(
      b1, bench_.bench_intra_scatter(cfg, b1).max(), b2,
      bench_.bench_intra_scatter(cfg, b2).max());
  if (cfg.imod == "ring") {
    costs.intra_reduce =
        AffineFit::from_points(b1, bench_.bench_sr(cfg, b1).max(), b2,
                               bench_.bench_sr(cfg, b2).max());
    costs.inter_ring = AffineFit::from_points(
        b1, bench_.bench_inter_ring_rs(cfg, b1).max(), b2,
        bench_.bench_inter_ring_rs(cfg, b2).max());
  } else {
    const PipelineTrace trace =
        bench_.bench_reduce_pipeline(cfg, fs, /*steps=*/6);
    costs.sr0 = trace.steps.front();
    costs.irsr_stable = PipelineTrace{{trace.steps.begin() + 1,
                                       trace.steps.end() - 1}}
                            .stabilized();
    costs.ir_tail = trace.steps.back();
    costs.inter_scatter = AffineFit::from_points(
        b1, bench_.bench_inter_scatter(cfg, b1).max(), b2,
        bench_.bench_inter_scatter(cfg, b2).max());
  }
  return reduce_scatter_cache_.emplace(key, std::move(costs)).first->second;
}

const MidTaskCosts& Searcher::mid_costs(const HanConfig& cfg) {
  const ConfigKey key{cfg.to_string()};
  auto it = mid_cache_.find(key);
  if (it != mid_cache_.end()) return it->second;

  MidTaskCosts costs;
  costs.mb = bench_.bench_mb(cfg, cfg.fs);
  costs.mr = bench_.bench_mr(cfg, cfg.fs);
  return mid_cache_.emplace(key, std::move(costs)).first->second;
}

void Searcher::prepare(CollKind kind, bool heuristics) {
  for (const HanConfig& cfg : space_.enumerate(kind)) {
    if (heuristics && !heuristic_allows(cfg, kind, 0, 0)) continue;
    if (kind == CollKind::Bcast) {
      bcast_costs(cfg);
    } else if (kind == CollKind::ReduceScatter) {
      reduce_scatter_costs(cfg);
    } else {
      allreduce_costs(cfg);
    }
    // Ladders with a mid level also need the solo mid task costs, so that
    // estimate() stays measurement-free.
    if (kind != CollKind::ReduceScatter &&
        han_->ladder_for(*comm_, cfg).depth() > 2) {
      mid_costs(cfg);
    }
  }
}

SearchResult Searcher::estimate(CollKind kind, std::size_t msg_bytes,
                                bool heuristics) {
  SearchResult result;
  for (const HanConfig& cfg : space_.enumerate(kind)) {
    const int u = static_cast<int>(
        (msg_bytes + cfg.fs - 1) / std::max<std::size_t>(cfg.fs, 1));
    if (heuristics && !heuristic_allows(cfg, kind, msg_bytes, u)) continue;
    const double t = estimate_config(kind, msg_bytes, cfg);
    result.all.push_back({cfg, t});
    ++result.evaluations;
    if (!result.best || t < result.best->time) {
      result.best = Evaluation{cfg, t};
    }
  }
  return result;
}

double Searcher::estimate_config(CollKind kind, std::size_t msg_bytes,
                                 const HanConfig& cfg) {
  const int u = std::max<int>(
      1, static_cast<int>((msg_bytes + cfg.fs - 1) /
                          std::max<std::size_t>(cfg.fs, 1)));
  if (kind == CollKind::Bcast) {
    // Derived ladders deeper than 2 recurse through the mid levels: the
    // flat composite costs plus the solo mid tasks (costmodel.hpp).
    const int depth = han_->ladder_for(*comm_, cfg).depth();
    if (depth > 2) {
      return bcast_ladder_model_cost(bcast_costs(cfg), mid_costs(cfg),
                                     depth, u, cfg.window);
    }
    return bcast_model_cost(bcast_costs(cfg), u, cfg.window);
  }
  if (kind == CollKind::ReduceScatter) {
    core::Hierarchy& hc = han_->flat_hierarchy(*comm_);
    return reduce_scatter_model_cost(reduce_scatter_costs(cfg), cfg,
                                     msg_bytes, hc.node_count(),
                                     hc.max_ppn(), cfg.window);
  }
  HAN_ASSERT(kind == CollKind::Allreduce);
  const int depth = han_->ladder_for(*comm_, cfg).depth();
  if (depth > 2) {
    return allreduce_ladder_model_cost(allreduce_costs(cfg), mid_costs(cfg),
                                       depth, u, cfg.window);
  }
  return allreduce_model_cost(allreduce_costs(cfg), u, cfg.window);
}

}  // namespace han::tune

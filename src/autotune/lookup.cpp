#include "autotune/lookup.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "simbase/assert.hpp"

namespace han::tune {

namespace {

coll::CollKind parse_kind(const std::string& s, bool* ok) {
  *ok = true;
  if (s == "bcast") return coll::CollKind::Bcast;
  if (s == "reduce") return coll::CollKind::Reduce;
  if (s == "allreduce") return coll::CollKind::Allreduce;
  if (s == "gather") return coll::CollKind::Gather;
  if (s == "scatter") return coll::CollKind::Scatter;
  if (s == "allgather") return coll::CollKind::Allgather;
  if (s == "barrier") return coll::CollKind::Barrier;
  if (s == "reduce_scatter") return coll::CollKind::ReduceScatter;
  *ok = false;
  return coll::CollKind::Bcast;
}

}  // namespace

int LookupTable::bucket_of(std::size_t bytes) {
  int b = 0;
  std::size_t v = bytes == 0 ? 1 : bytes;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

void LookupTable::insert(coll::CollKind kind, int nodes, int ppn,
                         std::size_t bytes, const core::HanConfig& cfg) {
  entries_[Key{kind, nodes, ppn, bucket_of(bytes)}] = cfg;
}

const core::HanConfig* LookupTable::find(coll::CollKind kind, int nodes,
                                         int ppn, std::size_t bytes) const {
  auto it = entries_.find(Key{kind, nodes, ppn, bucket_of(bytes)});
  return it == entries_.end() ? nullptr : &it->second;
}

core::HanConfig LookupTable::decide(coll::CollKind kind, int nodes, int ppn,
                                    std::size_t bytes) const {
  if (const core::HanConfig* exact = find(kind, nodes, ppn, bytes)) {
    return *exact;
  }
  // Nearest tuned bucket: prefer the same (n, p) shape with the closest
  // message bucket; otherwise the entry minimizing a shape+size distance.
  const int want = bucket_of(bytes);
  const core::HanConfig* best = nullptr;
  double best_dist = 0.0;
  for (const auto& [key, cfg] : entries_) {
    if (key.kind != kind) continue;
    const double shape_penalty =
        (key.nodes == nodes ? 0.0 : 64.0 + std::abs(std::log2(
                                               double(key.nodes) / nodes))) +
        (key.ppn == ppn ? 0.0 : 64.0 + std::abs(std::log2(
                                           double(key.ppn) / ppn)));
    const double dist = std::abs(key.log2_bytes - want) + shape_penalty;
    if (best == nullptr || dist < best_dist) {
      best = &cfg;
      best_dist = dist;
    }
  }
  if (best != nullptr) return *best;
  return core::HanModule::default_config(kind, nodes, ppn, bytes);
}

core::HanModule::Decider LookupTable::decider() const {
  return [table = *this](coll::CollKind kind, int nodes, int ppn,
                         std::size_t bytes) {
    return table.decide(kind, nodes, ppn, bytes);
  };
}

std::string LookupTable::serialize() const {
  std::string out = "# HAN autotuning lookup table\n";
  out += "# kind nodes ppn log2_bytes : config\n";
  out += "version " + std::to_string(kFormatVersion) + "\n";
  for (const auto& [key, cfg] : entries_) {
    char line[64];
    std::snprintf(line, sizeof(line), "%s %d %d %d : ",
                  coll::coll_kind_name(key.kind), key.nodes, key.ppn,
                  key.log2_bytes);
    out += line;
    out += cfg.to_string();
    out += '\n';
  }
  return out;
}

bool LookupTable::deserialize(const std::string& text, LookupTable* out) {
  LookupTable table;
  std::istringstream in(text);
  std::string line;
  bool saw_entry = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Optional "version N" header (first non-comment line). Version-less
    // files are the v1 seed format — their configs carry no synthesized
    // schedules, so they parse unchanged. Later formats are rejected
    // rather than misread.
    if (!saw_entry && line.compare(0, 8, "version ") == 0) {
      std::istringstream vs(line.substr(8));
      int v = 0;
      if (!(vs >> v) || v < 1 || v > kFormatVersion) return false;
      std::string trailing;
      if (vs >> trailing) return false;
      saw_entry = true;
      continue;
    }
    saw_entry = true;
    std::istringstream ls(line);
    std::string kind_s, colon;
    int nodes = 0, ppn = 0, log2b = 0;
    if (!(ls >> kind_s >> nodes >> ppn >> log2b >> colon) || colon != ":") {
      return false;
    }
    bool ok = false;
    const coll::CollKind kind = parse_kind(kind_s, &ok);
    if (!ok || nodes <= 0 || ppn <= 0 || log2b < 0) return false;
    std::string rest;
    std::getline(ls, rest);
    // Trim the leading space after ':'.
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    core::HanConfig cfg;
    if (!core::HanConfig::parse(rest, &cfg)) return false;
    table.entries_[Key{kind, nodes, ppn, log2b}] = cfg;
  }
  *out = std::move(table);
  return true;
}

bool LookupTable::save(const std::string& path) const {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "LookupTable::save: cannot open '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  out << serialize();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "LookupTable::save: write to '%s' failed: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

std::optional<LookupTable> LookupTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  LookupTable table;
  if (!deserialize(buf.str(), &table)) return std::nullopt;
  return table;
}

}  // namespace han::tune

#include "coll/tree_module.hpp"

#include <algorithm>

#include "coll/ring/ring_builders.hpp"

namespace han::coll {

BuildSpec TreeCollModule::resolve(const CollConfig& cfg,
                                  std::span<const Algorithm> algs, int root,
                                  std::size_t bytes,
                                  mpi::Datatype dtype) const {
  BuildSpec spec;
  spec.alg = params_.default_alg;
  if (cfg.alg != Algorithm::Default &&
      std::find(algs.begin(), algs.end(), cfg.alg) != algs.end()) {
    spec.alg = cfg.alg;
  }
  spec.root = root;
  spec.bytes = bytes;
  spec.segment = 0;
  if (params_.segmentation) {
    spec.segment = cfg.segment != 0 ? cfg.segment : params_.default_segment;
  }
  spec.dtype = dtype;
  spec.avx = params_.avx_reduce;
  spec.action_pre_delay = params_.action_pre_delay;
  spec.op_setup = params_.op_setup;
  spec.rail = cfg.rail;
  return spec;
}

mpi::Request TreeCollModule::ibcast(const mpi::Comm& comm, int me, int root,
                                    mpi::BufView buf, mpi::Datatype dtype,
                                    const CollConfig& cfg) {
  const BuildSpec spec =
      resolve(cfg, params_.bcast_algs, root, buf.bytes, dtype);
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_tree_bcast(n, spec); }, {buf});
}

mpi::Request TreeCollModule::ireduce(const mpi::Comm& comm, int me, int root,
                                     mpi::BufView send, mpi::BufView recv,
                                     mpi::Datatype dtype, mpi::ReduceOp op,
                                     const CollConfig& cfg) {
  BuildSpec spec = resolve(cfg, params_.reduce_algs, root, send.bytes, dtype);
  spec.op = op;
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_tree_reduce(n, spec); },
      {send, recv});
}

mpi::Request TreeCollModule::iallreduce(const mpi::Comm& comm, int me,
                                        mpi::BufView send, mpi::BufView recv,
                                        mpi::Datatype dtype, mpi::ReduceOp op,
                                        const CollConfig& cfg) {
  BuildSpec spec = resolve(cfg, params_.reduce_algs, 0, send.bytes, dtype);
  spec.op = op;
  const int n = comm.size();
  // Libnbc/ADAPT style: recursive doubling (their default for commutative
  // operations); algorithm choice only affects the rooted trees.
  return rt().start(
      comm, me, [n, spec] { return build_recdoub_allreduce(n, spec); },
      {send, recv});
}

mpi::Request TreeCollModule::igather(const mpi::Comm& comm, int me, int root,
                                     mpi::BufView send, mpi::BufView recv,
                                     const CollConfig& cfg) {
  BuildSpec spec = resolve(cfg, params_.bcast_algs, root, send.bytes,
                           mpi::Datatype::Byte);
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_linear_gather(n, spec); },
      {send, recv});
}

mpi::Request TreeCollModule::iscatter(const mpi::Comm& comm, int me, int root,
                                      mpi::BufView send, mpi::BufView recv,
                                      const CollConfig& cfg) {
  BuildSpec spec = resolve(cfg, params_.bcast_algs, root, recv.bytes,
                           mpi::Datatype::Byte);
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_linear_scatter(n, spec); },
      {send, recv});
}

mpi::Request TreeCollModule::iallgather(const mpi::Comm& comm, int me,
                                        mpi::BufView send, mpi::BufView recv,
                                        const CollConfig& cfg) {
  BuildSpec spec = resolve(cfg, params_.bcast_algs, 0, send.bytes,
                           mpi::Datatype::Byte);
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_ring_allgather(n, spec); },
      {send, recv});
}

mpi::Request TreeCollModule::ibarrier(const mpi::Comm& comm, int me) {
  BuildSpec spec;
  spec.action_pre_delay = params_.action_pre_delay;
  spec.op_setup = params_.op_setup;
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_dissemination_barrier(n, spec); },
      {mpi::BufView::timing_only(0)});
}

TreeModuleParams libnbc_params() {
  TreeModuleParams p;
  p.name = "libnbc";
  p.bcast_algs = {Algorithm::Binomial};
  p.reduce_algs = {Algorithm::Binomial};
  p.default_alg = Algorithm::Binomial;
  p.nonblocking = true;
  p.segmentation = false;  // Libnbc schedules operate on whole messages
  p.avx_reduce = false;    // paper §IV-A2: Libnbc reductions are scalar
  p.action_pre_delay = 0.25e-6;  // round-based progression cost
  p.op_setup = 0.5e-6;           // schedule construction
  return p;
}

TreeModuleParams adapt_params() {
  TreeModuleParams p;
  p.name = "adapt";
  p.bcast_algs = {Algorithm::Chain, Algorithm::Binary, Algorithm::Binomial};
  p.reduce_algs = {Algorithm::Chain, Algorithm::Binary, Algorithm::Binomial};
  p.default_alg = Algorithm::Binary;
  p.nonblocking = true;
  p.segmentation = true;           // the paper's ibs/irs
  p.default_segment = 64 << 10;
  p.avx_reduce = true;             // ADAPT vectorizes reductions
  p.action_pre_delay = 0.05e-6;    // event-driven: cheap progression
  p.op_setup = 1.2e-6;             // event machinery: costly setup
  return p;
}

}  // namespace han::coll

// ADAPT: the event-driven nonblocking collective module (paper ref [28]).
//
// ADAPT progresses collectives from communication-completion events, so
// segments flow with almost no progression cost, and it offers multiple
// tree shapes (chain, binary, binomial) plus internal segmentation — the
// paper's `ibalg`/`iralg`/`ibs`/`irs` tuning parameters. The event
// machinery costs setup time, which is why ADAPT lags on tiny messages.
// Its reduction kernels are AVX-vectorized (paper §IV-A2).
#pragma once

#include "coll/tree_module.hpp"

namespace han::coll {

class AdaptModule : public TreeCollModule {
 public:
  AdaptModule(mpi::SimWorld& world, CollRuntime& rt)
      : TreeCollModule(world, rt, adapt_params()) {}
};

}  // namespace han::coll

#include "coll/topology.hpp"

#include "simbase/assert.hpp"

namespace han::coll {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::Default: return "default";
    case Algorithm::Linear: return "linear";
    case Algorithm::Chain: return "chain";
    case Algorithm::Binary: return "binary";
    case Algorithm::Binomial: return "binomial";
    case Algorithm::RecursiveDoubling: return "recdoub";
    case Algorithm::Ring: return "ring";
  }
  return "?";
}

const char* coll_kind_name(CollKind k) {
  switch (k) {
    case CollKind::Bcast: return "bcast";
    case CollKind::Reduce: return "reduce";
    case CollKind::Allreduce: return "allreduce";
    case CollKind::Gather: return "gather";
    case CollKind::Scatter: return "scatter";
    case CollKind::Allgather: return "allgather";
    case CollKind::Barrier: return "barrier";
    case CollKind::ReduceScatter: return "reduce_scatter";
  }
  return "?";
}

TreeNode tree_node(Algorithm alg, int n, int vrank) {
  HAN_ASSERT(n > 0 && vrank >= 0 && vrank < n);
  TreeNode node;
  switch (alg) {
    case Algorithm::Linear:
      if (vrank == 0) {
        for (int c = 1; c < n; ++c) node.children.push_back(c);
      } else {
        node.parent = 0;
      }
      break;

    case Algorithm::Chain:
      if (vrank > 0) node.parent = vrank - 1;
      if (vrank + 1 < n) node.children.push_back(vrank + 1);
      break;

    case Algorithm::Binary:
      if (vrank > 0) node.parent = (vrank - 1) / 2;
      if (2 * vrank + 1 < n) node.children.push_back(2 * vrank + 1);
      if (2 * vrank + 2 < n) node.children.push_back(2 * vrank + 2);
      break;

    case Algorithm::Binomial: {
      // Parent: clear the lowest set bit. Children: vrank | (1 << k) for
      // every k below the lowest set bit (or below ceil(log2 n) for the
      // root), largest subtree first — the standard binomial send order.
      int low = 0;
      if (vrank == 0) {
        while ((1 << low) < n) ++low;
      } else {
        while (((vrank >> low) & 1) == 0) ++low;
        node.parent = vrank & (vrank - 1);
      }
      for (int k = low - 1; k >= 0; --k) {
        const int child = vrank | (1 << k);
        if (child < n && child != vrank) node.children.push_back(child);
      }
      break;
    }

    default:
      HAN_ASSERT_MSG(false, "algorithm has no tree shape");
  }
  return node;
}

}  // namespace han::coll

#include "coll/builders.hpp"

#include <algorithm>

#include "coll/topology.hpp"
#include "simbase/assert.hpp"

namespace han::coll {

namespace {

/// Apply the one-time per-rank setup cost: dep-free actions get it as a
/// pre_delay (they are the ones that start when the rank arrives).
void apply_setup(RankPlan& rp, sim::Time setup) {
  if (setup <= 0.0) return;
  for (Action& a : rp.actions) {
    if (a.deps.empty()) a.pre_delay += setup;
  }
}

void apply_setup(Plan& plan, sim::Time setup) {
  for (RankPlan& rp : plan.ranks) apply_setup(rp, setup);
}

void apply_action_delay(Plan& plan, sim::Time delay) {
  if (delay <= 0.0) return;
  for (RankPlan& rp : plan.ranks) {
    for (Action& a : rp.actions) a.pre_delay += delay;
  }
}

}  // namespace

namespace detail {

void finalize_plan(Plan& plan, const BuildSpec& spec) {
  plan.rail = spec.rail;
  apply_action_delay(plan, spec.action_pre_delay);
  apply_setup(plan, spec.op_setup);
}

}  // namespace detail

Segmenter::Segmenter(std::size_t bytes, std::size_t segment,
                     mpi::Datatype dtype)
    : bytes_(bytes) {
  const std::size_t elem = type_size(dtype);
  if (segment == 0 || segment >= bytes) {
    segment_ = bytes == 0 ? 1 : bytes;
    count_ = 1;
  } else {
    // Align to elements.
    segment_ = std::max(elem, segment - segment % elem);
    std::size_t n = (bytes + segment_ - 1) / segment_;
    if (n > kMaxInternalSegments) {
      // Coarsen to the cap (keeps flat-comm pipelines tractable; see
      // DESIGN.md "model scale" notes).
      segment_ = (bytes + kMaxInternalSegments - 1) / kMaxInternalSegments;
      segment_ += (elem - segment_ % elem) % elem;
      n = (bytes + segment_ - 1) / segment_;
    }
    count_ = static_cast<int>(n);
  }
  if (count_ == 0) count_ = 1;
}

std::size_t Segmenter::offset(int i) const {
  return static_cast<std::size_t>(i) * segment_;
}

std::size_t Segmenter::length(int i) const {
  const std::size_t off = offset(i);
  if (off >= bytes_) return 0;
  return std::min(segment_, bytes_ - off);
}

Plan build_tree_bcast(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/1);
  const Segmenter segs(spec.bytes, spec.segment, spec.dtype);

  for (int rank = 0; rank < comm_size; ++rank) {
    RankPlan& rp = plan.ranks[rank];
    const int vrank = to_vrank(rank, spec.root, comm_size);
    const TreeNode node = tree_node(spec.alg, comm_size, vrank);
    std::vector<int> recv_idx(segs.count(), -1);

    if (node.parent >= 0) {
      const int parent = from_vrank(node.parent, spec.root, comm_size);
      for (int i = 0; i < segs.count(); ++i) {
        recv_idx[i] = rp.add(
            recv_action(parent, i, segs.length(i), SlotRef{0, segs.offset(i)}));
      }
    }
    for (int i = 0; i < segs.count(); ++i) {
      for (int child_v : node.children) {
        const int child = from_vrank(child_v, spec.root, comm_size);
        Action send =
            send_action(child, i, segs.length(i), SlotRef{0, segs.offset(i)});
        if (recv_idx[i] >= 0) send.deps.push_back(dep(recv_idx[i]));
        rp.add(std::move(send));
      }
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

Plan build_tree_reduce(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/2);
  const Segmenter segs(spec.bytes, spec.segment, spec.dtype);

  for (int rank = 0; rank < comm_size; ++rank) {
    RankPlan& rp = plan.ranks[rank];
    const int vrank = to_vrank(rank, spec.root, comm_size);
    const TreeNode node = tree_node(spec.alg, comm_size, vrank);
    const bool is_root = vrank == 0;
    const bool leaf = node.children.empty();

    // Accumulator: recvbuf at the root, a temp elsewhere (non-root ranks
    // may not have a valid recvbuf, as in MPI). Leaves send straight from
    // their sendbuf — no accumulator at all.
    SlotRef acc{1, 0};
    int child_tmp_base = 0;
    if (!leaf) {
      if (!is_root) {
        rp.temp_slots.push_back(spec.bytes);  // accumulator temp
        acc = SlotRef{plan.num_user_slots, 0};
      }
      child_tmp_base = plan.num_user_slots + static_cast<int>(
          rp.temp_slots.size());
      for (std::size_t c = 0; c < node.children.size(); ++c) {
        rp.temp_slots.push_back(spec.bytes);
      }
    }

    for (int i = 0; i < segs.count(); ++i) {
      const std::size_t off = segs.offset(i);
      const std::size_t len = segs.length(i);
      int last = -1;  // chain of ops producing acc segment i

      if (!leaf) {
        last = rp.add(copy_action(len, SlotRef{0, off}, SlotRef{acc.slot, off}));
        for (std::size_t c = 0; c < node.children.size(); ++c) {
          const int child = from_vrank(node.children[c], spec.root, comm_size);
          const SlotRef tmp{child_tmp_base + static_cast<int>(c), off};
          const int rc = rp.add(recv_action(child, i, len, tmp));
          Action red = reduce_action(len, tmp, SlotRef{acc.slot, off}, spec.op,
                                     spec.dtype, spec.avx);
          red.deps.push_back(dep(rc));
          red.deps.push_back(dep(last));
          last = rp.add(std::move(red));
        }
      }
      if (!is_root) {
        const int parent = from_vrank(node.parent, spec.root, comm_size);
        const SlotRef src = leaf ? SlotRef{0, off} : SlotRef{acc.slot, off};
        Action send = send_action(parent, i, len, src);
        if (last >= 0) send.deps.push_back(dep(last));
        rp.add(std::move(send));
      }
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

Plan build_recdoub_allreduce(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/2);
  const int n = comm_size;
  int pow2 = 1;
  while (pow2 * 2 <= n) pow2 *= 2;
  const int rem = n - pow2;
  int steps = 0;
  while ((1 << steps) < pow2) ++steps;

  // Tags: 1 = fold-in, 2 = fold-out, 10+k = doubling step k.
  for (int rank = 0; rank < n; ++rank) {
    RankPlan& rp = plan.ranks[rank];
    rp.temp_slots.push_back(spec.bytes);  // partner receive buffer
    const SlotRef tmp{2, 0};
    const SlotRef acc{1, 0};

    const int init =
        rp.add(copy_action(spec.bytes, SlotRef{0, 0}, acc));
    int last = init;

    const bool extra = rank < 2 * rem && rank % 2 == 0;
    const bool folds = rank < 2 * rem && rank % 2 == 1;

    if (extra) {
      // Fold in to the odd neighbour; receive the final result back.
      Action send = send_action(rank + 1, 1, spec.bytes, acc);
      send.deps.push_back(dep(last));
      rp.add(std::move(send));
      rp.add(recv_action(rank + 1, 2, spec.bytes, acc));
      continue;
    }
    if (folds) {
      const int rc = rp.add(recv_action(rank - 1, 1, spec.bytes, tmp));
      Action red = reduce_action(spec.bytes, tmp, acc, spec.op, spec.dtype,
                                 spec.avx);
      red.deps.push_back(dep(rc));
      red.deps.push_back(dep(last));
      last = rp.add(std::move(red));
    }

    // Active group: vr < pow2.
    const int vr = rank < 2 * rem ? rank / 2 : rank - rem;
    for (int k = 0; k < steps; ++k) {
      const int partner_vr = vr ^ (1 << k);
      const int partner =
          partner_vr < rem ? partner_vr * 2 + 1 : partner_vr + rem;
      Action send = send_action(partner, 10 + k, spec.bytes, acc);
      send.deps.push_back(dep(last));
      rp.add(std::move(send));
      Action recv = recv_action(partner, 10 + k, spec.bytes, tmp);
      recv.deps.push_back(dep(last));  // tmp reuse across steps
      const int rc = rp.add(std::move(recv));
      Action red = reduce_action(spec.bytes, tmp, acc, spec.op, spec.dtype,
                                 spec.avx);
      red.deps.push_back(dep(rc));
      last = rp.add(std::move(red));
    }

    if (folds) {
      Action send = send_action(rank - 1, 2, spec.bytes, acc);
      send.deps.push_back(dep(last));
      rp.add(std::move(send));
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

Plan build_linear_gather(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/2);
  const std::size_t block = spec.bytes;
  for (int rank = 0; rank < comm_size; ++rank) {
    RankPlan& rp = plan.ranks[rank];
    if (rank == spec.root) {
      rp.add(copy_action(block, SlotRef{0, 0},
                         SlotRef{1, static_cast<std::size_t>(rank) * block}));
      for (int src = 0; src < comm_size; ++src) {
        if (src == spec.root) continue;
        rp.add(recv_action(src, src, block,
                           SlotRef{1, static_cast<std::size_t>(src) * block}));
      }
    } else {
      rp.add(send_action(spec.root, rank, block, SlotRef{0, 0}));
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

Plan build_linear_scatter(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/2);
  const std::size_t block = spec.bytes;
  for (int rank = 0; rank < comm_size; ++rank) {
    RankPlan& rp = plan.ranks[rank];
    if (rank == spec.root) {
      rp.add(copy_action(block,
                         SlotRef{0, static_cast<std::size_t>(rank) * block},
                         SlotRef{1, 0}));
      for (int dst = 0; dst < comm_size; ++dst) {
        if (dst == spec.root) continue;
        rp.add(send_action(dst, dst, block,
                           SlotRef{0, static_cast<std::size_t>(dst) * block}));
      }
    } else {
      rp.add(recv_action(spec.root, rank, block, SlotRef{1, 0}));
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

Plan build_dissemination_barrier(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/1);
  const int n = comm_size;
  for (int r = 0; r < n; ++r) {
    RankPlan& rp = plan.ranks[r];
    int prev = -1;
    for (int k = 0, dist = 1; dist < n; ++k, dist *= 2) {
      Action send = send_action((r + dist) % n, k, 0, SlotRef{0, 0});
      if (prev >= 0) send.deps.push_back(dep(prev));
      rp.add(std::move(send));
      Action recv = recv_action((r - dist + n) % n, k, 0, SlotRef{0, 0});
      if (prev >= 0) recv.deps.push_back(dep(prev));
      prev = rp.add(std::move(recv));
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

}  // namespace coll

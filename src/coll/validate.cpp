#include "coll/validate.hpp"

#include <vector>

namespace han::coll {

namespace {

std::string node_name(int rank, int action) {
  return "rank " + std::to_string(rank) + " action " + std::to_string(action);
}

bool uses_src(Action::Kind k) {
  switch (k) {
    case Action::Kind::Send:
    case Action::Kind::Copy:
    case Action::Kind::Reduce:
    case Action::Kind::CrossCopy:
    case Action::Kind::CrossReduce:
      return true;
    default:
      return false;
  }
}

bool uses_dst(Action::Kind k) {
  switch (k) {
    case Action::Kind::Recv:
    case Action::Kind::Copy:
    case Action::Kind::Reduce:
    case Action::Kind::CrossCopy:
    case Action::Kind::CrossReduce:
      return true;
    default:
      return false;
  }
}

bool uses_peer(Action::Kind k) {
  switch (k) {
    case Action::Kind::Send:
    case Action::Kind::Recv:
    case Action::Kind::CrossCopy:
    case Action::Kind::CrossReduce:
      return true;
    default:
      return false;
  }
}

/// Check one slot reference against the owning rank's slot table. Only
/// temp-slot extents are knowable here (user buffers bind at start()).
std::string check_slot(const Plan& plan, int owner, const SlotRef& ref,
                       std::size_t bytes, const std::string& where) {
  const std::size_t temps = plan.ranks[owner].temp_slots.size();
  const std::size_t total =
      static_cast<std::size_t>(plan.num_user_slots) + temps;
  if (ref.slot < 0 || static_cast<std::size_t>(ref.slot) >= total) {
    return where + " references slot " + std::to_string(ref.slot) +
           " but rank " + std::to_string(owner) + " has " +
           std::to_string(total) + " slots";
  }
  if (ref.slot >= plan.num_user_slots) {
    const std::size_t size =
        plan.ranks[owner]
            .temp_slots[static_cast<std::size_t>(ref.slot) -
                        static_cast<std::size_t>(plan.num_user_slots)];
    if (ref.offset + bytes > size) {
      return where + " overruns temp slot " + std::to_string(ref.slot) +
             " (" + std::to_string(ref.offset) + " + " +
             std::to_string(bytes) + " > " + std::to_string(size) + ")";
    }
  }
  return "";
}

}  // namespace

std::string validate_plan(const Plan& plan, int comm_size) {
  const int n = static_cast<int>(plan.ranks.size());
  if (n != comm_size) {
    return "plan has " + std::to_string(n) + " rank plans for a size-" +
           std::to_string(comm_size) + " communicator";
  }
  if (plan.num_user_slots < 0) {
    return "negative num_user_slots " + std::to_string(plan.num_user_slots);
  }

  // Flatten (rank, action) to one node id for the global cycle check.
  std::vector<int> base(n + 1, 0);
  for (int r = 0; r < n; ++r) {
    base[r + 1] = base[r] + static_cast<int>(plan.ranks[r].actions.size());
  }
  const int total = base[n];
  std::vector<int> indegree(total, 0);
  std::vector<std::vector<int>> dependents(total);

  for (int r = 0; r < n; ++r) {
    const auto& actions = plan.ranks[r].actions;
    for (int a = 0; a < static_cast<int>(actions.size()); ++a) {
      const Action& act = actions[a];
      const std::string who = node_name(r, a);
      if (act.tag < 0) {
        return who + " has negative tag " + std::to_string(act.tag);
      }
      if (uses_peer(act.kind) && (act.peer < 0 || act.peer >= n)) {
        return who + " peers with out-of-range rank " +
               std::to_string(act.peer);
      }
      // Cross* actions read the *peer's* src slot; everything else its own.
      const bool cross = act.kind == Action::Kind::CrossCopy ||
                         act.kind == Action::Kind::CrossReduce;
      if (uses_src(act.kind)) {
        const int owner = cross ? act.peer : r;
        std::string err =
            check_slot(plan, owner, act.src, act.bytes, who + " src");
        if (!err.empty()) return err;
      }
      if (uses_dst(act.kind)) {
        std::string err = check_slot(plan, r, act.dst, act.bytes, who + " dst");
        if (!err.empty()) return err;
      }
      for (const DepRef& d : act.deps) {
        const int dr = d.rank == DepRef::kSameRank ? r : d.rank;
        if (dr < 0 || dr >= n) {
          return who + " depends on out-of-range rank " +
                 std::to_string(d.rank);
        }
        const int dn = static_cast<int>(plan.ranks[dr].actions.size());
        if (d.action < 0 || d.action >= dn) {
          return who + " depends on out-of-range action " +
                 std::to_string(d.action) + " of rank " + std::to_string(dr);
        }
        if (dr == r && d.action == a) return who + " depends on itself";
        if (d.latency < 0.0) return who + " has a negative dep latency";
        const int from = base[dr] + d.action;
        dependents[from].push_back(base[r] + a);
        ++indegree[base[r] + a];
      }
    }
  }

  // Kahn over the whole multi-rank DAG: every action must be reachable
  // from the dep-free set, or some subset deadlocks at runtime.
  std::vector<int> ready;
  for (int i = 0; i < total; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  int visited = 0;
  while (!ready.empty()) {
    const int i = ready.back();
    ready.pop_back();
    ++visited;
    for (int j : dependents[i]) {
      if (--indegree[j] == 0) ready.push_back(j);
    }
  }
  if (visited != total) {
    return "dependency cycle among " + std::to_string(total - visited) +
           " of " + std::to_string(total) + " actions";
  }
  return "";
}

}  // namespace han::coll

#include "coll/sm/sm.hpp"

#include "coll/topology.hpp"
#include "machine/effcurve.hpp"

namespace han::coll {

namespace {

constexpr sim::Time kSmSetup = 0.3e-6;  // shm segment reservation
// Fraction of copy-out bytes that reach DRAM (the rest is L3-served).
constexpr double kBcastBusFactor = 0.35;

const machine::EffCurve& sm_curve() {
  // Fragment-pipeline efficiency: near-full rate while a fragment batch
  // fits the shm slots, decaying as large messages serialize through them.
  static const machine::EffCurve curve({
      {8 << 10, 0.95},
      {64 << 10, 0.85},
      {256 << 10, 0.76},
      {1 << 20, 0.70},
      {8 << 20, 0.66},
  });
  return curve;
}

}  // namespace

double SmModule::copy_efficiency(std::size_t bytes) {
  return sm_curve().at(bytes);
}

mpi::Request SmModule::ibcast(const mpi::Comm& comm, int me, int root,
                              mpi::BufView buf, mpi::Datatype /*dtype*/,
                              const CollConfig& /*cfg*/) {
  const int n = comm.size();
  const std::size_t bytes = buf.bytes;
  const double core = world().profile().core_copy_bandwidth;
  const sim::Time flag = world().profile().shm_latency;
  auto build = [n, root, bytes, core, flag] {
    Plan plan(n, /*user_slots=*/1);
    const double cap = core * copy_efficiency(bytes);
    // Root stages the message into the shared buffer; every reader copies
    // out after the flag propagates.
    RankPlan& rp = plan.ranks[root];
    rp.temp_slots.push_back(bytes);
    Action stage = copy_action(bytes, SlotRef{0, 0}, SlotRef{1, 0}, cap);
    stage.pre_delay = kSmSetup;
    const int stage_idx = rp.add(std::move(stage));
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      Action out = cross_copy_action(root, bytes, SlotRef{1, 0},
                                     SlotRef{0, 0}, cap, kBcastBusFactor);
      out.pre_delay = kSmSetup;
      out.deps.push_back(cross_dep(root, stage_idx, flag));
      plan.ranks[r].add(std::move(out));
    }
    return plan;
  };
  return rt().start(comm, me, build, {buf});
}

mpi::Request SmModule::ireduce(const mpi::Comm& comm, int me, int root,
                               mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype, mpi::ReduceOp op,
                               const CollConfig& /*cfg*/) {
  const int n = comm.size();
  const std::size_t bytes = send.bytes;
  const double core = world().profile().core_copy_bandwidth;
  const sim::Time flag = world().profile().shm_latency;
  auto build = [n, root, bytes, core, flag, dtype, op] {
    Plan plan(n, /*user_slots=*/2);
    const double cap = core * copy_efficiency(bytes);

    // Binomial reduction tree over the node. Every rank with a parent
    // publishes its (partial) result into shm; parents reduce children's
    // shm windows with scalar arithmetic (coll/sm has no AVX kernels).
    // Action layout per rank: [init?][reduce per child...][publish?]
    struct Layout {
      int acc_slot = -1;       // accumulator slot (root: 1)
      int publish_idx = -1;    // index of the publish action
      int publish_slot = -1;   // slot parents read
    };
    std::vector<Layout> layout(n);
    std::vector<TreeNode> nodes(n);
    for (int r = 0; r < n; ++r) {
      nodes[r] = tree_node(Algorithm::Binomial, n, to_vrank(r, root, n));
    }

    // First pass: initialize accumulators.
    for (int r = 0; r < n; ++r) {
      RankPlan& rp = plan.ranks[r];
      const bool leaf = nodes[r].children.empty();
      if (!leaf || r == root) {  // root always materializes recvbuf
        if (r == root) {
          layout[r].acc_slot = 1;
        } else {
          rp.temp_slots.push_back(bytes);
          layout[r].acc_slot = 2;
        }
        Action init = copy_action(bytes, SlotRef{0, 0},
                                  SlotRef{layout[r].acc_slot, 0}, cap);
        init.pre_delay = kSmSetup;
        rp.add(std::move(init));
      }
    }

    // Second pass (children before parents in vrank order is not needed:
    // we wire dependencies explicitly). Process ranks by decreasing vrank
    // so a parent's reduce can reference its child's publish index.
    std::vector<int> by_vrank(n);
    for (int r = 0; r < n; ++r) by_vrank[to_vrank(r, root, n)] = r;
    for (int v = n - 1; v >= 0; --v) {
      const int r = by_vrank[v];
      RankPlan& rp = plan.ranks[r];
      const bool leaf = nodes[r].children.empty();
      int last = leaf ? -1 : 0;  // init action index (0 for non-leaves)

      for (int child_v : nodes[r].children) {
        const int child = by_vrank[child_v];
        Action red = cross_reduce_action(
            child, bytes, SlotRef{layout[child].publish_slot, 0},
            SlotRef{layout[r].acc_slot, 0}, op, dtype, /*avx=*/false);
        red.deps.push_back(cross_dep(child, layout[child].publish_idx, flag));
        if (last >= 0) red.deps.push_back(dep(last));
        last = rp.add(std::move(red));
      }

      if (v != 0) {
        // Publish our contribution (leaf: raw sendbuf; internal: acc).
        const int src_slot = leaf ? 0 : layout[r].acc_slot;
        const int stage_slot =
            static_cast<int>(plan.num_user_slots + rp.temp_slots.size());
        rp.temp_slots.push_back(bytes);
        Action pub =
            copy_action(bytes, SlotRef{src_slot, 0}, SlotRef{stage_slot, 0},
                        cap);
        if (leaf) pub.pre_delay = kSmSetup;
        if (last >= 0) pub.deps.push_back(dep(last));
        layout[r].publish_idx = rp.add(std::move(pub));
        layout[r].publish_slot = stage_slot;
      }
    }
    return plan;
  };
  return rt().start(comm, me, build, {send, recv});
}

mpi::Request SmModule::iallreduce(const mpi::Comm& comm, int me,
                                  mpi::BufView send, mpi::BufView recv,
                                  mpi::Datatype dtype, mpi::ReduceOp op,
                                  const CollConfig& cfg) {
  // coll/sm composes allreduce as reduce-to-0 followed by bcast-from-0.
  // Each rank enters the bcast only after its own reduce part completes, so
  // root never stages stale data.
  mpi::Request gate = mpi::make_request(world().engine());
  mpi::Request red = ireduce(comm, me, /*root=*/0, send, recv, dtype, op, cfg);
  red->on_complete([this, &comm, me, recv, dtype, cfg, gate] {
    mpi::Request bc = ibcast(comm, me, /*root=*/0, recv, dtype, cfg);
    bc->on_complete([gate] { gate->complete(); });
  });
  return gate;
}

mpi::Request SmModule::ibarrier(const mpi::Comm& comm, int me) {
  // Flag-based dissemination through shm: modeled as zero-byte cross
  // signalling with one flag hop per round.
  const int n = comm.size();
  const sim::Time flag = world().profile().shm_latency;
  auto build = [n, flag] {
    Plan plan(n, /*user_slots=*/1);
    // Action 0 on every rank is an arrival marker; round k (action k+1)
    // waits on our own round k-1 and on rank (r - 2^k)'s round k-1 marker
    // (one flag hop). After ceil(log2 n) rounds every rank transitively
    // depends on every arrival marker — the dissemination property.
    for (int r = 0; r < n; ++r) plan.ranks[r].add(Action{});
    for (int k = 0, dist = 1; dist < n; ++k, dist *= 2) {
      for (int r = 0; r < n; ++r) {
        Action a;  // Noop by default
        a.deps.push_back(dep(k));
        a.deps.push_back(cross_dep((r - dist + n) % n, k, flag));
        plan.ranks[r].add(std::move(a));
      }
    }
    return plan;
  };
  return rt().start(comm, me, build, {mpi::BufView::timing_only(0)});
}

}  // namespace han::coll

// SM: the shared-memory intra-node collective module.
//
// Open MPI's coll/sm exchanges data through a flag-synchronized shared
// buffer: the sender copies fragments in, readers poll flags and copy out.
// We model the fragment pipeline's large-message penalty as an efficiency
// curve on the copy rate (small fragments serialize through a few shm
// slots) and the flag signalling as cross-rank dependency latency. Copy-out
// traffic is mostly L3-served (every reader hits the same hot fragment), so
// it charges the memory bus at a discounted factor.
//
// Behaviour the paper relies on (§III): SM has excellent small-message
// latency but loses to SOLO as segments grow; its reductions are scalar
// (no AVX), which is why HAN's tuner avoids SM/Libnbc allreduce being
// competitive with vendor MPIs on small messages (§IV-A2).
#pragma once

#include "coll/module.hpp"

namespace han::coll {

class SmModule : public CollModule {
 public:
  using CollModule::CollModule;

  std::string_view name() const override { return "sm"; }
  bool intra_node_only() const override { return true; }
  bool nonblocking_capable() const override { return false; }

  std::vector<Algorithm> bcast_algorithms() const override {
    return {Algorithm::Linear};  // flag-synced star; no algorithm choice
  }

  mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                      mpi::BufView buf, mpi::Datatype dtype,
                      const CollConfig& cfg) override;
  mpi::Request ireduce(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const CollConfig& cfg) override;
  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, const CollConfig& cfg) override;
  mpi::Request ibarrier(const mpi::Comm& comm, int me) override;

  /// Copy-rate efficiency of the shm fragment pipeline at `bytes`.
  static double copy_efficiency(std::size_t bytes);
};

}  // namespace han::coll

// Plan builders for the classic collective algorithms.
//
// These are the fine-grained algorithms the submodules (tuned, Libnbc,
// ADAPT) assemble into MPI collectives: segmented tree broadcast/reduce,
// recursive-doubling allreduce, linear gather/scatter, and a dissemination
// barrier. The ring-pattern family is in coll/ring/ring_builders.hpp.
// Builders are pure: Plan in, Plan out, no simulator state.
#pragma once

#include "coll/plan.hpp"
#include "coll/types.hpp"

namespace han::coll {

/// Shared parameters of a plan build.
struct BuildSpec {
  Algorithm alg = Algorithm::Binomial;
  int root = 0;
  std::size_t bytes = 0;
  std::size_t segment = 0;  // 0 (or >= bytes) → single segment
  mpi::Datatype dtype = mpi::Datatype::Byte;
  mpi::ReduceOp op = mpi::ReduceOp::Sum;
  bool avx = false;            // reduction arithmetic rate class
  sim::Time action_pre_delay = 0.0;  // per-action progression cost (Libnbc)
  sim::Time op_setup = 0.0;    // one-time per-rank setup (ADAPT machinery)
  int rail = -1;  // fabric rail for the plan's sends; -1 = machine policy
};

/// Message segmentation helper. Segment byte counts are aligned to the
/// datatype size; the segment count is capped (kMaxInternalSegments) so
/// flat-communicator pipelines on thousands of ranks stay tractable.
class Segmenter {
 public:
  static constexpr int kMaxInternalSegments = 256;

  Segmenter(std::size_t bytes, std::size_t segment, mpi::Datatype dtype);

  int count() const { return count_; }
  std::size_t offset(int i) const;
  std::size_t length(int i) const;

 private:
  std::size_t bytes_;
  std::size_t segment_;
  int count_;
};

/// Rooted broadcast over a Linear/Chain/Binary/Binomial tree, segmented.
/// Slots: 0 = the user buffer on every rank.
Plan build_tree_bcast(int comm_size, const BuildSpec& spec);

/// Rooted reduction over a tree, segmented. Slots: 0 = sendbuf,
/// 1 = recvbuf (significant at the root). Reduction order over children is
/// fixed (deterministic for non-associative datatypes).
Plan build_tree_reduce(int comm_size, const BuildSpec& spec);

/// Allreduce via recursive doubling (handles non-power-of-two sizes with
/// the standard fold-in/fold-out pre/post steps). Slots: 0 = sendbuf,
/// 1 = recvbuf.
Plan build_recdoub_allreduce(int comm_size, const BuildSpec& spec);

/// Rooted gather, linear (root receives from everyone). Slots:
/// 0 = sendbuf (`bytes` per rank), 1 = recvbuf (`bytes * comm_size`,
/// significant at the root).
Plan build_linear_gather(int comm_size, const BuildSpec& spec);

/// Rooted scatter, linear. Slots: 0 = sendbuf (`bytes * comm_size` at the
/// root), 1 = recvbuf (`bytes` per rank).
Plan build_linear_scatter(int comm_size, const BuildSpec& spec);

/// Dissemination barrier (ceil(log2 n) rounds of zero-byte messages).
Plan build_dissemination_barrier(int comm_size, const BuildSpec& spec);

// The ring-pattern family (ring reduce-scatter, ring allgather, ring
// allreduce) lives in coll/ring/ring_builders.hpp.

namespace detail {

/// Apply BuildSpec's per-action pre-delay and one-time per-rank setup cost
/// to a finished plan (shared by the tree and ring builder families).
void finalize_plan(Plan& plan, const BuildSpec& spec);

}  // namespace detail

}  // namespace han::coll

// CollRuntime: executes collective Plans over the simulated MPI substrate.
//
// MPI semantics are preserved: each rank independently *starts* its part of
// a collective (ranks arrive at different times — this is what makes the
// paper's delayed-start task benchmarks expressible), instances on a
// communicator are matched by per-rank call order, and a rank's request
// completes when its own actions finish (not when the whole collective
// does), exactly like Open MPI.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coll/plan.hpp"
#include "simbase/trace.hpp"
#include "simmpi/world.hpp"

namespace han::coll {

class CollRuntime {
 public:
  explicit CollRuntime(mpi::SimWorld& world);
  ~CollRuntime();
  CollRuntime(const CollRuntime&) = delete;
  CollRuntime& operator=(const CollRuntime&) = delete;

  /// Rank `comm_rank` of `comm` starts its part of the next collective in
  /// its call order. The Plan is built once per instance, by the first
  /// arriving rank's `build`; user buffers bind to plan slots
  /// [0, num_user_slots).
  mpi::Request start(const mpi::Comm& comm, int comm_rank,
                     const std::function<Plan()>& build,
                     std::vector<mpi::BufView> user_bufs);

  mpi::SimWorld& world() { return *world_; }

  /// Live collective instances (diagnostics; 0 when quiescent).
  std::size_t live_instances() const { return instances_.size(); }

  /// Attach a tracer: every executed action emits a (rank, kind, bytes)
  /// span, grouped under the rank's simulated node. Pass nullptr to detach.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  sim::Tracer* tracer() const { return tracer_; }

  /// Install an extra pre-execution plan check, run on every freshly
  /// built Plan right after the structural validate_plan(). Returns "" to
  /// accept or a diagnostic to abort on (HAN_ASSERT with the message).
  /// han::verify::arm_plan_gate() installs its semantic analyzer here —
  /// dependency injection keeps coll/ below verify/ in the layer order.
  using PlanChecker = std::function<std::string(const Plan&, int comm_size)>;
  void set_plan_checker(PlanChecker checker) {
    plan_checker_ = std::move(checker);
  }

  /// Label a communicator context as a hierarchy level ("intra", "inter",
  /// ...). Actions on that context are accounted under
  /// `coll.level.<label>.*` instead of the default "flat" bucket; the
  /// level's in-flight gauge yields the paper's overlap ratio via
  /// mean_active. HanModule labels its sub-communicators automatically.
  void set_level_label(int context, const std::string& label);

 private:
  struct LevelStats {
    obs::Counter* actions = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* busy = nullptr;   // summed action-seconds
    obs::Gauge* inflight = nullptr;
  };
  struct KindStats {
    obs::Counter* actions = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* busy = nullptr;
  };

  LevelStats& make_level(const std::string& label);
  LevelStats* level_stats(int context);
  struct RankState {
    bool arrived = false;
    std::vector<mpi::BufView> user_bufs;
    std::vector<std::vector<std::byte>> temps;
    std::vector<int> deps_left;     // per action
    std::vector<char> launched;     // per action
    int actions_left = 0;
    mpi::Request req;
  };

  struct Instance {
    const mpi::Comm* comm = nullptr;
    std::uint64_t seq = 0;
    Plan plan;
    std::vector<RankState> ranks;
    // Reverse dependency edges: dependents[r][a] lists actions unblocked
    // by completion of action a on rank r.
    std::vector<std::vector<std::vector<DepRef>>> dependents;
    long total_actions_left = 0;
    int ranks_not_arrived = 0;
  };
  using InstancePtr = std::shared_ptr<Instance>;

  InstancePtr get_or_create(const mpi::Comm& comm, std::uint64_t seq,
                            const std::function<Plan()>& build);
  void arrive(const InstancePtr& inst, int rank,
              std::vector<mpi::BufView> user_bufs, mpi::Request req);
  void try_launch(const InstancePtr& inst, int rank, int action);
  void execute(const InstancePtr& inst, int rank, int action);
  void complete_action(const InstancePtr& inst, int rank, int action);
  mpi::BufView slot_view(Instance& inst, int rank, SlotRef ref,
                         std::size_t bytes) const;
  void maybe_retire(const InstancePtr& inst);
  /// Drop per-context state when its communicator is destroyed: the
  /// recycled context id would otherwise hand a fresh comm the stale call
  /// sequence and level label.
  void evict_context(int context);

  mpi::SimWorld* world_;
  sim::Tracer* tracer_ = nullptr;
  PlanChecker plan_checker_;
  int destroy_observer_ = -1;  // SimWorld comm-destroy observer token
  // Per-comm-context, per-comm-rank collective call counters.
  std::unordered_map<int, std::vector<std::uint64_t>> call_seq_;
  std::map<std::pair<int, std::uint64_t>, InstancePtr> instances_;
  // Observability (pointers into the world's registry; stable for life).
  KindStats kinds_[8];
  obs::Gauge* inflight_ = nullptr;
  obs::Histogram* action_seconds_ = nullptr;
  std::map<std::string, LevelStats> levels_;       // stable value addresses
  std::unordered_map<int, LevelStats*> level_of_;  // context -> level
};

}  // namespace han::coll

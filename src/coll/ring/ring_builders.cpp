#include "coll/ring/ring_builders.hpp"

#include <algorithm>
#include <functional>

#include "coll/topology.hpp"
#include "simbase/assert.hpp"

namespace han::coll {

namespace {

// Shared core of the contiguous and strided reduce-scatter builders.
// Chunk c lives at chunk_off(c) in slot 0 with length chunk_len(c); rank
// r's fully reduced chunk r lands in slot 1.
//
// Recv-reduce-send formulation: a rank's contribution to chunk c is folded
// in exactly once — when c's partial sum passes through — by reducing the
// slot-0 operand straight into the received buffer. No accumulator copy of
// the send buffer is ever made; the final step receives into slot 1
// directly, so the only temporaries are one landing chunk per intermediate
// step.
//
// Same chunk rotation as the allreduce reduce-scatter phase, shifted by
// one chunk so that after n-1 steps rank r owns its *own* chunk r. Each
// chunk is internally sliced (spec.segment): slice t is forwarded as soon
// as its reduce finishes, so transfers overlap reduces and the wave
// pipelines around the ring.
Plan ring_rs_plan(int n, const BuildSpec& spec,
                  const std::function<std::size_t(int)>& chunk_off,
                  const std::function<std::size_t(int)>& chunk_len) {
  Plan plan(n, /*user_slots=*/2);
  for (int r = 0; r < n; ++r) {
    RankPlan& rp = plan.ranks[r];
    if (n == 1) {
      rp.add(copy_action(chunk_len(0), SlotRef{0, chunk_off(0)},
                         SlotRef{1, 0}));
      continue;
    }
    const int right = (r + 1) % n;
    const int left = (r - 1 + n) % n;
    // Step s < n-2 receives chunk (r-s-2)%n into its own temp slot 2+s.
    for (int s = 0; s + 1 < n - 1; ++s) {
      rp.temp_slots.push_back(chunk_len((r - s - 2 + 2 * n) % n));
    }
    std::vector<int> last_reduce;  // step s-1's per-slice reduces
    for (int s = 0; s < n - 1; ++s) {
      const int send_c = (r - s - 1 + 2 * n) % n;
      const int recv_c = (r - s - 2 + 2 * n) % n;
      const Segmenter sseg(chunk_len(send_c), spec.segment, spec.dtype);
      const Segmenter rseg(chunk_len(recv_c), spec.segment, spec.dtype);
      const bool final_step = s == n - 2;
      for (int t = 0; t < sseg.count(); ++t) {
        // Step 0 forwards the rank's own contribution straight from the
        // send buffer; later steps forward the partial reduced last step.
        Action send = send_action(
            right, s * (Segmenter::kMaxInternalSegments + 1) + t,
            sseg.length(t),
            s == 0 ? SlotRef{0, chunk_off(send_c) + sseg.offset(t)}
                   : SlotRef{2 + (s - 1), sseg.offset(t)});
        if (s > 0) send.deps.push_back(dep(last_reduce[t]));
        rp.add(std::move(send));
      }
      std::vector<int> next(rseg.count());
      for (int t = 0; t < rseg.count(); ++t) {
        const SlotRef dst = final_step ? SlotRef{1, rseg.offset(t)}
                                       : SlotRef{2 + s, rseg.offset(t)};
        const int rc = rp.add(recv_action(
            left, s * (Segmenter::kMaxInternalSegments + 1) + t,
            rseg.length(t), dst));
        Action red = reduce_action(
            rseg.length(t), SlotRef{0, chunk_off(recv_c) + rseg.offset(t)},
            dst, spec.op, spec.dtype, spec.avx);
        red.deps.push_back(dep(rc));
        next[t] = rp.add(std::move(red));
      }
      last_reduce = std::move(next);
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

}  // namespace

Plan build_ring_reduce_scatter(int comm_size, const BuildSpec& spec) {
  const int n = comm_size;
  const std::size_t elem = type_size(spec.dtype);
  const std::size_t count = spec.bytes / elem;
  // Chunk c covers elements [c*count/n, (c+1)*count/n).
  return ring_rs_plan(
      n, spec, [=](int c) { return (count * c / n) * elem; },
      [=](int c) { return (count * (c + 1) / n - count * c / n) * elem; });
}

Plan build_ring_reduce_scatter_strided(int comm_size, const BuildSpec& spec,
                                       std::size_t chunk_stride,
                                       std::size_t chunk_bytes) {
  return ring_rs_plan(
      comm_size, spec, [=](int c) { return c * chunk_stride; },
      [=](int) { return chunk_bytes; });
}

Plan build_ring_allgather(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/2);
  const int n = comm_size;
  const std::size_t block = spec.bytes;
  for (int r = 0; r < n; ++r) {
    RankPlan& rp = plan.ranks[r];
    const int right = (r + 1) % n;
    const int left = (r - 1 + n) % n;
    const int init = rp.add(copy_action(
        block, SlotRef{0, 0}, SlotRef{1, static_cast<std::size_t>(r) * block}));
    int prev_recv = -1;
    for (int s = 0; s < n - 1; ++s) {
      const int send_b = (r - s + n) % n;
      const int recv_b = (r - s - 1 + n) % n;
      Action send = send_action(right, s, block,
                                SlotRef{1, static_cast<std::size_t>(send_b) *
                                               block});
      send.deps.push_back(dep(s == 0 ? init : prev_recv));
      rp.add(std::move(send));
      prev_recv = rp.add(recv_action(
          left, s, block,
          SlotRef{1, static_cast<std::size_t>(recv_b) * block}));
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

Plan build_ring_allreduce(int comm_size, const BuildSpec& spec) {
  Plan plan(comm_size, /*user_slots=*/2);
  const int n = comm_size;
  const std::size_t elem = type_size(spec.dtype);
  const std::size_t count = spec.bytes / elem;

  // Chunk c covers elements [c*count/n, (c+1)*count/n).
  auto chunk_off = [&](int c) { return (count * c / n) * elem; };
  auto chunk_len = [&](int c) {
    return (count * (c + 1) / n - count * c / n) * elem;
  };

  for (int r = 0; r < n; ++r) {
    RankPlan& rp = plan.ranks[r];
    rp.temp_slots.push_back(spec.bytes / std::max(1, n) + elem);  // step tmp
    const SlotRef acc{1, 0};
    const SlotRef tmp{2, 0};
    const int right = (r + 1) % n;
    const int left = (r - 1 + n) % n;

    int last = rp.add(copy_action(spec.bytes, SlotRef{0, 0}, acc));

    if (n == 1) continue;

    // Reduce-scatter: after step s, rank r has reduced chunk (r-s-1+n)%n
    // deeper by one contribution; after n-1 steps it owns chunk (r+1)%n.
    for (int s = 0; s < n - 1; ++s) {
      const int send_c = (r - s + n) % n;
      const int recv_c = (r - s - 1 + n) % n;
      Action send = send_action(right, s, chunk_len(send_c),
                                SlotRef{1, chunk_off(send_c)});
      send.deps.push_back(dep(last));
      rp.add(std::move(send));
      Action recv = recv_action(left, s, chunk_len(recv_c), tmp);
      recv.deps.push_back(dep(last));  // tmp reuse
      const int rc = rp.add(std::move(recv));
      Action red =
          reduce_action(chunk_len(recv_c), tmp, SlotRef{1, chunk_off(recv_c)},
                        spec.op, spec.dtype, spec.avx);
      red.deps.push_back(dep(rc));
      last = rp.add(std::move(red));
    }

    // Allgather: rank r starts by forwarding its completed chunk (r+1)%n.
    int prev_recv = -1;
    for (int s = 0; s < n - 1; ++s) {
      const int send_c = (r + 1 - s + n) % n;
      const int recv_c = (r - s + n) % n;
      Action send = send_action(right, 1000 + s, chunk_len(send_c),
                                SlotRef{1, chunk_off(send_c)});
      send.deps.push_back(dep(s == 0 ? last : prev_recv));
      rp.add(std::move(send));
      // Receives write distinct final chunks, but must not land before the
      // local reduce-scatter chain finishes writing acc — dep on `last`.
      Action recv = recv_action(left, 1000 + s, chunk_len(recv_c),
                                SlotRef{1, chunk_off(recv_c)});
      recv.deps.push_back(dep(last));
      prev_recv = rp.add(std::move(recv));
    }
  }
  detail::finalize_plan(plan, spec);
  return plan;
}

}  // namespace han::coll

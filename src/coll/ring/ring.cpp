#include "coll/ring/ring.hpp"

#include "coll/ring/ring_builders.hpp"
#include "simbase/assert.hpp"

namespace han::coll {

namespace {

// Ring neighbours are fixed, so setup is cheap (no tree construction);
// progression is event-driven like ADAPT's.
constexpr sim::Time kRingOpSetup = 0.8e-6;
constexpr sim::Time kRingActionDelay = 0.05e-6;
// Default pipelining slice for reduce-scatter (overridable via
// CollConfig::segment, the paper's irs knob).
constexpr std::size_t kRingDefaultSegment = 64 << 10;

void count_op(mpi::SimWorld& world, const char* op, std::size_t bytes) {
  world.metrics().counter(std::string("ring.") + op).add(1.0);
  world.metrics().counter("ring.bytes").add(static_cast<double>(bytes));
}

BuildSpec ring_spec(std::size_t bytes, mpi::Datatype dtype, mpi::ReduceOp op) {
  BuildSpec spec;
  spec.alg = Algorithm::Ring;
  spec.bytes = bytes;
  spec.dtype = dtype;
  spec.op = op;
  spec.avx = true;
  spec.action_pre_delay = kRingActionDelay;
  spec.op_setup = kRingOpSetup;
  return spec;
}

}  // namespace

RingModule::RingModule(mpi::SimWorld& world, CollRuntime& rt)
    : CollModule(world, rt) {}

mpi::Request RingModule::ireduce_scatter(const mpi::Comm& comm, int me,
                                         mpi::BufView send, mpi::BufView recv,
                                         mpi::Datatype dtype, mpi::ReduceOp op,
                                         const CollConfig& cfg) {
  HAN_ASSERT(send.bytes >= recv.bytes);
  count_op(world(), "reduce_scatter", send.bytes);
  BuildSpec spec = ring_spec(send.bytes, dtype, op);
  spec.segment = cfg.segment != 0 ? cfg.segment : kRingDefaultSegment;
  spec.rail = cfg.rail;
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_ring_reduce_scatter(n, spec); },
      {send, recv});
}

mpi::Request RingModule::ireduce_scatter_strided(
    const mpi::Comm& comm, int me, mpi::BufView send, mpi::BufView recv,
    std::size_t stride, mpi::Datatype dtype, mpi::ReduceOp op,
    const CollConfig& cfg) {
  const int n = comm.size();
  HAN_ASSERT(send.bytes >= (n - 1) * stride + recv.bytes);
  count_op(world(), "reduce_scatter_strided", send.bytes);
  BuildSpec spec = ring_spec(send.bytes, dtype, op);
  spec.segment = cfg.segment != 0 ? cfg.segment : kRingDefaultSegment;
  spec.rail = cfg.rail;
  const std::size_t len = recv.bytes;
  return rt().start(
      comm, me,
      [n, spec, stride, len] {
        return build_ring_reduce_scatter_strided(n, spec, stride, len);
      },
      {send, recv});
}

mpi::Request RingModule::iallgather(const mpi::Comm& comm, int me,
                                    mpi::BufView send, mpi::BufView recv,
                                    const CollConfig& cfg) {
  (void)cfg;
  count_op(world(), "allgather", send.bytes);
  const BuildSpec spec =
      ring_spec(send.bytes, mpi::Datatype::Byte, mpi::ReduceOp::Sum);
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_ring_allgather(n, spec); },
      {send, recv});
}

mpi::Request RingModule::iallreduce(const mpi::Comm& comm, int me,
                                    mpi::BufView send, mpi::BufView recv,
                                    mpi::Datatype dtype, mpi::ReduceOp op,
                                    const CollConfig& cfg) {
  (void)cfg;
  count_op(world(), "allreduce", send.bytes);
  const BuildSpec spec = ring_spec(send.bytes, dtype, op);
  const int n = comm.size();
  return rt().start(
      comm, me, [n, spec] { return build_ring_allreduce(n, spec); },
      {send, recv});
}

}  // namespace han::coll

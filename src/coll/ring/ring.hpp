// "ring": the ring-pattern collective module.
//
// HAN's inter-node submodules so far (Libnbc, ADAPT) are tree-shaped: their
// cost grows with the tree depth but every byte crosses the wire O(log n)
// or O(n) times. The ring module trades latency (n-1 steps) for bandwidth
// optimality (each rank sends exactly bytes/n per step), which wins for the
// large messages that dominate data-parallel training. Reduce-scatter and
// allgather are the primitives; allreduce is their composition.
#pragma once

#include "coll/module.hpp"

namespace han::coll {

class RingModule : public CollModule {
 public:
  RingModule(mpi::SimWorld& world, CollRuntime& rt);

  std::string_view name() const override { return "ring"; }
  bool nonblocking_capable() const override { return true; }
  bool reduce_uses_avx() const override { return true; }
  std::vector<Algorithm> bcast_algorithms() const override {
    return {Algorithm::Ring};
  }
  bool supports_segmentation() const override { return true; }

  mpi::Request ireduce_scatter(const mpi::Comm& comm, int me,
                               mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype, mpi::ReduceOp op,
                               const CollConfig& cfg) override;
  /// Reduce-scatter of the strided chunk set {send[c*stride ..
  /// +recv.bytes) : c in comm}: rank r receives the fully reduced chunk r
  /// in recv. HAN's hierarchical reduce-scatter uses this to ring one
  /// region slice between node leaders while the intra level reduces the
  /// next (CollConfig::segment pipelines within chunks as usual).
  mpi::Request ireduce_scatter_strided(const mpi::Comm& comm, int me,
                                       mpi::BufView send, mpi::BufView recv,
                                       std::size_t stride,
                                       mpi::Datatype dtype, mpi::ReduceOp op,
                                       const CollConfig& cfg);
  mpi::Request iallgather(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, const CollConfig& cfg) override;
  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, const CollConfig& cfg) override;
};

}  // namespace han::coll

// Plan builders for the ring-pattern collective family.
//
// Ring algorithms move data around a logical ring of the communicator in
// n-1 equal-chunk steps, making every step bandwidth-balanced: each rank
// sends and receives exactly bytes/n per step regardless of n. That makes
// them the bandwidth-optimal choice for large messages (SCCL's canonical
// building blocks): reduce-scatter and allgather are the primitives, and
// allreduce is their composition. Builders are pure: Plan in, Plan out, no
// simulator state.
#pragma once

#include "coll/builders.hpp"

namespace han::coll {

/// Reduce-scatter with equal blocks via a ring (n-1 steps of bytes/n).
/// Rank r ends up owning the fully reduced chunk r. Honours spec.segment:
/// chunks are sliced so transfers pipeline with reduces across steps.
/// Slots: 0 = sendbuf (`bytes`, comm_size chunks), 1 = recvbuf (rank's own
/// chunk).
Plan build_ring_reduce_scatter(int comm_size, const BuildSpec& spec);

/// Reduce-scatter over a *strided* chunk set: chunk c is the
/// `chunk_bytes`-long range at offset `c * chunk_stride` of slot 0, and
/// rank r ends up owning the fully reduced chunk r in slot 1. This is the
/// geometry HAN's hierarchical reduce-scatter pipelines on: slot 0 is a
/// node-leader's partially reduced vector and chunk c is one slice of node
/// c's region, so a slice's inter-node ring can run while the intra level
/// reduces the next slice. `spec.segment` pipelines within chunks as in
/// build_ring_reduce_scatter.
Plan build_ring_reduce_scatter_strided(int comm_size, const BuildSpec& spec,
                                       std::size_t chunk_stride,
                                       std::size_t chunk_bytes);

/// Allgather via ring. Slots: 0 = sendbuf (`bytes`), 1 = recvbuf
/// (`bytes * comm_size`).
Plan build_ring_allgather(int comm_size, const BuildSpec& spec);

/// Allreduce via ring reduce-scatter + ring allgather (bandwidth optimal;
/// 2(n-1) steps). Slots: 0 = sendbuf, 1 = recvbuf.
Plan build_ring_allreduce(int comm_size, const BuildSpec& spec);

}  // namespace han::coll

// ModuleSet: owns one instance of every collective submodule, mirroring
// Open MPI's component registry. HAN and the autotuner look modules up by
// the names used in the paper (libnbc, adapt, ring, sm, solo, tuned).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "coll/adapt/adapt.hpp"
#include "coll/libnbc/libnbc.hpp"
#include "coll/ring/ring.hpp"
#include "coll/sm/sm.hpp"
#include "coll/solo/solo.hpp"
#include "coll/tuned/tuned.hpp"

namespace han::coll {

class ModuleSet {
 public:
  ModuleSet(mpi::SimWorld& world, CollRuntime& rt)
      : tuned_(std::make_unique<TunedModule>(world, rt)),
        libnbc_(std::make_unique<LibnbcModule>(world, rt)),
        adapt_(std::make_unique<AdaptModule>(world, rt)),
        ring_(std::make_unique<RingModule>(world, rt)),
        sm_(std::make_unique<SmModule>(world, rt)),
        solo_(std::make_unique<SoloModule>(world, rt)) {}

  TunedModule& tuned() { return *tuned_; }
  LibnbcModule& libnbc() { return *libnbc_; }
  AdaptModule& adapt() { return *adapt_; }
  RingModule& ring() { return *ring_; }
  SmModule& sm() { return *sm_; }
  SoloModule& solo() { return *solo_; }

  /// Lookup by paper name; nullptr when unknown.
  CollModule* find(std::string_view name) {
    for (CollModule* m : all()) {
      if (m->name() == name) return m;
    }
    return nullptr;
  }

  std::vector<CollModule*> all() {
    return {tuned_.get(), libnbc_.get(), adapt_.get(), ring_.get(), sm_.get(),
            solo_.get()};
  }

  /// Modules usable at HAN's inter-node level (nonblocking-capable).
  std::vector<CollModule*> inter_modules() {
    return {libnbc_.get(), adapt_.get(), ring_.get()};
  }

  /// Modules usable at HAN's intra-node level.
  std::vector<CollModule*> intra_modules() {
    return {sm_.get(), solo_.get()};
  }

 private:
  std::unique_ptr<TunedModule> tuned_;
  std::unique_ptr<LibnbcModule> libnbc_;
  std::unique_ptr<AdaptModule> adapt_;
  std::unique_ptr<RingModule> ring_;
  std::unique_ptr<SmModule> sm_;
  std::unique_ptr<SoloModule> solo_;
};

}  // namespace han::coll

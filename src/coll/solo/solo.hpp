// SOLO: the experimental one-sided intra-node collective module.
//
// Open MPI's SOLO prototype exposes user buffers through MPI one-sided
// windows: peers read the source buffer directly (a single copy, no shm
// staging) and reductions use AVX kernels. The window synchronization
// epoch costs several microseconds per operation, which is why SM beats
// SOLO on small messages while SOLO "performs significantly better as the
// communication size increases" (paper §III).
#pragma once

#include "coll/module.hpp"

namespace han::coll {

class SoloModule : public CollModule {
 public:
  using CollModule::CollModule;

  std::string_view name() const override { return "solo"; }
  bool intra_node_only() const override { return true; }
  bool nonblocking_capable() const override { return false; }
  bool reduce_uses_avx() const override { return true; }

  std::vector<Algorithm> bcast_algorithms() const override {
    return {Algorithm::Linear};
  }

  mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                      mpi::BufView buf, mpi::Datatype dtype,
                      const CollConfig& cfg) override;
  mpi::Request ireduce(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const CollConfig& cfg) override;
  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, const CollConfig& cfg) override;

  /// Per-operation window synchronization cost (exposed for the
  /// autotuner's heuristics and for tests).
  static constexpr sim::Time window_sync_cost() { return 9.0e-6; }
};

}  // namespace han::coll

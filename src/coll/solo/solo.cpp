#include "coll/solo/solo.hpp"

#include "coll/topology.hpp"

namespace han::coll {

namespace {
// One-sided reads of a hot buffer are largely L3-served, like SM's
// copy-out, but with no intermediate staging copy.
constexpr double kSoloBusFactor = 0.35;
constexpr sim::Time kWindowPost = 0.5e-6;  // root-side epoch open
}  // namespace

mpi::Request SoloModule::ibcast(const mpi::Comm& comm, int me, int root,
                                mpi::BufView buf, mpi::Datatype /*dtype*/,
                                const CollConfig& /*cfg*/) {
  const int n = comm.size();
  const std::size_t bytes = buf.bytes;
  const double core = world().profile().core_copy_bandwidth;
  const sim::Time flag = world().profile().shm_latency;
  auto build = [n, root, bytes, core, flag] {
    Plan plan(n, /*user_slots=*/1);
    // Root opens the exposure epoch; everyone reads the root buffer
    // directly (one copy, full core rate — SOLO's large-message edge).
    Action post = compute_action(kWindowPost);
    post.pre_delay = window_sync_cost();
    const int post_idx = plan.ranks[root].add(std::move(post));
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      Action read = cross_copy_action(root, bytes, SlotRef{0, 0},
                                      SlotRef{0, 0}, core, kSoloBusFactor);
      read.pre_delay = window_sync_cost();
      read.deps.push_back(cross_dep(root, post_idx, flag));
      plan.ranks[r].add(std::move(read));
    }
    return plan;
  };
  return rt().start(comm, me, build, {buf});
}

mpi::Request SoloModule::ireduce(const mpi::Comm& comm, int me, int root,
                                 mpi::BufView send, mpi::BufView recv,
                                 mpi::Datatype dtype, mpi::ReduceOp op,
                                 const CollConfig& /*cfg*/) {
  const int n = comm.size();
  const std::size_t bytes = send.bytes;
  const double core = world().profile().core_copy_bandwidth;
  const sim::Time flag = world().profile().shm_latency;
  auto build = [n, root, bytes, core, flag, dtype, op] {
    Plan plan(n, /*user_slots=*/2);
    // Binomial tree of direct one-sided reads: a parent reduces each
    // child's exposed accumulator straight into its own, with AVX kernels
    // and no staging copies.
    struct Layout {
      int acc_slot = 0;     // slot parents read (leaf: raw sendbuf)
      int expose_idx = -1;  // action marking the accumulator as final
    };
    std::vector<Layout> layout(n);
    std::vector<TreeNode> nodes(n);
    std::vector<int> by_vrank(n);
    for (int r = 0; r < n; ++r) {
      nodes[r] = tree_node(Algorithm::Binomial, n, to_vrank(r, root, n));
      by_vrank[to_vrank(r, root, n)] = r;
    }

    for (int v = n - 1; v >= 0; --v) {
      const int r = by_vrank[v];
      RankPlan& rp = plan.ranks[r];
      const bool leaf = nodes[r].children.empty();
      int last = -1;
      if (!leaf || r == root) {
        // Materialize an accumulator: recvbuf at root, a temp elsewhere.
        if (r == root) {
          layout[r].acc_slot = 1;
        } else {
          layout[r].acc_slot = 2;
          rp.temp_slots.push_back(bytes);
        }
        Action init = copy_action(bytes, SlotRef{0, 0},
                                  SlotRef{layout[r].acc_slot, 0}, core,
                                  kSoloBusFactor);
        init.pre_delay = window_sync_cost();
        last = rp.add(std::move(init));
        for (int child_v : nodes[r].children) {
          const int child = by_vrank[child_v];
          Action red = cross_reduce_action(
              child, bytes, SlotRef{layout[child].acc_slot, 0},
              SlotRef{layout[r].acc_slot, 0}, op, dtype, /*avx=*/true);
          red.deps.push_back(
              cross_dep(child, layout[child].expose_idx, flag));
          red.deps.push_back(dep(last));
          last = rp.add(std::move(red));
        }
        layout[r].expose_idx = last;
      } else {
        // Leaf: expose the raw send buffer (zero-copy) after the window
        // sync epoch.
        Action expose = compute_action(kWindowPost);
        expose.pre_delay = window_sync_cost();
        layout[r].acc_slot = 0;
        layout[r].expose_idx = rp.add(std::move(expose));
      }
    }
    return plan;
  };
  return rt().start(comm, me, build, {send, recv});
}

mpi::Request SoloModule::iallreduce(const mpi::Comm& comm, int me,
                                    mpi::BufView send, mpi::BufView recv,
                                    mpi::Datatype dtype, mpi::ReduceOp op,
                                    const CollConfig& cfg) {
  mpi::Request gate = mpi::make_request(world().engine());
  mpi::Request red = ireduce(comm, me, /*root=*/0, send, recv, dtype, op, cfg);
  red->on_complete([this, &comm, me, recv, dtype, cfg, gate] {
    mpi::Request bc = ibcast(comm, me, /*root=*/0, recv, dtype, cfg);
    bc->on_complete([gate] { gate->complete(); });
  });
  return gate;
}

}  // namespace han::coll

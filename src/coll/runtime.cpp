#include "coll/runtime.hpp"

#include <cstring>

#include "coll/validate.hpp"

namespace han::coll {

namespace {
// Per-plan action tags live below this; the instance sequence number is
// shifted above it. User P2P tags on the same communicator should stay
// below 2^20 to avoid colliding with collective traffic.
constexpr int kTagBits = 20;

constexpr const char* kKindNames[] = {"send",    "recv", "copy",
                                      "reduce",  "compute", "noop",
                                      "cross_copy", "cross_reduce"};
constexpr int kNumKinds = 8;
}  // namespace

CollRuntime::CollRuntime(mpi::SimWorld& world) : world_(&world) {
  obs::MetricsRegistry& m = world_->metrics();
  for (int k = 0; k < kNumKinds; ++k) {
    const std::string kind = kKindNames[k];
    kinds_[k].actions = &m.counter("coll.actions." + kind);
    kinds_[k].bytes = &m.counter("coll.bytes." + kind);
    kinds_[k].busy = &m.counter("coll.busy_seconds." + kind);
  }
  inflight_ = &m.gauge("coll.inflight");
  action_seconds_ = &m.histogram(
      "coll.action_seconds",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
  destroy_observer_ = world_->add_comm_destroy_observer(
      [this](int context) { evict_context(context); });
}

CollRuntime::~CollRuntime() {
  world_->remove_comm_destroy_observer(destroy_observer_);
}

void CollRuntime::evict_context(int context) {
  HAN_ASSERT_MSG(
      instances_.lower_bound(std::make_pair(context, std::uint64_t{0})) ==
              instances_.end() ||
          instances_.lower_bound(std::make_pair(context, std::uint64_t{0}))
                  ->first.first != context,
      "communicator freed with live collective instances");
  call_seq_.erase(context);
  level_of_.erase(context);
}

CollRuntime::LevelStats& CollRuntime::make_level(const std::string& label) {
  auto it = levels_.find(label);
  if (it == levels_.end()) {
    obs::MetricsRegistry& m = world_->metrics();
    const std::string base = "coll.level." + label;
    LevelStats ls;
    ls.actions = &m.counter(base + ".actions");
    ls.bytes = &m.counter(base + ".bytes");
    ls.busy = &m.counter(base + ".busy_seconds");
    ls.inflight = &m.gauge(base + ".inflight");
    it = levels_.emplace(label, ls).first;
  }
  return it->second;
}

CollRuntime::LevelStats* CollRuntime::level_stats(int context) {
  auto it = level_of_.find(context);
  if (it != level_of_.end()) return it->second;
  LevelStats* flat = &make_level("flat");
  level_of_.emplace(context, flat);
  return flat;
}

void CollRuntime::set_level_label(int context, const std::string& label) {
  level_of_[context] = &make_level(label);
}

mpi::Request CollRuntime::start(const mpi::Comm& comm, int comm_rank,
                                const std::function<Plan()>& build,
                                std::vector<mpi::BufView> user_bufs) {
  auto& seqs = call_seq_[comm.context()];
  if (seqs.empty()) seqs.resize(comm.size(), 0);
  const std::uint64_t seq = seqs.at(comm_rank)++;

  InstancePtr inst = get_or_create(comm, seq, build);
  mpi::Request req = mpi::make_request(world_->engine());
  arrive(inst, comm_rank, std::move(user_bufs), req);
  return req;
}

CollRuntime::InstancePtr CollRuntime::get_or_create(
    const mpi::Comm& comm, std::uint64_t seq,
    const std::function<Plan()>& build) {
  const auto key = std::make_pair(comm.context(), seq);
  auto it = instances_.find(key);
  if (it != instances_.end()) return it->second;

  auto inst = std::make_shared<Instance>();
  inst->comm = &comm;
  inst->seq = seq;
  inst->plan = build();
  const std::string defect = validate_plan(inst->plan, comm.size());
  HAN_ASSERT_MSG(defect.empty(), defect.c_str());
  if (plan_checker_) {
    const std::string verdict = plan_checker_(inst->plan, comm.size());
    HAN_ASSERT_MSG(verdict.empty(), verdict.c_str());
  }

  const int n = comm.size();
  inst->ranks.resize(n);
  inst->dependents.resize(n);
  inst->ranks_not_arrived = n;
  for (int r = 0; r < n; ++r) {
    const auto& actions = inst->plan.ranks[r].actions;
    inst->ranks[r].deps_left.assign(actions.size(), 0);
    inst->ranks[r].launched.assign(actions.size(), 0);
    inst->ranks[r].actions_left = static_cast<int>(actions.size());
    inst->dependents[r].resize(actions.size());
    inst->total_actions_left += static_cast<long>(actions.size());
  }
  // Wire reverse edges and dependency counters.
  for (int r = 0; r < n; ++r) {
    const auto& actions = inst->plan.ranks[r].actions;
    for (int a = 0; a < static_cast<int>(actions.size()); ++a) {
      for (const DepRef& d : actions[a].deps) {
        const int dr = d.rank == DepRef::kSameRank ? r : d.rank;
        HAN_ASSERT(dr >= 0 && dr < n);
        HAN_ASSERT(d.action >= 0 &&
                   d.action <
                       static_cast<int>(inst->plan.ranks[dr].actions.size()));
        inst->dependents[dr][d.action].push_back(
            DepRef{r, a, d.latency});
        ++inst->ranks[r].deps_left[a];
      }
    }
  }
  instances_.emplace(key, inst);
  return inst;
}

void CollRuntime::arrive(const InstancePtr& inst, int rank,
                         std::vector<mpi::BufView> user_bufs,
                         mpi::Request req) {
  RankState& rs = inst->ranks.at(rank);
  HAN_ASSERT_MSG(!rs.arrived, "rank started the same collective twice");
  rs.arrived = true;
  --inst->ranks_not_arrived;
  HAN_ASSERT_MSG(static_cast<int>(user_bufs.size()) >=
                     inst->plan.num_user_slots,
                 "missing user buffers for plan slots");
  rs.user_bufs = std::move(user_bufs);
  rs.req = std::move(req);

  // Allocate temp slot storage in data mode.
  const auto& temp_sizes = inst->plan.ranks[rank].temp_slots;
  if (world_->data_mode()) {
    rs.temps.resize(temp_sizes.size());
    for (std::size_t i = 0; i < temp_sizes.size(); ++i) {
      rs.temps[i].resize(temp_sizes[i]);
    }
  }

  if (rs.actions_left == 0) {
    rs.req->complete();
    maybe_retire(inst);
    return;
  }
  for (int a = 0; a < static_cast<int>(rs.deps_left.size()); ++a) {
    try_launch(inst, rank, a);
  }
}

void CollRuntime::try_launch(const InstancePtr& inst, int rank, int action) {
  RankState& rs = inst->ranks[rank];
  if (!rs.arrived || rs.launched[action] != 0 ||
      rs.deps_left[action] != 0) {
    return;
  }
  rs.launched[action] = 1;
  const Action& a = inst->plan.ranks[rank].actions[action];
  if (a.pre_delay > 0.0) {
    world_->engine().schedule_after(
        a.pre_delay, [this, inst, rank, action] { execute(inst, rank, action); });
  } else {
    execute(inst, rank, action);
  }
}

mpi::BufView CollRuntime::slot_view(Instance& inst, int rank, SlotRef ref,
                                    std::size_t bytes) const {
  RankState& rs = inst.ranks[rank];
  HAN_ASSERT_MSG(rs.arrived,
                 "slot access before rank arrival (missing cross-rank dep?)");
  if (ref.slot < inst.plan.num_user_slots) {
    const mpi::BufView& user = rs.user_bufs[ref.slot];
    if (user.has_data()) {
      HAN_ASSERT_MSG(ref.offset + bytes <= user.bytes,
                     "plan slot access out of user buffer bounds");
    }
    return user.slice(ref.offset, bytes);
  }
  const std::size_t t = static_cast<std::size_t>(ref.slot) -
                        static_cast<std::size_t>(inst.plan.num_user_slots);
  HAN_ASSERT(t < inst.plan.ranks[rank].temp_slots.size());
  if (!world_->data_mode()) {
    mpi::BufView v = mpi::BufView::timing_only(bytes);
    return v;
  }
  auto& storage = rs.temps[t];
  HAN_ASSERT(ref.offset + bytes <= storage.size());
  return mpi::BufView{storage.data() + ref.offset, bytes, mpi::Datatype::Byte};
}

void CollRuntime::execute(const InstancePtr& inst, int rank, int action) {
  const Action& a = inst->plan.ranks[rank].actions[action];
  const mpi::Comm& comm = *inst->comm;
  const mpi::Tag tag =
      static_cast<mpi::Tag>((inst->seq << kTagBits) |
                            static_cast<std::uint64_t>(a.tag));
  HAN_ASSERT_MSG(a.tag >= 0 && a.tag < (1 << kTagBits),
                 "plan action tag out of range");
  const int kind = static_cast<int>(a.kind);
  const sim::Time t0 = world_->now();
  const double abytes = static_cast<double>(a.bytes);
  LevelStats* level = level_stats(comm.context());
  kinds_[kind].actions->add(1.0);
  kinds_[kind].bytes->add(abytes);
  level->actions->add(1.0);
  level->bytes->add(abytes);
  inflight_->add(t0, 1.0);
  level->inflight->add(t0, 1.0);
  std::function<void()> done = [this, inst, rank, action, kind, t0,
                                level] {
    const sim::Time now = world_->now();
    const sim::Time dt = now - t0;
    kinds_[kind].busy->add(dt);
    level->busy->add(dt);
    inflight_->add(now, -1.0);
    level->inflight->add(now, -1.0);
    action_seconds_->observe(dt);
    if (tracer_ != nullptr) {
      const int wr = inst->comm->world_rank(rank);
      const std::string name =
          std::string(kKindNames[kind]) + " " +
          sim::format_bytes(
              inst->plan.ranks[rank].actions[action].bytes);
      tracer_->span(wr, "coll", name, t0, now, world_->rank(wr).node);
    }
    complete_action(inst, rank, action);
  };

  switch (a.kind) {
    case Action::Kind::Send: {
      mpi::BufView src = slot_view(*inst, rank, a.src, a.bytes);
      mpi::Request r = world_->isend_ctx(comm, comm.context(), rank, a.peer,
                                         tag, src, inst->plan.rail);
      r->on_complete(done);
      break;
    }
    case Action::Kind::Recv: {
      mpi::BufView dst = slot_view(*inst, rank, a.dst, a.bytes);
      mpi::Request r = world_->irecv_ctx(comm, comm.context(), rank, a.peer,
                                         tag, dst);
      r->on_complete(done);
      break;
    }
    case Action::Kind::Copy: {
      const int wr = comm.world_rank(rank);
      // bus_factor scales bytes and cap together: duration stays
      // bytes/cap while the memory bus is charged the discounted traffic
      // (L3-served shared-memory reads).
      const double cap = (a.copy_cap > 0.0
                              ? a.copy_cap
                              : world_->profile().core_copy_bandwidth) *
                         a.bus_factor;
      mpi::Request r = world_->copy_flow(
          wr, static_cast<std::size_t>(
                  static_cast<double>(a.bytes) * a.bus_factor),
          cap);
      r->on_complete([this, inst, rank, action, done] {
        const Action& act = inst->plan.ranks[rank].actions[action];
        if (world_->data_mode()) {
          mpi::BufView src = slot_view(*inst, rank, act.src, act.bytes);
          mpi::BufView dst = slot_view(*inst, rank, act.dst, act.bytes);
          if (src.has_data() && dst.has_data() &&
              dst.data != src.data) {  // in-place copies are no-ops
            std::memcpy(dst.data, src.data, act.bytes);
          }
        }
        done();
      });
      break;
    }
    case Action::Kind::Reduce: {
      const int wr = comm.world_rank(rank);
      mpi::Request r = world_->reduce_compute(wr, a.bytes, a.avx);
      r->on_complete([this, inst, rank, action, done] {
        const Action& act = inst->plan.ranks[rank].actions[action];
        if (world_->data_mode()) {
          mpi::BufView src = slot_view(*inst, rank, act.src, act.bytes);
          mpi::BufView dst = slot_view(*inst, rank, act.dst, act.bytes);
          if (src.has_data() && dst.has_data()) {
            // Byte counts are element-aligned by the builder's contract.
            const std::size_t count = act.bytes / type_size(act.dtype);
            mpi::apply_reduce(act.op, act.dtype, dst.data, src.data, count);
          }
        }
        done();
      });
      break;
    }
    case Action::Kind::Compute: {
      const int wr = comm.world_rank(rank);
      mpi::Request r = world_->compute(wr, a.seconds);
      r->on_complete(done);
      break;
    }
    case Action::Kind::CrossCopy: {
      const int wr = comm.world_rank(rank);
      const int peer_wr = comm.world_rank(a.peer);
      HAN_ASSERT_MSG(world_->rank(wr).node == world_->rank(peer_wr).node,
                     "CrossCopy peers must share a node");
      // Reading the peer's window crosses the inter-socket link when the
      // two ranks sit in different NUMA domains (cache discount does not
      // apply there: remote reads always touch the link).
      const bool cross_numa =
          world_->rank(wr).numa != world_->rank(peer_wr).numa;
      const double factor = cross_numa ? 1.0 : a.bus_factor;
      const double cap = (a.copy_cap > 0.0
                              ? a.copy_cap
                              : world_->profile().core_copy_bandwidth) *
                         factor;
      mpi::Request r = world_->copy_flow_pair(
          wr, peer_wr,
          static_cast<std::size_t>(static_cast<double>(a.bytes) * factor),
          cap);
      r->on_complete([this, inst, rank, action, done] {
        const Action& act = inst->plan.ranks[rank].actions[action];
        if (world_->data_mode()) {
          mpi::BufView src = slot_view(*inst, act.peer, act.src, act.bytes);
          mpi::BufView dst = slot_view(*inst, rank, act.dst, act.bytes);
          if (src.has_data() && dst.has_data() &&
              dst.data != src.data) {  // in-place copies are no-ops
            std::memcpy(dst.data, src.data, act.bytes);
          }
        }
        done();
      });
      break;
    }
    case Action::Kind::CrossReduce: {
      const int wr = comm.world_rank(rank);
      HAN_ASSERT_MSG(world_->rank(wr).node ==
                         world_->rank(comm.world_rank(a.peer)).node,
                     "CrossReduce peers must share a node");
      mpi::Request r = world_->reduce_compute(wr, a.bytes, a.avx);
      r->on_complete([this, inst, rank, action, done] {
        const Action& act = inst->plan.ranks[rank].actions[action];
        if (world_->data_mode()) {
          mpi::BufView src = slot_view(*inst, act.peer, act.src, act.bytes);
          mpi::BufView dst = slot_view(*inst, rank, act.dst, act.bytes);
          if (src.has_data() && dst.has_data()) {
            const std::size_t count = act.bytes / type_size(act.dtype);
            mpi::apply_reduce(act.op, act.dtype, dst.data, src.data, count);
          }
        }
        done();
      });
      break;
    }
    case Action::Kind::Noop: {
      world_->engine().schedule_after(0.0, done);
      break;
    }
  }
}

void CollRuntime::complete_action(const InstancePtr& inst, int rank,
                                  int action) {
  RankState& rs = inst->ranks[rank];
  --rs.actions_left;
  --inst->total_actions_left;
  for (const DepRef& d : inst->dependents[rank][action]) {
    // d.rank/d.action name the *dependent* here (reverse edge).
    auto unblock = [this, inst, r = d.rank, a = d.action] {
      if (--inst->ranks[r].deps_left[a] == 0) try_launch(inst, r, a);
    };
    if (d.latency > 0.0) {
      world_->engine().schedule_after(d.latency, unblock);
    } else {
      unblock();
    }
  }
  if (rs.actions_left == 0) {
    rs.req->complete();
    maybe_retire(inst);
  }
}

void CollRuntime::maybe_retire(const InstancePtr& inst) {
  if (inst->total_actions_left == 0 && inst->ranks_not_arrived == 0) {
    instances_.erase(std::make_pair(inst->comm->context(), inst->seq));
  }
}

}  // namespace han::coll

// TreeCollModule: shared implementation of the P2P tree-algorithm modules.
//
// Libnbc and ADAPT (and the inter-node parts of the vendor comparators)
// differ in their supported algorithm sets, internal segmentation, setup
// and progression costs, and reduction vectorization — not in the schedule
// shapes. This base turns a parameter block into a full CollModule.
#pragma once

#include <string>

#include "coll/builders.hpp"
#include "coll/module.hpp"

namespace han::coll {

struct TreeModuleParams {
  std::string name;
  std::vector<Algorithm> bcast_algs{Algorithm::Binomial};
  std::vector<Algorithm> reduce_algs{Algorithm::Binomial};
  Algorithm default_alg = Algorithm::Binomial;
  bool nonblocking = false;
  bool segmentation = false;          // honour CollConfig::segment
  std::size_t default_segment = 0;    // used when segmentation && cfg 0
  bool avx_reduce = false;
  sim::Time action_pre_delay = 0.0;   // per-action progression cost
  sim::Time op_setup = 0.0;           // per-rank, per-operation setup
};

class TreeCollModule : public CollModule {
 public:
  TreeCollModule(mpi::SimWorld& world, CollRuntime& rt,
                 TreeModuleParams params)
      : CollModule(world, rt), params_(std::move(params)) {}

  std::string_view name() const override { return params_.name; }
  bool nonblocking_capable() const override { return params_.nonblocking; }
  bool reduce_uses_avx() const override { return params_.avx_reduce; }
  bool supports_segmentation() const override { return params_.segmentation; }
  std::vector<Algorithm> bcast_algorithms() const override {
    return params_.bcast_algs;
  }
  std::vector<Algorithm> reduce_algorithms() const override {
    return params_.reduce_algs;
  }

  mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                      mpi::BufView buf, mpi::Datatype dtype,
                      const CollConfig& cfg) override;
  mpi::Request ireduce(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const CollConfig& cfg) override;
  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, const CollConfig& cfg) override;
  mpi::Request igather(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       const CollConfig& cfg) override;
  mpi::Request iscatter(const mpi::Comm& comm, int me, int root,
                        mpi::BufView send, mpi::BufView recv,
                        const CollConfig& cfg) override;
  mpi::Request iallgather(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, const CollConfig& cfg) override;
  mpi::Request ibarrier(const mpi::Comm& comm, int me) override;

 protected:
  /// Resolve config against the module's capabilities: algorithm fallback
  /// to the default, segmentation honoured only when supported.
  BuildSpec resolve(const CollConfig& cfg, std::span<const Algorithm> algs,
                    int root, std::size_t bytes, mpi::Datatype dtype) const;

  const TreeModuleParams& params() const { return params_; }

 private:
  TreeModuleParams params_;
};

/// Libnbc analogue: the legacy round-based nonblocking module. Binomial
/// trees only, no internal segmentation, per-round progression cost,
/// scalar reductions.
TreeModuleParams libnbc_params();

/// ADAPT analogue: event-driven nonblocking module. Chain/binary/binomial,
/// internal segmentation (the paper's ibs/irs), AVX reductions, higher
/// per-operation setup (its event machinery hurts small messages).
TreeModuleParams adapt_params();

}  // namespace han::coll

// CollModule: the submodule interface HAN composes (paper §III).
//
// Mirrors Open MPI's mca_coll component model: each module advertises which
// collectives/algorithms it supports, whether its operations are
// nonblocking-capable (required for HAN's inter-node level) and whether it
// is restricted to intra-node communicators (SM, SOLO). Every operation is
// nonblocking and called independently by each rank of the communicator,
// exactly like the MPI_I* entry points.
#pragma once

#include <string_view>
#include <vector>

#include "coll/runtime.hpp"
#include "coll/types.hpp"

namespace han::coll {

class CollModule {
 public:
  CollModule(mpi::SimWorld& world, CollRuntime& rt)
      : world_(&world), rt_(&rt) {}
  virtual ~CollModule() = default;
  CollModule(const CollModule&) = delete;
  CollModule& operator=(const CollModule&) = delete;

  virtual std::string_view name() const = 0;

  /// True when the module's operations progress asynchronously and can be
  /// overlapped (HAN requires this at the inter-node level).
  virtual bool nonblocking_capable() const { return false; }

  /// True when the module only works on single-node communicators.
  virtual bool intra_node_only() const { return false; }

  /// True when reductions run at AVX rate (paper §IV-A2: only SOLO and
  /// ADAPT vectorize their reduction kernels).
  virtual bool reduce_uses_avx() const { return false; }

  /// Algorithms selectable through CollConfig::alg (paper Table II's
  /// ibalg/iralg). One-element vector => no algorithm choice.
  virtual std::vector<Algorithm> bcast_algorithms() const {
    return {Algorithm::Binomial};
  }
  virtual std::vector<Algorithm> reduce_algorithms() const {
    return bcast_algorithms();
  }

  /// True when CollConfig::segment (the paper's ibs/irs) is honoured.
  virtual bool supports_segmentation() const { return false; }

  // --- nonblocking collective operations --------------------------------
  // Every rank of `comm` must call with matching arguments; `me` is the
  // caller's comm rank. Unsupported operations abort (programming error:
  // the registry/HAN only routes supported combinations).

  virtual mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                              mpi::BufView buf, mpi::Datatype dtype,
                              const CollConfig& cfg);

  virtual mpi::Request ireduce(const mpi::Comm& comm, int me, int root,
                               mpi::BufView send, mpi::BufView recv,
                               mpi::Datatype dtype, mpi::ReduceOp op,
                               const CollConfig& cfg);

  virtual mpi::Request iallreduce(const mpi::Comm& comm, int me,
                                  mpi::BufView send, mpi::BufView recv,
                                  mpi::Datatype dtype, mpi::ReduceOp op,
                                  const CollConfig& cfg);

  /// Gather `send` (same byte count on every rank) into `recv` at root.
  virtual mpi::Request igather(const mpi::Comm& comm, int me, int root,
                               mpi::BufView send, mpi::BufView recv,
                               const CollConfig& cfg);

  /// Scatter `send` at root (comm_size equal blocks) into each `recv`.
  virtual mpi::Request iscatter(const mpi::Comm& comm, int me, int root,
                                mpi::BufView send, mpi::BufView recv,
                                const CollConfig& cfg);

  virtual mpi::Request iallgather(const mpi::Comm& comm, int me,
                                  mpi::BufView send, mpi::BufView recv,
                                  const CollConfig& cfg);

  /// Reduce-scatter with equal blocks (MPI_Reduce_scatter_block semantics):
  /// every rank contributes `send` (comm_size equal blocks) and receives the
  /// reduction of its own block into `recv` (one block).
  virtual mpi::Request ireduce_scatter(const mpi::Comm& comm, int me,
                                       mpi::BufView send, mpi::BufView recv,
                                       mpi::Datatype dtype, mpi::ReduceOp op,
                                       const CollConfig& cfg);

  virtual mpi::Request ibarrier(const mpi::Comm& comm, int me);

 protected:
  mpi::SimWorld& world() const { return *world_; }
  CollRuntime& rt() const { return *rt_; }
  [[noreturn]] void unsupported(const char* what) const;

 private:
  mpi::SimWorld* world_;
  CollRuntime* rt_;
};

}  // namespace han::coll

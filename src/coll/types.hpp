// Shared vocabulary of the collective layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace han::coll {

/// Collective algorithm selector. Not every module supports every
/// algorithm; CollModule::bcast_algorithms()/reduce_algorithms() advertise
/// the supported set (ADAPT: chain/binary/binomial; Libnbc: binomial; ...).
enum class Algorithm : std::uint8_t {
  Default,
  Linear,             // flat star from/to the root
  Chain,              // pipeline: rank i forwards to rank i+1
  Binary,             // balanced binary tree
  Binomial,           // binomial tree
  RecursiveDoubling,  // allreduce/allgather exchange pattern
  Ring,               // ring reduce-scatter + allgather
};

const char* algorithm_name(Algorithm a);

/// Per-call configuration of a fine-grained collective operation. For
/// ADAPT this is where the paper's `ibs`/`irs` (inter-node segment sizes)
/// land; modules without internal segmentation ignore `segment`.
struct CollConfig {
  Algorithm alg = Algorithm::Default;
  std::size_t segment = 0;  // internal pipelining granularity; 0 = whole msg
  int rail = -1;  // pin inter-node sends to this fabric rail; -1 = policy

  friend bool operator==(const CollConfig&, const CollConfig&) = default;
};

/// Operation kinds, used by registries and the autotuner lookup table.
enum class CollKind : std::uint8_t {
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Scatter,
  Allgather,
  Barrier,
  ReduceScatter,
};

const char* coll_kind_name(CollKind k);

}  // namespace han::coll

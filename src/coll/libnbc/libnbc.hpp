// Libnbc: the legacy round-based nonblocking collective module.
//
// Hoefler et al.'s NBC library drives a schedule of rounds; progression
// happens at MPI_Test/Wait boundaries, which shows up as a per-action
// progression cost and coarse overlap. One algorithm per collective
// (binomial), no internal segmentation, scalar reductions.
#pragma once

#include "coll/tree_module.hpp"

namespace han::coll {

class LibnbcModule : public TreeCollModule {
 public:
  LibnbcModule(mpi::SimWorld& world, CollRuntime& rt)
      : TreeCollModule(world, rt, libnbc_params()) {}
};

}  // namespace han::coll

// Virtual-rank tree topologies shared by the collective algorithms.
//
// All trees are built over virtual ranks (vrank = (rank - root + n) % n) so
// vrank 0 is always the root; callers translate back with from_vrank().
#pragma once

#include <vector>

#include "coll/types.hpp"

namespace han::coll {

struct TreeNode {
  int parent = -1;            // vrank of parent (-1 at the root)
  std::vector<int> children;  // vranks, in send order
};

/// Tree shape of `vrank` in an n-node tree of the given algorithm.
/// Supported: Linear (star), Chain, Binary, Binomial.
TreeNode tree_node(Algorithm alg, int n, int vrank);

inline int to_vrank(int rank, int root, int n) {
  return (rank - root + n) % n;
}
inline int from_vrank(int vrank, int root, int n) {
  return (vrank + root) % n;
}

}  // namespace han::coll

#include "coll/tuned/tuned.hpp"

#include "coll/ring/ring_builders.hpp"

namespace han::coll {

namespace {

TreeModuleParams tuned_params() {
  TreeModuleParams p;
  p.name = "tuned";
  p.bcast_algs = {Algorithm::Linear, Algorithm::Chain, Algorithm::Binary,
                  Algorithm::Binomial};
  p.reduce_algs = {Algorithm::Linear, Algorithm::Chain, Algorithm::Binary,
                   Algorithm::Binomial};
  p.default_alg = Algorithm::Binomial;
  p.nonblocking = false;  // blocking decision-function module
  p.segmentation = true;
  p.avx_reduce = false;
  p.action_pre_delay = 0.0;
  p.op_setup = 0.2e-6;
  return p;
}

}  // namespace

TunedModule::TunedModule(mpi::SimWorld& world, CollRuntime& rt)
    : TreeCollModule(world, rt, tuned_params()) {}

CollConfig TunedModule::decide_bcast(int comm_size, std::size_t bytes) {
  // Approximation of ompi_coll_tuned_bcast_intra_dec_fixed: binomial for
  // small messages, segmented binary mid-range, segmented chain for large.
  CollConfig cfg;
  if (bytes < (2u << 10) || comm_size <= 4) {
    cfg.alg = Algorithm::Binomial;
    cfg.segment = 0;
  } else if (bytes < (8u << 20)) {
    cfg.alg = Algorithm::Binary;
    cfg.segment = 32 << 10;  // the infamous small fixed segments
  } else {
    cfg.alg = Algorithm::Chain;
    cfg.segment = 64 << 10;
  }
  return cfg;
}

CollConfig TunedModule::decide_reduce(int comm_size, std::size_t bytes) {
  CollConfig cfg;
  if (bytes < (8u << 10) || comm_size <= 4) {
    cfg.alg = Algorithm::Binomial;
    cfg.segment = 0;
  } else if (bytes < (8u << 20)) {
    cfg.alg = Algorithm::Binary;
    cfg.segment = 32 << 10;
  } else {
    cfg.alg = Algorithm::Chain;
    cfg.segment = 64 << 10;
  }
  return cfg;
}

bool TunedModule::allreduce_uses_ring(int comm_size, std::size_t bytes) {
  // Ring is bandwidth-optimal but needs 2(n-1) steps; tuned switches to it
  // for large messages. We keep it only on communicators small enough for
  // the schedule to stay tractable in the simulator (see DESIGN.md).
  return bytes >= (1u << 20) && comm_size <= 1024 && comm_size >= 4;
}

mpi::Request TunedModule::ibcast(const mpi::Comm& comm, int me, int root,
                                 mpi::BufView buf, mpi::Datatype dtype,
                                 const CollConfig& cfg) {
  const CollConfig decided = cfg.alg != Algorithm::Default
                                 ? cfg
                                 : decide_bcast(comm.size(), buf.bytes);
  return TreeCollModule::ibcast(comm, me, root, buf, dtype, decided);
}

mpi::Request TunedModule::ireduce(const mpi::Comm& comm, int me, int root,
                                  mpi::BufView send, mpi::BufView recv,
                                  mpi::Datatype dtype, mpi::ReduceOp op,
                                  const CollConfig& cfg) {
  const CollConfig decided = cfg.alg != Algorithm::Default
                                 ? cfg
                                 : decide_reduce(comm.size(), send.bytes);
  return TreeCollModule::ireduce(comm, me, root, send, recv, dtype, op,
                                 decided);
}

mpi::Request TunedModule::iallreduce(const mpi::Comm& comm, int me,
                                     mpi::BufView send, mpi::BufView recv,
                                     mpi::Datatype dtype, mpi::ReduceOp op,
                                     const CollConfig& cfg) {
  if (allreduce_uses_ring(comm.size(), send.bytes)) {
    BuildSpec spec;
    spec.bytes = send.bytes;
    spec.dtype = dtype;
    spec.op = op;
    spec.op_setup = 0.2e-6;
    const int n = comm.size();
    return rt().start(
        comm, me, [n, spec] { return build_ring_allreduce(n, spec); },
        {send, recv});
  }
  return TreeCollModule::iallreduce(comm, me, send, recv, dtype, op, cfg);
}

}  // namespace han::coll

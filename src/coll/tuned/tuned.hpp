// "tuned": the default Open MPI collective module (the paper's baseline).
//
// Reimplements the fixed decision functions of Open MPI's coll/tuned,
// whose switch points were calibrated on early-2000s hardware (paper §II-B:
// "a cluster of AMD64 processors using Gigabit Ethernet and Myricom
// interconnect") — which is exactly why HAN beats it on modern machines.
// The module is hierarchy-oblivious: it runs flat trees over the whole
// communicator, mixing intra- and inter-node links.
#pragma once

#include "coll/tree_module.hpp"

namespace han::coll {

class TunedModule : public TreeCollModule {
 public:
  TunedModule(mpi::SimWorld& world, CollRuntime& rt);

  std::string_view name() const override { return "tuned"; }

  mpi::Request ibcast(const mpi::Comm& comm, int me, int root,
                      mpi::BufView buf, mpi::Datatype dtype,
                      const CollConfig& cfg) override;
  mpi::Request ireduce(const mpi::Comm& comm, int me, int root,
                       mpi::BufView send, mpi::BufView recv,
                       mpi::Datatype dtype, mpi::ReduceOp op,
                       const CollConfig& cfg) override;
  mpi::Request iallreduce(const mpi::Comm& comm, int me, mpi::BufView send,
                          mpi::BufView recv, mpi::Datatype dtype,
                          mpi::ReduceOp op, const CollConfig& cfg) override;

  /// The fixed decision function (exposed for tests): algorithm + segment
  /// size for a bcast/reduce of `bytes` over `comm_size` ranks.
  static CollConfig decide_bcast(int comm_size, std::size_t bytes);
  static CollConfig decide_reduce(int comm_size, std::size_t bytes);

  /// True when the allreduce decision picks the ring (large messages on
  /// comms small enough for the 2(n-1)-step schedule to stay tractable).
  static bool allreduce_uses_ring(int comm_size, std::size_t bytes);
};

}  // namespace han::coll

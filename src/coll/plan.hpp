// Collective schedules as dependency DAGs.
//
// A Plan holds, for every rank of a communicator, the list of primitive
// actions (P2P send/recv, memory-bus copy, reduction arithmetic, raw CPU
// compute) with dependency edges. Edges may cross ranks — cross-rank edges
// model shared-memory flag signalling (with a propagation latency) without
// paying full P2P protocol costs, which is how the SM and SOLO intra-node
// modules are expressed.
//
// Plans are pure data: they are built once per collective instance by a
// module's builder function and executed by CollRuntime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simbase/units.hpp"
#include "simmpi/datatype.hpp"

namespace han::coll {

/// Byte range within a rank's buffer slot. Slots 0..num_user_slots-1 bind
/// to the user buffers passed at start(); higher slots are plan-declared
/// temporaries.
struct SlotRef {
  int slot = 0;
  std::size_t offset = 0;
};

/// Dependency edge. `rank == kSameRank` refers to the executing rank.
/// `latency` delays readiness past the dependency's completion (shared-
/// memory flag propagation, window-synchronization epochs).
struct DepRef {
  static constexpr int kSameRank = -1;
  int rank = kSameRank;  // comm rank owning the dependency
  int action = 0;        // index into that rank's action list
  sim::Time latency = 0.0;
};

struct Action {
  enum class Kind : std::uint8_t {
    Send,     // isend `bytes` from src to comm rank `peer`, tag `tag`
    Recv,     // irecv `bytes` into dst from comm rank `peer`, tag `tag`
    Copy,     // memory-bus copy of `bytes`, dst = src
    Reduce,   // dst = dst OP src over `bytes` (CPU arithmetic)
    Compute,  // occupy CPU for `seconds` (setup costs, progression ticks)
    Noop,     // synchronization-only node
    // Shared-memory primitives: direct access to another rank's slot,
    // paying bus/CPU costs but no P2P protocol. Only valid when `peer` is
    // on the same node; used by the SM and SOLO intra-node modules.
    // Sequencing with the peer's writes is the builder's job (cross-rank
    // dependency edges).
    CrossCopy,    // dst(me) = src(peer), one memory-bus copy
    CrossReduce,  // dst(me) = dst(me) OP src(peer), CPU arithmetic
  };

  Kind kind = Kind::Noop;
  int peer = -1;
  int tag = 0;  // small per-plan tag; the runtime namespaces it per instance
  std::size_t bytes = 0;
  SlotRef src;
  SlotRef dst;
  mpi::ReduceOp op = mpi::ReduceOp::Sum;
  mpi::Datatype dtype = mpi::Datatype::Byte;
  bool avx = false;         // Reduce: use AVX-rate arithmetic
  double copy_cap = 0.0;    // Copy: rate cap (0 = core copy bandwidth)
  double bus_factor = 1.0;  // Copy: fraction of bytes charged to the bus
                            // (cache-resident shared-memory reads < 1)
  sim::Time seconds = 0.0;  // Compute duration
  sim::Time pre_delay = 0.0;  // fixed latency before execution starts
  std::vector<DepRef> deps;
};

struct RankPlan {
  std::vector<Action> actions;
  /// Sizes of temporary slots; temp i becomes slot num_user_slots + i.
  std::vector<std::size_t> temp_slots;

  /// Append an action, returning its index (for dependency wiring).
  int add(Action a) {
    actions.push_back(std::move(a));
    return static_cast<int>(actions.size()) - 1;
  }
};

struct Plan {
  int num_user_slots = 1;
  /// Fabric rail carrying this plan's inter-node sends; -1 (default)
  /// leaves the choice to the machine's RailPolicy. Striped schedules
  /// issue one sub-plan per rail, each pinned here.
  int rail = -1;
  std::vector<RankPlan> ranks;  // indexed by comm rank

  explicit Plan(int comm_size = 0, int user_slots = 1)
      : num_user_slots(user_slots), ranks(comm_size) {}
};

// ---- small builder helpers -------------------------------------------

inline Action send_action(int peer, int tag, std::size_t bytes, SlotRef src) {
  Action a;
  a.kind = Action::Kind::Send;
  a.peer = peer;
  a.tag = tag;
  a.bytes = bytes;
  a.src = src;
  return a;
}

inline Action recv_action(int peer, int tag, std::size_t bytes, SlotRef dst) {
  Action a;
  a.kind = Action::Kind::Recv;
  a.peer = peer;
  a.tag = tag;
  a.bytes = bytes;
  a.dst = dst;
  return a;
}

inline Action copy_action(std::size_t bytes, SlotRef src, SlotRef dst,
                          double cap = 0.0, double bus_factor = 1.0) {
  Action a;
  a.kind = Action::Kind::Copy;
  a.bytes = bytes;
  a.src = src;
  a.dst = dst;
  a.copy_cap = cap;
  a.bus_factor = bus_factor;
  return a;
}

inline Action reduce_action(std::size_t bytes, SlotRef src, SlotRef dst,
                            mpi::ReduceOp op, mpi::Datatype dtype, bool avx) {
  Action a;
  a.kind = Action::Kind::Reduce;
  a.bytes = bytes;
  a.src = src;
  a.dst = dst;
  a.op = op;
  a.dtype = dtype;
  a.avx = avx;
  return a;
}

inline Action compute_action(sim::Time seconds) {
  Action a;
  a.kind = Action::Kind::Compute;
  a.seconds = seconds;
  return a;
}

inline Action cross_copy_action(int peer, std::size_t bytes, SlotRef peer_src,
                                SlotRef dst, double cap = 0.0,
                                double bus_factor = 1.0) {
  Action a;
  a.kind = Action::Kind::CrossCopy;
  a.peer = peer;
  a.bytes = bytes;
  a.src = peer_src;
  a.dst = dst;
  a.copy_cap = cap;
  a.bus_factor = bus_factor;
  return a;
}

inline Action cross_reduce_action(int peer, std::size_t bytes,
                                  SlotRef peer_src, SlotRef dst,
                                  mpi::ReduceOp op, mpi::Datatype dtype,
                                  bool avx) {
  Action a;
  a.kind = Action::Kind::CrossReduce;
  a.peer = peer;
  a.bytes = bytes;
  a.src = peer_src;
  a.dst = dst;
  a.op = op;
  a.dtype = dtype;
  a.avx = avx;
  return a;
}

inline DepRef dep(int action) { return DepRef{DepRef::kSameRank, action, 0.0}; }

inline DepRef cross_dep(int rank, int action, sim::Time latency) {
  return DepRef{rank, action, latency};
}

}  // namespace han::coll

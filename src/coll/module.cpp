#include "coll/module.hpp"

#include <cstdio>
#include <cstdlib>

namespace han::coll {

void CollModule::unsupported(const char* what) const {
  std::fprintf(stderr, "coll module '%.*s' does not support %s\n",
               static_cast<int>(name().size()), name().data(), what);
  std::abort();
}

mpi::Request CollModule::ibcast(const mpi::Comm&, int, int, mpi::BufView,
                                mpi::Datatype, const CollConfig&) {
  unsupported("ibcast");
}

mpi::Request CollModule::ireduce(const mpi::Comm&, int, int, mpi::BufView,
                                 mpi::BufView, mpi::Datatype, mpi::ReduceOp,
                                 const CollConfig&) {
  unsupported("ireduce");
}

mpi::Request CollModule::iallreduce(const mpi::Comm&, int, mpi::BufView,
                                    mpi::BufView, mpi::Datatype, mpi::ReduceOp,
                                    const CollConfig&) {
  unsupported("iallreduce");
}

mpi::Request CollModule::igather(const mpi::Comm&, int, int, mpi::BufView,
                                 mpi::BufView, const CollConfig&) {
  unsupported("igather");
}

mpi::Request CollModule::iscatter(const mpi::Comm&, int, int, mpi::BufView,
                                  mpi::BufView, const CollConfig&) {
  unsupported("iscatter");
}

mpi::Request CollModule::iallgather(const mpi::Comm&, int, mpi::BufView,
                                    mpi::BufView, const CollConfig&) {
  unsupported("iallgather");
}

mpi::Request CollModule::ireduce_scatter(const mpi::Comm&, int, mpi::BufView,
                                         mpi::BufView, mpi::Datatype,
                                         mpi::ReduceOp, const CollConfig&) {
  unsupported("ireduce_scatter");
}

mpi::Request CollModule::ibarrier(const mpi::Comm&, int) {
  unsupported("ibarrier");
}

}  // namespace han::coll

// Structural validation of collective Plans before execution.
//
// CollRuntime trusts a Plan's indices (dep rank/action, slot numbers,
// peers); a malformed builder otherwise surfaces as a deep out-of-bounds
// access or a silent hang mid-simulation. validate_plan() front-loads the
// checks — index ranges, slot bounds, and global (cross-rank) cycle
// detection — and reports the first defect as a human-readable string, so
// the runtime can fail fast at start() with the builder named in the
// message. The matching TaskGraph check lives in han/task/graph.hpp.
#pragma once

#include <string>

#include "coll/plan.hpp"

namespace han::coll {

/// Check `plan` for structural defects: rank list mismatch against
/// `comm_size`, dependency rank/action indices out of range, self-deps,
/// Send/Recv/Cross* peers outside the communicator, slot references past
/// the rank's user+temp slots, negative tags, and dependency cycles across
/// the whole multi-rank DAG (Kahn). Returns "" when well-formed, else a
/// description of the first defect found.
std::string validate_plan(const Plan& plan, int comm_size);

}  // namespace han::coll

// MPI-style datatypes and reduction operators.
//
// The simulator carries real payloads in data mode so that every collective
// algorithm's schedule can be verified element-wise in tests; reductions
// are applied with the same (acc = acc OP in) convention Open MPI uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace han::mpi {

enum class Datatype : std::uint8_t { Byte, Int32, Int64, Float, Double };

constexpr std::size_t type_size(Datatype t) {
  switch (t) {
    case Datatype::Byte: return 1;
    case Datatype::Int32: return 4;
    case Datatype::Int64: return 8;
    case Datatype::Float: return 4;
    case Datatype::Double: return 8;
  }
  return 1;
}

const char* type_name(Datatype t);

enum class ReduceOp : std::uint8_t { Sum, Prod, Max, Min, Band, Bor, Bxor };

const char* op_name(ReduceOp op);

/// True if the op is defined for the datatype (bitwise ops require integer
/// types, matching MPI's rules).
bool op_valid_for(ReduceOp op, Datatype t);

/// acc[i] = acc[i] OP in[i] over `count` elements. Buffers must not alias.
void apply_reduce(ReduceOp op, Datatype t, std::byte* acc,
                  const std::byte* in, std::size_t count);

}  // namespace han::mpi

// SimWorld: one simulated cluster run.
//
// Owns the event engine, the fluid-flow network, the machine fabric, the
// per-process state (CPU lane, node placement), communicator management,
// and the tag-matched P2P layer (eager + rendezvous protocols). Rank
// programs are C++20 coroutines spawned one per world rank; `run()` drives
// the engine until every program returns.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "flownet/flownet.hpp"
#include "machine/fabric.hpp"
#include "machine/machine.hpp"
#include "obs/metrics.hpp"
#include "simbase/cotask.hpp"
#include "simbase/engine.hpp"
#include "simbase/serial_lane.hpp"
#include "simmpi/buffer.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/cpulane.hpp"
#include "simbase/rng.hpp"
#include "simmpi/request.hpp"

namespace han::mpi {

using Tag = std::int64_t;

/// Per-process simulated state.
struct Rank {
  int world_rank = 0;
  int node = 0;
  int local_rank = 0;  // rank within the node
  int numa = 0;        // NUMA domain within the node
  CpuLane cpu;
};

// NIC injection and shm-pipe transfers are FIFO-serialized per sender via
// sim::SerialLane: message i's last byte leaves before message i+1 starts.
// Without this, the fluid model would let N concurrent segments fair-share
// and all complete simultaneously, destroying the pipelining every
// segmented algorithm depends on.
using sim::SerialLane;

/// Zero-cost rendezvous among a fixed set of parties; used by benchmark
/// harnesses to align rank start times (IMB inserts a barrier between
/// iterations). Not an MPI barrier — it consumes no simulated resources.
class SyncDomain {
 public:
  SyncDomain(sim::Engine& engine, int parties)
      : engine_(&engine), parties_(parties) {
    HAN_ASSERT(parties > 0);
  }

  /// Each party calls once per round; the returned request completes when
  /// all `parties` have arrived.
  Request arrive();

 private:
  sim::Engine* engine_;
  int parties_;
  int arrived_ = 0;
  Request round_;
};

class SimWorld {
 public:
  struct Options {
    bool data_mode = false;  // carry real payloads (tests) or timing-only
    /// Override the profile's Open MPI P2P parameters (vendor stacks).
    const machine::P2pParams* p2p_override = nullptr;
    /// Seed of the deterministic jitter stream (profile.jitter > 0).
    std::uint64_t jitter_seed = 0x5EEDull;
  };

  SimWorld(machine::MachineProfile profile, Options options);
  explicit SimWorld(machine::MachineProfile profile)
      : SimWorld(std::move(profile), Options()) {}

  sim::Engine& engine() { return engine_; }
  net::FlowNet& flownet() { return flownet_; }
  /// Resource handles (failure injection, diagnostics).
  machine::ClusterFabric& fabric() { return fabric_; }
  const machine::MachineProfile& profile() const { return profile_; }
  const machine::P2pParams& p2p() const { return p2p_; }
  const Options& options() const { return options_; }
  bool data_mode() const { return options_.data_mode; }

  int world_size() const { return profile_.total_procs(); }
  Rank& rank(int world_rank) { return ranks_.at(world_rank); }
  sim::Time now() const { return engine_.now(); }

  // --- Communicators -----------------------------------------------------

  Comm& world_comm() { return *world_comm_; }

  /// MPI_Comm_split: `color`/`key` indexed by parent comm rank. Returns the
  /// new communicator of each parent rank (ranks sharing a color share the
  /// pointer). Color -1 (MPI_UNDEFINED) yields nullptr.
  std::vector<Comm*> comm_split(const Comm& parent, std::span<const int> color,
                                std::span<const int> key);

  /// MPI_Comm_split_type(SHARED): groups parent ranks by physical node.
  std::vector<Comm*> comm_split_shared(const Comm& parent);

  /// MPI_Comm_free. Notifies the destroy observers (so caches keyed by
  /// the context id evict), then recycles the context for a later split —
  /// which is exactly why those caches must evict: a fresh communicator
  /// may legally reuse the dying one's id. The world comm cannot be freed,
  /// and outstanding traffic on the comm must have drained.
  void free_comm(Comm* comm);

  /// Observe communicator destruction; `fn` receives the dying comm's
  /// context id before it is recycled. Returns a token for
  /// remove_comm_destroy_observer (call it before the observer's owner
  /// outlives its captured state).
  int add_comm_destroy_observer(std::function<void(int)> fn);
  void remove_comm_destroy_observer(int token);

  /// Allocate a matching context (used by collective executors to isolate
  /// their traffic from application P2P on the same comm). Freed comm
  /// contexts are recycled first, like MPI cid allocation.
  int next_context() {
    if (!free_contexts_.empty()) {
      const int c = free_contexts_.back();
      free_contexts_.pop_back();
      return c;
    }
    return next_context_++;
  }

  // --- P2P ----------------------------------------------------------------

  /// Nonblocking send from comm rank `src` to comm rank `dst`. The request
  /// completes when the payload has left the sender (eager) or when the
  /// rendezvous transfer finishes.
  Request isend(const Comm& comm, int src, int dst, Tag tag, BufView buf);

  /// Same, but with an explicit matching context (collective traffic).
  /// `rail` pins an inter-node message to a fabric rail (striped plans);
  /// -1 (default) lets the profile's RailPolicy pick. Ignored for
  /// intra-node traffic and on single-rail machines.
  Request isend_ctx(const Comm& comm, int ctx, int src, int dst, Tag tag,
                    BufView buf, int rail = -1);

  Request irecv(const Comm& comm, int dst, int src, Tag tag, BufView buf);
  Request irecv_ctx(const Comm& comm, int ctx, int dst, int src, Tag tag,
                    BufView buf);

  // --- Local primitives used by collective modules ------------------------

  /// One memory-bus copy of `bytes` on `world_rank`'s node (shared-memory
  /// collective data movement). Completes the returned request when done.
  /// `cap` bounds the copy rate; pass 0 for the single-core copy bandwidth.
  Request copy_flow(int world_rank, std::size_t bytes, double cap = 0.0);

  /// Copy that reads another rank's memory (shared-memory window access).
  /// Charges the reader's bus — plus the peer's bus and the inter-socket
  /// link when the two ranks sit in different NUMA domains.
  Request copy_flow_pair(int world_rank, int peer_world, std::size_t bytes,
                         double cap = 0.0);

  /// Occupy the rank's CPU for `seconds`.
  Request compute(int world_rank, sim::Time seconds);

  /// Reduction arithmetic on `bytes` of input (CPU-bound; AVX or scalar
  /// per the machine profile). Data application is the caller's job.
  Request reduce_compute(int world_rank, std::size_t bytes, bool avx);

  // --- Programs -----------------------------------------------------------

  using Program = std::function<sim::CoTask(Rank&)>;

  /// Spawn `program` on every world rank and run the engine until all
  /// programs return. May be called repeatedly (simulated time accumulates).
  void run(const Program& program);

  /// Run the engine until quiescent (no further events).
  void run_to_quiescence() { engine_.run(); }

  /// World-wide zero-cost sync (see SyncDomain).
  Request sync() { return world_sync_->arrive(); }

  /// Total messages sent so far (diagnostics).
  std::uint64_t messages_sent() const { return messages_sent_; }

  // --- Observability -------------------------------------------------------

  /// The world's metrics registry. Wired into the flow network and fabric
  /// at construction; collective runtimes and apps add their own series.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Mirror every gauge change into `tracer` as a Perfetto counter track
  /// ("C" events). Pass nullptr to stop.
  void set_tracer(sim::Tracer* tracer) { metrics_.set_tracer(tracer); }

 private:
  struct PostedRecv {
    int ctx;
    int src_world;
    Tag tag;
    BufView buf;
    Request req;
    std::uint64_t order;
  };

  struct ArrivedMsg {
    int ctx;
    int src_world;
    int dst_world;
    Tag tag;
    std::size_t bytes;
    std::shared_ptr<std::vector<std::byte>> payload;  // null timing-only
    bool rndv = false;
    int rail = 0;      // fabric rail carrying the bulk data (inter-node)
    Request send_req;  // rendezvous: completes when the data flow finishes
    std::uint64_t order;
  };

  // Match queues are contiguous vectors, not deques: they are searched
  // linearly on every send/recv (usually hitting near the front and
  // staying short), so cache-dense storage beats a chunked deque; ordered
  // erase preserves the MPI first-match semantics.
  struct RankMatch {
    std::vector<PostedRecv> posted;
    std::vector<ArrivedMsg> unexpected;
  };

  sim::Time path_latency(int src_world, int dst_world) const;

  /// Scale a CPU occupancy by the profile's jitter (identity when 0).
  sim::Time jittered(sim::Time t) {
    if (profile_.jitter <= 0.0) return t;
    return t * (1.0 + profile_.jitter * (2.0 * jitter_rng_.next_double() - 1.0));
  }
  bool same_node(int a, int b) const {
    return ranks_[a].node == ranks_[b].node;
  }

  /// Start the bulk-data movement for a message and invoke `done` when the
  /// last byte lands. Chooses shm vs network path and applies the
  /// efficiency curve. `rail` is the (already resolved) fabric rail of an
  /// inter-node transfer; ignored on shm paths.
  void start_data_flow(int src_world, int dst_world, std::size_t bytes,
                       int rail, sim::Engine::Callback done);

  /// Resolve a message's fabric rail: explicit requests are clamped into
  /// range (striped configs degrade cleanly on machines with fewer
  /// rails); unpinned inter-node traffic follows the profile's
  /// RailPolicy. Always 0 on single-rail machines.
  int resolve_rail(int src_world, int dst_world, int rail);

  void deliver(ArrivedMsg msg);
  void match_eager(const ArrivedMsg& msg, PostedRecv& pr);
  void start_rendezvous(const ArrivedMsg& msg, PostedRecv pr);

  machine::MachineProfile profile_;
  Options options_;
  machine::P2pParams p2p_;
  sim::Engine engine_;
  obs::MetricsRegistry metrics_;
  net::FlowNet flownet_;
  machine::ClusterFabric fabric_;
  obs::Counter* msg_counter_ = nullptr;
  obs::Counter* msg_bytes_counter_ = nullptr;
  std::vector<Rank> ranks_;
  std::deque<std::unique_ptr<Comm>> comms_;
  Comm* world_comm_ = nullptr;
  int next_context_ = 0;
  std::vector<int> free_contexts_;  // recycled by next_context()
  std::vector<std::pair<int, std::function<void(int)>>> destroy_observers_;
  int next_observer_token_ = 0;
  std::vector<RankMatch> matching_;
  std::uint64_t match_order_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::unique_ptr<SyncDomain> world_sync_;
  sim::Rng jitter_rng_;
  // Per-rank FIFO engines: NIC injection order and the single memcpy core.
  // The NIC lanes are per (rank, rail) — rank-major, rail-minor — so a
  // striped message stream injects concurrently on every rail instead of
  // serializing behind one NIC.
  std::vector<SerialLane> net_tx_lane_;
  std::vector<SerialLane> copy_lane_;
  std::vector<std::uint32_t> rail_rr_;  // per-rank round-robin cursors
  std::vector<net::ResourceId> path_scratch_;
};

}  // namespace han::mpi

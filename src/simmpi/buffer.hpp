// Buffer views passed to P2P and collective operations.
//
// A BufView is a (pointer, logical byte count, datatype) triple. The pointer
// may be null: the operation then runs "timing-only" — identical control
// flow, protocol steps, and simulated durations, but no payload movement.
// Large benchmark sweeps (128MB messages across 4096 ranks) run timing-only;
// correctness tests attach real storage.
#pragma once

#include <cstddef>
#include <vector>

#include "simmpi/datatype.hpp"

namespace han::mpi {

struct BufView {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  Datatype dtype = Datatype::Byte;

  bool has_data() const { return data != nullptr; }
  std::size_t count() const { return bytes / type_size(dtype); }

  /// Sub-view [offset, offset+len) — offsets must respect element size.
  BufView slice(std::size_t offset, std::size_t len) const {
    BufView v;
    v.data = data == nullptr ? nullptr : data + offset;
    v.bytes = len;
    v.dtype = dtype;
    return v;
  }

  static BufView timing_only(std::size_t bytes,
                             Datatype t = Datatype::Byte) {
    return BufView{nullptr, bytes, t};
  }

  template <typename T>
  static BufView of(std::vector<T>& storage, Datatype t) {
    return BufView{reinterpret_cast<std::byte*>(storage.data()),
                   storage.size() * sizeof(T), t};
  }
};

}  // namespace han::mpi

#include "simmpi/datatype.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "simbase/assert.hpp"

namespace han::mpi {

const char* type_name(Datatype t) {
  switch (t) {
    case Datatype::Byte: return "byte";
    case Datatype::Int32: return "int32";
    case Datatype::Int64: return "int64";
    case Datatype::Float: return "float";
    case Datatype::Double: return "double";
  }
  return "?";
}

const char* op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Prod: return "prod";
    case ReduceOp::Max: return "max";
    case ReduceOp::Min: return "min";
    case ReduceOp::Band: return "band";
    case ReduceOp::Bor: return "bor";
    case ReduceOp::Bxor: return "bxor";
  }
  return "?";
}

bool op_valid_for(ReduceOp op, Datatype t) {
  const bool integral = t == Datatype::Byte || t == Datatype::Int32 ||
                        t == Datatype::Int64;
  switch (op) {
    case ReduceOp::Band:
    case ReduceOp::Bor:
    case ReduceOp::Bxor:
      return integral;
    default:
      return true;
  }
}

namespace {

// Integral Sum/Prod wrap on overflow (MPI leaves overflow undefined; we
// pick two's-complement wraparound so results are deterministic and the
// arithmetic is defined under UBSan). Done in the unsigned type — same
// bits, no signed-overflow UB.
template <typename T>
T wrap_add(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  } else {
    return a + b;
  }
}

template <typename T>
T wrap_mul(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  } else {
    return a * b;
  }
}

template <typename T>
void reduce_typed(ReduceOp op, T* acc, const T* in, std::size_t count) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < count; ++i) acc[i] = wrap_add(acc[i], in[i]);
      break;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < count; ++i) acc[i] = wrap_mul(acc[i], in[i]);
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < count; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < count; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::Band:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] & in[i];
      } else {
        HAN_ASSERT_MSG(false, "bitwise op on floating-point type");
      }
      break;
    case ReduceOp::Bor:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] | in[i];
      } else {
        HAN_ASSERT_MSG(false, "bitwise op on floating-point type");
      }
      break;
    case ReduceOp::Bxor:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < count; ++i) acc[i] = acc[i] ^ in[i];
      } else {
        HAN_ASSERT_MSG(false, "bitwise op on floating-point type");
      }
      break;
  }
}

}  // namespace

void apply_reduce(ReduceOp op, Datatype t, std::byte* acc,
                  const std::byte* in, std::size_t count) {
  HAN_ASSERT(op_valid_for(op, t));
  switch (t) {
    case Datatype::Byte:
      reduce_typed(op, reinterpret_cast<std::uint8_t*>(acc),
                   reinterpret_cast<const std::uint8_t*>(in), count);
      break;
    case Datatype::Int32:
      reduce_typed(op, reinterpret_cast<std::int32_t*>(acc),
                   reinterpret_cast<const std::int32_t*>(in), count);
      break;
    case Datatype::Int64:
      reduce_typed(op, reinterpret_cast<std::int64_t*>(acc),
                   reinterpret_cast<const std::int64_t*>(in), count);
      break;
    case Datatype::Float:
      reduce_typed(op, reinterpret_cast<float*>(acc),
                   reinterpret_cast<const float*>(in), count);
      break;
    case Datatype::Double:
      reduce_typed(op, reinterpret_cast<double*>(acc),
                   reinterpret_cast<const double*>(in), count);
      break;
  }
}

}  // namespace han::mpi

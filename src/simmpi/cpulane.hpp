// Single-threaded MPI progression model.
//
// Each simulated process owns one CpuLane: a FIFO of CPU occupancies.
// Per-message send/recv/match overheads, reduction arithmetic, AND
// shared-memory copies (a memcpy is CPU work!) all run through the lane,
// so two operations progressing "concurrently" on one rank serialize
// their CPU work — the second cause (besides the shared memory bus) of
// the imperfect ib/sb overlap the paper measures in Fig. 2.
#pragma once

#include <functional>

#include "simbase/engine.hpp"
#include "simbase/serial_lane.hpp"

namespace han::mpi {

class CpuLane {
 public:
  /// Occupy the CPU for `duration`, starting when the lane frees up;
  /// `done` fires at the occupancy's end.
  void exec(sim::Engine& engine, sim::Time duration,
            std::function<void()> done) {
    lane_.submit([&engine, duration, done = std::move(done)](
                     std::function<void()> release) mutable {
      engine.schedule_after(duration,
                            [done = std::move(done),
                             release = std::move(release)] {
                              done();
                              release();
                            });
    });
  }

  /// Occupy the CPU for an operation whose duration is only known at
  /// completion (e.g. a memory-bus copy whose rate depends on
  /// contention): `body` runs when the lane frees and must invoke the
  /// release callback when the occupancy ends.
  void exec_dynamic(sim::SerialLane::Task body) {
    lane_.submit(std::move(body));
  }

  bool busy() const { return lane_.busy(); }

 private:
  sim::SerialLane lane_;
};

}  // namespace han::mpi

// Single-threaded MPI progression model.
//
// Each simulated process owns one CpuLane: a FIFO of CPU occupancies.
// Per-message send/recv/match overheads, reduction arithmetic, AND
// shared-memory copies (a memcpy is CPU work!) all run through the lane,
// so two operations progressing "concurrently" on one rank serialize
// their CPU work — the second cause (besides the shared memory bus) of
// the imperfect ib/sb overlap the paper measures in Fig. 2.
//
// Hot-path note: this is the single most scheduled closure shape in the
// simulator (every message pays at least two CPU occupancies). The
// pending occupancies live in a recycled ring, and the completion event
// captures only the lane pointer — the `done` callback is parked in the
// lane until its occupancy ends, so the engine event always stays within
// its inline callback storage.
#pragma once

#include "simbase/engine.hpp"
#include "simbase/inline_fn.hpp"
#include "simbase/ring_queue.hpp"

namespace han::mpi {

class CpuLane {
 public:
  using Callback = sim::Engine::Callback;

  /// Occupy the CPU for `duration`, starting when the lane frees up;
  /// `done` fires at the occupancy's end.
  void exec(sim::Engine& engine, sim::Time duration, Callback done) {
    queue_.push_back(Item{duration, std::move(done)});
    if (!busy_) {
      busy_ = true;
      start_next(engine);
    }
  }

  bool busy() const { return busy_; }

 private:
  struct Item {
    sim::Time duration = 0.0;
    Callback done;
  };

  void start_next(sim::Engine& engine) {
    Item item = queue_.pop_front();
    current_done_ = std::move(item.done);
    engine.schedule_after(item.duration, [this, &engine] {
      Callback done = std::move(current_done_);
      done();  // may re-enter exec(); busy_ is still set, so it enqueues
      if (queue_.empty()) {
        busy_ = false;
      } else {
        start_next(engine);
      }
    });
  }

  bool busy_ = false;
  Callback current_done_;
  sim::RingQueue<Item> queue_;
};

}  // namespace han::mpi

#include "simmpi/world.hpp"

#include <algorithm>
#include <cstring>
#include <map>

namespace han::mpi {

namespace {
// Fraction of a shared-memory copy's duration charged to the progression
// CPU (fragment management interleaved with protocol work).
constexpr double kCopyCpuShare = 0.25;
}  // namespace

Request SyncDomain::arrive() {
  if (!round_) round_ = make_request(*engine_);
  Request r = round_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    round_.reset();
    r->complete();
  }
  return r;
}

SimWorld::SimWorld(machine::MachineProfile profile, Options options)
    : profile_(std::move(profile)),
      options_(options),
      p2p_(options.p2p_override != nullptr ? *options.p2p_override
                                           : profile_.ompi_p2p),
      flownet_(engine_),
      fabric_(flownet_, profile_) {
  const int total = profile_.total_procs();
  ranks_.resize(total);
  matching_.resize(total);
  const int per_numa =
      profile_.procs_per_node / std::max(1, profile_.numa_per_node);
  for (int r = 0; r < total; ++r) {
    ranks_[r].world_rank = r;
    ranks_[r].node = r / profile_.procs_per_node;
    ranks_[r].local_rank = r % profile_.procs_per_node;
    ranks_[r].numa = ranks_[r].local_rank / std::max(1, per_numa);
  }
  std::vector<int> all(total);
  for (int r = 0; r < total; ++r) all[r] = r;
  comms_.push_back(std::make_unique<Comm>(next_context_++, std::move(all)));
  world_comm_ = comms_.back().get();
  world_sync_ = std::make_unique<SyncDomain>(engine_, total);
  jitter_rng_.reseed(options.jitter_seed);
  net_tx_lane_.resize(static_cast<std::size_t>(total) *
                      profile_.nics_per_node);
  copy_lane_.resize(total);
  rail_rr_.resize(total, 0);
  flownet_.set_metrics(&metrics_);
  fabric_.register_observability(flownet_, profile_, metrics_);
  msg_counter_ = &metrics_.counter("mpi.messages");
  msg_bytes_counter_ = &metrics_.counter("mpi.p2p_bytes");
}

std::vector<Comm*> SimWorld::comm_split(const Comm& parent,
                                        std::span<const int> color,
                                        std::span<const int> key) {
  HAN_ASSERT(static_cast<int>(color.size()) == parent.size());
  HAN_ASSERT(static_cast<int>(key.size()) == parent.size());

  // Group parent ranks by color; order members by (key, parent rank) as
  // MPI_Comm_split specifies. std::map keeps color iteration deterministic.
  std::map<int, std::vector<int>> groups;  // color -> parent ranks
  for (int pr = 0; pr < parent.size(); ++pr) {
    if (color[pr] >= 0) groups[color[pr]].push_back(pr);
  }

  std::vector<Comm*> result(parent.size(), nullptr);
  for (auto& [c, members] : groups) {
    std::stable_sort(members.begin(), members.end(),
                     [&](int a, int b) { return key[a] < key[b]; });
    std::vector<int> world_ranks;
    world_ranks.reserve(members.size());
    for (int pr : members) world_ranks.push_back(parent.world_rank(pr));
    comms_.push_back(
        std::make_unique<Comm>(next_context(), std::move(world_ranks)));
    for (int pr : members) result[pr] = comms_.back().get();
  }
  return result;
}

void SimWorld::free_comm(Comm* comm) {
  HAN_ASSERT_MSG(comm != nullptr && comm != world_comm_,
                 "cannot free the world communicator");
  auto it = std::find_if(comms_.begin(), comms_.end(),
                         [&](const std::unique_ptr<Comm>& c) {
                           return c.get() == comm;
                         });
  HAN_ASSERT_MSG(it != comms_.end(),
                 "free_comm of an unknown (or already freed) communicator");
  const int ctx = comm->context();
  // Notify while the id still names the dying comm; observers may free
  // derived communicators re-entrantly (e.g. HanComm's low/up splits).
  for (const auto& [token, fn] : destroy_observers_) fn(ctx);
  it = std::find_if(comms_.begin(), comms_.end(),
                    [&](const std::unique_ptr<Comm>& c) {
                      return c.get() == comm;
                    });
  HAN_ASSERT(it != comms_.end());
  comms_.erase(it);
  free_contexts_.push_back(ctx);
}

int SimWorld::add_comm_destroy_observer(std::function<void(int)> fn) {
  const int token = next_observer_token_++;
  destroy_observers_.emplace_back(token, std::move(fn));
  return token;
}

void SimWorld::remove_comm_destroy_observer(int token) {
  for (auto it = destroy_observers_.begin(); it != destroy_observers_.end();
       ++it) {
    if (it->first == token) {
      destroy_observers_.erase(it);
      return;
    }
  }
}

std::vector<Comm*> SimWorld::comm_split_shared(const Comm& parent) {
  std::vector<int> color(parent.size());
  std::vector<int> key(parent.size());
  for (int pr = 0; pr < parent.size(); ++pr) {
    color[pr] = ranks_[parent.world_rank(pr)].node;
    key[pr] = pr;
  }
  return comm_split(parent, color, key);
}

sim::Time SimWorld::path_latency(int src_world, int dst_world) const {
  if (src_world == dst_world) return 0.0;
  if (!same_node(src_world, dst_world)) return profile_.net_latency;
  sim::Time lat = profile_.shm_latency;
  if (ranks_[src_world].numa != ranks_[dst_world].numa) {
    lat += profile_.inter_numa_latency;
  }
  return lat;
}

int SimWorld::resolve_rail(int src_world, int dst_world, int rail) {
  const int rails = profile_.nics_per_node;
  if (rails == 1 || src_world == dst_world || same_node(src_world, dst_world)) {
    return 0;
  }
  if (rail >= 0) return rail % rails;
  if (profile_.rail_policy == machine::RailPolicy::RoundRobin) {
    return static_cast<int>(rail_rr_[src_world]++ % rails);
  }
  return ranks_[src_world].local_rank % rails;  // LeaderAffine
}

void SimWorld::start_data_flow(int src_world, int dst_world,
                               std::size_t bytes, int rail,
                               sim::Engine::Callback done) {
  const sim::Time lat = path_latency(src_world, dst_world);
  std::vector<net::ResourceId> path;
  double flow_bytes = static_cast<double>(bytes);
  double cap = net::FlowNet::no_cap();
  SerialLane* lane = nullptr;

  if (src_world == dst_world) {
    fabric_.intra_path(ranks_[src_world].node, ranks_[src_world].numa, path);
    cap = profile_.core_copy_bandwidth;
    lane = &copy_lane_[src_world];
  } else if (same_node(src_world, dst_world)) {
    // Shared-memory pipe: copy-in + copy-out through a hot (mostly
    // L3-resident) staging buffer. Pair bandwidth tops out at about half
    // the core copy rate; DRAM traffic is the fraction that misses cache.
    // Cross-NUMA pipes additionally cross the inter-socket link (and are
    // never cache-resident: full bus charge).
    fabric_.pair_path(ranks_[src_world].node, ranks_[src_world].numa,
                      ranks_[dst_world].numa, path);
    const bool cross = ranks_[src_world].numa != ranks_[dst_world].numa;
    flow_bytes *= cross ? 2.0 : 1.2;
    cap = (cross ? 0.5 : 0.6) * profile_.core_copy_bandwidth;
    lane = &copy_lane_[src_world];
  } else {
    fabric_.inter_path(ranks_[src_world].node, ranks_[dst_world].node, rail,
                       path);
    // Streams of queued messages run at the peak protocol efficiency; the
    // size-dependent dip of Fig. 11 is charged as a per-message stall in
    // the rendezvous handshake (see start_rendezvous), where back-to-back
    // segments can overlap it.
    cap = profile_.nic_bandwidth *
          p2p_.net_efficiency.at(std::max<std::size_t>(bytes, 64u << 20));
    lane = &net_tx_lane_[static_cast<std::size_t>(src_world) *
                             profile_.nics_per_node +
                         rail];
  }

  // Wire latency runs concurrently; the transfer itself is FIFO-serialized
  // per sender (NIC injection order / the one memcpy core).
  engine_.schedule_after(
      lat, [this, lane, path = std::move(path), flow_bytes, cap,
            done = std::move(done)]() mutable {
        lane->submit([this, path = std::move(path), flow_bytes, cap,
                      done = std::move(done)](
                         SerialLane::Release release) mutable {
          flownet_.start_flow(path, flow_bytes, cap,
                              [done = std::move(done),
                               release = std::move(release)]() mutable {
                                done();
                                release();
                              });
        });
      });
}

Request SimWorld::isend(const Comm& comm, int src, int dst, Tag tag,
                        BufView buf) {
  return isend_ctx(comm, comm.context(), src, dst, tag, buf);
}

Request SimWorld::isend_ctx(const Comm& comm, int ctx, int src, int dst,
                            Tag tag, BufView buf, int rail) {
  const int s = comm.world_rank(src);
  const int d = comm.world_rank(dst);
  Request sreq = make_request(engine_);
  ++messages_sent_;
  msg_counter_->add(1.0);
  msg_bytes_counter_->add(static_cast<double>(buf.bytes));

  ArrivedMsg msg;
  msg.ctx = ctx;
  msg.src_world = s;
  msg.dst_world = d;
  msg.tag = tag;
  msg.bytes = buf.bytes;
  msg.rail = resolve_rail(s, d, rail);
  msg.order = 0;  // stamped at delivery
  if (options_.data_mode && buf.has_data()) {
    msg.payload = std::make_shared<std::vector<std::byte>>(
        buf.data, buf.data + buf.bytes);
  }

  const bool eager = buf.bytes <= p2p_.eager_limit;
  msg.rndv = !eager;
  if (!eager) msg.send_req = sreq;

  ranks_[s].cpu.exec(engine_, jittered(p2p_.send_overhead),
                     [this, msg = std::move(msg),
                                                   sreq, eager, s, d]() {
    if (eager) {
      start_data_flow(s, d, msg.bytes, msg.rail, [this, msg, sreq]() mutable {
        deliver(std::move(msg));
        sreq->complete();
      });
    } else {
      // Rendezvous: only the RTS envelope travels now; the data flow starts
      // once the receiver matches and the CTS returns.
      engine_.schedule_after(path_latency(s, d), [this, msg]() mutable {
        deliver(std::move(msg));
      });
    }
  });
  return sreq;
}

Request SimWorld::irecv(const Comm& comm, int dst, int src, Tag tag,
                        BufView buf) {
  return irecv_ctx(comm, comm.context(), dst, src, tag, buf);
}

Request SimWorld::irecv_ctx(const Comm& comm, int ctx, int dst, int src,
                            Tag tag, BufView buf) {
  const int s = comm.world_rank(src);
  const int d = comm.world_rank(dst);
  Request rreq = make_request(engine_);

  PostedRecv pr;
  pr.ctx = ctx;
  pr.src_world = s;
  pr.tag = tag;
  pr.buf = buf;
  pr.req = rreq;
  pr.order = match_order_++;

  auto& mq = matching_[d];
  for (auto it = mq.unexpected.begin(); it != mq.unexpected.end(); ++it) {
    if (it->ctx == ctx && it->src_world == s && it->tag == tag) {
      ArrivedMsg msg = std::move(*it);
      mq.unexpected.erase(it);
      if (msg.rndv) {
        start_rendezvous(msg, std::move(pr));
      } else {
        match_eager(msg, pr);
      }
      return rreq;
    }
  }
  mq.posted.push_back(std::move(pr));
  return rreq;
}

void SimWorld::deliver(ArrivedMsg msg) {
  msg.order = match_order_++;
  auto& mq = matching_[msg.dst_world];
  for (auto it = mq.posted.begin(); it != mq.posted.end(); ++it) {
    if (it->ctx == msg.ctx && it->src_world == msg.src_world &&
        it->tag == msg.tag) {
      PostedRecv pr = std::move(*it);
      mq.posted.erase(it);
      if (msg.rndv) {
        start_rendezvous(msg, std::move(pr));
      } else {
        match_eager(msg, pr);
      }
      return;
    }
  }
  mq.unexpected.push_back(std::move(msg));
}

void SimWorld::match_eager(const ArrivedMsg& msg, PostedRecv& pr) {
  // Unpacking an eager message is a CPU-side copy on the receiver.
  const sim::Time unpack =
      static_cast<double>(msg.bytes) / profile_.core_copy_bandwidth;
  if (msg.payload && pr.buf.has_data()) {
    HAN_ASSERT_MSG(pr.buf.bytes >= msg.bytes, "eager receive truncation");
    std::memcpy(pr.buf.data, msg.payload->data(), msg.bytes);
  }
  Request req = pr.req;
  ranks_[msg.dst_world].cpu.exec(engine_,
                                 jittered(p2p_.recv_overhead + unpack),
                                 [req] { req->complete(); });
}

void SimWorld::start_rendezvous(const ArrivedMsg& msg, PostedRecv pr) {
  const int s = msg.src_world;
  const int d = msg.dst_world;
  const bool inter = !same_node(s, d);
  // Per-message protocol stall: registration + shallow rendezvous
  // pipelining cost that makes the achieved single-message bandwidth
  // follow the Fig. 11 efficiency curve. It is a *delay*, not NIC
  // occupancy, so back-to-back segment streams overlap it and run at peak
  // rate — matching how pipelined collectives beat ping-pong bandwidth.
  sim::Time stall = 0.0;
  if (inter) {
    const double eff = p2p_.net_efficiency.at(msg.bytes);
    stall = static_cast<double>(msg.bytes) / profile_.nic_bandwidth *
            (1.0 / eff - 1.0);
  }
  const sim::Time handshake =
      path_latency(s, d) + (inter ? p2p_.rndv_rtt_extra + stall : 0.2e-6);

  auto payload = msg.payload;
  auto send_req = msg.send_req;
  const std::size_t bytes = msg.bytes;
  const int rail = msg.rail;
  auto recv_buf = pr.buf;
  auto recv_req = pr.req;

  ranks_[d].cpu.exec(engine_, p2p_.match_overhead, [this, s, d, handshake,
                                                    payload, send_req, bytes,
                                                    rail, recv_buf,
                                                    recv_req]() {
    engine_.schedule_after(handshake, [this, s, d, payload, send_req, bytes,
                                       rail, recv_buf, recv_req]() {
      start_data_flow(s, d, bytes, rail, [this, d, payload, send_req, bytes,
                                          recv_buf, recv_req]() {
        if (payload && recv_buf.has_data()) {
          HAN_ASSERT_MSG(recv_buf.bytes >= bytes, "rendezvous truncation");
          std::memcpy(recv_buf.data, payload->data(), bytes);
        }
        send_req->complete();
        ranks_[d].cpu.exec(engine_, p2p_.recv_overhead,
                           [recv_req] { recv_req->complete(); });
      });
    });
  });
}

Request SimWorld::copy_flow(int world_rank, std::size_t bytes, double cap) {
  return copy_flow_pair(world_rank, world_rank, bytes, cap);
}

Request SimWorld::copy_flow_pair(int world_rank, int peer_world,
                                 std::size_t bytes, double cap) {
  Request req = make_request(engine_);
  std::vector<net::ResourceId> path;
  HAN_ASSERT(same_node(world_rank, peer_world));
  fabric_.pair_path(ranks_[world_rank].node, ranks_[world_rank].numa,
                    ranks_[peer_world].numa, path);
  if (cap <= 0.0) cap = profile_.core_copy_bandwidth;
  // A shared-memory copy charges the memory bus (FIFO per rank — one
  // memcpy engine) AND occupies a slice of the single-threaded progression
  // CPU: real progress engines interleave protocol work between copy
  // fragments, so the CPU is partially, not fully, held. Both effects
  // together produce the imperfect ib/sb overlap of paper Fig. 2.
  auto remaining = std::make_shared<int>(2);
  auto part_done = [req, remaining] {
    if (--*remaining == 0) req->complete();
  };
  copy_lane_[world_rank].submit(
      [this, path = std::move(path), bytes, cap,
       part_done](SerialLane::Release release) mutable {
        flownet_.start_flow(path, static_cast<double>(bytes), cap,
                            [part_done, release = std::move(release)]() mutable {
                              part_done();
                              release();
                            });
      });
  const sim::Time cpu_slice =
      static_cast<double>(bytes) /
      (profile_.core_copy_bandwidth / kCopyCpuShare);
  ranks_[world_rank].cpu.exec(engine_, cpu_slice, part_done);
  return req;
}

Request SimWorld::compute(int world_rank, sim::Time seconds) {
  Request req = make_request(engine_);
  ranks_[world_rank].cpu.exec(engine_, jittered(seconds),
                              [req] { req->complete(); });
  return req;
}

Request SimWorld::reduce_compute(int world_rank, std::size_t bytes,
                                 bool avx) {
  const double bw = avx ? profile_.reduce_bandwidth_avx
                        : profile_.reduce_bandwidth_scalar;
  return compute(world_rank, static_cast<double>(bytes) / bw);
}

void SimWorld::run(const Program& program) {
  auto live = std::make_shared<int>(world_size());
  for (int r = 0; r < world_size(); ++r) {
    sim::CoTask task = program(ranks_[r]);
    task.start([live] { --*live; });
  }
  engine_.run();
  HAN_ASSERT_MSG(*live == 0,
                 "deadlock: rank programs still blocked after event queue "
                 "drained");
}

}  // namespace han::mpi

// Communicators over simulated world ranks.
//
// A Comm is a globally visible object (every simulated process sees the
// same instance — the simulator has a god's-eye view), but all P2P and
// collective traffic is still addressed per-rank, so algorithms read
// exactly like their Open MPI counterparts.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "simbase/assert.hpp"

namespace han::mpi {

class Comm {
 public:
  Comm(int context, std::vector<int> world_ranks)
      : context_(context), world_ranks_(std::move(world_ranks)) {
    for (int i = 0; i < static_cast<int>(world_ranks_.size()); ++i) {
      to_comm_rank_.emplace(world_ranks_[i], i);
    }
  }
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int size() const { return static_cast<int>(world_ranks_.size()); }

  /// Matching-context id; message envelopes carry it (MPI context_id).
  int context() const { return context_; }

  int world_rank(int comm_rank) const {
    HAN_ASSERT(comm_rank >= 0 && comm_rank < size());
    return world_ranks_[comm_rank];
  }

  /// Comm rank of a world rank, or -1 when not a member.
  int comm_rank_of_world(int world_rank) const {
    auto it = to_comm_rank_.find(world_rank);
    return it == to_comm_rank_.end() ? -1 : it->second;
  }

  std::span<const int> world_ranks() const { return world_ranks_; }

 private:
  int context_;
  std::vector<int> world_ranks_;
  std::unordered_map<int, int> to_comm_rank_;
};

}  // namespace han::mpi

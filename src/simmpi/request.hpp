// Nonblocking-operation handles.
//
// A Request wraps a Waitable; rank programs `co_await *req`, schedules
// subscribe completion callbacks. Requests are shared_ptr-owned because a
// completion may outlive the issuing scope (e.g. an eagerly-buffered send).
#pragma once

#include <memory>

#include "simbase/cotask.hpp"

namespace han::mpi {

class RequestState : public sim::Waitable {
 public:
  using sim::Waitable::Waitable;
};

using Request = std::shared_ptr<RequestState>;

inline Request make_request(sim::Engine& engine) {
  return std::make_shared<RequestState>(engine);
}

/// Awaitable that completes when every request in the set completes.
/// Usage: `co_await wait_all(engine, {r1, r2});`
class WaitAll {
 public:
  WaitAll(sim::Engine& engine, std::vector<Request> reqs)
      : gate_(std::make_shared<RequestState>(engine)) {
    auto remaining = std::make_shared<std::size_t>(0);
    for (auto& r : reqs) {
      if (!r->done()) ++*remaining;
    }
    if (*remaining == 0) {
      gate_->complete();
      return;
    }
    for (auto& r : reqs) {
      if (r->done()) continue;
      r->on_complete([gate = gate_, remaining] {
        if (--*remaining == 0) gate->complete();
      });
    }
  }

  auto operator co_await() { return gate_->operator co_await(); }
  Request gate() const { return gate_; }

 private:
  Request gate_;
};

inline WaitAll wait_all(sim::Engine& engine, std::vector<Request> reqs) {
  return WaitAll(engine, std::move(reqs));
}

}  // namespace han::mpi

#include "parallel/pool.hpp"

#include <algorithm>

namespace han::par {

int resolve_jobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(jobs, 1);
}

int parse_jobs(const char* arg) {
  if (arg == nullptr || *arg == '\0') return -1;
  int v = 0;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || v > 4096) return -1;
    v = v * 10 + (*p - '0');
  }
  return v;
}

ThreadPool::ThreadPool(int threads, int tasks, std::function<void(int)> body)
    : body_(std::move(body)), tasks_(tasks) {
  HAN_ASSERT(threads >= 1);
  const int workers = std::min(threads, std::max(tasks, 1));
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] {
      for (;;) {
        const int i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_ || failed_.load(std::memory_order_relaxed)) return;
        try {
          body_(i);
        } catch (...) {
          // First failure wins; remaining workers drain and stop. The
          // partially-filled result slots are discarded by the rethrow.
          std::lock_guard<std::mutex> lock(error_mu_);
          if (!error_) error_ = std::current_exception();
          failed_.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::wait() {
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (error_) std::rethrow_exception(error_);
}

}  // namespace han::par

// han::par — the batched parallel simulation driver.
//
// SimWorld instances are deterministic and self-contained, so independent
// simulations (verification cases, tuner benchmarks, synthesis cases,
// figure cells) can run concurrently on a thread pool. The one rule that
// keeps every JSON/golden output byte-identical to a serial run: jobs are
// *independent* (each builds its own worlds, touches no shared state) and
// results are merged in input order, never completion order.
//
// parallel_map(jobs, n, fn) is the whole API surface: with jobs <= 1 it
// degenerates to a plain in-order loop on the calling thread — the serial
// path — so `--jobs 1` (the default everywhere) is bit-for-bit the
// pre-parallel behaviour, and `--jobs N` must match it exactly.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "simbase/assert.hpp"

namespace han::par {

/// Resolve a job-count request: 0 = one worker per hardware thread,
/// otherwise the request itself (clamped to >= 1).
int resolve_jobs(int jobs);

/// Parse a --jobs style argument ("4", "0" = auto); -1 on malformed input.
int parse_jobs(const char* arg);

/// Fixed-size pool of worker threads draining an index counter. One-shot:
/// constructed per parallel_map call (jobs are coarse — whole simulations —
/// so thread startup is noise), joined in the destructor.
class ThreadPool {
 public:
  /// Spawns min(threads, tasks) workers, each looping `body(index)` over
  /// the shared counter until `tasks` indices are consumed. The first
  /// exception thrown by any body is captured and rethrown from wait().
  ThreadPool(int threads, int tasks, std::function<void(int)> body);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Block until every index has been processed; rethrows the first
  /// captured exception.
  void wait();

 private:
  std::function<void(int)> body_;
  std::atomic<int> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::mutex error_mu_;
  int tasks_ = 0;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, n) and return the results indexed by i — the
/// deterministic merge point of every parallel driver in the tree. With
/// jobs <= 1 the calls run sequentially on the calling thread (the serial
/// path); otherwise up to `jobs` workers execute them concurrently. fn must
/// not touch state shared across indices.
template <typename Fn,
          typename R = decltype(std::declval<Fn&>()(0))>
std::vector<R> parallel_map(int jobs, int n, Fn fn) {
  HAN_ASSERT(n >= 0);
  std::vector<R> out(static_cast<std::size_t>(n));
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = fn(i);
    return out;
  }
  ThreadPool pool(jobs, n, [&out, &fn](int i) {
    out[static_cast<std::size_t>(i)] = fn(i);
  });
  pool.wait();
  return out;
}

}  // namespace han::par

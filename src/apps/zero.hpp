// ZeRO/FSDP-style sharded data-parallel training.
//
// Sharded optimizers (ZeRO stage >= 1, FSDP) replace Horovod's allreduce
// with the pair that actually matches the data flow: gradients are
// reduce-scattered so each worker only reduces and updates its own
// parameter shard, and updated shards are allgathered back before the
// next forward pass. The gradient reduce-scatter overlaps with backprop
// the way Horovod's allreduce does; the parameter allgather is exposed at
// the start of the step. Per-step communication volume matches allreduce
// (ring rs + ring ag), but the hierarchy-aware reduce-scatter is where
// HAN's ring inter module earns its keep.
#pragma once

#include "vendor/stack.hpp"

namespace han::apps {

struct ZeroOptions {
  std::size_t model_bytes = 244ull << 20;  // AlexNet-sized fp32 model
  std::size_t bucket_bytes = 64 << 20;     // grad bucketing (FSDP units)
  double compute_sec_per_step = 0.30;      // fwd+bwd on one worker
  double overlap_fraction = 0.5;           // rs hidden under backprop
  int batch_per_worker = 64;
  int steps = 3;
  int warmup_steps = 1;
};

struct ZeroReport {
  double step_sec = 0.0;           // averaged over measured steps
  double images_per_sec = 0.0;
  double gather_sec_per_step = 0.0;  // exposed parameter allgather
  double comm_sec_per_step = 0.0;    // all visible (non-overlapped) comm
  int workers = 0;
};

ZeroReport run_zero(vendor::MpiStack& stack, const ZeroOptions& options);

}  // namespace han::apps

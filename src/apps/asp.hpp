// ASP: all-pairs-shortest-path via parallel Floyd–Warshall (paper §IV-B1,
// Table III).
//
// Rows of the N x N distance matrix are block-distributed. In iteration k
// the owner broadcasts row k (4N bytes); every rank then relaxes its rows.
// MPI_Bcast dominates, which is why the paper uses ASP as the bcast
// application benchmark.
//
// Substitution note (DESIGN.md): the paper runs the first 1536 iterations
// of its "1M matrix" on 1536 Stampede2 processes. We simulate a reduced
// iteration count with rotating roots (covering intra-/inter-node root
// placements) and expose the per-iteration relaxation time as an explicit
// parameter — its default places HAN's communication share near the
// paper's ~46% — since only the relative times across MPI stacks carry
// information.
#pragma once

#include "vendor/stack.hpp"

namespace han::apps {

struct AspOptions {
  int matrix_n = 1 << 20;     // N; the broadcast row is 4N bytes (4MB)
  int iterations = 32;        // simulated iterations (roots rotate)
  /// Relaxation time per iteration per rank (vectorized min-plus over
  /// rows_per_rank * N cells). Explicit because the simulated "cores" have
  /// no inherent FLOP rate.
  double compute_sec_per_iter = 2.0e-3;
};

struct AspReport {
  double total_sec = 0.0;
  double comm_sec = 0.0;     // time spent inside MPI_Bcast (max over ranks)
  double comm_ratio = 0.0;   // comm / total
  int iterations = 0;
};

/// Run ASP on a stack's world. Every rank participates; the report uses
/// the slowest rank's accounting (the paper's convention).
AspReport run_asp(vendor::MpiStack& stack, const AspOptions& options);

}  // namespace han::apps

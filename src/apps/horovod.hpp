// Horovod-style synchronous data-parallel training (paper §IV-B2, Fig. 15).
//
// Horovod averages gradients with MPI_Allreduce, fusing tensors into
// fixed-size buffers. The paper trains AlexNet (~244MB of fp32 gradients)
// with tf_cnn_benchmarks on synthetic data; we reproduce the communication
// structure: per step, backprop compute followed by a sequence of fused
// allreduces, partially overlapped with compute, reporting images/sec.
#pragma once

#include "vendor/stack.hpp"

namespace han::apps {

struct HorovodOptions {
  std::size_t model_bytes = 244ull << 20;   // AlexNet fp32 gradients
  std::size_t fusion_bytes = 64 << 20;      // Horovod fusion buffer
  double compute_sec_per_step = 0.30;       // fwd+bwd on one worker
  double overlap_fraction = 0.5;            // comm hidden under backprop
  int batch_per_worker = 64;
  int steps = 3;
  int warmup_steps = 1;
};

struct HorovodReport {
  double step_sec = 0.0;     // averaged over measured steps
  double images_per_sec = 0.0;
  double comm_sec_per_step = 0.0;  // visible (non-overlapped) comm
  int workers = 0;
};

HorovodReport run_horovod(vendor::MpiStack& stack,
                          const HorovodOptions& options);

}  // namespace han::apps

#include "apps/zero.hpp"

#include <algorithm>

namespace han::apps {

using mpi::BufView;

ZeroReport run_zero(vendor::MpiStack& stack, const ZeroOptions& options) {
  mpi::SimWorld& w = stack.world();
  const int workers = w.world_size();
  const int rounds = options.warmup_steps + options.steps;

  // Bucket the model; each bucket is rounded up to `workers` equal blocks
  // (MPI_Reduce_scatter_block semantics — frameworks pad the last shard).
  std::vector<std::size_t> blocks;
  for (std::size_t off = 0; off < options.model_bytes;
       off += options.bucket_bytes) {
    const std::size_t bucket =
        std::min(options.bucket_bytes, options.model_bytes - off);
    blocks.push_back(std::max<std::size_t>(
        (bucket + workers - 1) / workers / sizeof(float) * sizeof(float),
        sizeof(float)));
  }

  auto sync = std::make_shared<mpi::SyncDomain>(w.engine(), workers);
  auto step_t = std::make_shared<std::vector<double>>(rounds, 0.0);
  auto gather_t = std::make_shared<std::vector<double>>(rounds, 0.0);

  w.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](vendor::MpiStack& stack2, mpi::SimWorld& w2,
              std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<std::vector<double>> step_t2,
              std::shared_ptr<std::vector<double>> gather_t2,
              std::vector<std::size_t> blocks2, ZeroOptions opt, int rounds2,
              int workers2, int me) -> sim::CoTask {
      for (int s = 0; s < rounds2; ++s) {
        co_await *sync2->arrive();
        const double t0 = w2.now();
        // Allgather the updated parameter shards — exposed at the start
        // of forward (FSDP prefetches per layer; bucket granularity here).
        for (std::size_t block : blocks2) {
          co_await *stack2.iallgather(
              me, BufView::timing_only(block, mpi::Datatype::Float),
              BufView::timing_only(block * workers2, mpi::Datatype::Float));
        }
        (*gather_t2)[s] = std::max((*gather_t2)[s], w2.now() - t0);
        // Backprop: gradient buckets stream out and are reduce-scattered
        // under the overlappable tail of compute.
        mpi::Request compute = w2.compute(me, opt.compute_sec_per_step);
        co_await sim::Delay{
            w2.engine(),
            (1.0 - opt.overlap_fraction) * opt.compute_sec_per_step};
        for (std::size_t block : blocks2) {
          co_await *stack2.ireduce_scatter(
              me,
              BufView::timing_only(block * workers2, mpi::Datatype::Float),
              BufView::timing_only(block, mpi::Datatype::Float),
              mpi::Datatype::Float, mpi::ReduceOp::Sum);
        }
        co_await *compute;
        (*step_t2)[s] = std::max((*step_t2)[s], w2.now() - t0);
      }
    }(stack, w, sync, step_t, gather_t, blocks, options, rounds, workers,
      rank.world_rank);
  });

  ZeroReport report;
  report.workers = workers;
  double sum = 0.0, gsum = 0.0;
  for (int s = options.warmup_steps; s < rounds; ++s) {
    sum += (*step_t)[s];
    gsum += (*gather_t)[s];
  }
  report.step_sec = sum / options.steps;
  report.gather_sec_per_step = gsum / options.steps;
  report.comm_sec_per_step =
      std::max(0.0, report.step_sec - options.compute_sec_per_step);
  report.images_per_sec =
      static_cast<double>(options.batch_per_worker) * workers /
      report.step_sec;
  obs::MetricsRegistry& m = stack.world().metrics();
  m.counter("app.zero.steps").add(static_cast<double>(options.steps));
  m.counter("app.zero.step_seconds").add(report.step_sec * options.steps);
  m.counter("app.zero.gather_seconds")
      .add(report.gather_sec_per_step * options.steps);
  m.counter("app.zero.comm_seconds")
      .add(report.comm_sec_per_step * options.steps);
  return report;
}

}  // namespace han::apps

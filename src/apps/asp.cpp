#include "apps/asp.hpp"

#include <algorithm>

namespace han::apps {

using mpi::BufView;

AspReport run_asp(vendor::MpiStack& stack, const AspOptions& options) {
  mpi::SimWorld& w = stack.world();
  const int procs = w.world_size();
  const std::size_t row_bytes =
      static_cast<std::size_t>(options.matrix_n) * sizeof(float);
  const double compute_sec = options.compute_sec_per_iter;

  auto comm_time = std::make_shared<std::vector<double>>(procs, 0.0);
  auto total_time = std::make_shared<std::vector<double>>(procs, 0.0);

  const double start = w.now();
  w.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](vendor::MpiStack& stack2, mpi::SimWorld& w2,
              std::shared_ptr<std::vector<double>> comm_time2,
              std::shared_ptr<std::vector<double>> total_time2,
              std::size_t row_bytes2, double compute_sec2, int iterations,
              int procs2, int me) -> sim::CoTask {
      const double t_begin = w2.now();
      for (int k = 0; k < iterations; ++k) {
        const int root = k % procs2;  // owner of row k under block layout
        const double t0 = w2.now();
        mpi::Request bc = stack2.ibcast(me, root,
                                       BufView::timing_only(row_bytes2),
                                       mpi::Datatype::Float);
        co_await *bc;
        (*comm_time2)[me] += w2.now() - t0;
        co_await *w2.compute(me, compute_sec2);
      }
      (*total_time2)[me] = w2.now() - t_begin;
    }(stack, w, comm_time, total_time, row_bytes, compute_sec,
      options.iterations, procs, rank.world_rank);
  });
  (void)start;

  AspReport report;
  report.iterations = options.iterations;
  const int slowest = static_cast<int>(
      std::max_element(total_time->begin(), total_time->end()) -
      total_time->begin());
  report.total_sec = (*total_time)[slowest];
  report.comm_sec = (*comm_time)[slowest];
  report.comm_ratio =
      report.total_sec > 0.0 ? report.comm_sec / report.total_sec : 0.0;
  obs::MetricsRegistry& m = stack.world().metrics();
  m.counter("app.asp.iterations")
      .add(static_cast<double>(options.iterations));
  m.counter("app.asp.total_seconds").add(report.total_sec);
  m.counter("app.asp.comm_seconds").add(report.comm_sec);
  return report;
}

}  // namespace han::apps

#include "apps/horovod.hpp"

#include <algorithm>

namespace han::apps {

using mpi::BufView;

HorovodReport run_horovod(vendor::MpiStack& stack,
                          const HorovodOptions& options) {
  mpi::SimWorld& w = stack.world();
  const int workers = w.world_size();
  const int rounds = options.warmup_steps + options.steps;

  // Fused gradient chunks, last one ragged.
  std::vector<std::size_t> chunks;
  for (std::size_t off = 0; off < options.model_bytes;
       off += options.fusion_bytes) {
    chunks.push_back(std::min(options.fusion_bytes,
                              options.model_bytes - off));
  }

  auto sync = std::make_shared<mpi::SyncDomain>(w.engine(), workers);
  auto step_t = std::make_shared<std::vector<double>>(rounds, 0.0);

  w.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](vendor::MpiStack& stack2, mpi::SimWorld& w2,
              std::shared_ptr<mpi::SyncDomain> sync2,
              std::shared_ptr<std::vector<double>> step_t2,
              std::vector<std::size_t> chunks2, HorovodOptions opt,
              int rounds2, int me) -> sim::CoTask {
      for (int s = 0; s < rounds2; ++s) {
        co_await *sync2->arrive();
        const double t0 = w2.now();
        // Backprop: gradients stream out; the first fusion buffer is
        // ready after the non-overlappable fraction of compute.
        mpi::Request compute = w2.compute(me, opt.compute_sec_per_step);
        co_await sim::Delay{
            w2.engine(),
            (1.0 - opt.overlap_fraction) * opt.compute_sec_per_step};
        for (std::size_t bytes : chunks2) {
          mpi::Request ar = stack2.iallreduce(
              me, BufView::timing_only(bytes), BufView::timing_only(bytes),
              mpi::Datatype::Float, mpi::ReduceOp::Sum);
          co_await *ar;
        }
        co_await *compute;
        (*step_t2)[s] = std::max((*step_t2)[s], w2.now() - t0);
      }
    }(stack, w, sync, step_t, chunks, options, rounds, rank.world_rank);
  });

  HorovodReport report;
  report.workers = workers;
  double sum = 0.0;
  for (int s = options.warmup_steps; s < rounds; ++s) sum += (*step_t)[s];
  report.step_sec = sum / options.steps;
  report.comm_sec_per_step =
      std::max(0.0, report.step_sec - options.compute_sec_per_step);
  report.images_per_sec =
      static_cast<double>(options.batch_per_worker) * workers /
      report.step_sec;
  obs::MetricsRegistry& m = stack.world().metrics();
  m.counter("app.horovod.steps").add(static_cast<double>(options.steps));
  m.counter("app.horovod.step_seconds")
      .add(report.step_sec * options.steps);
  m.counter("app.horovod.comm_seconds")
      .add(report.comm_sec_per_step * options.steps);
  return report;
}

}  // namespace han::apps

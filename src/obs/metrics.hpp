// han::obs — metrics registry for the simulated stack.
//
// Whole-collective timings hide *why* a configuration wins (paper §IV:
// level-dependent bandwidth, congestion at hot processes, imperfect
// overlap). This layer gives every subsystem a place to publish the
// quantities that explain a run:
//
//  * Counter    — monotonically increasing total (bytes moved, actions
//                 executed, benchmark cost seconds).
//  * Gauge      — instantaneous value with time-weighted statistics
//                 (link utilization, queue depth, in-flight concurrency).
//                 `mean_active` — the time-weighted mean over the window
//                 where the gauge was nonzero — is the overlap ratio when
//                 the gauge counts in-flight tasks.
//  * Histogram  — weighted value distribution over fixed buckets (action
//                 durations, time-weighted congestion queue depth).
//
// A registry belongs to one SimWorld; all updates carry simulated time.
// Export (JSON/CSV, see obs/report.hpp) iterates metrics in name order and
// formats through snprintf, so two identical simulator runs produce
// byte-identical reports. When a Tracer is attached, every gauge change
// also lands as a Perfetto counter-track sample ("C" event).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "simbase/trace.hpp"
#include "simbase/units.hpp"

namespace han::obs {

class MetricsRegistry;

class Counter {
 public:
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  /// Set the instantaneous value at simulated time `now`. Time must be
  /// non-decreasing across updates (the simulator guarantees this).
  void set(sim::Time now, double value);
  void add(sim::Time now, double delta) { set(now, value_ + delta); }

  double value() const { return value_; }
  double max() const { return max_; }
  /// Time-weighted mean over [first update, now].
  double mean(sim::Time now) const;
  /// Time-weighted mean over the sub-window where the value was nonzero.
  /// For an in-flight-task gauge this is the overlap ratio: 1.0 = strictly
  /// serial, k = on average k tasks ran concurrently while any ran.
  double mean_active(sim::Time now) const;
  /// Total time the value was nonzero.
  double active_seconds(sim::Time now) const;

 private:
  friend class MetricsRegistry;
  double pending_integral(sim::Time now) const;

  MetricsRegistry* owner_ = nullptr;  // tracer feed; set at creation
  std::string name_;
  double value_ = 0.0;
  double max_ = 0.0;
  double integral_ = 0.0;  // ∫ value dt since first update
  double nonzero_ = 0.0;   // ∫ [value != 0] dt since first update
  sim::Time t0_ = 0.0;
  sim::Time last_ = 0.0;
  bool started_ = false;
  bool emitted_ = false;
  double last_emitted_ = 0.0;
};

class Histogram {
 public:
  /// `bounds` are ascending upper bucket edges; an implicit +inf bucket is
  /// appended. Empty bounds use a power-of-4 default suited to counts.
  explicit Histogram(std::vector<double> bounds = {});

  /// Record `value` with `weight` (1.0 for plain counts; a duration for
  /// time-weighted distributions such as congestion queue depth).
  void observe(double value, double weight = 1.0);

  double total_weight() const { return total_weight_; }
  double weighted_mean() const;
  /// Weighted q-quantile estimated from bucket edges (upper edge of the
  /// bucket containing the q-th weight; max bound for the overflow bucket).
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> bounds_;
  std::vector<double> weights_;  // bounds_.size() + 1 (overflow last)
  double total_weight_ = 0.0;
  double weighted_sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (instrumentation caches them; never erase a metric).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  /// Free-form report metadata (machine shape, binary name). Exported
  /// under "meta"; keep values run-independent or reports lose their
  /// byte-for-byte determinism.
  void set_meta(std::string_view key, std::string_view value);

  /// Fold another registry's counters into this one (find-or-create, then
  /// add). Batched parallel drivers (han::par) give every job a private
  /// registry and merge in input order, so the merged totals match a
  /// serial run exactly. Gauges and histograms are time-coupled to their
  /// own engine and are deliberately not merged.
  void merge_counters(const MetricsRegistry& other);

  /// Attach a tracer: every gauge change is mirrored as a counter-track
  /// sample. Pass nullptr to detach.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  sim::Tracer* tracer() { return tracer_; }

  std::size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Deterministic structured report; `now` closes the gauges' integration
  /// windows. See docs/OBSERVABILITY.md for the schema.
  std::string to_json(sim::Time now) const;
  /// CSV flattening: `type,name,field,value` rows in the JSON's order.
  std::string to_csv(sim::Time now) const;

 private:
  // std::map: stable references plus name-sorted iteration for export.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> meta_;
  sim::Tracer* tracer_ = nullptr;
};

}  // namespace han::obs

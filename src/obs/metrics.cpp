#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "simbase/assert.hpp"

namespace han::obs {

namespace {

/// Locale-independent shortest-ish float formatting; deterministic across
/// runs for identical doubles.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
}

}  // namespace

// ---- Gauge ----------------------------------------------------------------

double Gauge::pending_integral(sim::Time now) const {
  return started_ && now > last_ ? value_ * (now - last_) : 0.0;
}

void Gauge::set(sim::Time now, double value) {
  if (!started_) {
    started_ = true;
    t0_ = now;
    last_ = now;
  } else {
    const sim::Time dt = now - last_;
    if (dt > 0.0) {
      integral_ += value_ * dt;
      if (value_ != 0.0) nonzero_ += dt;
      last_ = now;
    }
  }
  value_ = value;
  max_ = std::max(max_, value);
  if (owner_ != nullptr && owner_->tracer() != nullptr &&
      (!emitted_ || value != last_emitted_)) {
    owner_->tracer()->counter(name_, now, value);
    emitted_ = true;
    last_emitted_ = value;
  }
}

double Gauge::mean(sim::Time now) const {
  if (!started_ || now <= t0_) return value_;
  return (integral_ + pending_integral(now)) / (now - t0_);
}

double Gauge::active_seconds(sim::Time now) const {
  double active = nonzero_;
  if (started_ && value_ != 0.0 && now > last_) active += now - last_;
  return active;
}

double Gauge::mean_active(sim::Time now) const {
  const double active = active_seconds(now);
  if (active <= 0.0) return 0.0;
  return (integral_ + pending_integral(now)) / active;
}

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    for (double b = 1.0; b <= 65536.0; b *= 4.0) bounds_.push_back(b);
  }
  HAN_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  weights_.assign(bounds_.size() + 1, 0.0);
}

void Histogram::observe(double value, double weight) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  weights_[static_cast<std::size_t>(it - bounds_.begin())] += weight;
  total_weight_ += weight;
  weighted_sum_ += value * weight;
}

double Histogram::weighted_mean() const {
  return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
}

double Histogram::quantile(double q) const {
  if (total_weight_ <= 0.0) return 0.0;
  const double target = q * total_weight_;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    if (acc >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

// ---- MetricsRegistry ------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
    it->second.owner_ = this;
    it->second.name_ = it->first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

void MetricsRegistry::set_meta(std::string_view key, std::string_view value) {
  meta_[std::string(key)] = std::string(value);
}

void MetricsRegistry::merge_counters(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c.value());
  }
}

std::string MetricsRegistry::to_json(sim::Time now) const {
  std::string out = "{\n\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : meta_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, k);
    out += ':';
    append_json_string(out, v);
  }
  out += "},\n\"sim_seconds\":" + fmt(now) + ",\n\"counters\":{";
  first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    append_json_string(out, name);
    out += ':' + fmt(c.value());
  }
  out += "},\n\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    append_json_string(out, name);
    out += ":{\"value\":" + fmt(g.value()) + ",\"mean\":" + fmt(g.mean(now)) +
           ",\"mean_active\":" + fmt(g.mean_active(now)) +
           ",\"active_seconds\":" + fmt(g.active_seconds(now)) +
           ",\"max\":" + fmt(g.max()) + '}';
  }
  out += "},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    append_json_string(out, name);
    out += ":{\"weight\":" + fmt(h.total_weight()) +
           ",\"mean\":" + fmt(h.weighted_mean()) +
           ",\"p50\":" + fmt(h.quantile(0.5)) +
           ",\"p99\":" + fmt(h.quantile(0.99)) + ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out += ',';
      out += fmt(h.bounds()[i]);
    }
    out += "],\"weights\":[";
    for (std::size_t i = 0; i < h.weights().size(); ++i) {
      if (i > 0) out += ',';
      out += fmt(h.weights()[i]);
    }
    out += "]}";
  }
  out += "}\n}\n";
  return out;
}

std::string MetricsRegistry::to_csv(sim::Time now) const {
  // Cells never contain commas/quotes (metric names are code-chosen), so
  // no CSV quoting is needed.
  std::string out = "type,name,field,value\n";
  auto row = [&out](std::string_view type, std::string_view name,
                    std::string_view field, double v) {
    out += type;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    out += fmt(v);
    out += '\n';
  };
  for (const auto& [k, v] : meta_) {
    out += "meta," + k + ",value," + v + '\n';
  }
  row("run", "sim_seconds", "value", now);
  for (const auto& [name, c] : counters_) row("counter", name, "value",
                                              c.value());
  for (const auto& [name, g] : gauges_) {
    row("gauge", name, "value", g.value());
    row("gauge", name, "mean", g.mean(now));
    row("gauge", name, "mean_active", g.mean_active(now));
    row("gauge", name, "active_seconds", g.active_seconds(now));
    row("gauge", name, "max", g.max());
  }
  for (const auto& [name, h] : histograms_) {
    row("histogram", name, "weight", h.total_weight());
    row("histogram", name, "mean", h.weighted_mean());
    row("histogram", name, "p50", h.quantile(0.5));
    row("histogram", name, "p99", h.quantile(0.99));
  }
  return out;
}

}  // namespace han::obs

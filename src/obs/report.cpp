#include "obs/report.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace han::obs {

namespace {

bool write_file(const std::string& path, const std::string& content) {
  errno = 0;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "obs::write_report: cannot open '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  f << content;
  f.flush();
  if (!f) {
    std::fprintf(stderr, "obs::write_report: write to '%s' failed: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace

bool write_report(const MetricsRegistry& registry, sim::Time now,
                  const std::string& base) {
  const bool json_ok = write_file(base + ".json", registry.to_json(now));
  const bool csv_ok = write_file(base + ".csv", registry.to_csv(now));
  return json_ok && csv_ok;
}

}  // namespace han::obs

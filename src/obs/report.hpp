// Structured run-report export: one metrics registry -> `<base>.json` +
// `<base>.csv`. The shared `--metrics <base>` flag of every bench/app
// binary lands here (bench/bench_util.hpp::Obs).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace han::obs {

/// Write `<base>.json` and `<base>.csv`. `now` closes the gauges'
/// integration windows (pass the world's simulated time). Returns false on
/// I/O failure (after reporting it on stderr).
bool write_report(const MetricsRegistry& registry, sim::Time now,
                  const std::string& base);

}  // namespace han::obs

// hansim — command-line sweep tool over the simulated cluster.
//
// Run any collective on any stack/machine/shape without writing code:
//
//   hansim --machine aries --nodes 16 --ppn 8 [cont.]
//          --op bcast --stacks ompi,cray,han --min 4 --max 4M
//
// Flags (all optional):
//   --machine aries|opath     machine profile            [aries]
//   --nodes N --ppn P         cluster shape              [8 x 8]
//   --op bcast|allreduce      collective                 [bcast]
//   --stacks a,b,c            comma-separated stack list [ompi,han]
//   --min B --max B           message ladder (x4 steps)  [4 .. 1M]
//   --tune                    autotune the HAN stack first
#include <cstdio>
#include <sstream>

#include "bench/bench_util.hpp"
#include "benchkit/imb.hpp"

using namespace han;

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  if (args.has("--help") || args.has("-h")) {
    std::printf(
        "usage: hansim [--machine aries|opath] [--nodes N] [--ppn P]\n"
        "              [--op bcast|allreduce] [--stacks ompi,han,...]\n"
        "              [--min bytes] [--max bytes] [--tune]\n"
        "              [--metrics base] [--trace base]\n");
    return 0;
  }
  const std::string machine = args.get_string("--machine", "aries");
  const int nodes = static_cast<int>(args.get_long("--nodes", 8));
  const int ppn = static_cast<int>(args.get_long("--ppn", 8));
  const std::string op = args.get_string("--op", "bcast");
  const std::string stacks_arg = args.get_string("--stacks", "ompi,han");
  const std::size_t min_b = args.get_bytes("--min", 4);
  const std::size_t max_b = args.get_bytes("--max", 1 << 20);

  const machine::MachineProfile profile =
      machine == "opath" ? machine::make_opath(nodes, ppn)
                         : machine::make_aries(nodes, ppn);

  std::vector<std::string> names;
  std::stringstream ss(stacks_arg);
  for (std::string item; std::getline(ss, item, ',');) {
    if (!item.empty()) names.push_back(item);
  }

  bench::Obs obs(args, "hansim");
  std::vector<std::unique_ptr<vendor::MpiStack>> stacks;
  for (const std::string& name : names) {
    stacks.push_back(vendor::make_stack(name, profile));
    obs.attach(stacks.back()->world(), &stacks.back()->runtime());
    if (name == "han" && args.has("--tune")) {
      auto* hs = static_cast<vendor::HanStack*>(stacks.back().get());
      tune::TunerOptions topt;
      topt.heuristics = true;
      topt.kinds = {op == "allreduce" ? coll::CollKind::Allreduce
                                      : coll::CollKind::Bcast};
      const tune::TuneReport rep = hs->autotune(topt);
      std::printf("[tuned han: %zu entries, %.3f sim s]\n",
                  rep.table.size(), rep.tuning_cost);
    }
  }

  benchkit::ImbOptions iopt;
  iopt.sizes = bench::ladder4(min_b, max_b);

  std::vector<std::string> header{"bytes"};
  for (const auto& s : stacks) header.push_back(s->name() + " us");
  sim::Table t(std::move(header));

  std::vector<std::vector<benchkit::ImbPoint>> results;
  for (auto& stack : stacks) {
    results.push_back(op == "allreduce"
                          ? benchkit::imb_allreduce(*stack, iopt)
                          : benchkit::imb_bcast(*stack, iopt));
    obs.emit(stack->world(), "." + stack->name());
  }
  for (std::size_t row = 0; row < iopt.sizes.size(); ++row) {
    t.begin_row().cell(sim::format_bytes(iopt.sizes[row]));
    for (auto& r : results) t.cell(r[row].avg_sec * 1e6);
  }
  t.print("MPI_" + op + " on " + machine + " " + std::to_string(nodes) +
          "x" + std::to_string(ppn));
  return 0;
}

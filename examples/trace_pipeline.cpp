// Trace example: run a pipelined HAN bcast with the execution tracer
// attached and dump a Chrome trace (load han_bcast_trace.json in
// chrome://tracing or https://ui.perfetto.dev) — the visual counterpart of
// the paper's Fig. 1: watch sb(i-1) ride under ib(i) on the leader ranks.
#include <cstdio>

#include "coll/registry.hpp"
#include "han/han.hpp"
#include "simbase/trace.hpp"

using namespace han;

int main() {
  mpi::SimWorld world(machine::make_aries(/*nodes=*/4, /*ppn=*/4));
  coll::CollRuntime runtime(world);
  coll::ModuleSet modules(world, runtime);
  core::HanModule han(world, runtime, modules);

  sim::Tracer tracer;
  runtime.set_tracer(&tracer);

  core::HanConfig cfg;
  cfg.fs = 256 << 10;  // 8 segments of a 2MB message
  cfg.imod = "adapt";
  cfg.smod = "sm";
  cfg.ibalg = coll::Algorithm::Chain;
  cfg.iralg = coll::Algorithm::Chain;
  cfg.ibs = 64 << 10;

  world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](mpi::SimWorld& w, core::HanModule& han2, core::HanConfig cfg2,
              int me) -> sim::CoTask {
      mpi::Request r = han2.ibcast_cfg(w.world_comm(), me, 0,
                                      mpi::BufView::timing_only(2 << 20),
                                      mpi::Datatype::Byte, cfg2);
      co_await *r;
    }(world, han, cfg, rank.world_rank);
  });

  const char* path = "han_bcast_trace.json";
  if (tracer.save(path)) {
    std::printf(
        "simulated a 2MB HAN bcast on 4x4 ranks in %.2f us\n"
        "wrote %zu spans to %s — open it in chrome://tracing\n",
        world.now() * 1e6, tracer.size(), path);
  } else {
    std::printf("could not write %s\n", path);
    return 1;
  }

  // A taste of what the trace shows, printed as text: the leader of node 1
  // alternates intra copies (sb) with inter sends/recvs (ib).
  std::printf("\nfirst spans on rank 4 (node 1's leader):\n");
  int shown = 0;
  for (const auto& s : tracer.spans()) {
    if (s.tid != 4 || shown >= 8) continue;
    std::printf("  %8.2f us  +%7.2f us  %s\n", s.start * 1e6,
                s.duration * 1e6, s.name.c_str());
    ++shown;
  }
  return 0;
}

// Quickstart: simulate a small cluster, run HAN collectives with real
// payloads, and inspect both the data and the simulated timings.
//
//   $ ./quickstart
//
// Walks through: building a machine profile, wiring the collective stack,
// writing rank programs as C++20 coroutines, and issuing HAN's
// hierarchical Bcast and Allreduce.
#include <cstdio>
#include <numeric>
#include <vector>

#include "han/han.hpp"

using namespace han;

int main() {
  // A 4-node x 8-process "cluster" with Shaheen II-like (Cray Aries class)
  // parameters. data_mode carries real payloads — ideal for correctness
  // checks and small experiments; switch it off for big timing sweeps.
  mpi::SimWorld::Options options;
  options.data_mode = true;
  mpi::SimWorld world(machine::make_aries(/*nodes=*/4, /*ppn=*/8), options);

  // The collective machinery: the plan executor, the five Open MPI-style
  // submodules (tuned/libnbc/adapt/sm/solo), and HAN on top.
  coll::CollRuntime runtime(world);
  coll::ModuleSet modules(world, runtime);
  core::HanModule han(world, runtime, modules);

  const int P = world.world_size();
  std::printf("cluster: %d nodes x %d procs = %d ranks\n", 4, 8, P);

  // --- MPI_Bcast ---------------------------------------------------------
  std::vector<std::vector<std::int32_t>> buf(P);
  for (int r = 0; r < P; ++r) buf[r].assign(1024, r == 0 ? 42 : -1);

  world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](mpi::SimWorld& w, core::HanModule& han3,
              std::vector<std::vector<std::int32_t>>& buf2,
              int me) -> sim::CoTask {
      mpi::Request r = han3.ibcast(
          w.world_comm(), me, /*root=*/0,
          mpi::BufView::of(buf2[me], mpi::Datatype::Int32),
          mpi::Datatype::Int32, coll::CollConfig{});
      co_await *r;
    }(world, han, buf, rank.world_rank);
  });

  bool bcast_ok = true;
  for (int r = 0; r < P; ++r) {
    for (std::int32_t v : buf[r]) bcast_ok &= (v == 42);
  }
  std::printf("bcast   : every rank sees the root's data: %s (t=%.2f us)\n",
              bcast_ok ? "yes" : "NO", world.now() * 1e6);

  // --- MPI_Allreduce -------------------------------------------------------
  std::vector<std::vector<std::int32_t>> send(P), recv(P);
  for (int r = 0; r < P; ++r) {
    send[r].assign(512, r + 1);  // rank r contributes r+1 everywhere
    recv[r].assign(512, 0);
  }
  const double t0 = world.now();
  world.run([&](mpi::Rank& rank) -> sim::CoTask {
    return [](mpi::SimWorld& w, core::HanModule& han2,
              std::vector<std::vector<std::int32_t>>& send2,
              std::vector<std::vector<std::int32_t>>& recv2,
              int me) -> sim::CoTask {
      mpi::Request r = han2.iallreduce(
          w.world_comm(), me,
          mpi::BufView::of(send2[me], mpi::Datatype::Int32),
          mpi::BufView::of(recv2[me], mpi::Datatype::Int32),
          mpi::Datatype::Int32, mpi::ReduceOp::Sum, coll::CollConfig{});
      co_await *r;
    }(world, han, send, recv, rank.world_rank);
  });

  const std::int32_t expect = P * (P + 1) / 2;  // sum of 1..P
  bool allreduce_ok = true;
  for (int r = 0; r < P; ++r) {
    for (std::int32_t v : recv[r]) allreduce_ok &= (v == expect);
  }
  std::printf(
      "allreduce: every rank holds the sum %d: %s (t=%.2f us)\n", expect,
      allreduce_ok ? "yes" : "NO", (world.now() - t0) * 1e6);

  // HAN's configuration for this operation (the default heuristic; see
  // examples/autotune_walkthrough.cpp for the tuned version).
  const core::HanConfig cfg =
      han.decide(coll::CollKind::Allreduce, world.world_comm(), 512 * 4);
  std::printf("allreduce config used: %s\n", cfg.to_string().c_str());

  return bcast_ok && allreduce_ok ? 0 : 1;
}

// ASP example: the bcast-bound all-pairs-shortest-path workload the paper
// evaluates (Table III), run across MPI stacks on a Stampede2-like
// cluster. Shows how applications plug an MpiStack's collectives into a
// compute loop.
#include <cstdio>

#include "apps/asp.hpp"

using namespace han;

int main() {
  apps::AspOptions options;
  options.matrix_n = 256 << 10;  // 1MB row broadcasts
  options.iterations = 24;
  options.compute_sec_per_iter = 0.5e-3;

  std::printf("ASP / Floyd-Warshall: N=%d, %d iterations, 12x8 cluster\n\n",
              options.matrix_n, options.iterations);
  std::printf("%-10s %12s %12s %10s\n", "stack", "total(ms)", "comm(ms)",
              "comm %");

  double ompi_total = 0.0, han_total = 0.0;
  for (const char* name : {"ompi", "intel", "mvapich", "han"}) {
    auto stack = vendor::make_stack(name, machine::make_opath(12, 8));
    if (std::string(name) == "han") {
      // As deployed: tune once for the machine, then run the app.
      auto* hs = static_cast<vendor::HanStack*>(stack.get());
      tune::TunerOptions topt;
      topt.heuristics = true;
      topt.kinds = {coll::CollKind::Bcast};
      topt.message_sizes = {static_cast<std::size_t>(options.matrix_n) * 4};
      hs->autotune(topt);
    }
    const apps::AspReport r = apps::run_asp(*stack, options);
    std::printf("%-10s %12.3f %12.3f %9.1f%%\n", name, r.total_sec * 1e3,
                r.comm_sec * 1e3, r.comm_ratio * 100.0);
    if (std::string(name) == "ompi") ompi_total = r.total_sec;
    if (std::string(name) == "han") han_total = r.total_sec;
  }
  std::printf("\nHAN speedup over default Open MPI: %.2fx\n",
              ompi_total / han_total);
  return 0;
}

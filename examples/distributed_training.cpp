// Distributed-training example: the Horovod-style allreduce-bound workload
// of paper Fig. 15 — synchronous data-parallel SGD with fused gradient
// allreduces — scaled over worker counts.
#include <cstdio>

#include "apps/horovod.hpp"

using namespace han;

int main() {
  apps::HorovodOptions options;
  options.model_bytes = 244ull << 20;  // AlexNet-sized fp32 gradients
  options.fusion_bytes = 64 << 20;     // Horovod's default fusion buffer
  options.compute_sec_per_step = 0.30;
  options.steps = 2;

  std::printf("Horovod-style training, AlexNet-sized model (%s)\n\n",
              sim::format_bytes(options.model_bytes).c_str());
  std::printf("%8s %14s %14s %10s\n", "workers", "ompi img/s", "han img/s",
              "gain");

  for (int nodes : {4, 8, 12}) {
    const machine::MachineProfile profile = machine::make_opath(nodes, 12);
    auto ompi = vendor::make_stack("ompi", profile);
    auto han = vendor::make_stack("han", profile);
    const apps::HorovodReport r_ompi = apps::run_horovod(*ompi, options);
    const apps::HorovodReport r_han = apps::run_horovod(*han, options);
    std::printf("%8d %14.1f %14.1f %9.2f%%\n", r_han.workers,
                r_ompi.images_per_sec, r_han.images_per_sec,
                100.0 * (r_han.images_per_sec / r_ompi.images_per_sec - 1.0));
  }
  std::printf("\nThe gain grows with scale: allreduce takes a larger share "
              "of each step,\nand HAN's pipelined hierarchical allreduce "
              "scales better than flat trees.\n");
  return 0;
}

// Autotuning walkthrough: benchmark HAN's tasks, build the lookup table,
// save it to disk, reload it, and measure the improvement over the static
// default configuration — the full offline tuning workflow of paper
// §III-C, the way a machine owner would run it once at install time.
#include <cstdio>

#include "autotune/tuner.hpp"

using namespace han;

namespace {

double measure_bcast(tune::Searcher& s, std::size_t bytes,
                     const core::HanConfig& cfg) {
  return s.measure_collective(coll::CollKind::Bcast, bytes, cfg);
}

}  // namespace

int main() {
  mpi::SimWorld world(machine::make_aries(/*nodes=*/8, /*ppn=*/8));
  coll::CollRuntime runtime(world);
  coll::ModuleSet modules(world, runtime);
  core::HanModule han(world, runtime, modules);

  std::printf("== step 1: offline task-model autotuning ==\n");
  tune::Tuner tuner(world, han, world.world_comm());
  tune::TunerOptions options;
  options.kinds = {coll::CollKind::Bcast, coll::CollKind::Allreduce,
                   coll::CollKind::ReduceScatter};
  options.message_sizes = {64 << 10, 512 << 10, 4 << 20, 16 << 20};
  options.heuristics = true;  // §III-C: prune SOLO/chain where they cannot win
  const tune::TuneReport report = tuner.tune(options);
  std::printf("tuned %zu table entries in %.3f simulated seconds\n",
              report.table.size(), report.tuning_cost);

  std::printf("\n== step 2: the lookup table ==\n%s",
              report.table.serialize().c_str());

  const char* path = "/tmp/han_tuning_table.txt";
  if (!report.table.save(path)) {
    std::fprintf(stderr, "could not persist the tuning table\n");
    return 1;
  }
  auto loaded = tune::LookupTable::load(path);
  if (!loaded) {
    std::fprintf(stderr, "could not reload the tuning table\n");
    return 1;
  }
  std::printf("saved to %s and reloaded: %zu entries\n", path,
              loaded->size());

  std::printf("\n== step 3: decisions for arbitrary inputs ==\n");
  for (std::size_t m : {4096ul, 1ul << 20, 64ul << 20}) {
    const core::HanConfig cfg =
        loaded->decide(coll::CollKind::Bcast, 8, 8, m);
    std::printf("bcast %8s -> %s\n", sim::format_bytes(m).c_str(),
                cfg.to_string().c_str());
  }

  std::printf("\n== step 4: tuned vs default heuristic (4MB bcast) ==\n");
  tune::Searcher searcher(world, han, world.world_comm());
  const core::HanConfig dflt =
      core::HanModule::default_config(coll::CollKind::Bcast, 8, 8, 4 << 20);
  const core::HanConfig tuned =
      loaded->decide(coll::CollKind::Bcast, 8, 8, 4 << 20);
  const double t_default = measure_bcast(searcher, 4 << 20, dflt);
  const double t_tuned = measure_bcast(searcher, 4 << 20, tuned);
  std::printf("default : %s -> %.2f us\n", dflt.to_string().c_str(),
              t_default * 1e6);
  std::printf("tuned   : %s -> %.2f us (%.2fx)\n", tuned.to_string().c_str(),
              t_tuned * 1e6, t_default / t_tuned);

  // Install the table so regular han.ibcast() calls pick it up.
  tuner.install(*loaded);
  return 0;
}

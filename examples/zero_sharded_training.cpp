// Sharded-training example: a ZeRO/FSDP-style step built on
// reduce-scatter + allgather instead of Horovod's allreduce. Each worker
// reduce-scatters gradient buckets (keeping only its parameter shard's
// reduction) and allgathers updated shards before the next forward. The
// hierarchical ring reduce-scatter is the piece HAN adds over the
// allreduce-and-discard fallback of hierarchy-unaware stacks.
#include <cstdio>

#include "apps/zero.hpp"
#include "bench/bench_util.hpp"

using namespace han;

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  bench::Obs obs(args, "zero_sharded_training");

  apps::ZeroOptions options;
  options.model_bytes = 244ull << 20;  // AlexNet-sized fp32 model
  options.bucket_bytes = 64 << 20;
  options.compute_sec_per_step = 0.30;
  options.steps = 2;

  std::printf("ZeRO-style sharded training, %s model\n\n",
              sim::format_bytes(options.model_bytes).c_str());
  std::printf("%8s %14s %14s %10s %14s\n", "workers", "ompi img/s",
              "han img/s", "gain", "han gather ms");

  for (int nodes : {4, 8, 12}) {
    const machine::MachineProfile profile = machine::make_opath(nodes, 12);
    auto ompi = vendor::make_stack("ompi", profile);
    auto han = vendor::make_stack("han", profile);
    std::string suffix = ".";
    suffix += std::to_string(nodes);
    obs.attach(ompi->world(), &ompi->runtime());
    const apps::ZeroReport r_ompi = apps::run_zero(*ompi, options);
    obs.emit(ompi->world(), suffix + "n.ompi");
    obs.attach(han->world(), &han->runtime());
    const apps::ZeroReport r_han = apps::run_zero(*han, options);
    obs.emit(han->world(), suffix + "n.han");
    std::printf("%8d %14.1f %14.1f %9.2f%% %14.2f\n", r_han.workers,
                r_ompi.images_per_sec, r_han.images_per_sec,
                100.0 * (r_han.images_per_sec / r_ompi.images_per_sec - 1.0),
                r_han.gather_sec_per_step * 1e3);
  }
  std::printf("\nThe fallback pays a full allreduce per gradient bucket and "
              "a flat allgather;\nHAN reduce-scatters hierarchically (ring "
              "between nodes) and gathers through\nthe node leaders, so the "
              "gap widens with scale.\n");
  return 0;
}

#!/usr/bin/env python3
"""Determinism lint (stdlib only) for the HAN simulator sources.

The simulator's contract is bit-identical repeat runs (docs/VERIFICATION.md,
"Determinism lint"): schedules, autotune decisions and reports must not
depend on hash-bucket order, pointer values, or wall-clock entropy. This
script flags the source patterns that historically break that contract:

  unordered-include   #include <unordered_map> / <unordered_set>
  unordered-decl      a declaration using std::unordered_{map,set}
                      (iteration order is hash/bucket dependent)
  pointer-key         std::map/std::set keyed on a pointer type
                      (iteration order depends on allocation addresses)
  nondet-call         std::rand/srand, std::random_device,
                      system_clock, time(nullptr)/time(0)

Unordered containers are fine when no code iterates them in an
order-sensitive way; each such benign use must be listed in ALLOWLIST
below (file, category, token that must appear on the line). Allowlist
entries that no longer match anything are themselves errors, so the list
cannot rot — with an explicit diagnostic distinguishing an entry whose
file was deleted outright from one whose file survives but no longer
contains the flagged line.

Exit status 0 when every finding is allowlisted and every allowlist entry
is live; 1 otherwise. Run from the repo root: scripts/lint_determinism.py
"""

import os
import re
import sys

SCAN_DIRS = ["src", "tools", "tests", "bench", "examples"]
EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")

RULES = [
    ("unordered-include",
     re.compile(r"#\s*include\s*<unordered_(?:map|set)>")),
    ("unordered-decl",
     re.compile(r"\bstd::unordered_(?:map|set)\s*<")),
    ("pointer-key",
     re.compile(r"\bstd::(?:map|set)\s*<[^,>]*\*")),
    ("nondet-call",
     re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b"
                r"|\bsystem_clock\b|\btime\s*\(\s*(?:nullptr|0|NULL)\s*\)")),
]

# Benign uses: (file, category, token). The token must appear on the
# flagged line. Every entry here was audited — the container is only
# used for keyed lookup, never iterated where order reaches an output.
ALLOWLIST = [
    ("src/simmpi/comm.hpp", "unordered-include", "<unordered_map>"),
    ("src/simmpi/comm.hpp", "unordered-decl", "to_comm_rank_"),
    ("src/han/han.hpp", "unordered-include", "<unordered_map>"),
    ("src/han/han.hpp", "unordered-decl", "comms_"),
    ("src/coll/runtime.hpp", "unordered-include", "<unordered_map>"),
    ("src/coll/runtime.hpp", "unordered-decl", "call_seq_"),
    ("src/coll/runtime.hpp", "unordered-decl", "level_of_"),
]


def iter_sources(root):
    for scan in SCAN_DIRS:
        top = os.path.join(root, scan)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []  # (file, lineno, category, line-text)
    for rel in sorted(iter_sources(root)):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                stripped = line.split("//", 1)[0]
                for category, pattern in RULES:
                    if pattern.search(stripped):
                        findings.append((rel, lineno, category, line.strip()))

    used = [False] * len(ALLOWLIST)
    failures = []
    for rel, lineno, category, text in findings:
        hit = None
        for i, (afile, acat, token) in enumerate(ALLOWLIST):
            if rel == afile and category == acat and token in text:
                hit = i
                break
        if hit is None:
            failures.append(f"{rel}:{lineno}: [{category}] {text}")
        else:
            used[hit] = True

    scanned = set(rel for rel, _, _, _ in findings)
    for i, (afile, acat, token) in enumerate(ALLOWLIST):
        if used[i]:
            continue
        if not os.path.isfile(os.path.join(root, afile)):
            failures.append(f"stale allowlist entry: ({afile}, {acat}, "
                            f"'{token}') points at a deleted file — "
                            f"remove it")
        elif afile in scanned:
            failures.append(f"stale allowlist entry: ({afile}, {acat}, "
                            f"'{token}') no longer matches any flagged "
                            f"line in that file — remove it")
        else:
            failures.append(f"stale allowlist entry: ({afile}, {acat}, "
                            f"'{token}') matches nothing — remove it")

    for line in failures:
        print(line, file=sys.stderr)
    allowed = sum(1 for u in used if u)
    print(f"lint_determinism: {len(findings)} findings, "
          f"{allowed} allowlisted, {len(failures)} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

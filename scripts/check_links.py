#!/usr/bin/env python3
"""Markdown link checker (stdlib only) for the repo's docs.

Checks every inline link in the given markdown files:

  * relative file links must point at an existing file/directory
    (relative to the linking file);
  * `#anchor` fragments — same-file or cross-file — must match a heading
    in the target file (GitHub-style slugs);
  * absolute URLs are accepted without network access (scheme check only).

Exit status 0 when every link resolves, 1 otherwise (one line per
broken link). Usage: check_links.py FILE.md [FILE.md ...]
"""

import os
import re
import sys

# [text](target) — skips images' leading "!" which still match fine, and
# ignores code spans by stripping fenced/inline code first.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
CODE_RE = re.compile(r"`[^`]*`")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→dashes."""
    text = re.sub(r"[*_`]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        content = FENCE_RE.sub("", f.read())
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(content)}


def check_file(md_path: str) -> list:
    errors = []
    base_dir = os.path.dirname(os.path.abspath(md_path))
    with open(md_path, encoding="utf-8") as f:
        content = CODE_RE.sub("", FENCE_RE.sub("", f.read()))

    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(base_dir, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{md_path}: broken link '{target}' "
                              f"(no such file: {path_part})")
                continue
            anchor_file = resolved
        else:
            anchor_file = md_path
        if fragment and anchor_file.endswith(".md"):
            if slugify(fragment) not in anchors_of(anchor_file):
                errors.append(f"{md_path}: broken anchor '{target}' "
                              f"(no heading '#{fragment}' in {anchor_file})")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for md in sys.argv[1:]:
        failures.extend(check_file(md))
    for line in failures:
        print(line, file=sys.stderr)
    checked = len(sys.argv) - 1
    print(f"check_links: {checked} files, {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Simulator-core perf report: run microbench_simcore, compare to the seed.

Runs the google-benchmark binary in JSON mode, sanity-checks the output
(the run must complete and every throughput benchmark must report a
positive items/sec), and writes a compact report with the current numbers
next to the recorded pre-overhaul baseline and the resulting speedups.

The committed BENCH_simcore.json at the repo root is this script's output;
re-run after any simulator-core change and commit the result so the perf
trajectory is recorded in-tree:

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j --target microbench_simcore
    python3 scripts/perf_report.py --bench build/bench/microbench_simcore

NOTE: --benchmark_min_time takes a bare number of seconds ("0.05"); the
benchmark library bundled in the toolchain rejects unit suffixes ("0.05s").

Exit status: 0 on success, 1 when the benchmark binary crashes, emits
unparseable JSON, or any benchmark reports zero/absent throughput where
the baseline has one.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "bench", "baseline_seed.json")
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_simcore.json")


def run_benchmarks(bench, min_time, bench_filter):
    # JSON goes to a file (--benchmark_out), not stdout: the in-memory JSON
    # reporter (--benchmark_format=json) measurably perturbs the first
    # benchmarks on small machines, while the out-file path matches the
    # plain console numbers.
    out = tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="bench_", delete=False)
    cmd = [
        bench,
        f"--benchmark_out={out.name}",
        "--benchmark_out_format=json",
        # Bare seconds: the installed benchmark rejects "0.05s".
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            sys.exit(f"error: {bench} exited with status {proc.returncode}")
        try:
            return json.load(out)
        except json.JSONDecodeError as exc:
            sys.exit(f"error: benchmark output is not valid JSON: {exc}")
    except OSError as exc:
        sys.exit(f"error: cannot run {bench}: {exc}")
    finally:
        out.close()
        os.unlink(out.name)


def index_by_name(report):
    out = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = entry
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default="build/bench/microbench_simcore",
                    help="path to the microbench_simcore binary")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="seed benchmark JSON captured before the overhaul")
    ap.add_argument("--output", default=DEFAULT_OUTPUT,
                    help="report destination (committed at the repo root)")
    ap.add_argument("--min-time", default="0.05",
                    help="per-benchmark min time in bare seconds (no suffix)")
    ap.add_argument("--filter", default="",
                    help="optional --benchmark_filter regex")
    args = ap.parse_args()

    current = run_benchmarks(args.bench, args.min_time, args.filter)
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    cur_by_name = index_by_name(current)
    base_by_name = index_by_name(baseline)
    if not cur_by_name:
        sys.exit("error: benchmark run produced no results")

    rows = []
    failures = []
    for name, cur in sorted(cur_by_name.items()):
        base = base_by_name.get(name)
        row = {"name": name}
        cur_ips = cur.get("items_per_second")
        if cur_ips is not None:
            if not cur_ips > 0.0:
                failures.append(f"{name}: items_per_second parses to {cur_ips}")
            row["items_per_second"] = cur_ips
        row["real_time"] = cur.get("real_time")
        row["time_unit"] = cur.get("time_unit")
        if base is not None:
            base_ips = base.get("items_per_second")
            if base_ips is not None and cur_ips is None:
                failures.append(f"{name}: baseline has items/sec, current lost it")
            if base_ips:
                row["baseline_items_per_second"] = base_ips
                if cur_ips:
                    row["speedup"] = cur_ips / base_ips
            elif base.get("real_time") and cur.get("real_time") \
                    and base.get("time_unit") == cur.get("time_unit"):
                row["baseline_real_time"] = base["real_time"]
                row["speedup"] = base["real_time"] / cur["real_time"]
        rows.append(row)

    # Baseline benchmarks that disappeared are a report failure too: a
    # renamed benchmark silently breaks the recorded trajectory.
    for name in sorted(set(base_by_name) - set(cur_by_name)):
        if args.filter:
            continue  # partial runs are fine when an explicit filter is set
        failures.append(f"{name}: present in baseline, missing from this run")

    report = {
        "description": "simulator-core perf trajectory: current vs seed "
                       "(see docs/PERFORMANCE.md)",
        "bench_binary": args.bench,
        "min_time_seconds": args.min_time,
        "context": current.get("context", {}),
        "benchmarks": rows,
    }
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    width = max(len(r["name"]) for r in rows)
    for r in rows:
        ips = r.get("items_per_second")
        speed = r.get("speedup")
        ips_txt = f"{ips:14.4g}/s" if ips is not None else f"{r['real_time']:10.4g} {r['time_unit']:>2}"
        speed_txt = f"  {speed:5.2f}x vs seed" if speed is not None else ""
        print(f"{r['name']:<{width}}  {ips_txt}{speed_txt}")
    print(f"wrote {os.path.relpath(args.output, os.getcwd())}")

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
